"""Extension — the RR fringe filter beyond d = 2.

The paper restricts the Minkowski fringe test to d = 2; this library's
exact formulation (dist(point, box) <= δ) works in any dimension.  The
benchmark measures what the extension buys on clustered 3-D data — and
asserts, crucially, that the ALL combination's answers are unaffected
(the fringe filter only removes candidates that later integration would
reject anyway).
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import run_3d_fringe_extension


def test_extension_3d_fringe(benchmark):
    table = benchmark.pedantic(
        run_3d_fringe_extension,
        kwargs={"n_trials": bench_trials()},
        rounds=1,
        iterations=1,
    )
    report("extension_3d_fringe", table.render())

    rows = {row[0]: row for row in table.rows}
    # The exact fringe filter can only remove RR candidates.
    assert rows["exact"][1] <= rows["paper"][1]
    # With all three strategies the other filters already cover the
    # corners, so ALL is insensitive to the fringe mode.
    assert rows["exact"][2] <= rows["paper"][2]

"""Ablation — exact closed-form lookups vs the paper's MC-built U-catalogs.

This quantifies the central deviation documented in EXPERIMENTS.md: the
paper tabulated r_θ and α(δ, θ) with Monte Carlo U-catalogs and
conservative lookups, which inflate regions and (crucially) shrink the BF
inner acceptance radius.  Running our engine in that regime reproduces the
paper's weaker BF; exact lookups make the same machinery strictly tighter.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import run_ablation_lookup_fidelity


def test_ablation_lookup_fidelity(benchmark):
    table = benchmark.pedantic(
        run_ablation_lookup_fidelity,
        kwargs={"n_trials": bench_trials()},
        rounds=1,
        iterations=1,
    )
    report("ablation_fidelity", table.render())

    rows = {row[0]: row for row in table.rows}
    exact, catalogs = rows["exact"], rows["mc-catalogs"]
    # Catalog-driven runs integrate at least as many candidates ...
    assert catalogs[1] >= exact[1]
    # ... and accept no more for free (conservative alpha_lower).
    assert catalogs[2] <= exact[2]

"""Query-kind planner parity — auto plans vs the per-kind fixed oracle.

The acceptance bar for the unified query-kind pipeline (see
docs/query_types.md): for every kind — exact-target PRQ,
uncertain-target PRQ, Gaussian-mixture, probabilistic k-NN — the
auto-planned engine must run a mixed workload within 1.1x of the best
*fixed* plan for that kind (the "fixed oracle": rerun the workload under
each fixed strategy spec and keep the cheapest).  Answers must be
bit-identical across every plan, fixed or auto — strategies only change
how hard Phases 1/2 prune, never what Phase 3 decides.

Results land in ``BENCH_querytypes.json`` at the repo root: per kind,
seconds under each fixed spec, seconds under ``auto``, the winning fixed
spec, and the auto/best-fixed ratio the gate checks.

Environment knobs:

- ``REPRO_BENCH_QT_POINTS`` — dataset size (default 4,000);
- ``REPRO_BENCH_QT_QUERIES`` — queries per kind (default 8);
- ``REPRO_BENCH_QT_REPEATS`` — best-of repeats per measurement (default 5);
- ``REPRO_BENCH_QT_GATE`` — auto vs best-fixed ratio bound (default 1.1);
- ``REPRO_BENCH_QT_SLACK`` — absolute timer-noise allowance in seconds on
  top of the ratio bound (default 0.005 — meaningful only for kinds whose
  whole batch runs in a few milliseconds, vanishing for the rest).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import report, report_json

from repro import (
    Gaussian,
    GaussianMixture,
    KNNQuery,
    MixtureRangeQuery,
    ProbabilisticRangeQuery,
    SpatialDatabase,
    TargetCovarianceTable,
    UncertainTargetQuery,
)
from repro.bench.harness import ExperimentTable
from repro.integrate.cascade import CascadeIntegrator

FIXED_SPECS = ("rr", "bf", "all")


def qt_points(default: int = 4_000) -> int:
    return int(os.environ.get("REPRO_BENCH_QT_POINTS", default))


def qt_queries(default: int = 8) -> int:
    return int(os.environ.get("REPRO_BENCH_QT_QUERIES", default))


def qt_repeats(default: int = 5) -> int:
    return int(os.environ.get("REPRO_BENCH_QT_REPEATS", default))


def qt_gate(default: float = 1.1) -> float:
    return float(os.environ.get("REPRO_BENCH_QT_GATE", default))


def qt_slack(default: float = 0.005) -> float:
    return float(os.environ.get("REPRO_BENCH_QT_SLACK", default))


def best_of_interleaved(fns: dict[str, object], repeats: int) -> dict[str, float]:
    """Minimum wall-clock per labelled thunk, measured round-robin.

    Interleaving the contenders inside each repeat round (instead of
    exhausting one engine's repeats before starting the next) cancels
    machine drift — a slow round hits every contender, not just the one
    that happened to run last.
    """
    best = {label: float("inf") for label in fns}
    for _ in range(repeats):
        for label, fn in fns.items():
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    return best


def make_database(n: int, dim: int = 2, seed: int = 3) -> SpatialDatabase:
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1000.0, size=(n, dim))
    ids = np.arange(n)
    table = TargetCovarianceTable.shared(40.0 * np.eye(dim), ids)
    return SpatialDatabase(points, ids=ids, target_table=table)


def query_gaussian(rng, dim: int) -> Gaussian:
    sigma = 800.0 * np.eye(dim)
    sigma[0, 0] *= 2.0
    center = rng.uniform(300.0, 700.0, size=dim)
    return Gaussian(center, sigma)


def make_workloads(dim: int, n_queries: int) -> dict[str, list]:
    """``n_queries`` queries of each kind, deterministic in the seed."""
    rng = np.random.default_rng(11)
    workloads: dict[str, list] = {"prq": [], "uncertain": [], "mixture": [], "knn": []}
    for i in range(n_queries):
        delta = 60.0 + 5.0 * (i % 4)
        theta = 0.03 + 0.01 * (i % 3)
        workloads["prq"].append(
            ProbabilisticRangeQuery(query_gaussian(rng, dim), delta, theta)
        )
        workloads["uncertain"].append(
            UncertainTargetQuery(query_gaussian(rng, dim), delta, theta)
        )
        mixture = GaussianMixture(
            [query_gaussian(rng, dim), query_gaussian(rng, dim)],
            weights=[0.6, 0.4],
        )
        workloads["mixture"].append(MixtureRangeQuery.create(mixture, delta, theta))
        workloads["knn"].append(
            KNNQuery.create(
                query_gaussian(rng, dim),
                k=2,
                theta=0.1,
                n_samples=400,
                seed=i,
            )
        )
    return workloads


def run_workload(engine, queries) -> list[tuple[int, ...]]:
    return [tuple(engine.execute(query).ids) for query in queries]


def test_query_kind_auto_plan(benchmark):
    def run():
        db = make_database(qt_points())
        workloads = make_workloads(db.dim, qt_queries())
        repeats = qt_repeats()
        table = ExperimentTable(
            "Query kinds — auto plan vs per-kind fixed oracle "
            f"({qt_queries()} queries/kind, {qt_points()} points)",
            ["kind", *(f"{spec} ms" for spec in FIXED_SPECS), "auto ms", "ratio"],
        )
        payload: dict[str, dict] = {}
        for kind, queries in workloads.items():
            engines = {
                spec: db.engine(strategies=spec, integrator=CascadeIntegrator())
                for spec in (*FIXED_SPECS, "auto")
            }
            # Warm-up pass: plan caches, r_theta/BF lookups — and the
            # soundness check. Every plan must return the same answer.
            answers = {
                label: run_workload(engine, queries)
                for label, engine in engines.items()
            }
            for spec in FIXED_SPECS:
                assert answers[spec] == answers["auto"], (
                    f"{kind}: fixed plan {spec!r} disagrees with auto"
                )
            timings = best_of_interleaved(
                {
                    label: (lambda e=engine: run_workload(e, queries))
                    for label, engine in engines.items()
                },
                repeats,
            )
            auto_seconds = timings.pop("auto")
            best_spec = min(timings, key=timings.get)
            ratio = auto_seconds / timings[best_spec]
            table.add_row(
                kind,
                *(timings[spec] * 1e3 for spec in FIXED_SPECS),
                auto_seconds * 1e3,
                ratio,
            )
            payload[kind] = {
                "fixed_seconds": timings,
                "auto_seconds": auto_seconds,
                "best_fixed_spec": best_spec,
                "auto_vs_best_fixed_ratio": ratio,
                "n_queries": len(queries),
                "results_identical_across_plans": True,
            }
        return table, payload

    table, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    report("querytypes", table.render())
    report_json(
        "BENCH_querytypes",
        {"gate": qt_gate(), "slack_seconds": qt_slack(), "kinds": payload},
    )

    gate = qt_gate()
    slack = qt_slack()
    for kind, row in payload.items():
        best = row["fixed_seconds"][row["best_fixed_spec"]]
        assert row["auto_seconds"] <= gate * best + slack, (
            f"{kind}: auto plan {row['auto_vs_best_fixed_ratio']:.2f}x the "
            f"best fixed plan ({row['best_fixed_spec']}), gate {gate:.2f}x "
            f"+ {slack * 1e3:.1f} ms"
        )

"""Ablation — Phase-3 integrator accuracy/cost against the exact CDF.

Quantifies the paper's integrator choice: the hit-ratio importance sampler
beats plain Monte Carlo at every budget on these skewed queries, and the
randomized-Halton QMC extension beats both; the exact quadratic-form CDF
(unavailable to the paper) removes sampling error entirely.
"""

from __future__ import annotations

from conftest import report

from repro.bench.experiments import run_ablation_integrators


def test_ablation_integrators(benchmark):
    table = benchmark.pedantic(
        run_ablation_integrators,
        kwargs={"budgets": (1_000, 10_000, 100_000)},
        rounds=1,
        iterations=1,
    )
    report("ablation_integrators", table.render())

    is_err = [row[1] for row in table.rows]
    qmc_err = [row[5] for row in table.rows]
    # Errors shrink with budget (allowing Monte Carlo luck at one step).
    assert min(is_err[1:]) < is_err[0]
    assert qmc_err[-1] < 2e-3
    assert is_err[-1] < 1e-2

"""Ablation — the EM (ellipsoid-Minkowski) filter extension.

EM applies the paper's Fig. 3 pruning argument to the θ-region itself
rather than to its bounding box, yielding the geometrically tightest
region-based filter; combined with BF's acceptance hole it dominates the
paper's ALL configuration at every γ.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import run_ablation_em_strategy


def test_ablation_em_strategy(benchmark):
    table = benchmark.pedantic(
        run_ablation_em_strategy,
        kwargs={"n_trials": bench_trials()},
        rounds=1,
        iterations=1,
    )
    report("ablation_em", table.render())

    columns = table.columns
    for row in table.rows:
        values = dict(zip(columns, row))
        # EM alone dominates RR+OR (its region is their intersection's
        # subset); EM+BF dominates ALL.
        assert values["EM"] <= values["RR+OR"] + 1e-9
        assert values["EM+BF"] <= values["ALL"] + 1e-9

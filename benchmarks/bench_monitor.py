"""Update-storm benchmark for safe-region subscription monitoring.

A fleet of standing probabilistic range queries drifts in small random
steps while the data stays put — the paper's moving-object monitoring
workload.  Two implementations answer every update:

- ``safe-region`` — ``repro.serve.monitor.SubscriptionManager``: each
  subscription carries a pre-approximated safe region (alpha shells +
  per-object probability slack), so an update is classified in O(1) and
  usually commits without touching index, filter or integrator;
- ``re-evaluate`` — one ``repro.core.monitor.MonitoringSession`` per
  subscription (the legacy cached-candidate loop): every update re-runs
  Phase 2/3 over the cached candidate superset.

Acceptance gate: safe-region update throughput must be >= 5x the
re-evaluation baseline on the update storm, with every per-update
answer bit-identical between the two paths (both run the deterministic
cascade, so equality is exact, not statistical).  Sizes honour
``REPRO_BENCH_MONITOR_SUBS`` / ``REPRO_BENCH_MONITOR_STEPS`` so CI can
shrink the storm without touching the thresholds.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import report, report_json

from repro.bench.harness import ExperimentTable
from repro.core.database import SpatialDatabase
from repro.core.monitor import MonitoringSession
from repro.gaussian.distribution import Gaussian
from repro.integrate.cascade import CascadeIntegrator
from repro.serve.monitor import SubscriptionManager

SPEEDUP_GATE = 5.0


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def make_fleet(n_subs: int, n_steps: int, seed: int = 29):
    """A database plus a drifting fleet of standing-query parameters."""
    rng = np.random.default_rng(seed)
    db = SpatialDatabase(rng.random((10_000, 2)) * 1000.0)
    centers = rng.random((n_subs, 2)) * 900.0 + 50.0
    sigma_scales = rng.choice([0.25, 0.5, 1.0], size=n_subs)
    deltas = rng.choice([12.0, 15.0, 20.0], size=n_subs)
    thetas = rng.choice([0.3, 0.5], size=n_subs)
    # Small drifts: the regime safe regions are built for.  The storm is
    # still adversarial for correctness — every step of every trajectory
    # is checked bit-for-bit against the re-evaluation path.
    steps = rng.normal(0.0, 0.05, size=(n_steps, n_subs, 2))
    return db, centers, sigma_scales, deltas, thetas, steps


def test_monitor_update_storm_speedup(benchmark):
    """Safe-region updates >= 5x cached re-evaluation, bit-identical."""
    n_subs = _env_int("REPRO_BENCH_MONITOR_SUBS", 1000)
    n_steps = _env_int("REPRO_BENCH_MONITOR_STEPS", 5)
    db, centers, sigma_scales, deltas, thetas, steps = make_fleet(
        n_subs, n_steps
    )
    n_updates = n_subs * n_steps
    positions = steps.cumsum(axis=0) + centers  # (n_steps, n_subs, 2)

    result = {}

    def run():
        table = ExperimentTable(
            f"Monitoring — {n_subs} subscriptions x {n_steps} update steps",
            ["mode", "updates", "wall ms", "updates/s", "survived",
             "reintegrated", "replanned"],
        )

        # Safe-region manager: subscribe once, then drive the storm.
        engine = db.engine(integrator=CascadeIntegrator())
        manager = SubscriptionManager(db, engine, degrade=False)
        for sid in range(n_subs):
            manager.subscribe(
                Gaussian(centers[sid], sigma_scales[sid] * np.eye(2)),
                float(deltas[sid]),
                float(thetas[sid]),
                subscription_id=sid,
            )
        manager_ids = {}
        start = time.perf_counter()
        for step in range(n_steps):
            for sid in range(n_subs):
                resp = manager.update(sid, positions[step, sid])
                manager_ids[step, sid] = resp.ids
        manager_wall = time.perf_counter() - start
        stats = manager.stats()
        table.add_row(
            "safe-region", n_updates, manager_wall * 1e3,
            n_updates / manager_wall, stats["survived"],
            stats["reintegrated"], stats["replanned"],
        )

        # Baseline: one cached-candidate session per subscription,
        # full Phase 2/3 re-evaluation at every update.
        sessions = {
            sid: MonitoringSession(db, integrator=CascadeIntegrator())
            for sid in range(n_subs)
        }
        baseline_ids = {}
        start = time.perf_counter()
        for step in range(n_steps):
            for sid in range(n_subs):
                res = sessions[sid].query(
                    Gaussian(
                        positions[step, sid], sigma_scales[sid] * np.eye(2)
                    ),
                    float(deltas[sid]),
                    float(thetas[sid]),
                )
                baseline_ids[step, sid] = res.ids
        baseline_wall = time.perf_counter() - start
        table.add_row(
            "re-evaluate", n_updates, baseline_wall * 1e3,
            n_updates / baseline_wall, "-", "-", "-",
        )

        result["manager_wall"] = manager_wall
        result["baseline_wall"] = baseline_wall
        result["manager_ids"] = manager_ids
        result["baseline_ids"] = baseline_ids
        result["stats"] = stats
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("monitor_update_storm", table.render())

    stats = result["stats"]
    speedup = result["baseline_wall"] / result["manager_wall"]
    report_json("BENCH_monitor", {
        "n_subscriptions": n_subs,
        "n_steps": n_steps,
        "n_updates": n_updates,
        "safe_region": {
            "wall_seconds": result["manager_wall"],
            "updates_per_second": n_updates / result["manager_wall"],
            "survived": stats["survived"],
            "reintegrated": stats["reintegrated"],
            "replanned": stats["replanned"],
            "degraded": stats["degraded"],
            "failed": stats["failed"],
        },
        "re_evaluate": {
            "wall_seconds": result["baseline_wall"],
            "updates_per_second": n_updates / result["baseline_wall"],
        },
        "speedup": speedup,
        "gate": SPEEDUP_GATE,
    })

    # Soundness before speed: every update of every trajectory must be
    # bit-identical to the cold re-evaluation baseline.
    assert stats["failed"] == 0 and stats["degraded"] == 0
    mismatches = [
        key for key in result["baseline_ids"]
        if result["manager_ids"][key] != result["baseline_ids"][key]
    ]
    assert not mismatches, (
        f"{len(mismatches)} of {n_updates} updates diverged from "
        f"re-evaluation, first at (step, sub)={mismatches[0]}"
    )
    # The storm must actually exercise the O(1) fast path — a benchmark
    # where every update replans measures nothing.
    assert stats["survived"] > 0, stats

    assert speedup >= SPEEDUP_GATE, (
        f"safe-region updates only {speedup:.2f}x re-evaluation "
        f"(gate {SPEEDUP_GATE}x)"
    )

"""§V-B-3 — sensitivity of candidate counts to δ, θ and the covariance shape.

The paper reports these sweeps as prose; this benchmark regenerates the
underlying numbers and asserts each claim:

1. δ: the trend is unchanged, combinations help relatively more for small
   δ (for large δ the RR and BF regions nearly coincide);
2. θ: moving θ from 0.1 to 0.01 barely changes the cost (Gaussian tails);
3. Σ shape: near-unit covariances equalize the strategies; thin ellipses
   make the combination pay.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import (
    run_sensitivity_delta,
    run_sensitivity_shape,
    run_sensitivity_theta,
)


def _column(table, name):
    idx = table.columns.index(name)
    return [row[idx] for row in table.rows]


def test_sensitivity_delta(benchmark):
    trials = bench_trials()
    table = benchmark.pedantic(
        run_sensitivity_delta, kwargs={"n_trials": trials}, rounds=1, iterations=1
    )
    report("sensitivity_delta", table.render())
    rr, bf, all_ = _column(table, "RR"), _column(table, "BF"), _column(table, "ALL")
    # Candidates grow with delta for every strategy.
    assert rr == sorted(rr) and all_ == sorted(all_)
    # ALL dominates both components at every delta.
    for r, b, a in zip(rr, bf, all_):
        assert a <= min(r, b)
    # Deviation from the paper's prose, documented in EXPERIMENTS.md: with
    # *exact* alpha radii (the paper used coarse MC tables), BF retains its
    # inner acceptance hole at large delta, so BF pulls AHEAD of RR there
    # instead of converging to it.
    assert bf[-1] < rr[-1]


def test_sensitivity_theta(benchmark):
    trials = bench_trials()
    table = benchmark.pedantic(
        run_sensitivity_theta, kwargs={"n_trials": trials}, rounds=1, iterations=1
    )
    report("sensitivity_theta", table.render())
    thetas = _column(table, "theta")
    all_ = _column(table, "ALL")
    i_001, i_01 = thetas.index(0.01), thetas.index(0.1)
    # Paper: theta=0.01 vs theta=0.1 changes the cost only marginally.
    assert all_[i_001] <= 1.6 * max(all_[i_01], 1.0)


def test_sensitivity_shape(benchmark):
    trials = bench_trials()
    table = benchmark.pedantic(
        run_sensitivity_shape, kwargs={"n_trials": trials}, rounds=1, iterations=1
    )
    report("sensitivity_shape", table.render())
    ratios = _column(table, "ratio")
    rr, bf, all_ = _column(table, "RR"), _column(table, "BF"), _column(table, "ALL")
    assert ratios[0] == 1.0
    # Exactly spherical + exact alpha radii: BF decides everything without
    # integration (Section VI's lambda_par == lambda_perp remark).
    assert bf[0] == 0 and all_[0] == 0
    # As the ellipse thins (equal area), every strategy needs more
    # integrations and RR stays the loosest filter.
    assert all_[1:] == sorted(all_[1:])
    for r, a in zip(rr[1:], all_[1:]):
        assert a < r

"""Sharded scatter–gather throughput and parity gate.

The acceptance bar for `repro.shard` (see docs/sharding.md): on a
>= 200k-point workload, batch throughput with 4 shard worker processes
must be >= 2.5x the single-engine path, and the merged answers must be
**bit-identical** query-for-query.

Parity is asserted unconditionally.  The speedup gate only applies where
4 processes can actually run in parallel (``os.cpu_count() >= 4`` — CI
runners qualify); on smaller hosts the measured ratio is still reported.

Environment knobs (CI smoke shrinks none of the defaults — the gate is
specified at 200k points):

- ``REPRO_BENCH_SHARD_POINTS`` — dataset size (default 200,000);
- ``REPRO_BENCH_SHARD_QUERIES`` — batch size (default 40).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import report, report_json

from repro.bench.harness import ExperimentTable
from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.gaussian.distribution import Gaussian
from repro.integrate.cascade import CascadeIntegrator

N_SHARDS = 4
SPEEDUP_GATE = 2.5


def shard_points(default: int = 200_000) -> int:
    return int(os.environ.get("REPRO_BENCH_SHARD_POINTS", default))


def shard_queries(default: int = 40) -> int:
    return int(os.environ.get("REPRO_BENCH_SHARD_QUERIES", default))


def make_dataset(n: int, seed: int = 42) -> np.ndarray:
    """Clustered + uniform mix over [0, 1000]^2, like the test clouds."""
    rng = np.random.default_rng(seed)
    n_uniform = n // 5
    centers = rng.uniform(0.0, 1000.0, (24, 2))
    clustered = (
        centers[rng.integers(0, len(centers), n - n_uniform)]
        + 25.0 * rng.standard_normal((n - n_uniform, 2))
    )
    return np.vstack([clustered, rng.uniform(0.0, 1000.0, (n_uniform, 2))])


def make_queries(k: int, seed: int = 9) -> list[ProbabilisticRangeQuery]:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(k):
        center = rng.uniform(100.0, 900.0, 2)
        scale = float(rng.choice([5.0, 20.0, 60.0]))
        delta = float(rng.choice([10.0, 20.0, 35.0]))
        theta = float(rng.choice([0.05, 0.1, 0.3]))
        queries.append(
            ProbabilisticRangeQuery(
                Gaussian(center, scale * np.eye(2)), delta, theta
            )
        )
    return queries


def test_shard_throughput_and_parity(benchmark):
    def run():
        points = make_dataset(shard_points())
        queries = make_queries(shard_queries())
        db = SpatialDatabase(points)

        engine = db.engine(
            strategies="all", integrator=CascadeIntegrator()
        )
        start = time.perf_counter()
        baseline = engine.run_batch(queries, base_seed=11)
        single_wall = time.perf_counter() - start

        with db.shard(N_SHARDS, workers=N_SHARDS) as sharded:
            sharded_engine = sharded.engine(
                strategies="all", integrator=CascadeIntegrator()
            )
            start = time.perf_counter()
            batch = sharded_engine.run_batch(queries, base_seed=11)
            sharded_wall = time.perf_counter() - start

        # The hard gate, unconditional: bit-identical merged answers.
        mismatches = sum(
            got.ids != want.ids
            for got, want in zip(batch.results, baseline.results)
        )
        assert mismatches == 0, f"{mismatches} queries lost parity"
        assert sum(r.stats.retrieved for r in batch.results) == sum(
            r.stats.retrieved for r in baseline.results
        )

        table = ExperimentTable(
            f"Sharded scatter–gather — {len(points):,} points, "
            f"{len(queries)} queries, cascade Phase 3",
            ["mode", "wall s", "qps", "mean candidates"],
        )
        mean_cands = sum(
            r.stats.retrieved for r in baseline.results
        ) / len(queries)
        for label, wall in (
            ("single engine", single_wall),
            (f"{N_SHARDS} shard processes", sharded_wall),
        ):
            table.add_row(label, wall, len(queries) / wall, mean_cands)
        return table, single_wall, sharded_wall

    table, single_wall, sharded_wall = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = single_wall / sharded_wall
    gated = os.cpu_count() is not None and os.cpu_count() >= N_SHARDS
    report(
        "shard_throughput",
        table.render()
        + f"\nspeedup: {speedup:.2f}x "
        + (
            f"(gate: >= {SPEEDUP_GATE}x)"
            if gated
            else f"(gate skipped: {os.cpu_count()} CPUs < {N_SHARDS})"
        ),
    )
    report_json(
        "BENCH_shard",
        {
            "points": shard_points(),
            "queries": shard_queries(),
            "n_shards": N_SHARDS,
            "single_wall_s": single_wall,
            "sharded_wall_s": sharded_wall,
            "speedup": speedup,
            "speedup_gate_applied": gated,
        },
    )
    if gated:
        assert speedup >= SPEEDUP_GATE, (
            f"4-shard speedup {speedup:.2f}x below the {SPEEDUP_GATE}x gate"
        )

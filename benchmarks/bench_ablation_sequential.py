"""Ablation — adaptive sequential Phase 3 vs the paper's fixed budget.

The paper spends 100k samples on every candidate; the sequential sampler
(`repro.integrate.sequential`) curtails each candidate's evaluation once
the θ-decision is statistically settled, reserving the full budget for
boundary cases.  Same answers, a fraction of the samples.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import run_ablation_sequential


def test_ablation_sequential(benchmark):
    table = benchmark.pedantic(
        run_ablation_sequential,
        kwargs={"n_trials": bench_trials(), "max_samples": 100_000},
        rounds=1,
        iterations=1,
    )
    report("ablation_sequential", table.render())

    rows = {row[0]: row for row in table.rows}
    fixed, sequential = rows["fixed"], rows["sequential"]
    # Same candidates, nearly the same answers, far fewer samples.
    assert sequential[1] == fixed[1]
    assert abs(sequential[3] - fixed[3]) <= max(2.0, 0.05 * fixed[3])
    assert sequential[2] < 0.4 * fixed[2]
    assert sequential[4] < fixed[4]

"""Ablation — index backend versus phase timing.

The paper dismisses Phase-1 cost ("at least 97 % of the total processing
time was taken up with numerical integration"); this ablation verifies the
claim holds in this implementation for every backend, including the
no-index linear scan — i.e. the conclusions do not hinge on the R*-tree's
constant factors.
"""

from __future__ import annotations

from conftest import bench_samples, bench_trials, report

from repro.bench.experiments import run_ablation_index_backends


def test_ablation_index_backends(benchmark):
    table = benchmark.pedantic(
        run_ablation_index_backends,
        kwargs={"n_trials": bench_trials(), "n_samples": bench_samples()},
        rounds=1,
        iterations=1,
    )
    report("ablation_index", table.render())

    share_column = table.columns.index("phase3 %")
    for row in table.rows:
        # Phase 3 dominates on every backend (paper: >= 97 %; we allow a
        # little slack for the reduced default sampling budget).
        assert row[share_column] > 85.0

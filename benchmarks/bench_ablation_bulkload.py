"""Ablation — bulk-loading strategies: STR vs Hilbert vs dynamic insertion.

Measures build time, structural quality (average fill, leaf sibling
overlap) and query cost (node accesses over a fixed query workload) on the
skewed road data.  The packed loaders should build orders of magnitude
faster and pack fuller than dynamic insertion while answering queries with
comparable node access counts.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import report

from repro.bench.harness import ExperimentTable, load_road_database
from repro.geometry.mbr import Rect
from repro.index.rtree import RStarTree


def test_ablation_bulkload(benchmark):
    def run():
        road = load_road_database()
        points = np.vstack([road.point(i) for i in range(len(road))])
        n = points.shape[0]
        rng = np.random.default_rng(12)
        query_rects = []
        for _ in range(60):
            center = points[rng.integers(n)]
            half = rng.uniform(20, 80, size=2)
            query_rects.append(Rect(center - half, center + half))

        table = ExperimentTable(
            "Ablation — bulk loading: build cost, structure, query cost",
            ["loader", "build s", "avg fill", "leaf overlap", "node accesses"],
        )
        # Dynamic insertion is too slow for all 50k points; use a 12k slice
        # for it and scale the comparison workload accordingly.
        subset = points[rng.choice(n, size=12_000, replace=False)]
        configs = [
            ("str", points, "str"),
            ("hilbert", points, "hilbert"),
            ("dynamic-12k", subset, None),
        ]
        for label, data, method in configs:
            tree = RStarTree(2, max_entries=50)
            start = time.perf_counter()
            if method is None:
                for i, p in enumerate(data):
                    tree.insert(i, p)
            else:
                tree.bulk_load(range(data.shape[0]), data, method=method)
            build_seconds = time.perf_counter() - start
            metrics = tree.quality_metrics()
            tree.stats.reset()
            for rect in query_rects:
                tree.range_search_rect(rect)
            table.add_row(
                label,
                build_seconds,
                metrics["avg_fill"],
                metrics["leaf_sibling_overlap"],
                tree.stats.node_accesses,
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_bulkload", table.render())

    rows = {row[0]: row for row in table.rows}
    # Packed loaders fill nodes almost completely; both are far faster to
    # build than dynamic insertion even on 4x the data.
    assert rows["str"][2] > 0.9 and rows["hilbert"][2] > 0.9
    assert rows["str"][1] < rows["dynamic-12k"][1]
    assert rows["hilbert"][1] < rows["dynamic-12k"][1]

"""Ablation — predicted vs measured Phase-3 workload (query optimization).

``SelectivityEstimator`` predicts each strategy combination's candidate
count from a histogram of the data and the strategy's region geometry —
without touching the index.  This benchmark checks the predictions rank
the combinations correctly on the skewed road data, which is what a query
optimizer needs them for.
"""

from __future__ import annotations

import numpy as np
from conftest import bench_trials, report

from repro.bench.experiments import SPEC_ORDER, _CountOnlyIntegrator
from repro.bench.harness import (
    ExperimentTable,
    load_road_database,
    paper_sigma,
    random_query_centers,
)
from repro.core.query import ProbabilisticRangeQuery
from repro.core.selectivity import SelectivityEstimator
from repro.gaussian.distribution import Gaussian


def test_ablation_selectivity(benchmark):
    trials = bench_trials()

    def run():
        db = load_road_database()
        points = np.vstack([db.point(i) for i in range(len(db))])
        estimator = SelectivityEstimator(points, bins=64)
        centers = random_query_centers(db, trials, seed=3)
        counting = _CountOnlyIntegrator()
        sigma = paper_sigma(10.0)
        table = ExperimentTable(
            "Ablation — histogram-predicted vs measured candidates (gamma=10)",
            ["strategies", "predicted", "measured", "ratio"],
        )
        for spec in SPEC_ORDER:
            predicted_total = measured_total = 0.0
            for center in centers:
                query = ProbabilisticRangeQuery(
                    Gaussian(center, sigma), 25.0, 0.01
                )
                predicted_total += estimator.estimate_candidates(
                    query, spec, seed=11
                )
                measured_total += (
                    db.engine(strategies=spec, integrator=counting)
                    .execute(query)
                    .stats.integrations
                )
            ratio = predicted_total / max(measured_total, 1.0)
            table.add_row(
                spec, predicted_total / trials, measured_total / trials, ratio
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_selectivity", table.render())

    ratios = [row[3] for row in table.rows]
    # Point predictions within a factor of two on skewed data ...
    assert all(0.5 <= r <= 2.0 for r in ratios)
    # ... and the predicted ordering identifies the cheapest combination.
    predicted = {row[0]: row[1] for row in table.rows}
    measured = {row[0]: row[2] for row in table.rows}
    assert min(predicted, key=predicted.get) == min(measured, key=measured.get)

"""Load benchmark for the embedded query service (:mod:`repro.serve`).

A closed-loop client submits a 200-request hot-key workload (a zipf-ish
mix over ~40 distinct query shapes — the classic serving traffic
pattern) and the table compares three dispatch modes:

- ``sequential`` — the service with ``max_batch=1``: every request is
  its own engine call, no coalescing (the no-micro-batching baseline);
- ``batched`` — dynamic micro-batching (``max_batch=32``), result cache
  off: coalesced drains execute bit-identical in-flight duplicates once
  and fan the result out;
- ``batched+cache`` — the full serving stack with the keyed LRU result
  cache on.

Acceptance gate: micro-batched throughput must be >= 1.5x the
sequential-dispatch baseline, and every response must be bit-identical
to running the same queries through ``QueryEngine.run_batch`` directly.
On a single core the win comes from duplicate coalescing and caching
(per-request work cannot be parallelised); with more cores the
coalesced ``run_batch`` fan-out adds thread-level speedup on top.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import bench_batch_queries, report, report_json

from repro.bench.harness import ExperimentTable
from repro.core.database import SpatialDatabase
from repro.gaussian.distribution import Gaussian
from repro.integrate.cascade import CascadeIntegrator
from repro.serve import PRQRequest

DISTINCT_SHAPES = 40


def make_service_workload(
    n_requests: int, seed: int = 11
) -> tuple[SpatialDatabase, list[PRQRequest]]:
    """A database plus a hot-key request mix (zipf-ish over 40 shapes)."""
    rng = np.random.default_rng(seed)
    db = SpatialDatabase(rng.random((10_000, 2)) * 1000.0)
    shapes = []
    for _ in range(DISTINCT_SHAPES):
        shapes.append((
            rng.random(2) * 900.0 + 50.0,
            float(rng.choice([2.0, 5.0, 10.0])),
            float(rng.choice([5.0, 10.0])),
            float(rng.choice([0.1, 0.3])),
        ))
    weights = 1.0 / np.arange(1, DISTINCT_SHAPES + 1) ** 1.1
    weights /= weights.sum()
    picks = rng.choice(DISTINCT_SHAPES, size=n_requests, p=weights)
    requests = []
    for i, k in enumerate(picks):
        center, scale, delta, theta = shapes[k]
        requests.append(PRQRequest(
            Gaussian(center, scale * np.eye(2)), delta, theta, request_id=i
        ))
    return db, requests


def drive(db, requests, *, max_batch: int, cache_size: int):
    """Submit the whole workload closed-loop; return (wall, responses, stats)."""
    with db.serve(
        max_batch=max_batch,
        batch_window=0.002,
        workers=4,
        integrator=CascadeIntegrator(),
        cache_size=cache_size,
        degrade=False,
    ) as service:
        start = time.perf_counter()
        futures = [service.submit(r) for r in requests]
        responses = [f.result() for f in futures]
        wall = time.perf_counter() - start
        stats = service.stats()
    return wall, responses, stats


def test_serve_microbatching_speedup(benchmark):
    """Micro-batched dispatch >= 1.5x sequential dispatch, bit-identical."""
    n = bench_batch_queries(200)
    db, requests = make_service_workload(n)
    direct = db.engine(integrator=CascadeIntegrator()).run_batch(
        [r.query for r in requests], workers=1
    )

    modes = {}

    def run():
        table = ExperimentTable(
            f"Serving — {n}-request hot-key workload, closed-loop client",
            ["mode", "wall ms", "qps", "p50 ms", "p99 ms",
             "executed", "deduped", "cache hits"],
        )
        for label, max_batch, cache_size in (
            ("sequential", 1, 0),
            ("batched", 32, 0),
            ("batched+cache", 32, 1024),
        ):
            wall, responses, stats = drive(
                db, requests, max_batch=max_batch, cache_size=cache_size
            )
            latencies = sorted(r.service_seconds for r in responses)
            modes[label] = (wall, responses, stats)
            table.add_row(
                label,
                wall * 1e3,
                n / wall,
                latencies[int(0.50 * (n - 1))] * 1e3,
                latencies[int(0.99 * (n - 1))] * 1e3,
                stats["executed"],
                stats["deduplicated"],
                stats["cache_hits"],
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("serve_microbatching", table.render())
    report_json("BENCH_serve", {
        label: {
            "wall_seconds": wall,
            "qps": n / wall,
            "executed": stats["executed"],
            "deduplicated": stats["deduplicated"],
            "cache_hits": stats["cache_hits"],
            "batches": stats["batches"],
            "coalesced_batches": stats["coalesced_batches"],
        }
        for label, (wall, _, stats) in modes.items()
    })

    # Soundness before speed: every mode must answer every request
    # bit-identically to direct batch execution.
    for label, (_, responses, stats) in modes.items():
        assert all(r.status == "ok" for r in responses), label
        assert tuple(r.ids for r in responses) == direct.ids, (
            f"{label} responses diverged from direct run_batch"
        )
        assert stats["failed"] == 0 and stats["overloaded"] == 0

    # Micro-batching must actually coalesce, and pay off.
    assert modes["batched"][2]["coalesced_batches"] >= 1
    assert modes["batched"][2]["executed"] < n
    speedup = modes["sequential"][0] / modes["batched"][0]
    assert speedup >= 1.5, (
        f"micro-batched dispatch only {speedup:.2f}x sequential"
    )


def test_serve_admission_control(benchmark):
    """A tiny queue under burst load rejects with typed responses and
    never blocks or drops a request silently."""
    db, requests = make_service_workload(100)

    def run():
        with db.serve(
            max_queue=8, max_batch=4, batch_window=0.0,
            workers=1, integrator=CascadeIntegrator(), cache_size=0,
        ) as service:
            futures = [service.submit(r) for r in requests]
            return [f.result(timeout=60.0) for f in futures]

    responses = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(responses) == len(requests)
    overloaded = [r for r in responses if r.status == "overloaded"]
    served = [r for r in responses if r.status == "ok"]
    assert len(overloaded) + len(served) == len(requests)
    assert overloaded, "burst into an 8-slot queue must shed load"
    assert served, "admission control must not reject everything"
    assert all(r.error is not None for r in overloaded)
    report("serve_admission", (
        f"burst of {len(requests)} into queue bound 8: "
        f"{len(served)} served, {len(overloaded)} overloaded (typed)"
    ))

"""Table III — 9-D pseudo-feedback candidates (δ=0.7, θ=0.4).

Paper row (Corel Color Moments, 10 trials):

    RR    BF   RR+BF  RR+OR  BF+OR   ALL   ANS
   3713  3216  2468   1905   1998   1699   3.9

plus three text anchors: the OR-region candidate count (2,620), the
average qualification probability of the query centre (70.0 %), and
r_θ(9, 0.4) = 2.32.  The synthetic Corel stand-in is calibrated to the
paper's δ=0.7 density, so counts land in the same regime; the structural
claims (ALL tightest, OR notably effective in 9-D, tiny ANS versus
thousands of candidates) are asserted.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import SPEC_ORDER, run_table3


def test_table3_9d_candidates(benchmark):
    trials = bench_trials()
    table = benchmark.pedantic(
        run_table3, kwargs={"n_trials": trials, "seed": 0}, rounds=1, iterations=1
    )
    table.note(f"{trials} trials (paper: 10)")
    report("table3_9d", table.render())

    counts = dict(zip([s.upper() for s in SPEC_ORDER] + ["ANS"], table.rows[0]))
    # ALL is the tightest combination.
    assert counts["ALL"] <= min(
        counts[s.upper()] for s in SPEC_ORDER if s != "all"
    )
    # Combinations dominate their components.
    assert counts["RR+BF"] <= min(counts["RR"], counts["BF"])
    assert counts["RR+OR"] <= counts["RR"]
    assert counts["BF+OR"] <= counts["BF"]
    # The 9-D pathology: the answer is tiny compared to the candidates.
    assert counts["ANS"] < counts["ALL"] / 10.0

"""Compiled-kernel speedups and O(1) store loading.

The acceptance bar for ``repro.kernels`` (see docs/architecture.md):
with the compiled backend active, at least two hot kernels must run
>= 3x faster than the NumPy/SciPy fallback on a realistic candidate
block, and answers must stay within the documented parity contract
(classify kernels bit-identical, bound kernels sound).  The storage bar:
loading a 1,000,000-point structure-of-arrays store must be O(1) —
under 50 ms wall, independent of n.

Results land in ``BENCH_kernels.json`` at the repo root: per kernel,
ns/candidate before (fallback) and after (dispatch), the dtype used,
and whether the jit (compiled) backend was on.  When the suite runs
under ``REPRO_NO_JIT=1`` the speedup gate is vacuous (before == after)
and only recorded, never asserted.

Environment knobs:

- ``REPRO_BENCH_KERNEL_CANDIDATES`` — candidate block size (default 20,000);
- ``REPRO_BENCH_KERNEL_REPEATS`` — best-of repeats per measurement (default 5).
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import report, report_json

from repro import kernels
from repro.bench.harness import ExperimentTable
from repro.core.database import SpatialDatabase
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import chi2_sandwich_bounds_block
from repro.kernels import fallback

SPEEDUP_GATE = 3.0
MIN_FAST_KERNELS = 2
LOAD_BUDGET_SECONDS = 0.050


def kernel_candidates(default: int = 20_000) -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_CANDIDATES", default))


def kernel_repeats(default: int = 5) -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", default))


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_workload(m: int, d: int = 2, seed: int = 7):
    rng = np.random.default_rng(seed)
    center = rng.uniform(0.0, 1000.0, d)
    a = rng.standard_normal((d, d))
    sigma = a @ a.T + d * np.eye(d)
    gaussian = Gaussian(center, sigma)
    points = center + 40.0 * rng.standard_normal((m, d))
    return gaussian, points


def test_kernel_speedups(benchmark):
    m = kernel_candidates()
    repeats = kernel_repeats()
    gaussian, points = make_workload(m)
    d = gaussian.dim
    mean = np.asarray(gaussian.mean)
    basis = np.asarray(gaussian.basis)
    eigvals = np.asarray(gaussian.eigenvalues)
    delta = 30.0
    x = delta * delta

    ncs_axis = np.array(
        fallback.squared_distance_noncentralities(mean, basis, eigvals, points)
    )
    nc_totals = ncs_axis.sum(axis=1)
    lam = eigvals
    dofs = np.ones(d)
    # The Ruben block is the tier-2 shape: a smaller survivor set at full
    # tolerance, each candidate carrying per-eigendirection noncentralities.
    m_ruben = min(m, 2_000)
    ncs_ruben = ncs_axis[:m_ruben]

    lows = np.quantile(points, 0.2, axis=0)
    highs = np.quantile(points, 0.8, axis=0)
    half_widths = (highs - lows) / 2.0
    alpha_upper = np.quantile(np.linalg.norm(points - mean, axis=1), 0.7)
    alpha_lower = alpha_upper / 3.0

    cases = {
        "squared_distance_noncentralities": (
            lambda: fallback.squared_distance_noncentralities(
                mean, basis, eigvals, points
            ),
            lambda: kernels.squared_distance_noncentralities(
                mean, basis, eigvals, points
            ),
            m,
            "float64",
        ),
        "chi2_sandwich_block": (
            lambda: fallback.chi2_sandwich_block(
                x, float(d), nc_totals, float(lam.min()), float(lam.max())
            ),
            lambda: kernels.chi2_sandwich_block(
                x, float(d), nc_totals, float(lam.min()), float(lam.max())
            ),
            m,
            "float64",
        ),
        "chi2_sandwich_block_f32": (
            lambda: chi2_sandwich_bounds_block(gaussian, points, delta),
            lambda: chi2_sandwich_bounds_block(
                gaussian, points, delta, dtype="float32"
            ),
            m,
            "float32",
        ),
        "ruben_block": (
            lambda: fallback.ruben_block(lam, dofs, ncs_ruben, x, tol=1e-10),
            lambda: kernels.ruben_block(lam, dofs, ncs_ruben, x, tol=1e-10),
            m_ruben,
            "float64",
        ),
        "minkowski_contains": (
            lambda: fallback.minkowski_contains(points, lows, highs, delta),
            lambda: kernels.minkowski_contains(points, lows, highs, delta),
            m,
            "float64",
        ),
        "oblique_contains": (
            lambda: fallback.oblique_contains(points, mean, basis, half_widths),
            lambda: kernels.oblique_contains(points, mean, basis, half_widths),
            m,
            "float64",
        ),
        "bf_classify": (
            lambda: fallback.bf_classify(points, mean, alpha_upper, alpha_lower),
            lambda: kernels.bf_classify(points, mean, alpha_upper, alpha_lower),
            m,
            "float64",
        ),
    }

    def run():
        rows = {}
        for name, (before_fn, after_fn, count, dtype) in cases.items():
            before_fn(), after_fn()  # warm caches / scratch arenas
            before = best_of(before_fn, repeats)
            after = best_of(after_fn, repeats)
            rows[name] = {
                "ns_per_candidate_before": before / count * 1e9,
                "ns_per_candidate_after": after / count * 1e9,
                "speedup": before / after if after > 0 else float("inf"),
                "candidates": count,
                "dtype": dtype,
                "jit": kernels.BACKEND == "c",
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    n_load = 1_000_000
    rng = np.random.default_rng(1)
    big = SpatialDatabase(rng.uniform(0.0, 1000.0, (n_load, 2)))
    store_path = os.path.join(
        os.environ.get("TMPDIR", "/tmp"), "bench_kernels_1m.soa"
    )
    try:
        big.save(store_path)
        load_seconds = best_of(
            lambda: SpatialDatabase.load(store_path), repeats
        )
    finally:
        if os.path.exists(store_path):
            os.remove(store_path)

    table = ExperimentTable(
        f"Compiled kernels vs NumPy fallback (backend={kernels.BACKEND}, "
        f"m={kernel_candidates()})",
        ["kernel", "dtype", "before ns/cand", "after ns/cand", "speedup"],
    )
    for name, row in rows.items():
        table.add_row(
            name,
            row["dtype"],
            f"{row['ns_per_candidate_before']:.1f}",
            f"{row['ns_per_candidate_after']:.1f}",
            f"{row['speedup']:.2f}x",
        )
    text = table.render()
    text += (
        f"\n1M-point store load: {load_seconds * 1e3:.3f} ms "
        f"(budget {LOAD_BUDGET_SECONDS * 1e3:.0f} ms)\n"
    )
    report("kernel_speedups", text)
    report_json(
        "BENCH_kernels",
        {
            "backend": kernels.BACKEND,
            "kernels": rows,
            "load_1m_points_ms": load_seconds * 1e3,
            "load_budget_ms": LOAD_BUDGET_SECONDS * 1e3,
            "speedup_gate": SPEEDUP_GATE,
        },
    )

    assert load_seconds < LOAD_BUDGET_SECONDS, (
        f"1M-point load took {load_seconds * 1e3:.1f} ms "
        f"(O(1) budget {LOAD_BUDGET_SECONDS * 1e3:.0f} ms)"
    )
    if kernels.BACKEND == "c":
        fast = [k for k, row in rows.items() if row["speedup"] >= SPEEDUP_GATE]
        assert len(fast) >= MIN_FAST_KERNELS, (
            f"only {fast} beat the {SPEEDUP_GATE}x gate "
            f"(need {MIN_FAST_KERNELS}): "
            + ", ".join(f"{k}={row['speedup']:.2f}x" for k, row in rows.items())
        )

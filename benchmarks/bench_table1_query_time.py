"""Table I — query processing time per strategy combination.

Paper row (seconds, 2 GHz Pentium, C, 100k-sample RANDLIB integration):

    gamma    RR     BF   RR+BF  RR+OR  BF+OR   ALL
      1    18.6   15.9   15.7   17.7   15.1   14.8
     10    41.2   35.9   33.5   35.6   29.8   29.4
    100   155.3  136.7  123.5  119.3   97.3   93.7

Absolute times are incomparable (pure Python + vectorised numpy on modern
hardware, smaller default sample budget); the *shape* — ALL fastest, BF+OR
second, monotone growth in γ — is what this benchmark regenerates.
"""

from __future__ import annotations

from conftest import bench_samples, bench_trials, report

from repro.bench.experiments import SPEC_ORDER, run_strategy_grid


def test_table1_query_time(benchmark):
    trials = bench_trials()
    samples = bench_samples()

    def run():
        return run_strategy_grid(
            gammas=(1.0, 10.0, 100.0),
            n_trials=trials,
            n_samples=samples,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = result.table_time()
    table.note(f"{trials} trials, {samples} IS samples/candidate "
               "(paper: 5 trials, 100,000 samples)")
    table.note("paper gamma=10 row: 41.2 35.9 33.5 35.6 29.8 29.4 (s)")
    report("table1_query_time", table.render())

    for gamma in (1.0, 10.0, 100.0):
        times = {spec: result.seconds[(gamma, spec)] for spec in SPEC_ORDER}
        # The paper's headline: the full combination is the cheapest and
        # every combination beats its components.
        assert times["all"] <= min(times["rr"], times["bf"]) * 1.10
    # Costs grow with gamma for every strategy.
    for spec in SPEC_ORDER:
        assert result.seconds[(1.0, spec)] < result.seconds[(100.0, spec)]

"""Table II — number of candidates needing numerical integration.

Paper rows (road data, delta=25, theta=0.01):

    gamma    RR     BF   RR+BF  RR+OR  BF+OR   ALL    ANS
      1     357    302    297    335    285    281    295
     10     792    683    636    682    569    558    546
    100    2998   2599   2346   2270   1832   1788   1566

Absolute counts depend on the (synthetic) data's local density around the
sampled query points; the invariants checked here are the paper's: ALL is
the tightest filter for every γ, every combination dominates its
components, counts grow with γ, and the candidate set always contains the
answer set.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import SPEC_ORDER, run_candidate_grid


def test_table2_candidates(benchmark):
    trials = bench_trials()

    def run():
        return run_candidate_grid(
            gammas=(1.0, 10.0, 100.0), n_trials=trials, seed=0
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = result.table_candidates()
    table.note(f"{trials} trials (paper: 5)")
    table.note("paper gamma=10 row: 792 683 636 682 569 558 | ANS 546")
    report("table2_candidates", table.render())

    for gamma in (1.0, 10.0, 100.0):
        counts = {spec: result.candidates[(gamma, spec)] for spec in SPEC_ORDER}
        assert counts["all"] == min(counts.values())
        assert counts["rr+bf"] <= min(counts["rr"], counts["bf"]) + 1e-9
        assert counts["rr+or"] <= counts["rr"] + 1e-9
        assert counts["bf+or"] <= counts["bf"] + 1e-9
        # Candidates must at least cover the (integration-needing part of
        # the) answer set; with BF acceptance the answer can exceed the
        # candidate count, so compare against RR which accepts nothing.
        assert counts["rr"] >= result.answers[gamma] * 0.5
    for spec in SPEC_ORDER:
        assert (
            result.candidates[(1.0, spec)]
            <= result.candidates[(10.0, spec)]
            <= result.candidates[(100.0, spec)]
        )

"""Figure 17 — probability of existence within a radius, per dimension.

The paper plots the normalized Gaussian's radial mass for d ∈ {2, 3, 5,
9, 15} over radii 0..6 and reads off two anchors: 39 % at radius 1 in
2-D, 9 % at radius 2 in 9-D.  Both reproduce to three decimals here
because the curve family is the χ_d CDF in closed form.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench.experiments import run_fig17


def test_fig17_radial_curves(benchmark):
    table, curves = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    report("fig17_radial", table.render())

    from conftest import RESULTS_DIR
    from repro.viz import render_radial_figure

    render_radial_figure().save(RESULTS_DIR / "fig17_radial.svg")

    radii = [row[0] for row in table.rows]
    idx1 = radii.index(pytest.approx(1.0))
    # Paper anchors.
    assert curves[2][idx1] == pytest.approx(0.393, abs=0.001)
    idx2 = radii.index(pytest.approx(2.0))
    assert curves[9][idx2] == pytest.approx(0.09, abs=0.005)
    # Curse of dimensionality: curves strictly ordered at every radius > 0.
    for i in range(1, len(radii)):
        values = [curves[d][i] for d in (2, 3, 5, 9, 15)]
        assert all(a >= b for a, b in zip(values, values[1:]))

"""Figures 13–16 — the integration regions of RR, OR, BF and ALL.

Paper labels: Fig. 13 (γ=10) RR box half-widths 23.4 / 15.3 with δ=25;
Fig. 15 (γ=1) 7.4 / 4.8; Fig. 16 (γ=100) 74.1 / 48.5.  The BF radii the
paper draws (46.9 / 15.6 at γ=10) came from its coarse Monte Carlo
U-catalog; our exact noncentral-χ² values are 49.5 / 30.8 (verified
against direct numerical integration in the test suite) — see
EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.bench.experiments import region_geometry, run_region_tables


def test_fig13_16_regions(benchmark):
    table = benchmark.pedantic(run_region_tables, rounds=1, iterations=1)
    report("fig13_16_regions", table.render())

    # Regenerate the figures themselves as SVG next to the tables.
    from conftest import RESULTS_DIR
    from repro.viz import render_regions_figure

    for gamma, figure in ((10.0, "fig13_14"), (1.0, "fig15"), (100.0, "fig16")):
        render_regions_figure(gamma).save(RESULTS_DIR / f"{figure}_regions.svg")

    g10 = region_geometry(10.0)
    # Fig. 13's RR labels reproduce exactly.
    assert g10["rr_half_width_x"] == pytest.approx(23.4, abs=0.1)
    assert g10["rr_half_width_y"] == pytest.approx(15.3, abs=0.1)
    # Fig. 14: the ALL region is the intersection — smallest of the four.
    assert g10["all_area"] < min(g10["rr_area"], g10["or_area"], g10["bf_area"])
    # Figs. 15/16 shape: combination gain grows with gamma.
    gain = {
        gamma: min(
            region_geometry(gamma)["rr_area"],
            region_geometry(gamma)["bf_area"],
        )
        / region_geometry(gamma)["all_area"]
        for gamma in (1.0, 100.0)
    }
    assert gain[100.0] > gain[1.0]

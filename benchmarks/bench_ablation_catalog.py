"""Ablation — U-catalog resolution versus filtering power.

The paper's DESIGN decision: catalog lookups are conservative, so a coarse
catalog never breaks correctness, it only retrieves more candidates.  The
sweep quantifies how quickly the overhead vanishes with resolution.
"""

from __future__ import annotations

from conftest import bench_trials, report

from repro.bench.experiments import run_ablation_catalog_resolution


def test_ablation_catalog_resolution(benchmark):
    trials = bench_trials()
    table = benchmark.pedantic(
        run_ablation_catalog_resolution,
        kwargs={"resolutions": (3, 9, 33, 99), "n_trials": trials},
        rounds=1,
        iterations=1,
    )
    report("ablation_catalog", table.render())

    candidates = [row[1] for row in table.rows]
    radii = [row[2] for row in table.rows]
    exact_candidates, exact_radius = candidates[0], radii[0]
    # Every catalog is conservative: radius and candidate count >= exact.
    for r, c in zip(radii[1:], candidates[1:]):
        assert r >= exact_radius - 1e-12
        assert c >= exact_candidates - 1e-9
    # Finer catalogs approach the exact radius (grids are not nested, so
    # strict monotonicity across resolutions is not guaranteed).
    assert radii[1] == max(radii[1:])
    assert radii[-1] <= exact_radius * 1.05

"""Benchmark-suite plumbing.

Benchmarks call :func:`report` with the rendered experiment tables; the
tables are written to ``benchmarks/results/<name>.txt`` immediately and
echoed into the terminal summary at the end of the run (so they survive
pytest's output capture and land in ``bench_output.txt``).

Environment knobs:

- ``REPRO_BENCH_TRIALS`` — query trials per experiment (default 3; the
  paper uses 5 for the 2-D tables and 10 for Table III);
- ``REPRO_BENCH_SAMPLES`` — importance-sampling budget per candidate for
  the *timed* experiments (default 20,000; the paper uses 100,000 —
  candidate counts are identical either way);
- ``REPRO_BENCH_METRICS_OUT`` — when set to a path, benchmarks that run
  with observability enabled additionally write their Prometheus-style
  metrics exposition there (see docs/observability.md).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
#: Machine-readable perf-trajectory reports (``BENCH_<name>.json``) land
#: at the repo root, next to the committed baselines CI trend-checks.
REPO_ROOT = Path(__file__).parent.parent

_collected: list[str] = []


def bench_trials(default: int = 3) -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def bench_samples(default: int = 20_000) -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


def bench_batch_queries(default: int = 200) -> int:
    """Batch size for the workload speedup benchmark (CI smoke shrinks it)."""
    return int(os.environ.get("REPRO_BENCH_BATCH_QUERIES", default))


def bench_metrics_out() -> str | None:
    """Optional extra path for the metrics exposition (env knob)."""
    return os.environ.get("REPRO_BENCH_METRICS_OUT") or None


def report(name: str, text: str) -> None:
    """Record one experiment's rendered output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _collected.append(text)


def report_json(name: str, payload: dict) -> None:
    """Record machine-readable experiment data (per-tier counts etc.).

    ``BENCH_*`` names are the repo's perf-trajectory artifacts and are
    written to the repository root (where the committed numbers live and
    CI smoke jobs look for them); everything else stays under
    ``benchmarks/results/``.
    """
    import json

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if name.startswith("BENCH_"):
        (REPO_ROOT / f"{name}.json").write_text(text)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.section("reproduction tables")
    for text in _collected:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)

"""Throughput benchmark — a mixed query workload on the road data.

Beyond the paper's per-configuration tables: a capacity-planning view of
the whole system under a realistic mix of uncertainties, ranges and
thresholds, comparing the fixed-budget Phase 3 against the adaptive
sequential sampler, and the sequential per-query loop against the
batched ``run_batch`` execution path.
"""

from __future__ import annotations

from pathlib import Path

from conftest import (
    bench_batch_queries,
    bench_metrics_out,
    bench_samples,
    report,
    report_json,
)

from repro.bench.harness import (
    ExperimentTable,
    best_of,
    load_road_database,
    stopwatch,
)
from repro.bench.workload import WorkloadGenerator, run_workload
from repro.integrate.cascade import CascadeIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.obs import Observability


def test_workload_throughput(benchmark):
    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=7)
        queries = generator.batch(30)
        fixed = run_workload(
            db,
            queries,
            integrator=ImportanceSamplingIntegrator(bench_samples(), seed=1),
        )
        adaptive = run_workload(db, queries)  # sequential default
        table = ExperimentTable(
            "Workload — 30 mixed queries, fixed vs adaptive Phase 3",
            ["mode", "p50 ms", "p95 ms", "qps", "mean integrations"],
        )
        for label, rep in (("fixed", fixed), ("adaptive", adaptive)):
            table.add_row(
                label,
                rep.percentile(50) * 1e3,
                rep.percentile(95) * 1e3,
                rep.queries_per_second,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("workload_throughput", table.render())

    rows = {row[0]: row for row in table.rows}
    # Identical filtering, so identical integration counts ...
    assert rows["adaptive"][4] == rows["fixed"][4]
    # ... and the adaptive sampler must deliver more throughput.
    assert rows["adaptive"][3] > rows["fixed"][3]


def test_cascade_speedup(benchmark):
    """Deterministic Phase-3 cascade vs the paper's fixed-budget sampler.

    The acceptance bar: on the 30-query road workload the cascade's
    Phase 3 must be >= 5x faster than fixed-budget importance sampling,
    produce identical result sets up to the sampler's own binomial noise,
    and decide >= 80% of Phase-3 candidates analytically in Tiers 1/2
    (sandwich bounds / batched Ruben) without ever reaching Imhof or
    drawing a sample.

    "Identical up to sampler noise" is the strongest statement that can
    hold for *any* finite sample budget: the cascade is exact (the unit
    suite pins it to the Imhof/Ruben ground truth), so wherever the two
    backends disagree the candidate's true probability must lie within
    the fixed sampler's confidence band around θ — i.e. every
    discrepancy is a coin-toss candidate the sampler cannot decide, never
    a cascade error.
    """

    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=7)
        queries = generator.batch(30)
        fixed = run_workload(
            db,
            queries,
            integrator=ImportanceSamplingIntegrator(bench_samples(), seed=1),
        )
        cascade = run_workload(db, queries, integrator=CascadeIntegrator())
        table = ExperimentTable(
            "Workload — 30 mixed queries, fixed-budget sampling vs "
            "deterministic cascade Phase 3",
            ["mode", "phase-3 s", "p95 ms", "qps", "samples drawn"],
        )
        fixed_p3 = fixed.phase_totals.get("integrate", 0.0)
        cascade_p3 = cascade.phase_totals.get("integrate", 0.0)
        for label, rep, p3, drawn in (
            ("fixed", fixed, fixed_p3, bench_samples() * sum(fixed.integrations)),
            ("cascade", cascade, cascade_p3, 0),
        ):
            table.add_row(
                label, p3, rep.percentile(95) * 1e3, rep.queries_per_second,
                drawn,
            )
        speedup = fixed_p3 / cascade_p3 if cascade_p3 > 0 else float("inf")

        # Result-set identity up to sampler noise: every id on which the
        # two backends disagree must be a borderline candidate — exact
        # probability within 5 binomial standard errors of the query's θ.
        evaluator = CascadeIntegrator()
        noise_flips = 0
        for query, f_ids, c_ids in zip(
            queries, fixed.result_ids, cascade.result_ids
        ):
            for oid in set(f_ids) ^ set(c_ids):
                p = evaluator.qualification_probability(
                    query.gaussian, db.point(oid), query.delta
                ).estimate
                stderr = (
                    query.theta * (1.0 - query.theta) / bench_samples()
                ) ** 0.5
                assert abs(p - query.theta) <= 5.0 * stderr, (
                    f"non-borderline disagreement: id {oid}, exact p={p:.6f} "
                    f"vs theta={query.theta:.6f} (stderr {stderr:.2e})"
                )
                noise_flips += 1

        tiers = cascade.tier_decisions
        table.note(
            f"phase-3 speedup: {speedup:.1f}x; "
            f"borderline ids flipped by sampler noise: {noise_flips}; "
            "tier decisions: "
            + " ".join(f"{k}={v}" for k, v in sorted(tiers.items()))
        )
        return table, fixed, cascade, speedup, noise_flips

    table, fixed, cascade, speedup, noise_flips = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report("workload_cascade", table.render())
    tiers = cascade.tier_decisions
    total = sum(cascade.integrations)
    analytic = tiers.get("cascade-sandwich", 0) + tiers.get("cascade-ruben", 0)
    report_json(
        "workload_cascade",
        {
            "phase3_speedup_vs_fixed": speedup,
            "phase3_seconds": {
                "fixed": fixed.phase_totals.get("integrate", 0.0),
                "cascade": cascade.phase_totals.get("integrate", 0.0),
            },
            "tier_decisions": tiers,
            "phase3_candidates": total,
            "analytic_decision_share": analytic / total if total else 1.0,
            "sampler_noise_flips": noise_flips,
        },
    )

    assert speedup >= 5.0, f"cascade Phase 3 only {speedup:.1f}x faster"
    assert total > 0, "workload produced no Phase-3 candidates"
    assert analytic >= 0.8 * total, (
        f"only {analytic}/{total} Phase-3 candidates decided by Tiers 1/2"
    )


def test_planner_vs_fixed(benchmark):
    """Cost-based planner ('auto') vs every fixed strategy combination.

    The acceptance bar for ``strategy="auto"`` on a mixed road workload:

    - total time within 1.1x of the *per-query best* fixed strategy — an
      oracle that picks the fastest fixed combination for every query
      individually, so it pays no planning cost at all;
    - at least 1.5x faster than the *worst* fixed strategy — the cost a
      user pays for hard-coding the wrong combination.

    The workload uses a quantized delta/theta menu (the production shape),
    so the LRU plan cache absorbs most planning work after the first
    occurrence of each query shape.
    """

    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=13, quantize=4)
        queries = generator.batch(40)
        integrator = ImportanceSamplingIntegrator(bench_samples(), seed=1)

        fixed = {}
        for spec in ("rr", "rr+bf", "rr+or", "bf+or", "all"):
            fixed[spec] = run_workload(
                db, queries, strategies=spec, integrator=integrator
            )
        auto = run_workload(
            db, queries, strategies="auto", integrator=integrator
        )

        per_query_best = sum(
            min(rep.latencies[i] for rep in fixed.values())
            for i in range(len(queries))
        )
        worst_spec = max(fixed, key=lambda s: fixed[s].total_seconds)

        table = ExperimentTable(
            f"Workload — {len(queries)} mixed queries, fixed strategies vs "
            "cost-based planner",
            ["strategies", "total s", "p95 ms", "mean integrations"],
        )
        for spec, rep in list(fixed.items()) + [("auto", auto)]:
            table.add_row(
                spec,
                rep.total_seconds,
                rep.percentile(95) * 1e3,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        cache_hits = sum(p["cache_hit"] for p in auto.plans)
        table.note(
            f"per-query-best oracle: {per_query_best:.3f}s; "
            f"plan cache hits: {cache_hits}/{len(auto.plans)}"
        )
        return table, fixed, auto, per_query_best, worst_spec

    table, fixed, auto, per_query_best, worst_spec = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report("workload_planner", table.render())

    chosen_counts: dict[str, int] = {}
    for plan in auto.plans:
        key = plan["strategies"]
        chosen_counts[key] = chosen_counts.get(key, 0) + 1
    report_json(
        "workload_planner",
        {
            "totals_seconds": {
                spec: rep.total_seconds for spec, rep in fixed.items()
            }
            | {"auto": auto.total_seconds},
            "per_query_best_seconds": per_query_best,
            "worst_fixed": worst_spec,
            "plan_cache_hits": sum(p["cache_hit"] for p in auto.plans),
            "plans_chosen": chosen_counts,
            "plans": auto.plans,
        },
    )

    assert len(auto.plans) == len(auto.latencies), (
        "planner decisions missing from the workload report"
    )
    assert auto.total_seconds <= 1.1 * per_query_best, (
        f"auto {auto.total_seconds:.3f}s exceeds 1.1x the per-query-best "
        f"oracle {per_query_best:.3f}s"
    )
    worst_total = fixed[worst_spec].total_seconds
    assert worst_total >= 1.5 * auto.total_seconds, (
        f"auto {auto.total_seconds:.3f}s is not 1.5x faster than the worst "
        f"fixed strategy {worst_spec} ({worst_total:.3f}s)"
    )


def test_observability_overhead(benchmark):
    """Tracing + metrics must cost < 3% on the mixed workload.

    The acceptance bar for the ``repro.obs`` layer: with a full
    Observability sink attached (spans for every query/phase/tier plus
    the whole metrics contract) the 30-query road workload may be at most
    3% slower than with observability disabled, and the per-query result
    sets must be identical.  The off/on repetitions are *interleaved* and
    each side takes its minimum (the minimum estimates the noise floor;
    scheduler jitter and CPU-frequency drift only ever inflate it, and
    interleaving stops a slow stretch of the machine from landing
    entirely on one side), after one untimed warm-up per side that
    populates the dataset/preparation caches.
    """

    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=7)
        queries = generator.batch(30)

        def workload(obs=None):
            return run_workload(
                db, queries, integrator=CascadeIntegrator(), obs=obs
            )

        workload()  # warm-up: dataset, eigendecomposition and r_theta caches
        plain = workload()
        observed_sink = Observability()
        observed = workload(obs=observed_sink)
        sink_holder = []

        def observed_run():
            sink = Observability()
            sink_holder.append(sink)
            workload(obs=sink)

        off_seconds = on_seconds = float("inf")
        for _ in range(8):
            off_seconds = min(off_seconds, best_of(1, workload))
            on_seconds = min(on_seconds, best_of(1, observed_run))
        overhead = on_seconds / off_seconds - 1.0

        table = ExperimentTable(
            "Workload — 30 mixed queries, observability off vs on "
            "(interleaved, best of 8)",
            ["mode", "wall s", "overhead %"],
        )
        table.add_row("off", off_seconds, 0.0)
        table.add_row("on (trace+metrics)", on_seconds, overhead * 100.0)
        spans = sink_holder[-1].tracer.spans
        table.note(
            f"{len(spans)} spans, "
            f"{len(sink_holder[-1].render_metrics().splitlines())} "
            "exposition lines per instrumented run"
        )
        return table, plain, observed, observed_sink, overhead

    table, plain, observed, sink, overhead = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report("workload_observability", table.render())
    exposition = sink.render_metrics()
    report("workload_observability_metrics", exposition)
    extra_out = bench_metrics_out()
    if extra_out:
        Path(extra_out).write_text(exposition)
    report_json(
        "workload_observability",
        {
            "overhead_fraction": overhead,
            "span_count": len(sink.tracer.spans),
            "queries": len(plain.result_ids),
        },
    )

    assert plain.result_ids == observed.result_ids, (
        "observability changed query results"
    )
    assert overhead < 0.03, (
        f"observability overhead {overhead * 100.0:.2f}% exceeds 3%"
    )


def test_batch_speedup(benchmark):
    """run_batch(workers=4) vs the sequential per-query loop.

    On this repo's acceptance bar the batched path must be at least 2x
    faster in wall-clock for a 200-query batch.  The speedup is
    architectural, not just thread-level: the batch path shares each
    sample batch across all undecided candidates of a query (vectorised
    Phase 3) and memoizes per-shape preparation behind LRU caches, so it
    holds even on a single core.
    """
    n_queries = bench_batch_queries()

    def run():
        db = load_road_database()
        # Quantized delta/theta menus: the production shape, and what the
        # preparation LRU caches are designed around.
        generator = WorkloadGenerator(db, seed=11, quantize=8)
        queries = generator.batch(n_queries)

        with stopwatch() as seq_time:
            sequential = run_workload(db, queries)
        with stopwatch() as batch_time:
            batched = run_workload(db, queries, workers=4)

        table = ExperimentTable(
            f"Workload — {n_queries}-query batch, sequential loop vs "
            "run_batch(workers=4)",
            ["mode", "wall s", "qps", "p95 ms", "mean integrations"],
        )
        for label, rep, wall in (
            ("sequential", sequential, seq_time()),
            ("batch w=4", batched, batch_time()),
        ):
            table.add_row(
                label,
                wall,
                len(rep.latencies) / wall,
                rep.percentile(95) * 1e3,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        table.note(f"speedup: {seq_time() / batch_time():.2f}x")
        return table, seq_time(), batch_time()

    table, seq_wall, batch_wall = benchmark.pedantic(run, rounds=1, iterations=1)
    report("workload_batch_speedup", table.render())

    assert seq_wall / batch_wall >= 2.0, (
        f"batched path only {seq_wall / batch_wall:.2f}x faster "
        f"({seq_wall:.2f}s vs {batch_wall:.2f}s)"
    )

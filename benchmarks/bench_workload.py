"""Throughput benchmark — a mixed query workload on the road data.

Beyond the paper's per-configuration tables: a capacity-planning view of
the whole system under a realistic mix of uncertainties, ranges and
thresholds, comparing the fixed-budget Phase 3 against the adaptive
sequential sampler.
"""

from __future__ import annotations

from conftest import bench_samples, report

from repro.bench.harness import ExperimentTable, load_road_database
from repro.bench.workload import WorkloadGenerator, run_workload
from repro.integrate.importance import ImportanceSamplingIntegrator


def test_workload_throughput(benchmark):
    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=7)
        queries = generator.batch(30)
        fixed = run_workload(
            db,
            queries,
            integrator=ImportanceSamplingIntegrator(bench_samples(), seed=1),
        )
        adaptive = run_workload(db, queries)  # sequential default
        table = ExperimentTable(
            "Workload — 30 mixed queries, fixed vs adaptive Phase 3",
            ["mode", "p50 ms", "p95 ms", "qps", "mean integrations"],
        )
        for label, rep in (("fixed", fixed), ("adaptive", adaptive)):
            table.add_row(
                label,
                rep.percentile(50) * 1e3,
                rep.percentile(95) * 1e3,
                rep.queries_per_second,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("workload_throughput", table.render())

    rows = {row[0]: row for row in table.rows}
    # Identical filtering, so identical integration counts ...
    assert rows["adaptive"][4] == rows["fixed"][4]
    # ... and the adaptive sampler must deliver more throughput.
    assert rows["adaptive"][3] > rows["fixed"][3]

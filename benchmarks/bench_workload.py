"""Throughput benchmark — a mixed query workload on the road data.

Beyond the paper's per-configuration tables: a capacity-planning view of
the whole system under a realistic mix of uncertainties, ranges and
thresholds, comparing the fixed-budget Phase 3 against the adaptive
sequential sampler, and the sequential per-query loop against the
batched ``run_batch`` execution path.
"""

from __future__ import annotations

from conftest import bench_batch_queries, bench_samples, report

from repro.bench.harness import ExperimentTable, load_road_database, stopwatch
from repro.bench.workload import WorkloadGenerator, run_workload
from repro.integrate.importance import ImportanceSamplingIntegrator


def test_workload_throughput(benchmark):
    def run():
        db = load_road_database()
        generator = WorkloadGenerator(db, seed=7)
        queries = generator.batch(30)
        fixed = run_workload(
            db,
            queries,
            integrator=ImportanceSamplingIntegrator(bench_samples(), seed=1),
        )
        adaptive = run_workload(db, queries)  # sequential default
        table = ExperimentTable(
            "Workload — 30 mixed queries, fixed vs adaptive Phase 3",
            ["mode", "p50 ms", "p95 ms", "qps", "mean integrations"],
        )
        for label, rep in (("fixed", fixed), ("adaptive", adaptive)):
            table.add_row(
                label,
                rep.percentile(50) * 1e3,
                rep.percentile(95) * 1e3,
                rep.queries_per_second,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report("workload_throughput", table.render())

    rows = {row[0]: row for row in table.rows}
    # Identical filtering, so identical integration counts ...
    assert rows["adaptive"][4] == rows["fixed"][4]
    # ... and the adaptive sampler must deliver more throughput.
    assert rows["adaptive"][3] > rows["fixed"][3]


def test_batch_speedup(benchmark):
    """run_batch(workers=4) vs the sequential per-query loop.

    On this repo's acceptance bar the batched path must be at least 2x
    faster in wall-clock for a 200-query batch.  The speedup is
    architectural, not just thread-level: the batch path shares each
    sample batch across all undecided candidates of a query (vectorised
    Phase 3) and memoizes per-shape preparation behind LRU caches, so it
    holds even on a single core.
    """
    n_queries = bench_batch_queries()

    def run():
        db = load_road_database()
        # Quantized delta/theta menus: the production shape, and what the
        # preparation LRU caches are designed around.
        generator = WorkloadGenerator(db, seed=11, quantize=8)
        queries = generator.batch(n_queries)

        with stopwatch() as seq_time:
            sequential = run_workload(db, queries)
        with stopwatch() as batch_time:
            batched = run_workload(db, queries, workers=4)

        table = ExperimentTable(
            f"Workload — {n_queries}-query batch, sequential loop vs "
            "run_batch(workers=4)",
            ["mode", "wall s", "qps", "p95 ms", "mean integrations"],
        )
        for label, rep, wall in (
            ("sequential", sequential, seq_time()),
            ("batch w=4", batched, batch_time()),
        ):
            table.add_row(
                label,
                wall,
                len(rep.latencies) / wall,
                rep.percentile(95) * 1e3,
                float(sum(rep.integrations)) / len(rep.integrations),
            )
        table.note(f"speedup: {seq_time() / batch_time():.2f}x")
        return table, seq_time(), batch_time()

    table, seq_wall, batch_wall = benchmark.pedantic(run, rounds=1, iterations=1)
    report("workload_batch_speedup", table.render())

    assert seq_wall / batch_wall >= 2.0, (
        f"batched path only {seq_wall / batch_wall:.2f}x faster "
        f"({seq_wall:.2f}s vs {batch_wall:.2f}s)"
    )

"""Moving-object monitoring with stale position reports.

The paper's Section I: a tracking server lowers update frequency to save
power and bandwidth, so between reports each object's position is known
only as a Gaussian whose spread grows with the report's age.  Vehicle 0
repeatedly asks "who is within 12 units of me with probability >= 30 %?"
as its own report ages, and a MonitoringSession amortizes the index work
across the epochs.

Run:  python examples/moving_objects.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactIntegrator, MonitoringSession, MovingObject, MovingObjectDatabase
from repro.core.moving import stale_gaussian


def main() -> None:
    rng = np.random.default_rng(42)
    fleet = MovingObjectDatabase(
        [
            MovingObject(i, rng.random(2) * 100.0, rng.standard_normal(2) * 1.5)
            for i in range(150)
        ]
    )

    print("vehicle 0 querying its neighbourhood as its report ages:\n")
    print(f"{'t':>4} {'age':>4} {'det(Sigma)':>10} {'neighbours':>10}")
    report_time = 0.0
    for t in np.arange(0.0, 10.5, 1.0):
        result = fleet.query_from_object(
            0,
            t=float(t),
            last_report_time=report_time,
            delta=12.0,
            theta=0.3,
            diffusion=2.0,
            integrator=ExactIntegrator(),
        )
        querier = fleet.object(0)
        belief = stale_gaussian(
            querier.position_at(report_time), querier.velocity,
            float(t) - report_time, diffusion=2.0,
        )
        print(f"{t:>4.0f} {t - report_time:>4.0f} {belief.det_sigma:>10.2f} "
              f"{len(result):>10}")

    print(
        "\nuncertainty (det Sigma) grows quadratically with staleness; with\n"
        "theta=0.3 the neighbour set first swells (mass reaches farther\n"
        "vehicles) and then thins (mass spreads too thin for anyone).\n"
    )

    # Amortized monitoring of one snapshot with a drifting query belief.
    snapshot = fleet.snapshot_at(5.0)
    session = MonitoringSession(
        snapshot, strategies="all", integrator=ExactIntegrator(), margin=1.0
    )
    querier = fleet.object(0)
    base = querier.position_at(5.0)
    for step in range(6):
        belief = stale_gaussian(
            base + querier.velocity * step * 0.2, querier.velocity, 1.0,
            diffusion=2.0,
        )
        session.query(belief, 12.0, 0.3)
    print(
        f"monitoring session: {session.cache_hits} of "
        f"{session.cache_hits + session.cache_misses} epochs served from the "
        "candidate cache (zero index accesses)."
    )


if __name__ == "__main__":
    main()

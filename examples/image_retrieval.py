"""Example-based multimedia retrieval (the paper's Section VI scenario).

A user marks one image as interesting; the system treats its 20 nearest
neighbours as pseudo-feedback, fits the covariance Σ = Σ̃ + κI (Eq. 35)
to them, and retrieves every image whose distance to the *uncertain*
interest point is within δ = 0.7 with probability >= 40 %.

The example also reports the candidate counts per strategy combination —
a miniature Table III — showing how much each filter saves in 9-D.

Run:  python examples/image_retrieval.py
"""

from __future__ import annotations

from repro import ImportanceSamplingIntegrator, ProbabilisticRangeQuery, SpatialDatabase
from repro.bench.experiments import SPEC_ORDER, pseudo_feedback_gaussian
from repro.datasets import color_moments_like


def main() -> None:
    print("generating the Corel-like 9-D feature set (calibrated) ...")
    features = color_moments_like(20_000, seed=1)
    db = SpatialDatabase(features)

    query_image = 4242
    gaussian = pseudo_feedback_gaussian(features, db, query_image, k=20)
    print(f"query image #{query_image}; fitted interest Gaussian:")
    print(f"  eigenvalue spread {gaussian.eigenvalues[0]:.4f} .. "
          f"{gaussian.eigenvalues[-1]:.4f} "
          f"(condition number {gaussian.condition_number:.1f})")

    query = ProbabilisticRangeQuery(gaussian, delta=0.7, theta=0.4)

    print(f"\n{'strategies':>10} {'retrieved':>9} {'integrated':>10} "
          f"{'answers':>7}")
    final_ids: tuple[int, ...] = ()
    for spec in SPEC_ORDER:
        # A fresh integrator per combination, same seed: identical Monte
        # Carlo decisions, so any answer differences would be real.
        integrator = ImportanceSamplingIntegrator(
            100_000, seed=0, share_samples=True
        )
        engine = db.engine(strategies=spec, integrator=integrator)
        result = engine.execute(query)
        print(
            f"{spec:>10} {result.stats.retrieved:>9} "
            f"{result.stats.integrations:>10} {len(result):>7}"
        )
        final_ids = result.ids

    print(f"\nretrieved images: {final_ids}")
    print("every combination returns the same answer; they differ only in "
          "how many candidates reach Monte Carlo integration.")


if __name__ == "__main__":
    main()

"""Fleet monitoring with standing subscriptions (safe-region updates).

A dispatch centre watches 2,000 delivery vehicles against a map of
static geofenced assets.  Each vehicle's GPS fix is a Gaussian, so
"which assets is vehicle v near?" is the paper's probabilistic range
query — but asked *continuously*, at every position report.  Instead of
re-running the query each tick, every vehicle becomes one standing
subscription: ``subscribe`` anchors a pre-approximated safe region
(Mahalanobis alpha shells plus per-asset probability slack), and each
position report is then classified in O(1) — the cached answer provably
``survived``, a few border assets are ``reintegrated``, or the region
broke and the subscription is ``replanned``.  Every non-degraded answer
is bit-identical to a cold re-evaluation at the new fix.

The example drives a position-report storm, breaks one region on
purpose (a covariance change: GPS degrading in a tunnel), and shows a
deadline-squeezed update degrading to proven ids + sound probability
intervals without corrupting the committed answer.

Run:  python examples/fleet_monitoring.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import Gaussian, SpatialDatabase
from repro.integrate.cascade import CascadeIntegrator

N_VEHICLES = 2_000
N_TICKS = 6


def main() -> None:
    rng = np.random.default_rng(7)
    # 15,000 geofenced assets (depots, chargers, customer sites) on a
    # 100 km x 100 km map, in units of 100 m.
    assets = SpatialDatabase(rng.random((15_000, 2)) * 1000.0)

    with assets.serve(integrator=CascadeIntegrator(), workers=4) as service:
        monitor = service.monitor

        # One standing PRQ per vehicle: "assets within delta=15 of my
        # true position with probability >= 40%", GPS noise sigma.
        centers = rng.random((N_VEHICLES, 2)) * 900.0 + 50.0
        print(f"subscribing {N_VEHICLES} vehicles ...")
        start = time.perf_counter()
        for vid in range(N_VEHICLES):
            monitor.subscribe(
                Gaussian(centers[vid], 0.5 * np.eye(2)),
                delta=15.0,
                theta=0.4,
                subscription_id=vid,
            )
        anchor_wall = time.perf_counter() - start
        print(f"  anchored in {anchor_wall:.2f}s "
              f"({N_VEHICLES / anchor_wall:,.0f} subscriptions/s)\n")

        # The position-report storm: every vehicle reports every tick.
        positions = centers.copy()
        print(f"update storm: {N_TICKS} ticks x {N_VEHICLES} reports")
        start = time.perf_counter()
        for _tick in range(N_TICKS):
            positions += rng.normal(0.0, 0.08, size=positions.shape)
            for vid in range(N_VEHICLES):
                monitor.update(vid, positions[vid])
        storm_wall = time.perf_counter() - start
        stats = monitor.stats()
        n_updates = N_TICKS * N_VEHICLES
        print(f"  {n_updates} updates in {storm_wall:.2f}s "
              f"({n_updates / storm_wall:,.0f} updates/s)")
        print(f"  survived     {stats['survived']:>6}   (O(1): answer "
              "provably unchanged, nothing executed)")
        print(f"  reintegrated {stats['reintegrated']:>6}   (Phase 2/3 "
              "over border assets only)")
        print(f"  replanned    {stats['replanned']:>6}   (full engine "
              "run, fresh safe region)\n")

        # A structural change always replans: vehicle 0 enters a tunnel
        # and its GPS covariance quadruples.
        resp = monitor.update(0, positions[0], 2.0 * np.eye(2))
        print("vehicle 0 covariance change (tunnel): outcome="
              f"{resp.outcome}, {len(resp.ids)} nearby assets\n")

        # A deadline-squeezed report degrades instead of blocking the
        # dispatcher: proven ids now, sound intervals for the rest.  A
        # survived update is free, so jump each vehicle until one needs
        # border re-integration — that is the work the deadline cuts off.
        target = None
        for vid in range(1, N_VEHICLES):
            target = positions[vid] + np.array([1.5, 0.0])
            resp = monitor.update(vid, target, deadline=0.0)
            if resp.status == "degraded":
                break
        print(f"vehicle {vid} jump with deadline=0: status={resp.status}, "
              f"outcome={resp.outcome}")
        print(f"  {len(resp.ids)} proven assets, {len(resp.bounds)} "
              "undecided with sound (lo, hi) probability bounds")
        note = monitor.notify(vid)
        print(f"  notify: stale={note.stale} (committed answer untouched)")
        # No deadline: the same report re-converges and clears the flag.
        resp = monitor.update(vid, target)
        note = monitor.notify(vid)
        print(f"  after unconstrained retry: outcome={resp.outcome}, "
              f"stale={note.stale}\n")

        for vid in range(N_VEHICLES):
            monitor.unsubscribe(vid)
        print(f"fleet retired; active subscriptions: {len(monitor)}")


if __name__ == "__main__":
    main()

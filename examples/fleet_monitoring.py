"""Both-sides-uncertain monitoring (the paper's future-work extension).

A dispatch centre with an imprecisely known position (GPS under tall
buildings) asks which delivery vehicles are within 3 km — but each
vehicle's last report is stale, so its position is *also* a Gaussian.
The convolution identity (x − y ~ N(q − o, Σ_q + Σ_o)) reduces the
two-sided problem to the paper's machinery; see
:mod:`repro.core.uncertain`.

The example sweeps the vehicles' staleness and shows qualification
eroding as their uncertainty grows, plus a probabilistic nearest-neighbour
query ("which vehicle is most likely the closest one?").

Run:  python examples/fleet_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Gaussian,
    ProbabilisticRangeQuery,
    SpatialDatabase,
    UncertainDatabase,
    UncertainObject,
    probabilistic_nearest_neighbors,
)


def build_fleet(rng, staleness: float) -> list[UncertainObject]:
    """60 vehicles around town; position noise grows with staleness."""
    positions = rng.uniform(0.0, 20.0, size=(60, 2))
    fleet = []
    for vehicle_id, position in enumerate(positions):
        drift = staleness * (0.5 + rng.random())  # km^2 of positional variance
        fleet.append(UncertainObject(vehicle_id, Gaussian(position, drift * np.eye(2))))
    return fleet


def main() -> None:
    rng = np.random.default_rng(11)
    dispatch = Gaussian([10.0, 10.0], np.array([[0.8, 0.3], [0.3, 0.4]]))
    query = ProbabilisticRangeQuery(dispatch, delta=3.0, theta=0.5)

    print("vehicles within 3 km of dispatch with probability >= 50%:\n")
    print(f"{'staleness':>9} {'candidates':>10} {'qualified':>9}")
    for staleness in (0.01, 0.25, 1.0, 4.0):
        fleet = UncertainDatabase(build_fleet(np.random.default_rng(11), staleness))
        qualified, stats = fleet.probabilistic_range_query(query)
        print(f"{staleness:>9.2f} {stats.retrieved:>10} {len(qualified):>9}")

    print(
        "\nfresher reports (low staleness) qualify more vehicles: target\n"
        "uncertainty spreads each vehicle's probability mass outside the\n"
        "3 km ball.\n"
    )

    # Probabilistic nearest neighbour over the latest exact snapshot.
    snapshot = SpatialDatabase(rng.uniform(0.0, 20.0, size=(60, 2)))
    candidates = probabilistic_nearest_neighbors(
        snapshot, dispatch, k=1, theta=0.05, n_samples=4_000, seed=2
    )
    print("most likely nearest vehicles (P >= 5%):")
    for candidate in candidates:
        print(
            f"  vehicle {candidate.obj_id:>2}  "
            f"P(nearest) = {candidate.probability:.2f} ± {candidate.stderr:.2f}"
        )


if __name__ == "__main__":
    main()

"""Query planning: explain, predict, choose, and execute adaptively.

A tour of the optimizer-flavoured machinery around the core engine:

1. ``engine.explain`` shows the geometry a query would run with;
2. ``SelectivityEstimator`` predicts each combination's Phase-3 workload
   from a data histogram (no index access);
3. the prediction picks a strategy combination;
4. ``SequentialImportanceSampler`` then executes Phase 3 adaptively,
   spending the full sampling budget only on borderline candidates.

Run:  python examples/query_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Gaussian,
    ProbabilisticRangeQuery,
    SequentialImportanceSampler,
    SpatialDatabase,
)
from repro.core.selectivity import SelectivityEstimator
from repro.core.strategies import STRATEGY_COMBINATIONS
from repro.datasets import clustered_points


def main() -> None:
    points = clustered_points(40_000, 2, n_clusters=15, spread=25.0, seed=12)
    db = SpatialDatabase(points)
    estimator = SelectivityEstimator(points, bins=64)

    sigma = 10.0 * np.array([[7.0, 2 * 3**0.5], [2 * 3**0.5, 3.0]])
    gaussian = Gaussian(points[123], sigma)
    delta, theta = 25.0, 0.01
    query = ProbabilisticRangeQuery(gaussian, delta, theta)

    # 1. Explain the default plan.
    plan = db.engine(strategies="all").explain(query, estimator=estimator)
    print("default plan\n------------")
    print(plan.render())

    # 2-3. Predict every combination's workload and pick the cheapest.
    print("\npredicted Phase-3 candidates per combination:")
    predictions = {}
    for spec in STRATEGY_COMBINATIONS:
        predictions[spec] = estimator.estimate_candidates(query, spec, seed=3)
        print(f"  {spec:>6}: {predictions[spec]:8.1f}")
    chosen = min(predictions, key=predictions.get)
    print(f"chosen combination: {chosen}")

    # 4. Execute with the adaptive sampler.
    integrator = SequentialImportanceSampler(
        theta=theta, max_samples=100_000, batch_size=2_000, seed=0
    )
    result = db.engine(strategies=chosen, integrator=integrator).execute(query)
    spent = result.stats.integration_samples
    fixed = result.stats.integrations * 100_000
    print(
        f"\nexecuted: {len(result)} answers from "
        f"{result.stats.integrations} integrations; adaptive sampling spent "
        f"{spent / 1e6:.2f}M samples vs {fixed / 1e6:.1f}M at a fixed budget "
        f"({fixed / max(spent, 1):.1f}x saved)"
    )


if __name__ == "__main__":
    main()

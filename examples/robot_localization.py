"""The paper's motivating scenario (Example 1): a moving robot asks
"which landmarks are within 10 m of me?" while its own position estimate
is a Gaussian maintained by a Kalman filter.

The robot drives a square loop through a field of landmarks.  Between
position fixes its uncertainty ellipse grows (dead reckoning); each fix
shrinks it.  At every epoch we issue PRQ(belief, delta=10, theta=0.3) and
print how the answer and the filtering effort react to the changing
covariance — exactly the dynamics of the paper's Fig. 1.

Run:  python examples/robot_localization.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactIntegrator, SpatialDatabase
from repro.robotics import RobotSimulator


def square_loop(steps_per_side: int) -> list[np.ndarray]:
    """Velocity commands tracing a square, 1 m per step."""
    legs = [
        np.array([1.0, 0.0]),
        np.array([0.0, 1.0]),
        np.array([-1.0, 0.0]),
        np.array([0.0, -1.0]),
    ]
    return [leg for leg in legs for _ in range(steps_per_side)] * 1


def main() -> None:
    rng = np.random.default_rng(7)
    # Landmarks scattered over the field the robot drives through.
    landmarks = rng.uniform(-20.0, 60.0, size=(600, 2))
    db = SpatialDatabase(landmarks)

    robot = RobotSimulator(
        start=(0.0, 0.0),
        odometry_noise=0.6,
        fix_noise=2.0,
        fix_interval=15,
        seed=3,
    )
    engine = db.engine(strategies="all", integrator=ExactIntegrator())

    print(f"{'step':>4} {'fix':>3} {'det(Sigma)':>11} {'answers':>7} "
          f"{'integrated':>10} {'est.err':>8}")
    for estimate in robot.run(square_loop(10)):
        if estimate.step % 5 and not estimate.had_fix:
            continue  # print every 5th step plus every fix
        from repro import ProbabilisticRangeQuery

        result = engine.execute(
            ProbabilisticRangeQuery(estimate.belief, delta=10.0, theta=0.3)
        )
        print(
            f"{estimate.step:>4} {'*' if estimate.had_fix else '':>3} "
            f"{estimate.belief.det_sigma:>11.2f} {len(result):>7} "
            f"{result.stats.integrations:>10} {estimate.error:>8.2f}"
        )

    print(
        "\n'*' marks position fixes. Watch det(Sigma) fall at each fix and\n"
        "the answer set swell as the position gets vaguer (the paper's\n"
        "gamma sweep, live). The 'integrated' column stays at zero: the\n"
        "Kalman belief here is nearly spherical, which is exactly the\n"
        "special case of Section VI where the BF bounds coincide and every\n"
        "candidate is decided without numerical integration."
    )


if __name__ == "__main__":
    main()

"""Quickstart: a probabilistic range query in ten lines.

Builds a spatial database of random points, describes an imprecise query
location as a Gaussian (the paper's Eq. 34 covariance), and asks which
objects are within distance 25 of the query with probability >= 1 %.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ExactIntegrator, Gaussian, SpatialDatabase


def main() -> None:
    rng = np.random.default_rng(0)
    points = rng.random((20_000, 2)) * 1000.0
    db = SpatialDatabase(points)

    # The query object's location is uncertain: a Gaussian centred at
    # (500, 500) whose 1-sigma ellipse is tilted 30 degrees with a 3:1
    # axis ratio (the paper's default).
    sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
    query_location = Gaussian([500.0, 500.0], sigma)

    result = db.probabilistic_range_query(
        query_location,
        delta=25.0,   # distance threshold
        theta=0.01,   # probability threshold
        strategies="all",            # RR + OR + BF combined (the best combo)
        integrator=ExactIntegrator(),  # or ImportanceSamplingIntegrator()
    )

    print(f"{len(result)} objects qualify with P(distance <= 25) >= 1%")
    print("first ten ids:", result.ids[:10])
    print("execution profile:", result.stats.summary())

    # Contrast with a plain range query from the distribution centre: the
    # probabilistic result is a superset tuned by theta, not a circle.
    plain = db.range_query([500.0, 500.0], 25.0)
    print(f"plain range query from the centre finds {len(plain)} objects")


if __name__ == "__main__":
    main()

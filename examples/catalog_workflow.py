"""U-catalog workflow: build, persist, and compare against exact lookups.

The original system precomputes its radius tables ("U-catalogs") offline
because the Gaussian's radial mass has no analytic inverse it could use at
query time.  This example walks that workflow: build both catalogs the
paper's way (Monte Carlo) and the exact way, persist them to JSON, and
measure what the table approximation costs in filtering power.

Run:  python examples/catalog_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Gaussian, ProbabilisticRangeQuery, SpatialDatabase
from repro.catalog import (
    BFCatalog,
    ExactBFLookup,
    ExactRThetaLookup,
    RThetaCatalog,
    load_catalog,
    save_catalog,
)
from repro.core.strategies import make_strategies
from repro.datasets import clustered_points
from repro.integrate import ExactIntegrator


def main() -> None:
    # --- Build: the paper's Monte Carlo tabulation vs the closed form.
    thetas = np.geomspace(1e-3, 0.49, 16)
    mc_rtheta = RThetaCatalog.build_monte_carlo(2, thetas, n_samples=200_000)
    exact_rtheta = RThetaCatalog.build_analytic(2, thetas)
    worst = float(np.max(np.abs(mc_rtheta.radii - exact_rtheta.radii)))
    print(f"r_theta catalog: 16 rows, max |MC - exact| radius gap = {worst:.4f}")

    bf_catalog = BFCatalog.build_analytic(
        2, deltas=np.geomspace(5.0, 50.0, 8), thetas=np.geomspace(1e-3, 0.4, 8)
    )
    print(f"BF catalog: {len(bf_catalog)} (delta, theta, alpha) rows")

    # --- Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rtheta.json"
        save_catalog(mc_rtheta, path)
        reloaded = load_catalog(path)
        print(f"persisted + reloaded: {len(reloaded)} rows from {path.name}")

    # --- Cost of the approximation on a live query.
    points = clustered_points(15_000, 2, seed=6)
    db = SpatialDatabase(points)
    gaussian = Gaussian(
        points[77], 10.0 * np.array([[7.0, 2 * 3**0.5], [2 * 3**0.5, 3.0]])
    )
    query = ProbabilisticRangeQuery(gaussian, 25.0, 0.0123)  # off-grid theta

    print(f"\n{'lookups':>22} {'integrated':>10} {'answers':>7}")
    for label, rtheta_lookup, bf_lookup in (
        ("exact closed forms", ExactRThetaLookup(2), ExactBFLookup(2)),
        ("catalog tables", mc_rtheta, bf_catalog),
    ):
        strategies = make_strategies(
            "all", rtheta_lookup=rtheta_lookup, bf_lookup=bf_lookup
        )
        result = db.engine(
            strategies=strategies, integrator=ExactIntegrator()
        ).execute(query)
        print(f"{label:>22} {result.stats.integrations:>10} {len(result):>7}")
    print(
        "\nsame answers either way — conservative lookups only ever cost\n"
        "extra integrations, never correctness (Eqs. 32-33 of the paper)."
    )


if __name__ == "__main__":
    main()

"""Multi-hypothesis localization: a Gaussian-*mixture* query object.

A delivery robot lost track of which of two aisles it is in — its belief
is bimodal.  The paper's model (one Gaussian) cannot express this, but the
range predicate generalizes linearly over mixture components, and the
paper's filters still apply per component (any answer must qualify the
single-component query of some mode).  See ``repro.core.mixture``.

Run:  python examples/multi_hypothesis.py
"""

from __future__ import annotations

import numpy as np

from repro import Gaussian, GaussianMixture, SpatialDatabase
from repro.core.mixture import MixtureQueryEngine


def main() -> None:
    rng = np.random.default_rng(23)
    # Shelf locations along two aisles plus scattered obstacles.
    aisle_a = np.column_stack([np.linspace(0, 100, 60), np.full(60, 10.0)])
    aisle_b = np.column_stack([np.linspace(0, 100, 60), np.full(60, 30.0)])
    obstacles = rng.uniform(0, 100, size=(80, 2))
    objects = np.vstack([aisle_a, aisle_b, obstacles])
    db = SpatialDatabase(objects)

    # The robot is at x ~ 40 but unsure which aisle: two modes, the first
    # slightly more credible.
    belief = GaussianMixture(
        [
            Gaussian([40.0, 10.0], np.diag([9.0, 1.0])),
            Gaussian([40.0, 30.0], np.diag([9.0, 1.0])),
        ],
        weights=[0.65, 0.35],
    )

    engine = MixtureQueryEngine(db)
    print(f"{'theta':>6} {'candidates':>10} {'answers':>8}  breakdown")
    for theta in (0.05, 0.2, 0.4, 0.6):
        ids, stats = engine.execute(belief, delta=8.0, theta=theta)
        answers = objects[np.asarray(ids)] if ids else np.empty((0, 2))
        in_a = int(np.sum(np.abs(answers[:, 1] - 10.0) < 5)) if len(ids) else 0
        in_b = int(np.sum(np.abs(answers[:, 1] - 30.0) < 5)) if len(ids) else 0
        print(f"{theta:>6} {stats.retrieved:>10} {len(ids):>8}  "
              f"aisle A: {in_a}, aisle B: {in_b}")

    print(
        "\nat low theta both aisles' shelves qualify (either mode could be\n"
        "true); raising theta above the minor mode's weight (0.35) silences\n"
        "aisle B entirely — only objects reachable from the dominant mode\n"
        "can accumulate enough mixture probability."
    )


if __name__ == "__main__":
    main()

"""The stage pipeline: one driver behind every engine entry point.

Satellite contract for the refactor that removed the duplicated phase
bodies: ``execute``, ``run`` and ``run_batch`` all funnel through
:func:`repro.core.stages.execute_pipeline`, so the same query must
produce the same ``QueryStats`` *structure* (identical phase-timing keys
and identical counters) no matter which entry point ran it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExactIntegrator, Gaussian, SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import (
    FilterStage,
    IntegrateStage,
    SearchStage,
    StageContext,
    combined_search_rect,
    execute_pipeline,
)
from repro.core.stats import QueryStats
from repro.core.strategies import make_strategies
from repro.errors import QueryError


@pytest.fixture
def db() -> SpatialDatabase:
    rng = np.random.default_rng(17)
    return SpatialDatabase(rng.random((3_000, 2)) * 1000.0)


@pytest.fixture
def query(paper_gaussian) -> ProbabilisticRangeQuery:
    return ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.01)


def test_execute_and_run_produce_identical_stats_structure(db, query):
    """Same query, same engine config → same phase keys and counters."""
    engine = db.engine(strategies="all", integrator=ExactIntegrator())
    single = engine.execute(query)
    batched = engine.run([query]).results[0]

    assert single.ids == batched.ids
    a, b = single.stats, batched.stats
    assert list(a.phase_seconds.keys()) == list(b.phase_seconds.keys())
    assert a.retrieved == b.retrieved
    assert a.rejected_by_filter == b.rejected_by_filter
    assert a.accepted_without_integration == b.accepted_without_integration
    assert a.integrations == b.integrations
    assert a.results == b.results


@pytest.mark.parametrize("spec", ["rr", "bf", "rr+or", "all"])
def test_phase_keys_are_the_pipeline_stages(db, query, spec):
    engine = db.engine(strategies=spec, integrator=ExactIntegrator())
    stats = engine.execute(query).stats
    assert list(stats.phase_seconds.keys()) == ["search", "filter", "integrate"]


def test_planned_query_adds_plan_phase(db, query):
    engine = db.engine(strategies="auto", integrator=ExactIntegrator())
    stats = engine.execute(query).stats
    assert list(stats.phase_seconds.keys())[0] == "plan"
    assert set(stats.phase_seconds) <= {"plan", "search", "filter", "integrate"}


def test_empty_result_short_circuits_later_stages(db):
    """A BF-proven-empty query never reaches filter or integrate."""
    huge_sigma = Gaussian([500.0, 500.0], 1e8 * np.eye(2))
    query = ProbabilisticRangeQuery(huge_sigma, 1.0, 0.4)
    engine = db.engine(strategies="bf", integrator=ExactIntegrator())
    result = engine.execute(query)
    assert result.ids == ()
    assert result.stats.empty_by_strategy == "BF"
    assert "integrate" not in result.stats.phase_seconds


def test_pipeline_composes_without_search_stage(db, query):
    """Filter+Integrate over externally supplied candidates (monitor path)."""
    strategies = make_strategies("all")
    stats = QueryStats()
    search = SearchStage(db.index)
    rect = search.prepare(query, strategies, stats)
    ids = db.index.range_search_rect(rect)
    points = np.vstack([db.index.get(i) for i in ids])

    ctx = StageContext(
        query,
        strategies,
        ExactIntegrator(),
        stats,
        candidate_ids=np.asarray(ids),
        points=points,
    )
    manual = execute_pipeline(ctx, [FilterStage(), IntegrateStage()])
    reference = db.engine(
        strategies="all", integrator=ExactIntegrator()
    ).execute(query)
    assert manual == reference.ids


def test_combined_search_rect_policies(db, query):
    strategies = make_strategies("all")
    for strategy in strategies:
        strategy.prepare(query)
    primary = combined_search_rect(strategies, phase1="primary")
    intersect = combined_search_rect(strategies, phase1="intersect")
    assert primary == strategies[0].search_rect()
    for axis in range(2):
        assert intersect.lows[axis] >= primary.lows[axis]
        assert intersect.highs[axis] <= primary.highs[axis]


def test_combined_search_rect_requires_a_contributor():
    with pytest.raises(QueryError):
        combined_search_rect([], phase1="intersect")

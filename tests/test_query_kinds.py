"""The query-kind battery: every kind through the one pipeline.

Covers the `repro.core.kinds` contract (docs/query_types.md):

- oracle parity — each kind's unified-pipeline answers equal its
  brute-force oracle (exact convolved CDF, exact mixture sum, the legacy
  sampling k-NN with a matched seed) across dimensions and integrators;
- legacy parity — the deprecated `UncertainDatabase` shim and the
  `MixtureQueryEngine` wrapper return identical answers through the
  unified path (the shim with a `DeprecationWarning`);
- filter soundness — no kind's Phase 1/2 ever drops a qualifying object
  or free-accepts a non-qualifying one;
- end-to-end determinism — mixed-kind `run_batch` across worker counts,
  sharded execution, serve round-trips, planner kind plans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CascadeIntegrator,
    ExactIntegrator,
    Gaussian,
    GaussianMixture,
    KNNQuery,
    MixtureQueryEngine,
    MixtureRangeQuery,
    ProbabilisticRangeQuery,
    SpatialDatabase,
    TargetCovarianceTable,
    UncertainDatabase,
    UncertainObject,
    UncertainTargetQuery,
    probabilistic_nearest_neighbors,
    query_kind,
)
from repro.core.kinds import QUERY_KINDS, adapt_pipeline
from repro.core.strategies import STRATEGY_COMBINATIONS, make_strategies
from repro.errors import QueryError
from repro.gaussian.quadform import qualification_probability_exact


def make_points(n, dim, seed=0, span=1000.0):
    return np.random.default_rng(seed).random((n, dim)) * span


def make_target_table(ids, dim, seed=5, n_groups=3, scale=40.0):
    """A few distinct target covariances spread over the object ids."""
    rng = np.random.default_rng(seed)
    sigmas = []
    for _ in range(n_groups):
        a = rng.normal(size=(dim, dim))
        sigmas.append(scale * (a @ a.T + np.eye(dim)))
    group_of = {int(i): int(i) % n_groups for i in ids}
    return TargetCovarianceTable(group_of, sigmas)


def paper_like_gaussian(dim, scale=900.0):
    sigma = scale * np.eye(dim)
    sigma[0, 0] *= 2.0
    return Gaussian(np.full(dim, 500.0), sigma)


# ----------------------------------------------------------------------
# Kind plumbing
# ----------------------------------------------------------------------


class TestKindTags:
    def test_vocabulary(self):
        assert QUERY_KINDS == ("prq", "uncertain", "mixture", "knn")

    def test_query_kind_reader(self):
        g = Gaussian([0.0, 0.0], np.eye(2))
        assert query_kind(ProbabilisticRangeQuery(g, 1.0, 0.1)) == "prq"
        assert query_kind(UncertainTargetQuery(g, 1.0, 0.1)) == "uncertain"
        mix = GaussianMixture([g])
        assert query_kind(MixtureRangeQuery.create(mix, 1.0, 0.1)) == "mixture"
        assert query_kind(KNNQuery.create(g, k=1, theta=0.2)) == "knn"

    def test_knn_validation(self):
        g = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(QueryError, match="k must be"):
            KNNQuery.create(g, k=0, theta=0.2)
        with pytest.raises(QueryError, match="n_samples"):
            KNNQuery.create(g, k=1, theta=0.2, n_samples=5)

    def test_mixture_requires_mixture(self):
        g = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(QueryError, match="GaussianMixture"):
            MixtureRangeQuery(g, 1.0, 0.1)

    def test_adapt_pipeline_requires_targets(self):
        g = Gaussian([0.0, 0.0], np.eye(2))
        query = UncertainTargetQuery(g, 1.0, 0.1)
        with pytest.raises(QueryError, match="target"):
            adapt_pipeline(
                query, make_strategies("all"), ExactIntegrator(),
                index=None, targets=None,
            )

    def test_uncertain_without_table_fails_in_engine(self):
        db = SpatialDatabase(make_points(50, 2))
        query = UncertainTargetQuery(paper_like_gaussian(2), 60.0, 0.05)
        with pytest.raises(QueryError, match="target"):
            db.engine(strategies="all").execute(query)


class TestTargetCovarianceTable:
    def test_groups_and_max_eig(self):
        table = make_target_table(range(10), 2)
        assert table.n_groups == 3
        assert table.dim == 2
        assert len(table) == 10
        eigs = [np.linalg.eigvalsh(table.sigma(g))[-1] for g in range(3)]
        assert table.max_eig == pytest.approx(max(eigs))

    def test_unknown_id_raises(self):
        table = TargetCovarianceTable.shared(np.eye(2), [1, 2, 3])
        with pytest.raises(QueryError, match="no target covariance"):
            table.groups_for([1, 99])

    def test_validation(self):
        with pytest.raises(QueryError, match="at least one"):
            TargetCovarianceTable({}, [])
        with pytest.raises(QueryError, match="unknown covariance group"):
            TargetCovarianceTable({1: 2}, [np.eye(2)])
        with pytest.raises(QueryError, match="share one"):
            TargetCovarianceTable({1: 0}, [np.eye(2), np.eye(3)])

    def test_from_objects_dedupes(self):
        sigma = 4.0 * np.eye(2)
        objs = [UncertainObject(i, Gaussian([i, 0.0], sigma)) for i in range(5)]
        table = TargetCovarianceTable.from_objects(objs)
        assert table.n_groups == 1

    def test_database_dim_mismatch(self):
        table = TargetCovarianceTable.shared(np.eye(3), range(10))
        with pytest.raises(QueryError, match="dimension"):
            SpatialDatabase(make_points(10, 2), target_table=table)


# ----------------------------------------------------------------------
# Oracle parity + filter soundness, per kind
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize(
    "integrator", [ExactIntegrator(), CascadeIntegrator()],
    ids=["exact", "cascade"],
)
class TestUncertainOracleParity:
    def test_matches_exact_convolved_oracle(self, dim, integrator):
        points = make_points(250, dim, seed=dim)
        ids = np.arange(250)
        table = make_target_table(ids, dim, seed=dim + 1)
        db = SpatialDatabase(points, ids=ids, target_table=table)
        query = UncertainTargetQuery(paper_like_gaussian(dim), 90.0, 0.03)

        expected = []
        for i, point in zip(ids, points):
            convolved = Gaussian(
                query.center,
                query.gaussian.sigma + table.sigma(int(i) % 3),
            )
            prob = qualification_probability_exact(
                convolved, point, query.delta
            )
            if prob >= query.theta:
                expected.append(int(i))
        assert expected, "oracle answer set must be non-empty to be a test"

        for spec in ("all", "auto"):
            result = db.engine(
                strategies=spec, integrator=integrator
            ).execute(query)
            assert list(result.ids) == expected


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize(
    "integrator", [ExactIntegrator(), CascadeIntegrator()],
    ids=["exact", "cascade"],
)
class TestMixtureOracleParity:
    def test_matches_exact_mixture_oracle(self, dim, integrator):
        points = make_points(250, dim, seed=10 + dim)
        db = SpatialDatabase(points)
        comps = [
            Gaussian(np.full(dim, 300.0), 900.0 * np.eye(dim)),
            Gaussian(np.full(dim, 700.0), 400.0 * np.eye(dim)),
        ]
        mixture = GaussianMixture(comps, [1.0, 2.0])
        # 3-D qualification mass needs a larger reach to keep the oracle
        # answer set non-empty.
        query = MixtureRangeQuery.create(
            mixture, 80.0 if dim == 2 else 160.0, 0.04
        )

        expected = [
            i for i, point in enumerate(points)
            if mixture.qualification_probability(point, query.delta)
            >= query.theta
        ]
        assert expected

        for spec in ("all", "auto"):
            result = db.engine(
                strategies=spec, integrator=integrator
            ).execute(query)
            assert list(result.ids) == expected


class TestKNNLegacyParity:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_legacy_sampler_bit_for_bit(self, dim, k):
        points = make_points(300, dim, seed=20 + dim)
        db = SpatialDatabase(points)
        gaussian = paper_like_gaussian(dim)
        legacy = probabilistic_nearest_neighbors(
            db, gaussian, k=k, theta=0.05, n_samples=800, seed=9
        )
        expected = sorted(c.obj_id for c in legacy)

        query = KNNQuery.create(
            gaussian, k=k, theta=0.05, n_samples=800, seed=9
        )
        for spec in ("all", "auto"):
            result = db.engine(strategies=spec).execute(query)
            assert sorted(result.ids) == expected


# ----------------------------------------------------------------------
# Legacy entry-point parity
# ----------------------------------------------------------------------


class TestDeprecatedShims:
    def make_uncertain_db(self, dim=2, n=150):
        points = make_points(n, dim, seed=3)
        rng = np.random.default_rng(4)
        objs = []
        for i, point in enumerate(points):
            a = rng.normal(size=(dim, dim))
            objs.append(
                UncertainObject(i, Gaussian(point, 30.0 * (a @ a.T + np.eye(dim))))
            )
        return objs, points

    def test_shim_warns_and_matches_unified(self):
        objs, points = self.make_uncertain_db()
        legacy_db = UncertainDatabase(objs)
        query = ProbabilisticRangeQuery(paper_like_gaussian(2), 90.0, 0.03)

        with pytest.warns(DeprecationWarning, match="UncertainDatabase"):
            legacy_ids, legacy_stats = legacy_db.probabilistic_range_query(query)

        db = SpatialDatabase(
            points,
            ids=[o.obj_id for o in objs],
            target_table=TargetCovarianceTable.from_objects(objs),
        )
        kinded = UncertainTargetQuery(query.gaussian, query.delta, query.theta)
        result = db.engine(
            strategies="all", integrator=ExactIntegrator()
        ).execute(kinded)
        assert legacy_ids == list(result.ids)
        assert legacy_stats.retrieved == result.stats.retrieved
        assert legacy_stats.integrations == result.stats.integrations

    def test_mixture_wrapper_matches_unified(self):
        points = make_points(200, 2, seed=8)
        db = SpatialDatabase(points)
        mixture = GaussianMixture(
            [
                Gaussian([300.0, 300.0], 900.0 * np.eye(2)),
                Gaussian([700.0, 700.0], 400.0 * np.eye(2)),
            ]
        )
        wrapper_ids, wrapper_stats = MixtureQueryEngine(db).execute(
            mixture, 80.0, 0.05
        )
        result = db.engine(
            strategies="all", integrator=ExactIntegrator()
        ).execute(MixtureRangeQuery.create(mixture, 80.0, 0.05))
        assert wrapper_ids == list(result.ids)
        assert wrapper_stats.integrations == result.stats.integrations


# ----------------------------------------------------------------------
# End-to-end: batch, shards, serve, planner
# ----------------------------------------------------------------------


def mixed_kind_queries(dim=2):
    gaussian = paper_like_gaussian(dim)
    mixture = GaussianMixture(
        [
            Gaussian(np.full(dim, 300.0), 900.0 * np.eye(dim)),
            Gaussian(np.full(dim, 700.0), 400.0 * np.eye(dim)),
        ],
        [1.0, 2.0],
    )
    return [
        ProbabilisticRangeQuery(gaussian, 60.0, 0.05),
        UncertainTargetQuery(gaussian, 60.0, 0.05),
        MixtureRangeQuery.create(mixture, 60.0, 0.05),
        KNNQuery.create(gaussian, k=2, theta=0.1, n_samples=400, seed=2),
    ]


def kinded_db(n=250, dim=2):
    ids = np.arange(n)
    return SpatialDatabase(
        make_points(n, dim, seed=1),
        ids=ids,
        target_table=TargetCovarianceTable.shared(50.0 * np.eye(dim), ids),
    )


class TestMixedKindExecution:
    def test_run_batch_worker_parity(self):
        db = kinded_db()
        queries = mixed_kind_queries()
        engine = db.engine(strategies="auto", integrator=CascadeIntegrator())
        baseline = engine.run_batch(queries, workers=1, base_seed=11)
        for workers in (2, 3):
            batch = engine.run_batch(queries, workers=workers, base_seed=11)
            for a, b in zip(baseline, batch):
                assert list(a.ids) == list(b.ids)

    def test_every_kind_executes_through_pipeline(self):
        """Each kind reports stage timings — proof it ran execute_pipeline."""
        db = kinded_db()
        engine = db.engine(strategies="all", integrator=ExactIntegrator())
        for query in mixed_kind_queries():
            stats = engine.execute(query).stats
            assert "search" in stats.phase_seconds, query_kind(query)

    def test_shard_parity(self):
        db = kinded_db()
        queries = mixed_kind_queries()
        single = db.engine(
            strategies="all", integrator=CascadeIntegrator()
        ).run(queries)
        with db.shard(2) as sharded:
            engine = sharded.engine(
                strategies="all", integrator=CascadeIntegrator()
            )
            scattered = engine.run(queries)
        for a, b in zip(single, scattered):
            assert list(a.ids) == list(b.ids)

    def test_serve_round_trip(self):
        from repro.serve import PRQRequest

        db = kinded_db()
        queries = mixed_kind_queries()
        direct = db.engine(
            strategies="all", integrator=CascadeIntegrator()
        ).run(queries)
        with db.serve(integrator=CascadeIntegrator()) as service:
            futures = [
                service.submit(PRQRequest.from_query(q)) for q in queries
            ]
            responses = [f.result() for f in futures]
        for result, response in zip(direct, responses):
            assert response.status == "ok"
            assert list(response.ids) == list(result.ids)

    def test_fingerprints_distinguish_kinds(self):
        from repro.serve import PRQRequest

        prints = {
            PRQRequest.from_query(q).fingerprint for q in mixed_kind_queries()
        }
        assert len(prints) == 4


class TestPlannerKindPlans:
    def test_kind_plans_are_distinct(self):
        db = kinded_db()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        gaussian = paper_like_gaussian(2)

        prq_stats = engine.execute(
            ProbabilisticRangeQuery(gaussian, 60.0, 0.05)
        ).stats
        assert prq_stats.plan_strategies in STRATEGY_COMBINATIONS.values()

        ut_stats = engine.execute(
            UncertainTargetQuery(gaussian, 60.0, 0.05)
        ).stats
        assert ut_stats.plan_strategies == ("UT",)

        knn_stats = engine.execute(
            KNNQuery.create(gaussian, k=1, theta=0.2, n_samples=200)
        ).stats
        assert knn_stats.plan_strategies == ("KNN",)

    def test_cache_key_separates_target_tables(self):
        """Same query shape, different target spectra: no plan sharing."""
        points = make_points(100, 2, seed=2)
        ids = np.arange(100)
        gaussian = paper_like_gaussian(2)
        query = UncertainTargetQuery(gaussian, 60.0, 0.05)
        keys = []
        for scale in (10.0, 400.0):
            db = SpatialDatabase(
                points, ids=ids,
                target_table=TargetCovarianceTable.shared(
                    scale * np.eye(2), ids
                ),
            )
            planner = db.planner()
            decision = planner.plan(query, ExactIntegrator())
            keys.append(decision.key)
        assert keys[0] != keys[1]

    def test_explain_renders_kind_plans(self):
        db = kinded_db()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        gaussian = paper_like_gaussian(2)
        ut = engine.explain(
            UncertainTargetQuery(gaussian, 60.0, 0.05)
        ).render()
        assert "UT" in ut
        knn = engine.explain(
            KNNQuery.create(gaussian, k=1, theta=0.2, n_samples=200)
        ).render()
        assert "KNN" in knn


class TestNoRegressionForPrq:
    def test_plain_prq_unchanged_by_target_table(self):
        """A prq query on a targets-carrying database ignores the table."""
        points = make_points(200, 2, seed=6)
        plain = SpatialDatabase(points)
        with_table = SpatialDatabase(
            points,
            target_table=TargetCovarianceTable.shared(
                50.0 * np.eye(2), range(200)
            ),
        )
        query = ProbabilisticRangeQuery(paper_like_gaussian(2), 60.0, 0.05)
        a = plain.engine(
            strategies="all", integrator=ExactIntegrator()
        ).execute(query)
        b = with_table.engine(
            strategies="all", integrator=ExactIntegrator()
        ).execute(query)
        assert list(a.ids) == list(b.ids)
        assert a.stats.retrieved == b.stats.retrieved

"""Tests for Gaussian mixtures, real-data loaders, and the plan explainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.mixture import MixtureQueryEngine, mixture_range_query
from repro.core.query import ProbabilisticRangeQuery
from repro.core.selectivity import SelectivityEstimator
from repro.datasets.io import (
    load_corel_color_moments,
    load_tiger_line_segments,
    normalize_to_square,
)
from repro.errors import GeometryError, QueryError, ReproError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.mixture import GaussianMixture


@pytest.fixture
def bimodal(paper_sigma_10):
    return GaussianMixture(
        [
            Gaussian([300.0, 500.0], paper_sigma_10),
            Gaussian([700.0, 500.0], 0.5 * paper_sigma_10),
        ],
        weights=[0.6, 0.4],
    )


class TestGaussianMixture:
    def test_weights_normalized(self, paper_sigma_10):
        mixture = GaussianMixture(
            [Gaussian([0.0, 0.0], paper_sigma_10)] * 2, weights=[2.0, 6.0]
        )
        np.testing.assert_allclose(mixture.weights, [0.25, 0.75])

    def test_default_uniform_weights(self, paper_sigma_10):
        mixture = GaussianMixture([Gaussian([0.0, 0.0], paper_sigma_10)] * 4)
        np.testing.assert_allclose(mixture.weights, [0.25] * 4)

    def test_mean_and_covariance_match_samples(self, rng, bimodal):
        samples = bimodal.sample(150_000, rng)
        np.testing.assert_allclose(samples.mean(axis=0), bimodal.mean(), atol=1.5)
        cov = bimodal.covariance()
        np.testing.assert_allclose(
            np.cov(samples.T), cov, atol=0.01 * float(np.max(np.abs(cov)))
        )

    def test_pdf_is_weighted_sum(self, bimodal, rng):
        pts = rng.uniform(200, 800, size=(20, 2))
        expected = 0.6 * bimodal.components[0].pdf(pts) + 0.4 * bimodal.components[
            1
        ].pdf(pts)
        np.testing.assert_allclose(bimodal.pdf(pts), expected, rtol=1e-12)

    def test_qualification_probability_matches_mc(self, bimodal, rng):
        point = np.array([310.0, 505.0])
        exact = bimodal.qualification_probability(point, 30.0)
        samples = bimodal.sample(400_000, rng)
        frac = np.mean(np.sum((samples - point) ** 2, axis=1) <= 900.0)
        assert exact == pytest.approx(frac, abs=0.004)

    def test_validation(self, paper_sigma_10):
        with pytest.raises(GeometryError):
            GaussianMixture([])
        with pytest.raises(GeometryError):
            GaussianMixture(
                [Gaussian([0.0], np.eye(1)), Gaussian([0.0, 0.0], np.eye(2))]
            )
        with pytest.raises(GeometryError):
            GaussianMixture(
                [Gaussian([0.0, 0.0], paper_sigma_10)], weights=[0.0]
            )
        with pytest.raises(GeometryError):
            GaussianMixture(
                [Gaussian([0.0, 0.0], paper_sigma_10)], weights=[1.0, 1.0]
            )


class TestMixtureQueries:
    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(31)
        points = rng.random((4000, 2)) * 1000
        return points, SpatialDatabase(points)

    def test_matches_brute_force(self, world, bimodal):
        points, db = world
        delta, theta = 30.0, 0.05
        got, stats = MixtureQueryEngine(db).execute(bimodal, delta, theta)
        expected = [
            int(i)
            for i in range(points.shape[0])
            if bimodal.qualification_probability(points[i], delta) >= theta
        ]
        assert got == expected
        assert stats.results == len(got)

    def test_answers_near_both_modes(self, world, bimodal):
        points, db = world
        got = mixture_range_query(db, bimodal, 30.0, 0.05)
        answers = points[np.asarray(got)]
        near_left = np.linalg.norm(answers - [300.0, 500.0], axis=1) < 150
        near_right = np.linalg.norm(answers - [700.0, 500.0], axis=1) < 150
        assert np.any(near_left) and np.any(near_right)
        assert np.all(near_left | near_right)

    def test_single_component_matches_plain_engine(self, world, paper_sigma_10):
        from repro.integrate.exact import ExactIntegrator

        points, db = world
        gaussian = Gaussian([500.0, 500.0], paper_sigma_10)
        single = GaussianMixture([gaussian])
        got = mixture_range_query(db, single, 25.0, 0.01)
        plain = db.probabilistic_range_query(
            gaussian, 25.0, 0.01, integrator=ExactIntegrator()
        )
        assert got == sorted(plain.ids)

    def test_validation(self, world, bimodal):
        _, db = world
        engine = MixtureQueryEngine(db)
        with pytest.raises(QueryError):
            engine.execute(bimodal, 30.0, 0.0)
        mixture_3d = GaussianMixture([Gaussian(np.zeros(3), np.eye(3))])
        with pytest.raises(QueryError):
            engine.execute(mixture_3d, 1.0, 0.1)


class TestDataLoaders:
    def test_corel_loader(self, tmp_path):
        path = tmp_path / "ColorMoments.asc"
        path.write_text(
            "1 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8 0.9\n"
            "2 1.1 1.2 1.3 1.4 1.5 1.6 1.7 1.8 1.9\n"
        )
        data = load_corel_color_moments(path)
        assert data.shape == (2, 9)
        assert data[1, 0] == pytest.approx(1.1)

    def test_tiger_loader_midpoints(self, tmp_path):
        path = tmp_path / "segments.txt"
        path.write_text("0 0 2 2\n# a comment\n\n4,0,6,2\n")
        midpoints = load_tiger_line_segments(path)
        np.testing.assert_allclose(midpoints, [[1.0, 1.0], [5.0, 1.0]])

    def test_loader_rejects_ragged_rows(self, tmp_path):
        path = tmp_path / "bad.asc"
        path.write_text("1 2 3\n")
        with pytest.raises(ReproError):
            load_corel_color_moments(path)

    def test_loader_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_tiger_line_segments(tmp_path / "absent.txt")

    def test_loader_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "nan.txt"
        path.write_text("a b c d\n")
        with pytest.raises(ReproError):
            load_tiger_line_segments(path)

    def test_normalize_to_square(self, rng):
        pts = rng.random((50, 2)) * [3.0, 7.0] + [10.0, -5.0]
        normalized = normalize_to_square(pts, extent=1000.0)
        np.testing.assert_allclose(normalized.min(axis=0), [0.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(
            normalized.max(axis=0), [1000.0, 1000.0], atol=1e-9
        )

    def test_normalize_rejects_degenerate(self):
        with pytest.raises(ReproError):
            normalize_to_square(np.array([[1.0, 2.0], [1.0, 3.0]]))


class TestExplain:
    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(8)
        points = rng.random((5000, 2)) * 1000
        return points, SpatialDatabase(points)

    def test_plan_describes_all_strategies(self, world, paper_sigma_10):
        _, db = world
        engine = db.engine(strategies="all")
        plan = engine.explain(
            ProbabilisticRangeQuery(Gaussian([500.0, 500.0], paper_sigma_10), 25.0, 0.01)
        )
        text = plan.render()
        assert plan.strategies == ("RR", "BF", "OR")
        assert "RR:" in text and "OR:" in text and "BF:" in text
        assert "search rectangle" in text

    def test_plan_with_prediction(self, world, paper_sigma_10):
        points, db = world
        estimator = SelectivityEstimator(points, bins=40)
        engine = db.engine(strategies="all")
        query = ProbabilisticRangeQuery(
            Gaussian([500.0, 500.0], paper_sigma_10), 25.0, 0.01
        )
        plan = engine.explain(query, estimator=estimator)
        assert plan.predicted_candidates is not None
        from repro.bench.experiments import _CountOnlyIntegrator

        actual = (
            db.engine(strategies="all", integrator=_CountOnlyIntegrator())
            .execute(query)
            .stats.integrations
        )
        assert plan.predicted_candidates == pytest.approx(actual, rel=0.4)

    def test_plan_reports_empty_proof(self, world):
        _, db = world
        engine = db.engine(strategies="bf")
        plan = engine.explain(
            ProbabilisticRangeQuery(
                Gaussian.isotropic([500.0, 500.0], 400.0), 1.0, 0.95
            )
        )
        assert plan.proves_empty == "BF"
        assert "empty" in plan.render()

"""Tests for the Gaussian distribution object."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.errors import DimensionMismatchError, GeometryError, NotPositiveDefiniteError
from repro.gaussian.distribution import Gaussian
from tests.conftest import random_spd


class TestConstruction:
    def test_basic_properties(self, paper_sigma_10):
        g = Gaussian([500.0, 500.0], paper_sigma_10)
        assert g.dim == 2
        np.testing.assert_allclose(g.eigenvalues, [90.0, 10.0], rtol=1e-12)
        assert g.det_sigma == pytest.approx(900.0)
        assert g.condition_number == pytest.approx(9.0)

    def test_lam_parallel_perp_are_sigma_inverse_eigs(self, paper_sigma_10):
        g = Gaussian([0.0, 0.0], paper_sigma_10)
        # Eq. 9/10: lambda_par = min eig of Sigma^{-1}, lambda_perp = max.
        inv_eigs = np.linalg.eigvalsh(np.linalg.inv(paper_sigma_10))
        assert g.lam_parallel == pytest.approx(inv_eigs.min())
        assert g.lam_perp == pytest.approx(inv_eigs.max())

    def test_isotropic(self):
        g = Gaussian.isotropic([1.0, 2.0, 3.0], 4.0)
        np.testing.assert_allclose(g.eigenvalues, [4.0, 4.0, 4.0])

    def test_isotropic_rejects_nonpositive_variance(self):
        with pytest.raises(GeometryError):
            Gaussian.isotropic([0.0], 0.0)

    def test_standard(self):
        g = Gaussian.standard(3)
        np.testing.assert_allclose(g.mean, np.zeros(3))
        assert g.det_sigma == pytest.approx(1.0)

    def test_rejects_bad_covariance(self):
        with pytest.raises(NotPositiveDefiniteError):
            Gaussian([0.0, 0.0], np.array([[1.0, 2.0], [2.0, 1.0]]))  # eig -1

    def test_rejects_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Gaussian([0.0, 0.0, 0.0], np.eye(2))

    def test_from_samples(self, rng):
        samples = rng.standard_normal((5000, 2)) @ np.diag([3.0, 1.0]) + [10, 20]
        g = Gaussian.from_samples(samples)
        np.testing.assert_allclose(g.mean, [10, 20], atol=0.2)
        np.testing.assert_allclose(np.diag(g.sigma), [9.0, 1.0], rtol=0.1)

    def test_from_samples_ridge(self, rng):
        samples = rng.standard_normal((100, 3))
        g0 = Gaussian.from_samples(samples)
        g1 = Gaussian.from_samples(samples, ridge=2.0)
        np.testing.assert_allclose(g1.sigma - g0.sigma, 2.0 * np.eye(3), atol=1e-10)

    def test_from_samples_rejects_single_row(self):
        with pytest.raises(GeometryError):
            Gaussian.from_samples(np.ones((1, 2)))


class TestDensity:
    def test_pdf_matches_scipy(self, rng):
        sigma = random_spd(rng, 3)
        mean = rng.standard_normal(3)
        g = Gaussian(mean, sigma)
        pts = rng.standard_normal((25, 3)) * 2
        expected = stats.multivariate_normal(mean, sigma).pdf(pts)
        np.testing.assert_allclose(g.pdf(pts), expected, rtol=1e-9)

    def test_log_pdf_peak_at_mean(self, paper_gaussian):
        peak = paper_gaussian.log_pdf(paper_gaussian.mean[None, :])[0]
        expected = -math.log(2 * math.pi) - 0.5 * math.log(900.0)
        assert peak == pytest.approx(expected)

    def test_bounding_functions_sandwich_density(self, rng, paper_gaussian):
        # Property 4: p_perp <= p <= p_par everywhere.
        pts = paper_gaussian.mean + rng.uniform(-60, 60, size=(500, 2))
        log_upper, log_lower = paper_gaussian.bounding_log_pdf(pts)
        log_p = paper_gaussian.log_pdf(pts)
        assert np.all(log_lower <= log_p + 1e-12)
        assert np.all(log_p <= log_upper + 1e-12)

    def test_bounding_functions_tight_on_axes(self, paper_gaussian):
        # Along the major eigen-axis the upper bound is exact; along the
        # minor axis the lower bound is exact.
        g = paper_gaussian
        major = g.mean + 10.0 * g.basis[:, 0]
        minor = g.mean + 10.0 * g.basis[:, 1]
        up, lo = g.bounding_log_pdf(np.vstack([major, minor]))
        p = g.log_pdf(np.vstack([major, minor]))
        assert up[0] == pytest.approx(p[0], abs=1e-9)
        assert lo[1] == pytest.approx(p[1], abs=1e-9)


class TestSampling:
    def test_sample_moments(self, rng, paper_gaussian):
        samples = paper_gaussian.sample(100_000, rng)
        np.testing.assert_allclose(samples.mean(axis=0), paper_gaussian.mean, atol=0.15)
        np.testing.assert_allclose(
            np.cov(samples.T), paper_gaussian.sigma, rtol=0.05
        )

    def test_mahalanobis_of_samples_is_chi(self, rng, paper_gaussian):
        samples = paper_gaussian.sample(50_000, rng)
        m = paper_gaussian.mahalanobis(samples)
        # Squared Mahalanobis distances follow chi2 with d=2 dof.
        ks = stats.kstest(m**2, "chi2", args=(2,))
        assert ks.pvalue > 0.001


class TestAlgebra:
    def test_contour_is_theta_region_shape(self, paper_gaussian):
        e = paper_gaussian.contour(2.0)
        np.testing.assert_allclose(e.center, paper_gaussian.mean)
        np.testing.assert_allclose(
            e.semi_axes, 2.0 * np.sqrt(paper_gaussian.eigenvalues)
        )

    def test_shifted(self, paper_gaussian):
        g = paper_gaussian.shifted([1.0, -1.0])
        np.testing.assert_allclose(g.mean, paper_gaussian.mean + [1.0, -1.0])
        np.testing.assert_allclose(g.sigma, paper_gaussian.sigma)

    def test_shifted_rejects_wrong_dim(self, paper_gaussian):
        with pytest.raises(DimensionMismatchError):
            paper_gaussian.shifted([1.0])

    def test_convolve_adds_covariances(self, rng):
        a = Gaussian([1.0, 2.0], random_spd(rng, 2))
        b = Gaussian([3.0, -1.0], random_spd(rng, 2))
        c = a.convolve(b)
        np.testing.assert_allclose(c.mean, [4.0, 1.0])
        np.testing.assert_allclose(c.sigma, a.sigma + b.sigma)

    def test_convolve_matches_sampled_sum(self, rng):
        a = Gaussian([0.0, 0.0], np.diag([4.0, 1.0]))
        b = Gaussian([5.0, 5.0], np.diag([1.0, 9.0]))
        sum_samples = a.sample(80_000, rng) + b.sample(80_000, rng)
        c = a.convolve(b)
        np.testing.assert_allclose(sum_samples.mean(axis=0), c.mean, atol=0.1)
        np.testing.assert_allclose(np.cov(sum_samples.T), c.sigma, atol=0.15)

    def test_equality_and_hash(self, paper_sigma_10):
        a = Gaussian([0.0, 0.0], paper_sigma_10)
        b = Gaussian([0.0, 0.0], paper_sigma_10.copy())
        assert a == b and hash(a) == hash(b)
        assert a != Gaussian([1.0, 0.0], paper_sigma_10)

"""Tests for the paper-faithful Phase-1 mode and tree quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import _CountOnlyIntegrator
from repro.core.database import SpatialDatabase
from repro.core.engine import QueryEngine
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.index.rtree import RStarTree
from repro.integrate.exact import ExactIntegrator


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(44)
    points = rng.random((5000, 2)) * 1000
    db = SpatialDatabase(points)
    sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
    return db, Gaussian([500.0, 500.0], sigma)


class TestPhase1Modes:
    def test_primary_mode_matches_paper_algorithm1(self, world):
        # Algorithm 1: the R-tree is searched with the RR region only; OR
        # and BF act as pure filters.  Retrieved counts must equal an
        # RR-only Phase 1.
        db, gaussian = world
        query = ProbabilisticRangeQuery(gaussian, 25.0, 0.01)
        counting = _CountOnlyIntegrator()
        primary = db.engine(
            strategies="all", integrator=counting, phase1="primary"
        ).execute(query)
        rr_only = db.engine(strategies="rr", integrator=counting).execute(query)
        assert primary.stats.retrieved == rr_only.stats.retrieved

    def test_intersect_retrieves_no_more_than_primary(self, world):
        db, gaussian = world
        query = ProbabilisticRangeQuery(gaussian, 25.0, 0.01)
        counting = _CountOnlyIntegrator()
        primary = db.engine(
            strategies="all", integrator=counting, phase1="primary"
        ).execute(query)
        intersect = db.engine(strategies="all", integrator=counting).execute(query)
        assert intersect.stats.retrieved <= primary.stats.retrieved

    def test_results_identical_across_modes(self, world):
        db, gaussian = world
        for spec in ("all", "rr+bf", "bf+or"):
            results = {
                mode: db.probabilistic_range_query(
                    gaussian, 25.0, 0.01, strategies=spec,
                    integrator=ExactIntegrator(),
                )
                if mode == "intersect"
                else db.engine(
                    strategies=spec, integrator=ExactIntegrator(), phase1=mode
                ).execute(ProbabilisticRangeQuery(gaussian, 25.0, 0.01))
                for mode in ("intersect", "primary")
            }
            assert results["intersect"].ids == results["primary"].ids

    def test_invalid_mode_rejected(self, world):
        db, _ = world
        with pytest.raises(QueryError):
            QueryEngine(db.index, make_strategies("all"), phase1="everything")


class TestQualityMetrics:
    def test_metrics_keys_and_ranges(self, rng):
        tree = RStarTree(2, max_entries=16)
        tree.bulk_load(range(2000), rng.random((2000, 2)) * 100)
        metrics = tree.quality_metrics()
        assert set(metrics) == {"avg_fill", "leaf_volume", "leaf_sibling_overlap"}
        assert 0.5 <= metrics["avg_fill"] <= 1.0  # STR packs nearly full
        assert metrics["leaf_volume"] > 0
        assert metrics["leaf_sibling_overlap"] >= 0

    def test_str_packs_fuller_than_dynamic(self, rng):
        pts = rng.random((1500, 2)) * 100
        packed = RStarTree(2, max_entries=16)
        packed.bulk_load(range(1500), pts)
        dynamic = RStarTree(2, max_entries=16)
        for i, p in enumerate(pts):
            dynamic.insert(i, p)
        assert (
            packed.quality_metrics()["avg_fill"]
            > dynamic.quality_metrics()["avg_fill"]
        )

    def test_empty_tree(self):
        metrics = RStarTree(2).quality_metrics()
        assert metrics["avg_fill"] == 1.0
        assert metrics["leaf_volume"] == 0.0

"""Fault injection for the shard worker pool.

A worker process killed mid-batch must never hang or corrupt a batch:
its outstanding tasks come back as typed :class:`repro.errors.ShardError`
payloads (``run_batch(..., return_errors=True)``), queries untouched by
the dead worker still return the exact unsharded answer, the worker is
respawned with a fresh queue, and the very next batch runs at full
parity.  The ``repro.serve`` scheduler sits on the same pool and must
ride through a worker death: one failed response, then business as
usual.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.errors import ShardError
from repro.gaussian.distribution import Gaussian
from repro.integrate import CascadeIntegrator, ExactIntegrator
from repro.serve import PRQRequest, STATUS_FAILED, STATUS_OK

#: Guard for the process-pool suites; no-op unless pytest-timeout is
#: installed (it is in CI — see .github/workflows/ci.yml).
pytestmark = pytest.mark.timeout(300)


def make_points(n: int = 300, seed: int = 55) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1000.0, (n, 2))


def broad_query() -> ProbabilisticRangeQuery:
    """Covers the whole cloud: guaranteed to route to every shard."""
    return ProbabilisticRangeQuery(
        Gaussian([500.0, 500.0], 90_000.0 * np.eye(2)), 400.0, 0.01
    )


def narrow_queries(k: int) -> list[ProbabilisticRangeQuery]:
    rng = np.random.default_rng(91)
    out = []
    for _ in range(k):
        center = rng.uniform(200.0, 800.0, 2)
        out.append(
            ProbabilisticRangeQuery(
                Gaussian(center, 300.0 * np.eye(2)), 30.0, 0.1
            )
        )
    return out


@pytest.fixture()
def database() -> SpatialDatabase:
    return SpatialDatabase(make_points())


@pytest.fixture()
def sharded(database):
    # Two workers over four shards: worker 0 owns shards {0, 2},
    # worker 1 owns shards {1, 3} — killing worker 0 leaves half the
    # space fully serviceable.
    with database.shard(4, workers=2) as sdb:
        yield sdb


def kill_worker(sharded, index: int) -> None:
    victim = sharded.pool.processes[index]
    victim.kill()
    victim.join(10.0)
    assert not victim.is_alive()


class TestWorkerDeath:
    def test_typed_errors_and_respawn(self, sharded, database):
        queries = [broad_query()] + narrow_queries(3)
        engine = sharded.engine(
            strategies="all", integrator=ExactIntegrator()
        )
        baseline = database.engine(
            strategies="all", integrator=ExactIntegrator()
        ).run_batch(queries, base_seed=0)

        kill_worker(sharded, 0)
        batch = engine.run_batch(queries, base_seed=0, return_errors=True)

        failed = [r for r in batch.results if r.error is not None]
        ok = [
            (i, r)
            for i, r in enumerate(batch.results)
            if r.error is None
        ]
        # The broad query fans out to all four shards, two of which were
        # owned by the dead worker — it must fail, and fail typed.
        assert batch.results[0].error is not None
        for r in failed:
            assert isinstance(r.error, ShardError)
            assert r.error.shard_id % 2 == 0, (
                "only worker 0's shards (even ids) could have failed"
            )
            assert "died" in r.error.reason
            assert r.ids == ()
        # Queries that never touched the dead worker are exact.
        for i, r in ok:
            assert r.ids == baseline.results[i].ids
        assert batch.stats.failed == len(failed)
        assert sharded.pool.worker_failures >= 1
        assert sharded.pool.respawns >= 1

        # The respawned worker rebuilt its trees: next batch is full
        # parity, errors and all counters included.
        again = engine.run_batch(queries, base_seed=0)
        for got, want in zip(again.results, baseline.results):
            assert got.error is None
            assert got.ids == want.ids
            assert got.stats.retrieved == want.stats.retrieved

    def test_raises_without_return_errors(self, sharded):
        engine = sharded.engine(
            strategies="all", integrator=ExactIntegrator()
        )
        kill_worker(sharded, 0)
        with pytest.raises(ShardError):
            engine.run_batch([broad_query()], base_seed=0)
        # The pool healed even though the batch raised.
        result = engine.run_batch([broad_query()], base_seed=0)
        assert result.results[0].error is None

    def test_repeated_failures_keep_healing(self, sharded):
        engine = sharded.engine(
            strategies="all", integrator=ExactIntegrator()
        )
        reference = engine.run_batch([broad_query()], base_seed=1)
        for round_no in range(2):
            kill_worker(sharded, round_no % 2)
            batch = engine.run_batch(
                [broad_query()], base_seed=1, return_errors=True
            )
            assert isinstance(batch.results[0].error, ShardError)
            healed = engine.run_batch([broad_query()], base_seed=1)
            assert healed.results[0].ids == reference.results[0].ids
        assert sharded.pool.respawns >= 2


class TestServeRidesThrough:
    def test_scheduler_survives_worker_death(self, sharded, database):
        gaussian = Gaussian([500.0, 500.0], 90_000.0 * np.eye(2))
        with sharded.serve(integrator=CascadeIntegrator()) as service:
            before = service.query(
                PRQRequest(gaussian, 400.0, 0.01), timeout=30
            )
            assert before.status == STATUS_OK

            kill_worker(sharded, 0)
            # Distinct Gaussian so the response cache cannot mask the
            # failure path.
            hurt = service.query(
                PRQRequest(
                    Gaussian([501.0, 500.0], 90_000.0 * np.eye(2)),
                    400.0,
                    0.01,
                ),
                timeout=30,
            )
            assert hurt.status == STATUS_FAILED
            assert isinstance(hurt.error, ShardError)

            # Scheduler thread is alive and the pool has respawned:
            # the next request over the same region is served in full.
            after = service.query(
                PRQRequest(
                    Gaussian([502.0, 500.0], 90_000.0 * np.eye(2)),
                    400.0,
                    0.01,
                ),
                timeout=30,
            )
            assert after.status == STATUS_OK
        expected = database.probabilistic_range_query(
            Gaussian([502.0, 500.0], 90_000.0 * np.eye(2)),
            400.0,
            0.01,
            integrator=CascadeIntegrator(),
        )
        assert after.ids == tuple(expected.ids)

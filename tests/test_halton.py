"""Tests for the from-scratch Halton sequence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntegrationError
from repro.integrate.halton import first_primes, halton_sequence, radical_inverse


class TestFirstPrimes:
    def test_known_prefix(self):
        assert first_primes(10) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_single(self):
        assert first_primes(1) == [2]

    def test_rejects_zero(self):
        with pytest.raises(IntegrationError):
            first_primes(0)


class TestRadicalInverse:
    def test_base2_known_values(self):
        # 1 -> 0.1b = 0.5, 2 -> 0.01b = 0.25, 3 -> 0.11b = 0.75
        out = radical_inverse(np.array([1, 2, 3, 4]), 2)
        np.testing.assert_allclose(out, [0.5, 0.25, 0.75, 0.125])

    def test_base3_known_values(self):
        out = radical_inverse(np.array([1, 2, 3]), 3)
        np.testing.assert_allclose(out, [1 / 3, 2 / 3, 1 / 9])

    def test_zero_maps_to_zero(self):
        assert radical_inverse(np.array([0]), 5)[0] == 0.0

    def test_rejects_bad_base(self):
        with pytest.raises(IntegrationError):
            radical_inverse(np.array([1]), 1)

    def test_rejects_negative_indices(self):
        with pytest.raises(IntegrationError):
            radical_inverse(np.array([-1]), 2)

    @given(st.integers(2, 7))
    @settings(max_examples=10, deadline=None)
    def test_all_values_in_unit_interval(self, base):
        out = radical_inverse(np.arange(1, 200), base)
        assert np.all((out >= 0) & (out < 1))

    @given(st.integers(2, 7))
    @settings(max_examples=10, deadline=None)
    def test_values_distinct(self, base):
        out = radical_inverse(np.arange(1, 200), base)
        assert len(np.unique(out)) == 199


class TestHaltonSequence:
    def test_shape(self):
        pts = halton_sequence(100, 3)
        assert pts.shape == (100, 3)

    def test_first_point(self):
        pts = halton_sequence(1, 2)
        np.testing.assert_allclose(pts[0], [0.5, 1 / 3])

    def test_low_discrepancy_beats_uniform_spacing(self):
        # Empirical star-discrepancy proxy in 1-D: max gap between sorted
        # points should shrink like ~1/n.
        pts = np.sort(halton_sequence(1000, 1)[:, 0])
        gaps = np.diff(np.concatenate([[0.0], pts, [1.0]]))
        assert gaps.max() < 5.0 / 1000

    def test_mean_near_half(self):
        pts = halton_sequence(5000, 4)
        np.testing.assert_allclose(pts.mean(axis=0), 0.5, atol=0.01)

    def test_shift_wraps(self):
        base = halton_sequence(50, 2)
        shifted = halton_sequence(50, 2, shift=np.array([0.25, 0.75]))
        np.testing.assert_allclose(shifted, np.mod(base + [0.25, 0.75], 1.0))

    def test_start_offset(self):
        a = halton_sequence(10, 2, start=5)
        b = halton_sequence(14, 2, start=1)
        np.testing.assert_allclose(a, b[4:])

    def test_rejects_bad_shift_shape(self):
        with pytest.raises(IntegrationError):
            halton_sequence(10, 2, shift=np.zeros(3))

    def test_zero_points(self):
        assert halton_sequence(0, 2).shape == (0, 2)

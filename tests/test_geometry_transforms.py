"""Tests for eigenbasis and whitening transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotPositiveDefiniteError
from repro.geometry.transforms import (
    EigenTransform,
    WhiteningTransform,
    spectral_decomposition,
)
from tests.conftest import random_spd


class TestSpectralDecomposition:
    def test_reconstruction(self, rng):
        sigma = random_spd(rng, 4)
        eigenvalues, basis = spectral_decomposition(sigma)
        np.testing.assert_allclose(
            basis @ np.diag(eigenvalues) @ basis.T, sigma, atol=1e-10
        )

    def test_descending_order(self, rng):
        eigenvalues, _ = spectral_decomposition(random_spd(rng, 5))
        assert np.all(np.diff(eigenvalues) <= 0)

    def test_orthonormal_basis(self, rng):
        _, basis = spectral_decomposition(random_spd(rng, 3))
        np.testing.assert_allclose(basis.T @ basis, np.eye(3), atol=1e-12)

    def test_rejects_asymmetric(self):
        with pytest.raises(NotPositiveDefiniteError):
            spectral_decomposition(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(NotPositiveDefiniteError):
            spectral_decomposition(np.ones((2, 3)))

    def test_rejects_negative_definite(self):
        with pytest.raises(NotPositiveDefiniteError):
            spectral_decomposition(-np.eye(2))

    def test_rejects_singular(self):
        with pytest.raises(NotPositiveDefiniteError):
            spectral_decomposition(np.zeros((2, 2)))


class TestEigenTransform:
    def test_round_trip(self, rng):
        sigma = random_spd(rng, 3)
        transform = EigenTransform(rng.standard_normal(3), sigma)
        pts = rng.standard_normal((20, 3))
        np.testing.assert_allclose(
            transform.to_world(transform.to_eigen(pts)), pts, atol=1e-10
        )

    def test_center_maps_to_origin(self, rng):
        center = np.array([3.0, -2.0])
        transform = EigenTransform(center, random_spd(rng, 2))
        np.testing.assert_allclose(
            transform.to_eigen(center[None, :]), [[0.0, 0.0]], atol=1e-12
        )

    def test_preserves_distances(self, rng):
        # Rotation about the centre: pairwise distances are invariant.
        transform = EigenTransform([1.0, 2.0, 3.0], random_spd(rng, 3))
        pts = rng.standard_normal((10, 3))
        y = transform.to_eigen(pts)
        orig = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=2)
        mapped = np.linalg.norm(y[:, None, :] - y[None, :, :], axis=2)
        np.testing.assert_allclose(mapped, orig, atol=1e-9)

    def test_diagonalizes_quadratic_form(self, rng, paper_sigma_10):
        # Property 3: on the ellipsoid, sum(lambda_i_inv * y_i^2) = r^2 with
        # Sigma eigenvalues; equivalently the Mahalanobis form becomes
        # diagonal in eigen coordinates.
        transform = EigenTransform([0.0, 0.0], paper_sigma_10)
        pts = rng.standard_normal((50, 2)) * 10
        y = transform.to_eigen(pts)
        diag_form = np.sum(y**2 / transform.eigenvalues, axis=1)
        inv = np.linalg.inv(paper_sigma_10)
        direct = np.einsum("ij,jk,ik->i", pts, inv, pts)
        np.testing.assert_allclose(diag_form, direct, rtol=1e-9)


class TestWhiteningTransform:
    def test_round_trip(self, rng):
        w = WhiteningTransform(rng.standard_normal(4), random_spd(rng, 4))
        pts = rng.standard_normal((15, 4))
        np.testing.assert_allclose(w.unwhiten(w.whiten(pts)), pts, atol=1e-9)

    def test_whitened_samples_are_standard_normal(self, rng):
        sigma = random_spd(rng, 2, scale=5.0)
        mean = np.array([10.0, -20.0])
        chol = np.linalg.cholesky(sigma)
        samples = mean + rng.standard_normal((50_000, 2)) @ chol.T
        z = WhiteningTransform(mean, sigma).whiten(samples)
        np.testing.assert_allclose(z.mean(axis=0), [0.0, 0.0], atol=0.03)
        np.testing.assert_allclose(np.cov(z.T), np.eye(2), atol=0.03)

    def test_mahalanobis_matches_direct(self, rng):
        sigma = random_spd(rng, 3)
        mean = rng.standard_normal(3)
        w = WhiteningTransform(mean, sigma)
        pts = rng.standard_normal((20, 3)) * 3
        inv = np.linalg.inv(sigma)
        expected = np.sqrt(
            np.einsum("ij,jk,ik->i", pts - mean, inv, pts - mean)
        )
        np.testing.assert_allclose(w.mahalanobis(pts), expected, rtol=1e-8)

    @given(st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_identity_covariance_is_rigid_translation(self, dim):
        # With Sigma = I the whitening is translation composed with an
        # orthogonal map (the eigenbasis of I is any basis), so Euclidean
        # distances from the centre are preserved exactly.
        rng = np.random.default_rng(dim)
        center = rng.standard_normal(dim)
        w = WhiteningTransform(center, np.eye(dim))
        pts = rng.standard_normal((5, dim))
        np.testing.assert_allclose(
            np.linalg.norm(w.whiten(pts), axis=1),
            np.linalg.norm(pts - center, axis=1),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            w.mahalanobis(pts), np.linalg.norm(pts - center, axis=1), atol=1e-12
        )

"""Tests for the monitoring session, database persistence, and the
incremental nearest-neighbour iterator."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.monitor import MonitoringSession
from repro.errors import DatabaseLoadError, QueryError
from repro.gaussian.distribution import Gaussian
from repro.index.rtree import RStarTree
from repro.integrate.exact import ExactIntegrator


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(21)
    return SpatialDatabase(rng.random((5000, 2)) * 1000)


class TestMonitoringSession:
    def test_results_identical_to_fresh_queries(self, db, paper_sigma_10):
        session = MonitoringSession(
            db, strategies="all", integrator=ExactIntegrator(), margin=0.8
        )
        # A drifting query object: small steps so the cache keeps serving.
        path = [(500.0 + 3 * i, 500.0 + 2 * i) for i in range(8)]
        for center in path:
            gaussian = Gaussian(center, paper_sigma_10)
            cached = session.query(gaussian, 25.0, 0.01)
            fresh = db.probabilistic_range_query(
                gaussian, 25.0, 0.01, strategies="all",
                integrator=ExactIntegrator(),
            )
            assert cached.ids == fresh.ids
        assert session.cache_hits >= 5
        assert session.cache_misses >= 1

    def test_cache_invalidated_on_large_jump(self, db, paper_sigma_10):
        session = MonitoringSession(db, integrator=ExactIntegrator(), margin=0.2)
        session.query(Gaussian([100.0, 100.0], paper_sigma_10), 25.0, 0.01)
        session.query(Gaussian([900.0, 900.0], paper_sigma_10), 25.0, 0.01)
        assert session.cache_misses == 2
        assert session.cache_hits == 0

    def test_stats_flag_cache_hits(self, db, paper_sigma_10):
        session = MonitoringSession(db, integrator=ExactIntegrator(), margin=1.0)
        first = session.query(Gaussian([500.0, 500.0], paper_sigma_10), 25.0, 0.01)
        second = session.query(Gaussian([502.0, 501.0], paper_sigma_10), 25.0, 0.01)
        assert not first.stats.cache_hit
        assert second.stats.cache_hit

    def test_invalidate_after_update(self, paper_sigma_10):
        rng = np.random.default_rng(5)
        points = rng.random((800, 2)) * 100
        db = SpatialDatabase(points)
        session = MonitoringSession(db, integrator=ExactIntegrator(), margin=2.0)
        gaussian = Gaussian([50.0, 50.0], 0.05 * paper_sigma_10)
        before = session.query(gaussian, 10.0, 0.1)
        # Insert a new object right at the centre, then invalidate.
        db.index.insert(9999, np.array([50.0, 50.0]))
        session.invalidate()
        after = session.query(gaussian, 10.0, 0.1)
        assert 9999 in after.ids
        assert 9999 not in before.ids

    def test_empty_proof_short_circuits(self, db):
        session = MonitoringSession(db, integrator=ExactIntegrator())
        gaussian = Gaussian.isotropic([500.0, 500.0], 400.0)
        result = session.query(gaussian, 1.0, 0.95)
        assert result.ids == ()
        assert result.stats.empty_by_strategy == "BF"

    def test_negative_margin_rejected(self, db):
        with pytest.raises(QueryError):
            MonitoringSession(db, margin=-0.1)

    def test_zero_candidate_region(self, paper_sigma_10):
        # A database whose points are far from the query: cache holds zero
        # candidates but the session must keep functioning.
        db = SpatialDatabase(np.array([[1000.0, 1000.0], [1001.0, 1001.0]]))
        session = MonitoringSession(db, integrator=ExactIntegrator())
        gaussian = Gaussian([0.0, 0.0], 0.01 * paper_sigma_10)
        assert session.query(gaussian, 5.0, 0.1).ids == ()
        assert session.query(gaussian, 5.0, 0.1).ids == ()


class TestPersistence:
    def test_round_trip(self, tmp_path, rng):
        points = rng.random((300, 3)) * 10
        db = SpatialDatabase(points, ids=range(100, 400))
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = SpatialDatabase.load(path)
        assert len(loaded) == 300
        np.testing.assert_array_equal(loaded.point(100), db.point(100))
        center = points.mean(axis=0)
        assert sorted(loaded.range_query(center, 3.0)) == sorted(
            db.range_query(center, 3.0)
        )

    def test_load_with_custom_index(self, tmp_path, rng):
        points = rng.random((100, 2))
        SpatialDatabase(points).save(tmp_path / "db.npz")
        loaded = SpatialDatabase.load(
            tmp_path / "db.npz", index=RStarTree(2, max_entries=8)
        )
        assert loaded.index.max_entries == 8

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(DatabaseLoadError, match="missing"):
            SpatialDatabase.load(path)

    def test_load_missing_file(self, tmp_path):
        path = tmp_path / "nope.npz"
        with pytest.raises(DatabaseLoadError, match="does not exist") as info:
            SpatialDatabase.load(path)
        assert str(path) in str(info.value)

    def test_load_truncated_archive(self, tmp_path, rng):
        """A torn .npz (e.g. an interrupted copy) must surface as one
        clear DatabaseLoadError naming the path, never a raw zip/pickle
        traceback."""
        good = tmp_path / "db.npz"
        SpatialDatabase(rng.random((200, 2))).save(good)
        payload = good.read_bytes()
        for cut in (len(payload) // 2, 30, 1):
            torn = tmp_path / f"torn_{cut}.npz"
            torn.write_bytes(payload[:cut])
            with pytest.raises(DatabaseLoadError) as info:
                SpatialDatabase.load(torn)
            assert str(torn) in str(info.value)
            assert "truncated or corrupt" in str(info.value)

    def test_load_non_archive_bytes(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(DatabaseLoadError, match="truncated or corrupt"):
            SpatialDatabase.load(path)

    def test_load_invalid_contents(self, tmp_path):
        """A well-formed archive with nonsense contents (empty points)
        fails with the invalid-contents flavour of DatabaseLoadError."""
        path = tmp_path / "empty.npz"
        np.savez(path, ids=np.arange(0), points=np.zeros((0, 2)))
        with pytest.raises(DatabaseLoadError, match="invalid"):
            SpatialDatabase.load(path)

    def test_queries_identical_after_round_trip(self, tmp_path, rng, paper_sigma_10):
        points = rng.random((2000, 2)) * 1000
        db = SpatialDatabase(points)
        db.save(tmp_path / "db.npz")
        loaded = SpatialDatabase.load(tmp_path / "db.npz")
        gaussian = Gaussian([500.0, 500.0], paper_sigma_10)
        a = db.probabilistic_range_query(
            gaussian, 25.0, 0.01, integrator=ExactIntegrator()
        )
        b = loaded.probabilistic_range_query(
            gaussian, 25.0, 0.01, integrator=ExactIntegrator()
        )
        assert a.ids == b.ids


class TestNearestIter:
    def test_full_browse_is_sorted_and_complete(self, rng):
        pts = rng.random((400, 2)) * 100
        tree = RStarTree(2, max_entries=16)
        tree.bulk_load(range(400), pts)
        browsed = list(tree.nearest_iter([50.0, 50.0]))
        assert len(browsed) == 400
        distances = [d for _, d in browsed]
        assert distances == sorted(distances)
        assert sorted(i for i, _ in browsed) == list(range(400))

    def test_prefix_matches_knn(self, rng):
        pts = rng.random((500, 3)) * 10
        tree = RStarTree(3, max_entries=12)
        tree.bulk_load(range(500), pts)
        q = [5.0, 5.0, 5.0]
        prefix = list(itertools.islice(tree.nearest_iter(q), 25))
        assert prefix == tree.knn(q, 25)

    def test_lazy_distance_cutoff(self, rng):
        pts = rng.random((1000, 2)) * 100
        tree = RStarTree(2)
        tree.bulk_load(range(1000), pts)
        # Consume until the distance exceeds 10: exactly the points within
        # radius 10, in distance order.
        within = list(
            itertools.takewhile(lambda pair: pair[1] <= 10.0, tree.nearest_iter([50, 50]))
        )
        expected = sorted(tree.range_search_sphere([50.0, 50.0], 10.0))
        assert sorted(i for i, _ in within) == expected

    def test_empty_tree_yields_nothing(self):
        assert list(RStarTree(2).nearest_iter([0.0, 0.0])) == []

    def test_ids_listing(self, rng):
        tree = RStarTree(2)
        for i in (5, 3, 9):
            tree.insert(i, rng.random(2))
        assert tree.ids() == [3, 5, 9]

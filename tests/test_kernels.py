"""The ``repro.kernels`` dispatch layer: backend selection, parity, soundness.

The contract (docs/architecture.md): classify kernels are bit-identical
across backends; probability kernels return [lower, upper] bounds that
always contain the value SciPy computes, at most marginally wider on the
compiled backend (never tighter than sound).  ``REPRO_NO_JIT=1`` must pin
the NumPy fallback for a whole process regardless of compiler
availability.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from scipy import stats

from repro import kernels
from repro.gaussian.quadform import chi2_sandwich_bounds_block
from repro.kernels import fallback

RNG = np.random.default_rng(20260808)


def random_spectrum(d: int, seed: int):
    rng = np.random.default_rng(seed)
    mean = rng.uniform(-50.0, 50.0, d)
    a = rng.standard_normal((d, d))
    eigvals, basis = np.linalg.eigh(a @ a.T + d * np.eye(d))
    return mean, basis, eigvals


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_backend_is_reported_consistently():
    assert kernels.backend() == kernels.BACKEND in ("c", "numpy")
    table = kernels.kernel_table()
    assert [row["kernel"] for row in table] == [
        "squared_distance_noncentralities",
        "chi2_sandwich_block",
        "chi2_sandwich_block_f32",
        "ruben_block",
        "minkowski_contains",
        "oblique_contains",
        "bf_classify",
    ]
    for row in table:
        assert row["backend"].startswith(kernels.BACKEND)


def test_no_jit_env_pins_numpy_backend():
    """A fresh interpreter under REPRO_NO_JIT=1 must select the fallback."""
    env = dict(os.environ, REPRO_NO_JIT="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    out = subprocess.run(
        [sys.executable, "-c", "from repro import kernels; print(kernels.BACKEND)"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert out.stdout.strip() == "numpy"


# ----------------------------------------------------------------------
# Quadratic-form kernels: parity / soundness against SciPy
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d", [1, 2, 3, 6])
def test_squared_distance_noncentralities_matches_fallback(d):
    mean, basis, eigvals = random_spectrum(d, d)
    points = mean + 30.0 * RNG.standard_normal((64, d))
    got = kernels.squared_distance_noncentralities(mean, basis, eigvals, points)
    ref = fallback.squared_distance_noncentralities(mean, basis, eigvals, points)
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)


def test_chi2_sandwich_block_sound_and_tight_vs_scipy():
    rng = np.random.default_rng(5)
    for _ in range(40):
        df = float(rng.integers(1, 10))
        x = float(rng.uniform(0.01, 3000.0))
        ncs = rng.uniform(0.0, 5000.0, 48)
        lam_min, lam_max = sorted(rng.uniform(0.1, 6.0, 2))
        out = kernels.chi2_sandwich_block(x, df, ncs, lam_min, lam_max)
        ref_lo = stats.ncx2.cdf(x / lam_max, df, ncs)
        ref_hi = stats.ncx2.cdf(x / lam_min, df, ncs)
        # Sound: never tighter than the SciPy truth...
        assert np.all(out[:, 0] <= ref_lo + 1e-15)
        assert np.all(out[:, 1] >= ref_hi - 1e-15)
        # ...and tight: widened by at most the documented allowance.
        assert np.all(ref_lo - out[:, 0] <= 1e-10)
        assert np.all(out[:, 1] - ref_hi <= 1e-10)


def test_chi2_sandwich_block_f32_sound_and_close():
    """The float32 fast path must stay conservative, not just close."""
    for d in (2, 3, 8):
        mean, basis, eigvals = random_spectrum(d, 17 + d)
        points = mean + 25.0 * RNG.standard_normal((256, d))
        delta = 18.0
        x, df = delta * delta, float(d)
        lam_min, lam_max = float(eigvals.min()), float(eigvals.max())
        ncs = fallback.squared_distance_noncentralities(
            mean, basis, eigvals, points
        )
        ref_lo = stats.ncx2.cdf(x / lam_max, df, ncs.sum(axis=1))
        ref_hi = stats.ncx2.cdf(x / lam_min, df, ncs.sum(axis=1))
        out = kernels.chi2_sandwich_block_f32(
            mean, basis, eigvals, points, x, df, lam_min, lam_max
        )
        assert np.all(out[:, 0] <= ref_lo + 1e-15)
        assert np.all(out[:, 1] >= ref_hi - 1e-15)
        # float32 rotation costs at most ~1e-4 of width here, not O(1).
        assert np.max(ref_lo - out[:, 0]) < 1e-3
        assert np.max(out[:, 1] - ref_hi) < 1e-3


def test_chi2_sandwich_block_f32_dispatch_via_quadform():
    """quadform's dtype knob routes to the f32 kernel and stays sound."""
    from repro.gaussian.distribution import Gaussian

    rng = np.random.default_rng(11)
    a = rng.standard_normal((2, 2))
    gaussian = Gaussian(rng.uniform(-5, 5, 2), a @ a.T + 2 * np.eye(2))
    points = np.asarray(gaussian.mean) + 12.0 * rng.standard_normal((128, 2))
    exact = chi2_sandwich_bounds_block(gaussian, points, 9.0)
    fast = chi2_sandwich_bounds_block(gaussian, points, 9.0, dtype="float32")
    assert np.all(fast[:, 0] <= exact[:, 0] + 1e-12)
    assert np.all(fast[:, 1] >= exact[:, 1] - 1e-12)
    assert np.max(np.abs(fast - exact)) < 1e-3


def test_ruben_block_interval_contains_fallback_interval():
    """Compiled Ruben bounds may be wider than the fallback's, never offset."""
    for d, seed in ((2, 1), (3, 2), (5, 3)):
        rng = np.random.default_rng(seed)
        lam = np.sort(rng.uniform(0.5, 4.0, d))
        h = np.ones(d)
        ncs = rng.uniform(0.0, 30.0, (32, d))
        x = float(rng.uniform(5.0, 200.0))
        lo_c, hi_c, ok_c = kernels.ruben_block(lam, h, ncs, x, tol=1e-12)
        lo_f, hi_f, ok_f = fallback.ruben_block(lam, h, ncs, x, tol=1e-12)
        np.testing.assert_array_equal(ok_c, ok_f)
        both = ok_c & ok_f
        assert np.all(lo_c[both] <= lo_f[both] + 1e-12)
        assert np.all(hi_c[both] >= hi_f[both] - 1e-12)
        assert np.max(np.abs(lo_c[both] - lo_f[both])) < 1e-9
        # Same decisions against a threshold inside the interval:
        theta = 0.5
        lo_t, hi_t, _ = kernels.ruben_block(lam, h, ncs, x, theta=theta)
        assert np.all((lo_t > theta) <= (hi_t > theta))


def test_ruben_block_monte_carlo_containment():
    rng = np.random.default_rng(13)
    lam = np.array([1.0, 2.5])
    h = np.ones(2)
    ncs = rng.uniform(0.0, 12.0, (8, 2))
    x = 14.0
    lo, hi, ok = kernels.ruben_block(lam, h, ncs, x, tol=1e-10)
    assert ok.all()
    z = rng.standard_normal((200_000, 2))
    for i, nc in enumerate(ncs):
        q = (lam * (z + np.sqrt(nc)) ** 2).sum(axis=1)
        p = float(np.mean(q <= x))
        margin = 4.0 * np.sqrt(p * (1 - p) / z.shape[0]) + 1e-3
        assert lo[i] - margin <= p <= hi[i] + margin


# ----------------------------------------------------------------------
# Classification kernels: bit parity with the fallback
# ----------------------------------------------------------------------


@pytest.mark.parametrize("d", [1, 2, 4])
def test_minkowski_contains_parity(d):
    rng = np.random.default_rng(d)
    points = rng.uniform(-10.0, 10.0, (512, d))
    lows = rng.uniform(-6.0, -1.0, d)
    highs = rng.uniform(1.0, 6.0, d)
    for delta in (0.0, 1.5):
        got = kernels.minkowski_contains(points, lows, highs, delta)
        ref = fallback.minkowski_contains(points, lows, highs, delta)
        np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("d", [2, 3])
def test_oblique_contains_parity(d):
    mean, basis, eigvals = random_spectrum(d, 31 + d)
    rng = np.random.default_rng(d)
    points = mean + rng.uniform(-8.0, 8.0, (512, d))
    half_widths = rng.uniform(0.5, 5.0, d)
    got = kernels.oblique_contains(points, mean, basis, half_widths)
    ref = fallback.oblique_contains(points, mean, basis, half_widths)
    np.testing.assert_array_equal(got, ref)


def test_bf_classify_parity_with_and_without_lower():
    rng = np.random.default_rng(7)
    points = rng.uniform(-10.0, 10.0, (512, 2))
    center = np.array([0.5, -0.5])
    got = kernels.bf_classify(points, center, 6.0, 2.0)
    ref = fallback.bf_classify(points, center, 6.0, 2.0)
    np.testing.assert_array_equal(got, ref)
    assert set(np.unique(got)) <= {-1, 0, 1}
    got_u = kernels.bf_classify(points, center, 6.0, None)
    ref_u = fallback.bf_classify(points, center, 6.0, None)
    np.testing.assert_array_equal(got_u, ref_u)
    assert set(np.unique(got_u)) <= {-1, 0}


def test_empty_blocks_are_well_formed():
    empty = np.empty((0, 2))
    assert kernels.squared_distance_noncentralities(
        np.zeros(2), np.eye(2), np.ones(2), empty
    ).shape == (0, 2)
    assert kernels.chi2_sandwich_block(1.0, 2.0, np.empty(0), 1.0, 2.0).shape == (0, 2)
    lo, hi, ok = kernels.ruben_block(np.ones(2), np.ones(2), empty, 1.0)
    assert lo.shape == hi.shape == ok.shape == (0,)
    assert kernels.minkowski_contains(empty, np.zeros(2), np.ones(2), 0.0).shape == (0,)
    assert kernels.bf_classify(empty, np.zeros(2), 1.0, None).shape == (0,)


# ----------------------------------------------------------------------
# Fallback scratch arena
# ----------------------------------------------------------------------


def test_scratch_arena_reuses_and_grows():
    a = fallback.scratch("test_arena", (4, 4))
    a[:] = 7.0
    b = fallback.scratch("test_arena", (4, 4))
    assert b.base is a.base or b.base is not None  # same arena buffer
    grown = fallback.scratch("test_arena", (8, 4))
    assert grown.shape == (8, 4)
    np.testing.assert_array_equal(grown[:4], 7.0)  # leading region preserved


def test_fallback_results_are_never_arena_views():
    mean, basis, eigvals = random_spectrum(2, 99)
    points = mean + RNG.standard_normal((16, 2))
    first = fallback.squared_distance_noncentralities(
        mean, basis, eigvals, points
    ).copy()
    fallback.squared_distance_noncentralities(
        mean, basis, eigvals, points + 1000.0
    )
    again = fallback.squared_distance_noncentralities(
        mean, basis, eigvals, points
    )
    np.testing.assert_array_equal(first, again)

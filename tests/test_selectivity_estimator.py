"""SelectivityEstimator accuracy: predictions vs brute-force ground truth.

Satellite contract: ``estimate_candidates`` must track the true Phase-3
candidate count on uniform *and* clustered data in d = 2 and d = 3, and
``estimate_in_rect`` must handle degenerate rectangles (zero area,
entirely outside the data domain) without blowing up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Gaussian, SelectivityEstimator
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import UNKNOWN, make_strategies
from repro.geometry.mbr import Rect


def uniform_points(n: int, dim: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((n, dim)) * 1000.0


def clustered_points(n: int, dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.random((5, dim)) * 1000.0
    assignments = rng.integers(5, size=n)
    points = centers[assignments] + rng.standard_normal((n, dim)) * 40.0
    return np.clip(points, 0.0, 1000.0)


def brute_force_candidates(
    points: np.ndarray, query: ProbabilisticRangeQuery, spec: str
) -> int:
    """True Phase-3 count: points every prepared filter leaves UNKNOWN.

    Filters reject everything outside their own regions, so a point that
    is UNKNOWN to all of them necessarily lies inside the combined
    Phase-1 rectangle — no index search needed for ground truth.
    """
    strategies = make_strategies(spec)
    for strategy in strategies:
        strategy.prepare(query)
    if any(s.proves_empty for s in strategies):
        return 0
    undecided = np.ones(points.shape[0], dtype=bool)
    for strategy in strategies:
        undecided &= strategy.classify_many(points) == UNKNOWN
    return int(np.count_nonzero(undecided))


def query_for(dim: int, center, gamma: float = 400.0):
    # Anisotropic covariances in both dimensions: an isotropic Σ would
    # make BF's accept and prune radii coincide and empty out Phase 3.
    if dim == 2:
        root3 = np.sqrt(3.0)
        sigma = gamma * np.array([[7.0, 2 * root3], [2 * root3, 3.0]]) / 5.0
    else:
        sigma = gamma * np.diag([3.5, 1.5, 0.6])
    return ProbabilisticRangeQuery(
        Gaussian(np.asarray(center, dtype=float), sigma), 60.0, 0.01
    )


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("maker", [uniform_points, clustered_points])
@pytest.mark.parametrize("spec", ["rr", "all"])
def test_estimate_candidates_tracks_brute_force(dim, maker, spec):
    points = maker(20_000, dim, seed=dim * 11)
    estimator = SelectivityEstimator(points)
    # Query centred on the densest data point so the count is large
    # enough for a meaningful relative-error bound.
    densities = estimator.density_at(points[:4_000])
    center = points[:4_000][int(np.argmax(densities))]
    query = query_for(dim, center)

    actual = brute_force_candidates(points, query, spec)
    predicted = estimator.estimate_candidates(query, spec, n_samples=30_000)

    assert actual > 50, "test query must produce a non-trivial candidate set"
    assert predicted == pytest.approx(actual, rel=0.25), (
        f"d={dim} {maker.__name__} {spec}: predicted {predicted:.0f} "
        f"vs actual {actual}"
    )


def test_estimate_candidates_empty_query_is_zero():
    points = uniform_points(5_000, 2, seed=3)
    estimator = SelectivityEstimator(points)
    # theta so high the BF upper bound proves the result empty.
    hopeless = ProbabilisticRangeQuery(
        Gaussian([500.0, 500.0], 1e8 * np.eye(2)), 1.0, 0.4
    )
    assert estimator.estimate_candidates(hopeless, "all") == 0.0


def test_estimate_candidates_far_from_data_is_small():
    points = clustered_points(10_000, 2, seed=4)
    estimator = SelectivityEstimator(points)
    query = query_for(2, [-5_000.0, -5_000.0])
    predicted = estimator.estimate_candidates(query, "all", n_samples=5_000)
    assert predicted == pytest.approx(0.0, abs=1.0)


class TestDegenerateRects:
    @pytest.fixture
    def estimator(self) -> SelectivityEstimator:
        return SelectivityEstimator(uniform_points(8_000, 2, seed=5))

    def test_zero_area_rect(self, estimator):
        rect = Rect([500.0, 500.0], [500.0, 500.0])
        assert estimator.estimate_in_rect(rect) == 0.0

    def test_zero_width_slab(self, estimator):
        """One collapsed axis → zero volume → zero expected points."""
        rect = Rect([0.0, 500.0], [1000.0, 500.0])
        assert estimator.estimate_in_rect(rect) == 0.0

    def test_rect_outside_domain(self, estimator):
        rect = Rect([2_000.0, 2_000.0], [3_000.0, 3_000.0])
        assert estimator.estimate_in_rect(rect) == 0.0

    def test_rect_partially_outside_clips(self, estimator):
        inside = estimator.estimate_in_rect(Rect([0.0, 0.0], [500.0, 500.0]))
        overhanging = estimator.estimate_in_rect(
            Rect([-10_000.0, -10_000.0], [500.0, 500.0])
        )
        assert overhanging == pytest.approx(inside, rel=1e-9)

    def test_whole_domain_counts_everything(self, estimator):
        rect = Rect([-1.0, -1.0], [1_001.0, 1_001.0])
        assert estimator.estimate_in_rect(rect) == pytest.approx(8_000, rel=1e-6)

    def test_dimension_mismatch_raises(self, estimator):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            estimator.estimate_in_rect(Rect([0.0] * 3, [1.0] * 3))

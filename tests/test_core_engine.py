"""Integration tests for the three-phase query engine and database façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.engine import QueryEngine
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RStarTree
from repro.integrate.exact import ExactIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.geometry.mbr import Rect


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(99)
    return rng.random((4000, 2)) * 1000


@pytest.fixture(scope="module")
def database(cloud):
    return SpatialDatabase(cloud)


@pytest.fixture(scope="module")
def oracle_answer(cloud, paper_sigma_10_module):
    gaussian = Gaussian([500.0, 500.0], paper_sigma_10_module)
    probs = np.array(
        [
            qualification_probability_exact(gaussian, p, 25.0, method="ruben")
            for p in cloud
        ]
    )
    return gaussian, set(np.nonzero(probs >= 0.01)[0].tolist())


@pytest.fixture(scope="module")
def paper_sigma_10_module():
    root3 = np.sqrt(3.0)
    return 10.0 * np.array([[7.0, 2.0 * root3], [2.0 * root3, 3.0]])


class TestEngineCorrectness:
    @pytest.mark.parametrize("spec", ["rr", "bf", "rr+bf", "rr+or", "bf+or", "all"])
    def test_every_combination_matches_oracle(self, database, oracle_answer, spec):
        gaussian, expected = oracle_answer
        result = database.probabilistic_range_query(
            gaussian, 25.0, 0.01, strategies=spec, integrator=ExactIntegrator()
        )
        assert set(result.ids) == expected

    def test_importance_sampling_close_to_oracle(self, database, oracle_answer):
        gaussian, expected = oracle_answer
        result = database.probabilistic_range_query(
            gaussian,
            25.0,
            0.01,
            strategies="all",
            integrator=ImportanceSamplingIntegrator(100_000, seed=0),
        )
        # Monte Carlo may flip objects within sampling error of theta; the
        # symmetric difference must stay small.
        assert len(set(result.ids) ^ expected) <= max(2, len(expected) // 20)

    def test_all_index_backends_agree(self, cloud, oracle_answer):
        gaussian, expected = oracle_answer
        for index in (
            RStarTree(2),
            GridIndex(Rect([0.0, 0.0], [1000.0, 1000.0]), 32),
            LinearScanIndex(2),
        ):
            db = SpatialDatabase(cloud, index=index)
            result = db.probabilistic_range_query(
                gaussian, 25.0, 0.01, strategies="all", integrator=ExactIntegrator()
            )
            assert set(result.ids) == expected

    def test_high_theta_uses_bf_empty_proof(self, database):
        gaussian = Gaussian.isotropic([500.0, 500.0], 400.0)
        result = database.probabilistic_range_query(
            gaussian, 1.0, 0.95, strategies="bf", integrator=ExactIntegrator()
        )
        assert result.ids == ()
        assert result.stats.empty_by_strategy == "BF"
        assert result.stats.integrations == 0

    def test_theta_above_half_still_correct(self, database):
        # RR/OR clamp the region theta below 1/2 (Definition 3's domain);
        # results must still match the exact oracle.
        gaussian = Gaussian.isotropic([500.0, 500.0], 16.0)
        expected = database.probabilistic_range_query(
            gaussian, 30.0, 0.7, strategies="bf", integrator=ExactIntegrator()
        )
        clamped = database.probabilistic_range_query(
            gaussian, 30.0, 0.7, strategies="all", integrator=ExactIntegrator()
        )
        assert set(clamped.ids) == set(expected.ids)
        assert len(expected.ids) > 0

    def test_stats_add_up(self, database, oracle_answer):
        gaussian, _ = oracle_answer
        result = database.probabilistic_range_query(
            gaussian, 25.0, 0.01, strategies="all", integrator=ExactIntegrator()
        )
        stats = result.stats
        assert (
            stats.retrieved
            == stats.total_rejected
            + stats.accepted_without_integration
            + stats.integrations
        )
        assert stats.results == len(result.ids)
        assert set(stats.phase_seconds) == {"search", "filter", "integrate"}

    def test_filtering_order_shrinks_candidates(self, database, oracle_answer):
        gaussian, _ = oracle_answer
        counts = {}
        for spec in ("rr", "rr+bf", "all"):
            result = database.probabilistic_range_query(
                gaussian, 25.0, 0.01, strategies=spec, integrator=ExactIntegrator()
            )
            counts[spec] = result.stats.integrations
        assert counts["all"] <= counts["rr+bf"] <= counts["rr"]


class TestEngineValidation:
    def test_requires_strategy(self, database):
        with pytest.raises(QueryError):
            QueryEngine(database.index, [])

    def test_dim_mismatch_rejected(self, database):
        gaussian = Gaussian(np.zeros(3), np.eye(3))
        engine = database.engine(strategies="all")
        with pytest.raises(QueryError):
            engine.execute(ProbabilisticRangeQuery(gaussian, 1.0, 0.1))

    def test_result_container(self, database, oracle_answer):
        gaussian, expected = oracle_answer
        result = database.probabilistic_range_query(
            gaussian, 25.0, 0.01, strategies="all", integrator=ExactIntegrator()
        )
        assert len(result) == len(result.ids)
        if result.ids:
            assert result.ids[0] in result
        assert -1 not in result
        assert result.ids == tuple(sorted(result.ids))


class TestSpatialDatabase:
    def test_len_and_point(self, database, cloud):
        assert len(database) == len(cloud)
        np.testing.assert_array_equal(database.point(10), cloud[10])

    def test_range_query(self, database, cloud):
        hits = database.range_query([500.0, 500.0], 30.0)
        expected = np.nonzero(
            np.linalg.norm(cloud - [500.0, 500.0], axis=1) <= 30.0
        )[0]
        assert sorted(hits) == expected.tolist()

    def test_knn(self, database, cloud):
        got = [i for i, _ in database.knn([500.0, 500.0], 5)]
        expected = np.argsort(np.linalg.norm(cloud - [500.0, 500.0], axis=1))[:5]
        assert got == expected.tolist()

    def test_explicit_ids(self):
        db = SpatialDatabase(np.array([[0.0, 0.0], [1.0, 1.0]]), ids=[7, 9])
        assert sorted(db.range_query([0.5, 0.5], 2.0)) == [7, 9]

    def test_center_sigma_kwargs(self, database, paper_sigma_10_module):
        result = database.probabilistic_range_query(
            center=[500.0, 500.0],
            sigma=paper_sigma_10_module,
            delta=25.0,
            theta=0.01,
            strategies="all",
            integrator=ExactIntegrator(),
        )
        assert isinstance(result.ids, tuple)

    def test_missing_gaussian_and_center_rejected(self, database):
        with pytest.raises(QueryError):
            database.probabilistic_range_query(delta=1.0, theta=0.1)

    def test_empty_points_rejected(self):
        with pytest.raises(QueryError):
            SpatialDatabase(np.empty((0, 2)))

    def test_id_count_mismatch_rejected(self):
        with pytest.raises(QueryError):
            SpatialDatabase(np.zeros((2, 2)), ids=[1])

    def test_prebuilt_index_must_be_empty(self):
        index = RStarTree(2)
        index.insert(0, [0.0, 0.0])
        with pytest.raises(QueryError):
            SpatialDatabase(np.zeros((1, 2)), index=index)

    def test_index_dim_mismatch_rejected(self):
        with pytest.raises(QueryError):
            SpatialDatabase(np.zeros((2, 2)), index=RStarTree(3))

    def test_engine_with_explicit_strategy_list(self, database, oracle_answer):
        gaussian, expected = oracle_answer
        engine = database.engine(
            strategies=make_strategies("all"), integrator=ExactIntegrator()
        )
        result = engine.execute(ProbabilisticRangeQuery(gaussian, 25.0, 0.01))
        assert set(result.ids) == expected

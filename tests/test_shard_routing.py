"""Oracle-backed soundness of Phase-0 shard routing.

The sharded engine dispatches a query only to shards whose MBR
intersects the combined Phase-1 rectangle (the θ-region Minkowski box,
possibly tightened by the other strategies).  Routing is *sound* iff the
pruning never loses an answer: the union of the routed shards' Phase-1
candidate sets must equal the unsharded candidate set, and every skipped
shard's tree must return zero candidates for the same rectangle.  These
tests replay that contract over seeded random Gaussians, δ and θ in
d ∈ {2, 3}, for both partitioning methods and several shard counts,
against the repo's own single-tree index as the oracle — the style of
``tests/test_filter_soundness.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import SearchStage
from repro.core.stats import QueryStats
from repro.core.strategies import make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.shard.partition import partition_positions
from repro.shard.shm import SharedPointStore
from repro.shard.worker import build_shard_tree

from tests.conftest import random_spd

#: Cloud size.  Mixed clustered/uniform so shard MBRs differ in shape
#: and density and MBR pruning actually fires for off-cluster queries.
N_POINTS = 500

#: Seeded queries replayed per (dim, shards, method) combination.
N_QUERIES = 12


def point_cloud(dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1000.0, (8, dim))
    n_clustered = N_POINTS - 100
    clustered = (
        centers[rng.integers(0, len(centers), n_clustered)]
        + 30.0 * rng.standard_normal((n_clustered, dim))
    )
    uniform = rng.uniform(0.0, 1000.0, (100, dim))
    return np.vstack([clustered, uniform])


def seeded_query(dim: int, seed: int) -> ProbabilisticRangeQuery:
    """One random PRQ; centers range from deep inside to off the cloud."""
    rng = np.random.default_rng(seed)
    sigma = random_spd(rng, dim, scale=20.0 + 180.0 * rng.random())
    center = rng.uniform(-200.0, 1200.0, dim)
    delta = float(5.0 + 45.0 * rng.random())
    theta = float(np.exp(rng.uniform(np.log(0.01), np.log(0.5))))
    return ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)


@pytest.mark.parametrize("method", ["str", "hilbert"])
@pytest.mark.parametrize("n_shards", [2, 3, 5])
@pytest.mark.parametrize("dim", [2, 3])
def test_routed_union_equals_unsharded_candidates(dim, n_shards, method):
    points = point_cloud(dim, seed=101 * dim)
    db = SpatialDatabase(points)
    specs = partition_positions(points, n_shards, method=method)
    store = SharedPointStore.create(np.arange(len(points)), points)
    try:
        trees = {
            spec.shard_id: build_shard_tree(
                store, spec.positions, method=method
            )
            for spec in specs
        }
        routed_somewhere = 0
        pruned_somewhere = 0
        for qseed in range(N_QUERIES):
            query = seeded_query(dim, 9_000 + 7 * qseed)
            rect = SearchStage(db.index).prepare(
                query, make_strategies("all"), QueryStats()
            )
            if rect is None:
                # Some strategy proved the result empty before Phase 1 —
                # the engine dispatches nothing, trivially sound.
                continue
            oracle = set(db.index.range_search_rect(rect))
            routed = [s for s in specs if s.mbr.intersects(rect)]
            skipped = [s for s in specs if not s.mbr.intersects(rect)]
            routed_somewhere += bool(routed)
            pruned_somewhere += bool(skipped)
            union: set[int] = set()
            for spec in routed:
                union |= set(trees[spec.shard_id].range_search_rect(rect))
            assert union == oracle, (
                f"dim={dim} shards={n_shards} method={method} qseed={qseed}: "
                f"routed union lost {sorted(oracle - union)} / "
                f"invented {sorted(union - oracle)}"
            )
            for spec in skipped:
                extra = trees[spec.shard_id].range_search_rect(rect)
                assert extra == [], (
                    f"skipped shard {spec.shard_id} held candidates {extra}"
                )
        # The seeded workload must actually exercise both branches.
        assert routed_somewhere > 0, "no query routed to any shard"
        assert pruned_somewhere > 0, "no query ever pruned a shard"
    finally:
        store.close()


@pytest.mark.parametrize("method", ["str", "hilbert"])
def test_partition_is_a_partition(method):
    """Shards cover every position exactly once and MBRs are tight."""
    points = point_cloud(2, seed=404)
    specs = partition_positions(points, 5, method=method)
    seen: list[int] = []
    for spec in specs:
        seen.extend(int(p) for p in spec.positions)
        block = points[spec.positions]
        assert np.allclose(spec.mbr.lows, block.min(axis=0))
        assert np.allclose(spec.mbr.highs, block.max(axis=0))
    assert sorted(seen) == list(range(len(points)))


def test_partition_argument_validation():
    points = point_cloud(2, seed=404)
    with pytest.raises(QueryError):
        partition_positions(points, 0)
    with pytest.raises(QueryError):
        partition_positions(points, len(points) + 1)
    with pytest.raises(QueryError):
        partition_positions(points, 2, method="zorder")


def test_single_shard_routes_everything():
    """With one shard the MBR is the dataset MBR: every non-empty query
    routes to it, so the sharded candidate set is trivially complete."""
    points = point_cloud(2, seed=505)
    db = SpatialDatabase(points)
    (spec,) = partition_positions(points, 1)
    hits = 0
    for qseed in range(N_QUERIES):
        query = seeded_query(2, 20_000 + qseed)
        rect = SearchStage(db.index).prepare(
            query, make_strategies("all"), QueryStats()
        )
        if rect is None:
            continue
        oracle = db.index.range_search_rect(rect)
        if oracle and spec.mbr.intersects(rect):
            hits += 1
        assert not oracle or spec.mbr.intersects(rect)
    assert hits > 0


def test_end_to_end_candidate_parity_through_pool():
    """The full scatter–gather path retrieves exactly the unsharded
    Phase-1 candidate count and returns the identical answer set."""
    from repro.integrate import ExactIntegrator

    points = point_cloud(2, seed=606)
    db = SpatialDatabase(points)
    queries = [seeded_query(2, 31_000 + 11 * s) for s in range(6)]
    baseline = db.engine(
        strategies="all", integrator=ExactIntegrator()
    ).run_batch(queries, base_seed=1)
    with db.shard(3) as sharded:
        engine = sharded.engine(
            strategies="all", integrator=ExactIntegrator()
        )
        batch = engine.run_batch(queries, base_seed=1)
    for got, want in zip(batch.results, baseline.results):
        assert got.ids == want.ids
        assert got.stats.retrieved == want.stats.retrieved

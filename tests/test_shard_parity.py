"""Determinism and parity battery for sharded scatter–gather execution.

Contract under test (see ``docs/sharding.md``):

1. **Parity** — for composition-independent integrators (Exact, Cascade,
   shared-draw importance/sequential) the merged sharded answer is
   bit-identical to the single-engine path: same ids, same candidate and
   integration counters, for every shard count and worker count.
2. **Determinism** — for composition-dependent samplers (plain MC, QMC,
   stream-advancing importance, antithetic) the engine swaps in
   :class:`repro.shard.seeding.CandidateSeededIntegrator`, whose output
   depends only on (base seed, query, candidate point) — so the answer
   is identical across shard counts {1, 2, 4, 8}, worker counts and
   repeated runs, even though it need not match the unwrapped sampler.
3. **Plan caches** — cold vs warm planner caches change latency, never
   answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.gaussian.distribution import Gaussian
from repro.integrate import (
    AntitheticImportanceSampler,
    CascadeIntegrator,
    ExactIntegrator,
    ImportanceSamplingIntegrator,
    MonteCarloIntegrator,
    QuasiMonteCarloIntegrator,
    SequentialImportanceSampler,
)

from tests.conftest import random_spd

#: Guard for the process-pool suites; no-op unless pytest-timeout is
#: installed (it is in CI — see .github/workflows/ci.yml).
pytestmark = pytest.mark.timeout(300)

SHARD_COUNTS = [1, 2, 4, 8]

#: Small sample budgets: the battery checks determinism, not accuracy.
INDEPENDENT = {
    "exact": lambda: ExactIntegrator(),
    "cascade": lambda: CascadeIntegrator(),
    "importance-shared": lambda: ImportanceSamplingIntegrator(
        4_000, share_samples=True
    ),
    "sequential-shared": lambda: SequentialImportanceSampler(
        0.2, max_samples=8_000, batch_size=1_000, share_batches=True
    ),
}
DEPENDENT = {
    "montecarlo": lambda: MonteCarloIntegrator(4_000),
    "qmc": lambda: QuasiMonteCarloIntegrator(4_096, n_replicates=4),
    "importance": lambda: ImportanceSamplingIntegrator(4_000),
    "antithetic": lambda: AntitheticImportanceSampler(4_000),
}


def make_points(n: int = 400, seed: int = 77) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1000.0, (6, 2))
    clustered = (
        centers[rng.integers(0, len(centers), n - 80)]
        + 35.0 * rng.standard_normal((n - 80, 2))
    )
    return np.vstack([clustered, rng.uniform(0.0, 1000.0, (80, 2))])


def make_queries() -> list[ProbabilisticRangeQuery]:
    """A mixed workload: hits, a near-certain empty, and an off-cloud
    query that should route to few or no shards."""
    rng = np.random.default_rng(31)
    queries = []
    for _ in range(4):
        sigma = random_spd(rng, 2, scale=60.0 + 120.0 * rng.random())
        center = rng.uniform(100.0, 900.0, 2)
        delta = float(10.0 + 30.0 * rng.random())
        theta = float(rng.uniform(0.05, 0.3))
        queries.append(ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta))
    # θ close to 1 with a small δ: provably empty for most strategies.
    queries.append(
        ProbabilisticRangeQuery(
            Gaussian([500.0, 500.0], 400.0 * np.eye(2)), 1.0, 0.99
        )
    )
    # Far outside the cloud: Phase-0 routing should prune every shard.
    queries.append(
        ProbabilisticRangeQuery(
            Gaussian([5_000.0, 5_000.0], 50.0 * np.eye(2)), 10.0, 0.2
        )
    )
    return queries


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    return SpatialDatabase(make_points())


@pytest.fixture(scope="module")
def queries() -> list[ProbabilisticRangeQuery]:
    return make_queries()


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded(request, database):
    with database.shard(request.param) as sdb:
        yield sdb


@pytest.mark.parametrize("name", sorted(INDEPENDENT))
def test_independent_integrators_match_unsharded_bitwise(
    sharded, database, queries, name
):
    integrator = INDEPENDENT[name]()
    baseline = database.engine(
        strategies="all", integrator=integrator
    ).run_batch(queries, base_seed=5)
    batch = sharded.engine(
        strategies="all", integrator=integrator
    ).run_batch(queries, base_seed=5)
    assert len(batch.results) == len(baseline.results)
    for got, want in zip(batch.results, baseline.results):
        assert got.ids == want.ids
        assert got.stats.retrieved == want.stats.retrieved
        assert got.stats.integrations == want.stats.integrations
        assert got.stats.integration_samples == want.stats.integration_samples
        assert (
            got.stats.accepted_without_integration
            == want.stats.accepted_without_integration
        )
        assert got.stats.results == want.stats.results
        assert dict(got.stats.rejected_by_filter) == dict(
            want.stats.rejected_by_filter
        )


@pytest.mark.parametrize("name", sorted(DEPENDENT))
def test_dependent_integrators_are_deterministic_per_shard_count(
    sharded, name, queries
):
    """Warm rerun on the same pool returns bit-identical answers."""
    engine = sharded.engine(strategies="all", integrator=DEPENDENT[name]())
    first = engine.run_batch(queries, base_seed=9)
    second = engine.run_batch(queries, base_seed=9)
    for a, b in zip(first.results, second.results):
        assert a.ids == b.ids
        assert a.stats.retrieved == b.stats.retrieved


@pytest.mark.parametrize("name", sorted(DEPENDENT))
def test_dependent_integrators_agree_across_shard_counts(
    database, queries, name
):
    """The candidate-seeded wrap makes the answer a function of
    (seed, query, candidate) alone — shard layout must not matter."""
    per_count = {}
    for n_shards in SHARD_COUNTS:
        with database.shard(n_shards) as sdb:
            engine = sdb.engine(strategies="all", integrator=DEPENDENT[name]())
            batch = engine.run_batch(queries, base_seed=13)
            per_count[n_shards] = [r.ids for r in batch.results]
    reference = per_count[SHARD_COUNTS[0]]
    for n_shards, ids in per_count.items():
        assert ids == reference, (
            f"{name}: shard count {n_shards} changed the answer"
        )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_worker_count_never_changes_answers(database, queries, workers):
    baseline = database.engine(
        strategies="all", integrator=ExactIntegrator()
    ).run_batch(queries, base_seed=2)
    with database.shard(4, workers=workers) as sdb:
        batch = sdb.engine(
            strategies="all", integrator=ExactIntegrator()
        ).run_batch(queries, base_seed=2)
    for got, want in zip(batch.results, baseline.results):
        assert got.ids == want.ids


def test_plan_cache_cold_vs_warm_answers_identical(sharded, queries):
    """First batch plans cold, second hits the plan cache; answers and
    candidate counts must not move."""
    engine = sharded.engine(strategies="auto", integrator=CascadeIntegrator())
    cold = engine.run_batch(queries, base_seed=3)
    warm = engine.run_batch(queries, base_seed=3)
    assert any(
        r.stats.plan_strategies for r in cold.results if r.error is None
    ), "planner never recorded a plan"
    assert any(r.stats.plan_cache_hit for r in warm.results), (
        "second batch never hit the plan cache"
    )
    for a, b in zip(cold.results, warm.results):
        assert a.ids == b.ids
        assert a.stats.retrieved == b.stats.retrieved


def test_empty_and_unrouted_queries_match_unsharded(sharded, database, queries):
    """The provably-empty and off-cloud queries short-circuit at the
    coordinator (no tasks dispatched) yet report the same shape as the
    single-engine path."""
    empty_queries = queries[-2:]
    baseline = database.engine(
        strategies="all", integrator=ExactIntegrator()
    ).run_batch(empty_queries, base_seed=4)
    batch = sharded.engine(
        strategies="all", integrator=ExactIntegrator()
    ).run_batch(empty_queries, base_seed=4)
    for got, want in zip(batch.results, baseline.results):
        assert got.ids == want.ids == ()
        assert got.stats.results == 0


def test_integrator_factory_is_evaluated_at_the_coordinator(
    sharded, database, queries
):
    """``run_batch(integrator_factory=...)`` — the serve path — must work
    even though the closure itself can never cross a process boundary."""
    calls: list[int] = []

    def factory(query, seed):
        calls.append(1)
        return ExactIntegrator()

    baseline = database.engine(strategies="all").run_batch(
        queries, base_seed=6, integrator_factory=lambda q, s: ExactIntegrator()
    )
    batch = sharded.engine(strategies="all").run_batch(
        queries, base_seed=6, integrator_factory=factory
    )
    assert len(calls) == len(queries)
    for got, want in zip(batch.results, baseline.results):
        assert got.ids == want.ids

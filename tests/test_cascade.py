"""Deterministic Phase-3 cascade: correctness, tiering and determinism.

The cascade must agree with the exact quadratic-form CDF (its own ground
truth) and with a high-sample Monte-Carlo oracle on anisotropic Gaussians
across dimensions, decide candidates in the advertised tiers, and — being
RNG-free — make ``run_batch`` bit-identical across worker counts without
drawing a single sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import make_strategies
from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import (
    GaussianQuadraticForm,
    chi2_sandwich_bounds,
    chi2_sandwich_bounds_block,
    qualification_probability_exact,
    ruben_cdf,
    ruben_series_block,
)
from repro.index.rtree import RStarTree
from repro.integrate import CascadeIntegrator, ImportanceSamplingIntegrator

from tests.conftest import random_spd
from tests.test_filter_soundness import oracle_probabilities


def anisotropic_case(dim: int, seed: int, n_points: int = 40):
    """A random anisotropic Gaussian plus a candidate cloud spanning the
    full probability range (reusing the soundness-suite recipe)."""
    rng = np.random.default_rng(seed)
    sigma = random_spd(rng, dim, scale=1.0 + 3.0 * rng.random())
    gaussian = Gaussian(10.0 * rng.standard_normal(dim), sigma)
    delta = float(0.5 + 2.5 * rng.random()) * np.sqrt(np.trace(sigma) / dim)
    spread = np.sqrt(gaussian.eigenvalues.max())
    radii = (4.0 * rng.random(n_points)) * (spread + delta)
    directions = rng.standard_normal((n_points, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    points = gaussian.mean + radii[:, None] * directions
    return gaussian, points, delta


class TestVectorisedQuadform:
    def test_block_sandwich_matches_scalar(self):
        gaussian, points, delta = anisotropic_case(3, seed=5)
        block = chi2_sandwich_bounds_block(gaussian, points, delta)
        assert block.shape == (points.shape[0], 2)
        for row, point in zip(block, points):
            form = GaussianQuadraticForm.squared_distance(gaussian, point)
            lower, upper = chi2_sandwich_bounds(form, delta * delta)
            # Sound: the block interval contains the exact scalar interval
            # (the compiled backend widens by its numerical-error margin).
            assert row[0] <= lower + 1e-14
            assert row[1] >= upper - 1e-14
            # Tight: the widening stays within the documented epsilon.
            assert row[0] == pytest.approx(lower, abs=1e-10)
            assert row[1] == pytest.approx(upper, abs=1e-10)

    def test_block_sandwich_zero_delta(self):
        gaussian, points, _ = anisotropic_case(2, seed=6)
        assert np.all(chi2_sandwich_bounds_block(gaussian, points, 0.0) == 0.0)

    @pytest.mark.parametrize("dim", [2, 3, 9])
    def test_ruben_block_matches_scalar(self, dim):
        gaussian, points, delta = anisotropic_case(dim, seed=dim)
        weights, ncs = GaussianQuadraticForm.squared_distance_spectrum(
            gaussian, points
        )
        lower, upper, ok = ruben_series_block(
            weights, np.ones_like(weights), ncs, delta * delta, tol=1e-12
        )
        for i, point in enumerate(points):
            if not ok[i]:
                continue
            form = GaussianQuadraticForm.squared_distance(gaussian, point)
            try:
                expected = ruben_cdf(form, delta * delta)
            except IntegrationError:
                pytest.fail("scalar Ruben failed where the block path ran")
            assert upper[i] - lower[i] < 1e-10
            assert lower[i] - 1e-10 <= expected <= upper[i] + 1e-10

    def test_ruben_block_flags_underflow(self):
        # Extreme noncentrality: scalar Ruben raises, the block path must
        # flag the row instead of dying.
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        points = np.array([[0.5, 0.0], [80.0, 0.0]])
        weights, ncs = GaussianQuadraticForm.squared_distance_spectrum(
            gaussian, points
        )
        lower, upper, ok = ruben_series_block(
            weights, np.ones(2), ncs, 4.0
        )
        assert ok[0] and not ok[1]
        assert lower[1] == 0.0 and upper[1] == 1.0  # untouched bounds

    def test_decision_aware_truncation_agrees_with_converged(self):
        gaussian, points, delta = anisotropic_case(2, seed=9)
        weights, ncs = GaussianQuadraticForm.squared_distance_spectrum(
            gaussian, points
        )
        tight = ruben_series_block(
            weights, np.ones_like(weights), ncs, delta * delta, tol=1e-12
        )
        theta = 0.2
        fast = ruben_series_block(
            weights, np.ones_like(weights), ncs, delta * delta, theta=theta
        )
        exact = 0.5 * (tight[0] + tight[1])
        for i in range(points.shape[0]):
            if not (tight[2][i] and fast[2][i]):
                continue
            decided_accept = fast[0][i] >= theta
            decided_reject = fast[1][i] < theta
            assert decided_accept or decided_reject or (
                fast[1][i] - fast[0][i] < 1e-12
            )
            if decided_accept:
                assert exact[i] >= theta - 1e-9
            if decided_reject:
                assert exact[i] < theta + 1e-9


class TestCascadeAgreement:
    @pytest.mark.parametrize("dim", [2, 3, 9])
    def test_cascade_vs_exact_vs_monte_carlo(self, dim):
        gaussian, points, delta = anisotropic_case(dim, seed=40 + dim)
        cascade = CascadeIntegrator()
        results = cascade.qualification_probabilities(gaussian, points, delta)
        estimates = np.array([r.estimate for r in results])
        # Exact scalar ground truth (Imhof / Ruben with fallback).
        exact = np.array([
            qualification_probability_exact(gaussian, p, delta)
            for p in points
        ])
        np.testing.assert_allclose(estimates, exact, atol=1e-6)
        # Monte-Carlo oracle agreement within its own sampling noise (the
        # rule-of-three slack covers tail probabilities the oracle's
        # finite sample cannot resolve: stderr is 0 at zero observed hits).
        oracle, stderr = oracle_probabilities(
            gaussian, points, delta, seed=77 + dim
        )
        assert np.all(np.abs(estimates - oracle) <= 5.0 * stderr + 1e-5)
        assert all(r.n_samples == 0 for r in results)

    def test_decide_matches_exact_threshold_rule(self):
        gaussian, points, delta = anisotropic_case(3, seed=21)
        theta = 0.15
        cascade = CascadeIntegrator()
        accept, reject, results = cascade.decide(
            gaussian, points, delta, theta
        )
        assert accept.shape == reject.shape == (points.shape[0],)
        assert not np.any(accept & reject)
        assert np.all(accept | reject)  # the cascade decides everything
        exact = np.array([
            qualification_probability_exact(gaussian, p, delta)
            for p in points
        ])
        np.testing.assert_array_equal(accept, exact >= theta)
        # Reported estimates must back the decision under estimate >= θ.
        for est, acc in zip(results, accept):
            assert est.meets_threshold(theta) == acc

    def test_empty_block(self):
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        accept, reject, results = CascadeIntegrator().decide(
            gaussian, np.empty((0, 2)), 1.0, 0.1
        )
        assert accept.size == 0 and reject.size == 0 and results == []

    def test_scalar_entry_point(self, paper_gaussian):
        cascade = CascadeIntegrator()
        point = np.array([510.0, 490.0])
        got = cascade.qualification_probability(paper_gaussian, point, 25.0)
        expected = qualification_probability_exact(paper_gaussian, point, 25.0)
        assert got.estimate == pytest.approx(expected, abs=1e-6)
        assert got.n_samples == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(IntegrationError):
            CascadeIntegrator(tol=0.0)
        with pytest.raises(IntegrationError):
            CascadeIntegrator(max_terms=0)
        with pytest.raises(IntegrationError):
            CascadeIntegrator().decide(
                Gaussian([0.0, 0.0], np.eye(2)),
                np.zeros((1, 2)),
                -1.0,
                0.1,
            )


class TestTiering:
    def test_tier_labels_partition_the_block(self):
        gaussian, points, delta = anisotropic_case(2, seed=33, n_points=120)
        _, _, results = CascadeIntegrator().decide(
            gaussian, points, delta, 0.05
        )
        methods = {r.method for r in results}
        assert methods <= {
            "cascade-sandwich", "cascade-ruben", "cascade-imhof"
        }
        counts = {m: sum(r.method == m for r in results) for m in methods}
        assert sum(counts.values()) == points.shape[0]
        # The cloud spans deep-inside to far-outside candidates, so the
        # cheap sandwich tier must decide a non-trivial share.
        assert counts.get("cascade-sandwich", 0) > 0

    def test_far_candidates_decided_by_sandwich_alone(self, paper_gaussian):
        far = paper_gaussian.mean + np.array([[5000.0, 0.0], [0.0, 7000.0]])
        accept, reject, results = CascadeIntegrator().decide(
            paper_gaussian, far, 25.0, 0.01
        )
        assert np.all(reject)
        assert all(r.method == "cascade-sandwich" for r in results)

    def test_underflow_candidates_reach_imhof(self):
        # Anisotropic covariance (isotropic ones make the sandwich bounds
        # exact) with huge noncentrality and a ball past the mean: the
        # sandwich stays wide, Ruben underflows, only Imhof can settle it.
        gaussian = Gaussian([0.0, 0.0], np.diag([1.0, 4.0]))
        points = np.array([[40.0, 0.0]])
        accept, _, results = CascadeIntegrator().decide(
            gaussian, points, 42.0, 0.5
        )
        assert results[0].method == "cascade-imhof"
        assert accept[0]  # exact probability is > 0.5 here
        expected = qualification_probability_exact(
            gaussian, points[0], 42.0, method="imhof"
        )
        assert results[0].estimate == pytest.approx(expected, abs=1e-9)

    def test_engine_records_tier_decisions(self):
        rng = np.random.default_rng(8)
        pts = rng.random((3000, 2)) * 100.0
        index = RStarTree(2)
        index.bulk_load(list(range(len(pts))), pts)
        # RR+OR only reject, so every surviving candidate reaches Phase 3.
        engine = QueryEngine(
            index, make_strategies("rr+or"), CascadeIntegrator()
        )
        query = ProbabilisticRangeQuery(
            Gaussian([50.0, 50.0], 40.0 * np.eye(2)), 8.0, 0.02
        )
        result = engine.execute(query)
        assert result.stats.integrations > 0
        assert (
            sum(result.stats.tier_decisions.values())
            == result.stats.integrations
        )
        assert result.stats.integration_samples == 0


class TestDecideDefault:
    def test_base_class_decide_equals_threshold_rule(self, paper_gaussian):
        pts = paper_gaussian.mean + np.array(
            [[0.0, 0.0], [15.0, -10.0], [60.0, 40.0], [200.0, 0.0]]
        )
        theta = 0.05
        a = ImportanceSamplingIntegrator(4_000, seed=3, share_samples=True)
        b = ImportanceSamplingIntegrator(4_000, seed=3, share_samples=True)
        accept, reject, results = a.decide(paper_gaussian, pts, 25.0, theta)
        reference = b.qualification_probabilities(paper_gaussian, pts, 25.0)
        assert [r.estimate for r in results] == [
            r.estimate for r in reference
        ]
        np.testing.assert_array_equal(
            accept, [r.meets_threshold(theta) for r in reference]
        )
        np.testing.assert_array_equal(accept, ~reject)


class TestBatchDeterminism:
    def test_run_batch_bit_identical_and_sampling_free(self):
        rng = np.random.default_rng(17)
        pts = rng.random((4000, 2)) * 100.0
        index = RStarTree(2)
        index.bulk_load(list(range(len(pts))), pts)
        engine = QueryEngine(
            index, make_strategies("rr+or"), CascadeIntegrator()
        )
        queries = [
            ProbabilisticRangeQuery(
                Gaussian(center, variance * np.eye(2)), delta, theta
            )
            for center, variance, delta, theta in (
                ([30.0, 40.0], 30.0, 7.0, 0.02),
                ([55.0, 60.0], 60.0, 10.0, 0.05),
                ([80.0, 20.0], 15.0, 5.0, 0.10),
                ([10.0, 90.0], 45.0, 9.0, 0.01),
            )
        ]
        reference = engine.run_batch(queries, workers=1)
        assert reference.stats.integration_samples == 0
        assert reference.stats.integrations > 0
        for workers in (2, 4):
            again = engine.run_batch(queries, workers=workers)
            assert again.ids == reference.ids
            assert again.stats.integration_samples == 0
            assert (
                again.stats.tier_decisions == reference.stats.tier_decisions
            )
        # Different base seeds change nothing either: the cascade is
        # RNG-free end to end.
        reseeded = engine.run_batch(queries, workers=3, base_seed=999)
        assert reseeded.ids == reference.ids

"""Tests for selectivity estimation and the moving-object database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.moving import MovingObject, MovingObjectDatabase, stale_gaussian
from repro.core.query import ProbabilisticRangeQuery
from repro.core.selectivity import SelectivityEstimator
from repro.datasets.synthetic import clustered_points, uniform_points
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.exact import ExactIntegrator


class TestSelectivityEstimator:
    @pytest.fixture(scope="class")
    def uniform_data(self):
        return uniform_points(40_000, 2, seed=3)

    @pytest.fixture(scope="class")
    def estimator(self, uniform_data):
        return SelectivityEstimator(uniform_data, bins=40)

    def test_rect_estimate_on_uniform_data(self, estimator):
        from repro.geometry.mbr import Rect

        rect = Rect([100.0, 100.0], [300.0, 400.0])
        expected = 40_000 * (200.0 * 300.0) / 1_000_000.0
        assert estimator.estimate_in_rect(rect) == pytest.approx(expected, rel=0.1)

    def test_whole_domain_estimate_is_total(self, estimator):
        from repro.geometry.mbr import Rect

        rect = Rect([-10.0, -10.0], [1010.0, 1010.0])
        assert estimator.estimate_in_rect(rect) == pytest.approx(40_000, rel=1e-6)

    def test_empty_region(self, estimator):
        from repro.geometry.mbr import Rect

        rect = Rect([2000.0, 2000.0], [3000.0, 3000.0])
        assert estimator.estimate_in_rect(rect) == 0.0

    def test_density_outside_bounds_is_zero(self, estimator):
        assert estimator.density_at(np.array([[5000.0, 5000.0]]))[0] == 0.0

    @pytest.mark.parametrize("spec", ["rr", "bf", "all"])
    def test_candidate_estimate_matches_actual(self, uniform_data, estimator, spec):
        from repro.bench.experiments import _CountOnlyIntegrator

        db = SpatialDatabase(uniform_data)
        sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
        query = ProbabilisticRangeQuery(Gaussian([500.0, 500.0], sigma), 25.0, 0.01)
        predicted = estimator.estimate_candidates(query, spec, seed=1)
        actual = (
            db.engine(strategies=spec, integrator=_CountOnlyIntegrator())
            .execute(query)
            .stats.integrations
        )
        assert predicted == pytest.approx(actual, rel=0.25)

    def test_estimate_on_skewed_data(self):
        points = clustered_points(30_000, 2, n_clusters=8, spread=20.0, seed=4)
        estimator = SelectivityEstimator(points, bins=50)
        db = SpatialDatabase(points)
        from repro.bench.experiments import _CountOnlyIntegrator

        center = points[100]
        query = ProbabilisticRangeQuery(
            Gaussian(center, 100.0 * np.eye(2)), 20.0, 0.05
        )
        predicted = estimator.estimate_candidates(query, "all", seed=2)
        actual = (
            db.engine(strategies="all", integrator=_CountOnlyIntegrator())
            .execute(query)
            .stats.integrations
        )
        # Skewed data is harder; a factor-of-two band still orders plans.
        assert 0.4 * actual <= predicted <= 2.5 * max(actual, 1)

    def test_empty_proof_estimates_zero(self, estimator):
        query = ProbabilisticRangeQuery(
            Gaussian.isotropic([500.0, 500.0], 400.0), 1.0, 0.95
        )
        assert estimator.estimate_candidates(query, "bf") == 0.0

    def test_validation(self):
        with pytest.raises(QueryError):
            SelectivityEstimator(np.empty((0, 2)))
        with pytest.raises(QueryError):
            SelectivityEstimator(np.zeros((10, 9)))  # d too high
        with pytest.raises(QueryError):
            SelectivityEstimator(np.zeros((10, 2)), bins=1)


class TestStaleGaussian:
    def test_dead_reckoned_mean(self):
        g = stale_gaussian([1.0, 2.0], [3.0, -1.0], age=2.0)
        np.testing.assert_allclose(g.mean, [7.0, 0.0])

    def test_variance_grows_linearly(self):
        g1 = stale_gaussian([0.0, 0.0], [0.0, 0.0], age=1.0, diffusion=2.0)
        g4 = stale_gaussian([0.0, 0.0], [0.0, 0.0], age=4.0, diffusion=2.0)
        assert g4.eigenvalues[0] == pytest.approx(4.0 * g1.eigenvalues[0], rel=1e-6)

    def test_base_sigma_added(self):
        base = np.diag([5.0, 1.0])
        g = stale_gaussian([0.0, 0.0], [0.0, 0.0], age=0.0, base_sigma=base)
        np.testing.assert_allclose(np.diag(g.sigma), [5.0, 1.0], atol=1e-6)

    def test_validation(self):
        with pytest.raises(QueryError):
            stale_gaussian([0.0], [0.0, 0.0], 1.0)
        with pytest.raises(QueryError):
            stale_gaussian([0.0, 0.0], [0.0, 0.0], -1.0)
        with pytest.raises(QueryError):
            stale_gaussian([0.0, 0.0], [0.0, 0.0], 1.0, diffusion=0.0)


class TestMovingObjectDatabase:
    @pytest.fixture
    def fleet(self, rng):
        objects = [
            MovingObject(
                i,
                rng.random(2) * 100,
                rng.standard_normal(2) * 2.0,
            )
            for i in range(80)
        ]
        return MovingObjectDatabase(objects)

    def test_snapshot_positions(self, fleet):
        snap0 = fleet.snapshot_at(0.0)
        snap5 = fleet.snapshot_at(5.0)
        obj = fleet.object(3)
        np.testing.assert_allclose(snap5.point(3), obj.position_at(5.0))
        assert not np.allclose(snap0.point(3), snap5.point(3)) or np.allclose(
            obj.velocity, 0.0
        )

    def test_snapshot_cached(self, fleet):
        a = fleet.snapshot_at(2.0)
        b = fleet.snapshot_at(2.0)
        assert a is b
        c = fleet.snapshot_at(3.0)
        assert c is not a

    def test_query_from_object_excludes_self(self, fleet):
        result = fleet.query_from_object(
            0, t=1.0, last_report_time=0.5, delta=30.0, theta=0.2,
            integrator=ExactIntegrator(),
        )
        assert 0 not in result.ids

    def test_include_self(self, fleet):
        result = fleet.query_from_object(
            0, t=1.0, last_report_time=1.0, delta=30.0, theta=0.2,
            integrator=ExactIntegrator(), include_self=True,
        )
        assert 0 in result.ids  # own position qualifies at zero staleness

    def test_staleness_changes_answers(self, fleet):
        fresh = fleet.query_from_object(
            5, t=10.0, last_report_time=10.0, delta=15.0, theta=0.5,
            diffusion=4.0, integrator=ExactIntegrator(),
        )
        stale = fleet.query_from_object(
            5, t=10.0, last_report_time=0.0, delta=15.0, theta=0.5,
            diffusion=4.0, integrator=ExactIntegrator(),
        )
        # With theta > 1/2 and growing uncertainty, qualification can only
        # become harder for borderline neighbours.
        assert len(stale.ids) <= len(fresh.ids)

    def test_matches_manual_construction(self, fleet):
        t, report = 4.0, 1.0
        obj = fleet.object(7)
        belief = stale_gaussian(
            obj.position_at(report), obj.velocity, t - report, diffusion=1.0
        )
        manual = fleet.snapshot_at(t).probabilistic_range_query(
            belief, 20.0, 0.3, integrator=ExactIntegrator()
        )
        automatic = fleet.query_from_object(
            7, t=t, last_report_time=report, delta=20.0, theta=0.3,
            integrator=ExactIntegrator(), include_self=True,
        )
        assert manual.ids == automatic.ids

    def test_validation(self, rng):
        with pytest.raises(QueryError):
            MovingObjectDatabase([])
        duplicate = [
            MovingObject(1, [0.0, 0.0], [0.0, 0.0]),
            MovingObject(1, [1.0, 1.0], [0.0, 0.0]),
        ]
        with pytest.raises(QueryError):
            MovingObjectDatabase(duplicate)
        mixed = [
            MovingObject(1, [0.0, 0.0], [0.0, 0.0]),
            MovingObject(2, [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]),
        ]
        with pytest.raises(QueryError):
            MovingObjectDatabase(mixed)
        fleet = MovingObjectDatabase([MovingObject(1, [0.0, 0.0], [1.0, 0.0])])
        with pytest.raises(QueryError):
            fleet.query_from_object(1, t=0.0, last_report_time=1.0, delta=1.0, theta=0.5)
        with pytest.raises(QueryError):
            fleet.object(99)
        with pytest.raises(QueryError):
            MovingObject(1, [0.0], [0.0, 0.0])

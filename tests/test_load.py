"""The open-loop load harness: scenarios, virtual runs, sweeps, gates.

Covers the ``repro.load`` contract (``docs/load.md``):

- scenario specs validate eagerly and round-trip through JSON;
- schedules are pure functions of ``(seed, rate, duration, salt)`` and
  are drawn up front (the open-loop property);
- virtual-time sweeps are bit-reproducible — two runs of the same spec
  serialize to byte-identical ``BENCH_capacity.json``;
- the service under sustained overload keeps its promises: every
  response is one of the five typed statuses (never an exception),
  priority requests drain first, and goodput plateaus past the knee
  instead of collapsing;
- knee detection and the capacity trend gate catch regressions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.errors import LoadError, OverloadedError
from repro.gaussian.distribution import Gaussian
from repro.load import (
    SCENARIOS,
    Arrival,
    CapacityReport,
    LoadRunner,
    OP_QUERY,
    OP_UPDATE,
    RunReport,
    SaturationSweep,
    ScenarioSpec,
    ScenarioWorkload,
    VirtualClock,
    VirtualCostModel,
    detect_knee,
)
from repro.serve import (
    PRQRequest,
    QueryService,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OVERLOADED,
)

FIVE_STATUSES = {
    STATUS_OK,
    STATUS_DEGRADED,
    STATUS_OVERLOADED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_FAILED,
}


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(11)
    return SpatialDatabase(rng.random((400, 2)) * 100.0)


def small_cost_model(**overrides) -> VirtualCostModel:
    knobs = dict(
        seconds_per_query=0.004,
        batch_overhead=0.0005,
        parallelism=2.0,
    )
    knobs.update(overrides)
    return VirtualCostModel(**knobs)


def virtual_service(database, **knobs) -> QueryService:
    knobs.setdefault("clock", VirtualClock())
    knobs.setdefault("manual", True)
    knobs.setdefault("cost_model", small_cost_model())
    return QueryService(database, **knobs)


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------


class TestScenarioSpec:
    def test_round_trips_through_dict(self):
        spec = SCENARIOS["mixed"]
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        # And through actual JSON text, the CLI path.
        again = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_rejects_unknown_fields(self):
        with pytest.raises(LoadError, match="unknown scenario fields"):
            ScenarioSpec.from_dict({"name": "x", "rate": 100})

    @pytest.mark.parametrize(
        "bad",
        [
            {"n_shapes": 0},
            {"zipf_s": -1.0},
            {"kind_mix": {}},
            {"kind_mix": {"warp": 1.0}},
            {"kind_mix": {"prq": -1.0}},
            {"kind_mix": {"prq": 0.0}},
            {"deadline_fraction": 1.5},
            {"monitor_fraction": -0.1},
            {"thetas": (0.0, 0.5)},
            {"thetas": ()},
            {"monitor_fraction": 0.5, "n_subscriptions": 0},
        ],
    )
    def test_validates_eagerly(self, bad):
        with pytest.raises(LoadError):
            ScenarioSpec(**bad)

    def test_builtin_scenarios_are_valid_and_named(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_needs_target_table_tracks_uncertain_weight(self):
        assert not SCENARIOS["hotkey"].needs_target_table
        assert SCENARIOS["mixed"].needs_target_table


# ----------------------------------------------------------------------
# ScenarioWorkload + schedules
# ----------------------------------------------------------------------


class TestScenarioWorkload:
    def test_schedule_is_deterministic(self, database):
        workload = ScenarioWorkload(SCENARIOS["hotkey"], database)
        first = workload.schedule(200.0, 1.0, salt=3)
        second = workload.schedule(200.0, 1.0, salt=3)
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert a.at == b.at
            assert a.op == b.op
            if a.op == OP_QUERY:
                assert a.request.fingerprint == b.request.fingerprint
                assert a.request.deadline == b.request.deadline
                assert a.request.priority == b.request.priority

    def test_salt_and_rate_change_the_draw(self, database):
        workload = ScenarioWorkload(SCENARIOS["hotkey"], database)
        base = workload.schedule(200.0, 1.0, salt=0)
        other_salt = workload.schedule(200.0, 1.0, salt=1)
        assert [a.at for a in base] != [a.at for a in other_salt]
        faster = workload.schedule(400.0, 1.0, salt=0)
        assert len(faster) > len(base)

    def test_schedule_is_open_loop(self, database):
        """Timestamps are fixed up front, sorted, and inside [0, dur)."""
        workload = ScenarioWorkload(SCENARIOS["uniform"], database)
        schedule = workload.schedule(300.0, 2.0, salt=0)
        times = [a.at for a in schedule]
        assert times == sorted(times)
        assert all(0.0 < t < 2.0 for t in times)
        # Poisson at 300/s over 2s: ~600 arrivals, loosely checked.
        assert 450 <= len(schedule) <= 750

    def test_zipf_skew_concentrates_popularity(self, database):
        spec = ScenarioSpec(name="skew", n_shapes=32, zipf_s=1.5)
        workload = ScenarioWorkload(spec, database)
        schedule = workload.schedule(500.0, 2.0, salt=0)
        counts: dict[bytes, int] = {}
        for arrival in schedule:
            key = arrival.request.fingerprint
            counts[key] = counts.get(key, 0) + 1
        top = max(counts.values())
        assert top / len(schedule) > 3.0 / 32.0  # far above uniform share

    def test_monitor_storm_mixes_updates(self, database):
        schedule = ScenarioWorkload(SCENARIOS["storm"], database).schedule(
            400.0, 1.0, salt=0
        )
        updates = [a for a in schedule if a.op == OP_UPDATE]
        queries = [a for a in schedule if a.op == OP_QUERY]
        assert len(updates) > len(queries)  # monitor_fraction = 0.7
        dim = database.dim
        for update in updates:
            assert update.subscription_id is not None
            assert update.mean.shape == (dim,)

    def test_uncertain_mix_requires_target_table(self, database):
        spec = ScenarioSpec(name="u", kind_mix={"uncertain": 1.0})
        with pytest.raises(LoadError, match="target covariance table"):
            ScenarioWorkload(spec, database)
        prepared = ScenarioWorkload.prepare_database(spec, database)
        assert prepared.targets is not None
        workload = ScenarioWorkload(spec, prepared)
        assert workload.kind_histogram() == {"uncertain": spec.n_shapes}

    def test_prepare_database_is_a_noop_without_uncertain(self, database):
        assert (
            ScenarioWorkload.prepare_database(SCENARIOS["hotkey"], database)
            is database
        )

    def test_schedule_validates_inputs(self, database):
        workload = ScenarioWorkload(SCENARIOS["uniform"], database)
        with pytest.raises(LoadError):
            workload.schedule(0.0, 1.0)
        with pytest.raises(LoadError):
            workload.schedule(100.0, 0.0)


# ----------------------------------------------------------------------
# VirtualClock + VirtualCostModel
# ----------------------------------------------------------------------


class TestVirtualTime:
    def test_clock_advances_monotonically(self):
        clock = VirtualClock(10.0)
        assert clock() == 10.0
        clock.advance(1.5)
        assert clock() == 11.5
        clock.advance_to(11.0)  # never rewinds
        assert clock() == 11.5
        with pytest.raises(LoadError):
            clock.advance(-0.1)

    def test_cost_model_batch_law(self):
        model = VirtualCostModel(
            seconds_per_query=0.01, batch_overhead=0.001, parallelism=4.0
        )
        request = PRQRequest(Gaussian([0.0, 0.0], np.eye(2)), 1.0, 0.5)
        assert model.query_seconds(request) == 0.01
        assert model.degraded_seconds(request) == pytest.approx(0.0025)
        costs = [model.query_seconds(request)] * 8
        assert model.batch_seconds(costs) == pytest.approx(0.001 + 0.08 / 4)
        assert model.batch_seconds([]) == 0.0
        # Batching 8 must beat 8 singles (the whole point of coalescing).
        assert model.batch_seconds(costs) < 8 * model.batch_seconds(costs[:1])

    def test_cost_model_validates(self):
        with pytest.raises(LoadError):
            VirtualCostModel(seconds_per_query=0.0)
        with pytest.raises(LoadError):
            VirtualCostModel(parallelism=0.5)
        with pytest.raises(LoadError):
            VirtualCostModel(degraded_ratio=1.5)

    def test_runner_rejects_manual_service_without_advanceable_clock(
        self, database
    ):
        service = QueryService(
            database, manual=True, clock=lambda: 0.0, max_queue=4
        )
        try:
            with pytest.raises(LoadError, match="advanceable clock"):
                LoadRunner(service)
        finally:
            service.close()


# ----------------------------------------------------------------------
# Virtual runs: determinism and the service contract under load
# ----------------------------------------------------------------------


class TestVirtualRuns:
    def run_once(self, database, spec, rate, **knobs) -> RunReport:
        sweep = SaturationSweep(
            database,
            spec,
            rates=[rate],
            duration=1.0,
            cost_model=small_cost_model(),
            service_knobs=dict(
                {"max_queue": 32, "max_batch": 8, "batch_window": 0.002,
                 "cache_size": 64},
                **knobs,
            ),
        )
        return sweep.run_step(rate)

    def test_run_is_bit_reproducible(self, database):
        spec = SCENARIOS["storm"]
        first = self.run_once(database, spec, 400.0)
        second = self.run_once(database, spec, 400.0)
        assert first.to_dict() == second.to_dict()
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_overload_responses_are_typed_never_raised(self, database):
        """Sustained 4x overload: every injected request resolves to one
        of the five statuses; nothing raises, nothing hangs."""
        spec = ScenarioSpec(name="flood", n_shapes=128, zipf_s=0.0)
        report = self.run_once(database, spec, 2000.0, cache_size=0)
        assert set(report.statuses) == FIVE_STATUSES
        assert sum(report.statuses.values()) == report.injected
        assert report.statuses[STATUS_OVERLOADED] > 0  # it really shed
        assert report.statuses[STATUS_FAILED] == 0
        assert report.shed_rate > 0.2

    def test_goodput_plateaus_past_the_knee(self, database):
        """Past saturation, goodput must hold its plateau (bounded queue
        + typed shedding), not collapse with offered load."""
        spec = ScenarioSpec(name="plateau", n_shapes=256, zipf_s=0.0)
        sweep = SaturationSweep(
            database,
            spec,
            rates=[200.0, 400.0, 800.0, 1600.0],
            duration=1.5,
            cost_model=small_cost_model(),
            service_knobs={"max_queue": 64, "max_batch": 8,
                           "batch_window": 0.002, "cache_size": 0},
        )
        report = sweep.run()
        assert report.knee["saturated"]
        knee = report.knee["knee_qps"]
        capacity = report.knee["capacity_qps"]
        past_knee = [
            step["goodput_qps"]
            for step in report.steps
            if step["offered_qps"] > knee
        ]
        assert past_knee, "sweep never crossed its own knee"
        assert min(past_knee) >= 0.7 * capacity

    def test_priority_drains_first_under_overload(self, database):
        """With the queue backed up, pump() must execute high-priority
        requests before priority-0 ones admitted earlier."""
        service = virtual_service(
            database, max_queue=16, max_batch=4, batch_window=0.0,
            cache_size=0,
        )
        try:
            rng = np.random.default_rng(5)
            futures = {}
            for index in range(8):
                priority = 1 if index >= 4 else 0  # low admitted first
                center = rng.random(2) * 100.0
                request = PRQRequest(
                    Gaussian(center, np.eye(2)), 5.0, 0.5,
                    priority=priority, request_id=f"p{priority}-{index}",
                )
                futures[request.request_id] = service.submit(request)
            assert service.snapshot().queue_depth == 8
            service.pump()  # drains max_batch = 4
            done = {rid for rid, fut in futures.items() if fut.done()}
            assert done == {"p1-4", "p1-5", "p1-6", "p1-7"}
            service.pump()
            assert all(fut.done() for fut in futures.values())
        finally:
            service.close()

    def test_admission_shed_is_immediate_and_typed(self, database):
        service = virtual_service(database, max_queue=2, max_batch=2,
                                  batch_window=0.0, cache_size=0)
        try:
            rng = np.random.default_rng(9)
            responses = []
            for index in range(5):
                request = PRQRequest(
                    Gaussian(rng.random(2) * 100.0, np.eye(2)), 5.0, 0.5,
                    request_id=index,
                )
                future = service.submit(request)
                if future.done():
                    responses.append(future.result())
            # Queue bound 2: requests 2..4 shed instantly with the typed
            # error, before any execution happened.
            assert [r.status for r in responses] == [STATUS_OVERLOADED] * 3
            assert all(isinstance(r.error, OverloadedError)
                       for r in responses)
            assert service.snapshot().overloaded == 3
        finally:
            service.close()

    def test_deadline_pressure_degrades_or_expires(self, database):
        spec = ScenarioSpec(
            name="deadlines", n_shapes=64, zipf_s=0.0,
            deadline_fraction=1.0, deadline_ms=(1.0, 4.0),
        )
        report = self.run_once(database, spec, 800.0, cache_size=0)
        pressured = (
            report.statuses[STATUS_DEGRADED]
            + report.statuses[STATUS_DEADLINE_EXCEEDED]
        )
        assert pressured > 0
        assert report.degraded_rate + report.deadline_exceeded_rate > 0

    def test_monitor_updates_flow_through_the_run(self, database):
        report = self.run_once(database, SCENARIOS["storm"], 300.0)
        assert report.monitor_updates > 0
        assert sum(report.monitor["outcomes"].values()) == report.monitor_updates
        assert report.monitor["mean_ms"] >= 0.0


# ----------------------------------------------------------------------
# Snapshots (satellite: structured stats APIs)
# ----------------------------------------------------------------------


class TestSnapshots:
    def test_service_snapshot_tracks_queue_and_cache(self, database):
        service = virtual_service(database, max_queue=8, max_batch=8,
                                  batch_window=0.0, cache_size=16)
        try:
            request = PRQRequest(
                Gaussian([50.0, 50.0], np.eye(2)), 5.0, 0.5
            )
            service.submit(request)
            snap = service.snapshot()
            assert snap.queue_depth == 1
            assert snap.in_flight == 1
            assert snap.queue_capacity == 8
            service.pump()
            service.submit(request)  # identical → cache hit
            snap = service.snapshot()
            assert snap.queue_depth == 0
            assert snap.in_flight == 0
            assert snap.submitted == 2
            assert snap.ok == 2
            assert snap.cache_hits == 1
            assert snap.cache_entries == 1
            assert 0.0 < snap.cache_hit_rate <= 0.5
            payload = snap.to_dict()
            assert payload["queue_depth"] == 0
            assert json.dumps(payload, sort_keys=True)
        finally:
            service.close()

    def test_monitor_snapshot_tracks_outcomes(self, database):
        service = virtual_service(database)
        try:
            gaussian = Gaussian([50.0, 50.0], np.eye(2))
            service.monitor.subscribe(gaussian, 5.0, 0.5,
                                      subscription_id="s1")
            service.monitor.update("s1", [50.001, 50.001])
            snap = service.monitor.snapshot()
            assert snap.active_subscriptions == 1
            assert snap.subscribed == 1
            assert snap.updates == 1
            assert (
                snap.survived + snap.reintegrated + snap.replanned
                + snap.degraded
            ) == 1
            assert 0.0 <= snap.survival_rate <= 1.0
            service.monitor.unsubscribe("s1")
            assert service.monitor.snapshot().active_subscriptions == 0
            assert json.dumps(snap.to_dict(), sort_keys=True)
        finally:
            service.close()


# ----------------------------------------------------------------------
# Sweeps, knee detection, capacity reports
# ----------------------------------------------------------------------


def synthetic_step(rate: float, shed: float, goodput: float) -> dict:
    return {
        "offered_qps": rate,
        "shed_rate": shed,
        "goodput_qps": goodput,
        "latency_ms": {"p50": 5.0, "p95": 9.0, "p99": 12.0},
    }


class TestKneeDetection:
    def test_interpolates_the_crossing(self):
        steps = [
            synthetic_step(100.0, 0.0, 100.0),
            synthetic_step(200.0, 0.0, 200.0),
            synthetic_step(400.0, 0.05, 390.0),
        ]
        knee = detect_knee(steps, shed_threshold=0.01)
        assert knee["saturated"]
        # Crossing 0.01 on the way from 0.0 @200 to 0.05 @400.
        assert knee["knee_qps"] == pytest.approx(240.0)
        assert knee["capacity_qps"] == pytest.approx(390.0)

    def test_knee_at_the_first_step(self):
        steps = [synthetic_step(500.0, 0.4, 300.0)]
        knee = detect_knee(steps)
        assert knee["saturated"] and knee["knee_qps"] == 500.0

    def test_no_knee_when_never_saturated(self):
        steps = [
            synthetic_step(100.0, 0.0, 99.0),
            synthetic_step(200.0, 0.001, 198.0),
        ]
        knee = detect_knee(steps)
        assert not knee["saturated"]
        assert knee["knee_qps"] is None
        assert knee["capacity_qps"] == pytest.approx(198.0)

    def test_rejects_empty_sweeps(self):
        with pytest.raises(LoadError):
            detect_knee([])


class TestSaturationSweep:
    def test_sweep_is_bit_reproducible(self, database, tmp_path):
        def run() -> CapacityReport:
            return SaturationSweep(
                database,
                SCENARIOS["hotkey"],
                rates=[200.0, 400.0, 800.0],
                duration=1.0,
                cost_model=small_cost_model(),
                service_knobs={"max_queue": 32, "max_batch": 8,
                               "batch_window": 0.002, "cache_size": 64},
            ).run()

        first, second = run(), run()
        assert first.to_json() == second.to_json()
        path = first.write(tmp_path / "BENCH_capacity.json")
        assert CapacityReport.load(path).to_json() == first.to_json()

    def test_sweep_validates_rates(self, database):
        spec = SCENARIOS["uniform"]
        with pytest.raises(LoadError):
            SaturationSweep(database, spec, rates=[])
        with pytest.raises(LoadError):
            SaturationSweep(database, spec, rates=[200.0, 100.0])
        with pytest.raises(LoadError):
            SaturationSweep(database, spec, rates=[-5.0])

    def test_report_carries_context(self, database):
        report = SaturationSweep(
            database, SCENARIOS["uniform"], rates=[150.0], duration=0.5,
            cost_model=small_cost_model(),
        ).run()
        assert report.mode == "virtual"
        assert report.database == {"points": 400, "dim": 2}
        assert report.scenario["name"] == "uniform"
        assert report.cost_model["seconds_per_query"] == 0.004
        assert len(report.steps) == 1


class TestTrendGate:
    def baseline(self) -> CapacityReport:
        return CapacityReport(
            scenario={"name": "x"},
            mode="virtual",
            duration_seconds=1.0,
            database={},
            service={},
            cost_model=None,
            steps=[synthetic_step(400.0, 0.0, 400.0),
                   synthetic_step(800.0, 0.3, 500.0)],
            knee={"saturated": True, "knee_qps": 600.0,
                  "capacity_qps": 500.0},
        )

    def with_capacity(self, capacity: float, knee: float) -> CapacityReport:
        report = self.baseline()
        return CapacityReport(
            scenario=report.scenario, mode=report.mode,
            duration_seconds=1.0, database={}, service={}, cost_model=None,
            steps=[synthetic_step(400.0, 0.0, 400.0),
                   synthetic_step(800.0, 0.3, capacity)],
            knee={"saturated": True, "knee_qps": knee,
                  "capacity_qps": capacity},
        )

    def test_identical_reports_pass(self):
        gate = self.baseline().compare(self.baseline())
        assert gate.passed and not gate.regressions
        assert {c["metric"] for c in gate.checks} >= {
            "capacity_qps", "knee_qps"
        }

    def test_regression_beyond_tolerance_fails(self):
        gate = self.with_capacity(350.0, 600.0).compare(
            self.baseline(), tolerance=0.2
        )
        assert not gate.passed
        assert "capacity_qps" in gate.regressions
        assert "REGRESSED" in gate.summary()

    def test_drop_within_tolerance_passes(self):
        gate = self.with_capacity(450.0, 550.0).compare(
            self.baseline(), tolerance=0.2
        )
        assert gate.passed

    def test_improvement_is_surfaced_not_failed(self):
        gate = self.with_capacity(900.0, 1000.0).compare(
            self.baseline(), tolerance=0.2
        )
        assert gate.passed
        assert "capacity_qps" in gate.improvements
        assert "re-baselining" in gate.summary()

    def test_mode_mismatch_is_a_usage_error(self):
        real = CapacityReport(
            scenario={}, mode="real", duration_seconds=1.0, database={},
            service={}, cost_model=None,
            steps=[synthetic_step(100.0, 0.0, 100.0)],
            knee={"saturated": False, "knee_qps": None,
                  "capacity_qps": 100.0},
        )
        with pytest.raises(LoadError, match="cannot compare"):
            real.compare(self.baseline())

    def test_report_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(LoadError, match="no capacity report"):
            CapacityReport.load(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LoadError, match="not JSON"):
            CapacityReport.load(bad)
        wrong_version = tmp_path / "version.json"
        wrong_version.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(LoadError, match="schema_version"):
            CapacityReport.load(wrong_version)


# ----------------------------------------------------------------------
# Real-mode smoke (wall clock, threaded service)
# ----------------------------------------------------------------------


class TestRealMode:
    def test_real_run_answers_everything(self, database):
        spec = ScenarioSpec(name="real-smoke", n_shapes=16, zipf_s=1.0)
        sweep = SaturationSweep(
            database, spec, rates=[150.0], duration=0.4, virtual=False,
            service_knobs={"max_queue": 64, "max_batch": 16,
                           "batch_window": 0.001},
        )
        report = sweep.run_step(150.0)
        assert report.mode == "real"
        assert report.injected > 0
        assert sum(report.statuses.values()) == report.injected
        assert set(report.statuses) <= FIVE_STATUSES
        assert report.statuses[STATUS_OK] > 0
        assert report.latency_ms["p99"] >= report.latency_ms["p50"] >= 0.0

"""Tests for the from-scratch R*-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.geometry.mbr import Rect
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RStarTree
from repro.index.split import rstar_split


def build_pair(points: np.ndarray, max_entries: int = 16):
    """An R*-tree and a linear-scan oracle over the same points."""
    tree = RStarTree(points.shape[1], max_entries=max_entries)
    oracle = LinearScanIndex(points.shape[1])
    for i, p in enumerate(points):
        tree.insert(i, p)
        oracle.insert(i, p)
    return tree, oracle


class TestConstruction:
    def test_parameters_validated(self):
        with pytest.raises(IndexError_):
            RStarTree(0)
        with pytest.raises(IndexError_):
            RStarTree(2, max_entries=3)
        with pytest.raises(IndexError_):
            RStarTree(2, max_entries=10, min_entries=6)  # > M/2
        with pytest.raises(IndexError_):
            RStarTree(2, max_entries=10, min_entries=1)

    def test_default_min_entries_is_40_percent(self):
        tree = RStarTree(2, max_entries=50)
        assert tree.min_entries == 20

    def test_empty_tree(self):
        tree = RStarTree(2)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search_rect(Rect([0, 0], [1, 1])) == []
        assert tree.knn([0.0, 0.0], 3) == []


class TestInsertion:
    def test_duplicate_id_rejected(self):
        tree = RStarTree(2)
        tree.insert(1, [0.0, 0.0])
        with pytest.raises(IndexError_):
            tree.insert(1, [1.0, 1.0])

    def test_wrong_dim_rejected(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.insert(1, [0.0])

    def test_non_finite_rejected(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.insert(1, [np.inf, 0.0])

    def test_get_round_trip(self, rng):
        tree = RStarTree(3)
        pts = rng.random((20, 3))
        for i, p in enumerate(pts):
            tree.insert(i, p)
        for i, p in enumerate(pts):
            np.testing.assert_array_equal(tree.get(i), p)

    def test_get_unknown_raises(self):
        with pytest.raises(IndexError_):
            RStarTree(2).get(99)

    def test_invariants_after_many_inserts(self, rng):
        tree = RStarTree(2, max_entries=8)
        for i, p in enumerate(rng.random((500, 2)) * 100):
            tree.insert(i, p)
        tree.check_invariants()
        assert tree.height >= 3
        assert tree.stats.splits > 0
        assert tree.stats.reinsertions > 0

    def test_duplicate_points_different_ids_allowed(self):
        tree = RStarTree(2, max_entries=4)
        for i in range(50):
            tree.insert(i, [1.0, 1.0])
        tree.check_invariants()
        assert sorted(tree.range_search_rect(Rect([1, 1], [1, 1]))) == list(range(50))


class TestRangeSearch:
    def test_matches_linear_scan(self, rng):
        pts = rng.random((800, 2)) * 100
        tree, oracle = build_pair(pts)
        for _ in range(20):
            lo = rng.random(2) * 80
            rect = Rect(lo, lo + rng.random(2) * 30)
            assert sorted(tree.range_search_rect(rect)) == sorted(
                oracle.range_search_rect(rect)
            )

    def test_sphere_matches_linear_scan(self, rng):
        pts = rng.random((600, 3)) * 50
        tree, oracle = build_pair(pts)
        for _ in range(15):
            center = rng.random(3) * 50
            radius = rng.random() * 15
            assert sorted(tree.range_search_sphere(center, radius)) == sorted(
                oracle.range_search_sphere(center, radius)
            )

    def test_wrong_dim_query_rejected(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.range_search_rect(Rect([0.0], [1.0]))

    def test_negative_radius_rejected(self):
        tree = RStarTree(2)
        tree.insert(0, [0.0, 0.0])
        with pytest.raises(IndexError_):
            tree.range_search_sphere([0.0, 0.0], -1.0)

    def test_stats_accumulate(self, rng):
        pts = rng.random((200, 2))
        tree, _ = build_pair(pts)
        tree.stats.reset()
        tree.range_search_rect(Rect([0.0, 0.0], [1.0, 1.0]))
        assert tree.stats.queries == 1
        assert tree.stats.node_accesses >= tree.height


class TestKnn:
    def test_matches_linear_scan(self, rng):
        pts = rng.random((700, 2)) * 100
        tree, oracle = build_pair(pts)
        for _ in range(15):
            q = rng.random(2) * 100
            k = int(rng.integers(1, 20))
            got = tree.knn(q, k)
            expected = oracle.knn(q, k)
            assert [i for i, _ in got] == [i for i, _ in expected]
            np.testing.assert_allclose(
                [d for _, d in got], [d for _, d in expected], rtol=1e-12
            )

    def test_k_larger_than_size(self, rng):
        pts = rng.random((5, 2))
        tree, _ = build_pair(pts)
        assert len(tree.knn([0.5, 0.5], 10)) == 5

    def test_k_zero_rejected(self):
        tree = RStarTree(2)
        tree.insert(0, [0.0, 0.0])
        with pytest.raises(IndexError_):
            tree.knn([0.0, 0.0], 0)

    def test_distances_sorted(self, rng):
        pts = rng.random((300, 2))
        tree, _ = build_pair(pts)
        distances = [d for _, d in tree.knn([0.5, 0.5], 25)]
        assert distances == sorted(distances)


class TestDeletion:
    def test_delete_then_search(self, rng):
        pts = rng.random((300, 2)) * 10
        tree, oracle = build_pair(pts, max_entries=8)
        victims = rng.choice(300, size=150, replace=False)
        for v in victims:
            tree.delete(int(v))
            oracle.delete(int(v))
        tree.check_invariants()
        rect = Rect([0.0, 0.0], [10.0, 10.0])
        assert sorted(tree.range_search_rect(rect)) == sorted(
            oracle.range_search_rect(rect)
        )

    def test_delete_all(self, rng):
        pts = rng.random((100, 2))
        tree, _ = build_pair(pts, max_entries=8)
        for i in range(100):
            tree.delete(i)
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()

    def test_delete_unknown_rejected(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.delete(5)

    def test_interleaved_insert_delete(self, rng):
        tree = RStarTree(2, max_entries=8)
        oracle = LinearScanIndex(2)
        next_id = 0
        live: list[int] = []
        for step in range(1200):
            if live and rng.random() < 0.4:
                victim = live.pop(int(rng.integers(len(live))))
                tree.delete(victim)
                oracle.delete(victim)
            else:
                p = rng.random(2) * 100
                tree.insert(next_id, p)
                oracle.insert(next_id, p)
                live.append(next_id)
                next_id += 1
        tree.check_invariants()
        rect = Rect([20.0, 20.0], [70.0, 70.0])
        assert sorted(tree.range_search_rect(rect)) == sorted(
            oracle.range_search_rect(rect)
        )


class TestBulkLoad:
    def test_str_matches_linear(self, rng):
        pts = rng.random((2000, 2)) * 100
        tree = RStarTree(2, max_entries=20)
        tree.bulk_load(range(2000), pts)
        tree.check_invariants()
        oracle = LinearScanIndex(2)
        oracle.bulk_load(range(2000), pts)
        rect = Rect([10.0, 10.0], [40.0, 55.0])
        assert sorted(tree.range_search_rect(rect)) == sorted(
            oracle.range_search_rect(rect)
        )

    def test_str_tree_is_shallower_or_equal(self, rng):
        pts = rng.random((1000, 2))
        packed = RStarTree(2, max_entries=16)
        packed.bulk_load(range(1000), pts)
        dynamic = RStarTree(2, max_entries=16)
        for i, p in enumerate(pts):
            dynamic.insert(i, p)
        assert packed.height <= dynamic.height
        assert packed.node_count() <= dynamic.node_count()

    def test_bulk_load_requires_empty(self, rng):
        tree = RStarTree(2)
        tree.insert(0, [0.0, 0.0])
        with pytest.raises(IndexError_):
            tree.bulk_load([1], np.zeros((1, 2)))

    def test_bulk_load_rejects_duplicates(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.bulk_load([1, 1], np.zeros((2, 2)))

    def test_bulk_load_rejects_shape_mismatch(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.bulk_load([0, 1], np.zeros((2, 3)))
        with pytest.raises(IndexError_):
            tree.bulk_load([0], np.zeros((2, 2)))

    def test_bulk_load_empty_ok(self):
        tree = RStarTree(2)
        tree.bulk_load([], np.empty((0, 2)))
        assert len(tree) == 0

    def test_delete_after_bulk_load(self, rng):
        pts = rng.random((500, 2))
        tree = RStarTree(2, max_entries=10)
        tree.bulk_load(range(500), pts)
        for i in range(0, 500, 2):
            tree.delete(i)
        assert len(tree) == 250
        assert sorted(tree.range_search_rect(Rect([0, 0], [1, 1]))) == list(
            range(1, 500, 2)
        )

    def test_9d_bulk_load(self, rng):
        pts = rng.standard_normal((3000, 9))
        tree = RStarTree(9, max_entries=30)
        tree.bulk_load(range(3000), pts)
        oracle = LinearScanIndex(9)
        oracle.bulk_load(range(3000), pts)
        assert sorted(tree.range_search_sphere(np.zeros(9), 2.0)) == sorted(
            oracle.range_search_sphere(np.zeros(9), 2.0)
        )
        got = tree.knn(np.zeros(9), 20)
        expected = oracle.knn(np.zeros(9), 20)
        assert [i for i, _ in got] == [i for i, _ in expected]


class TestSplitAlgorithm:
    def test_groups_partition_input(self, rng):
        rects = [Rect.from_point(p) for p in rng.random((17, 2))]
        decision = rstar_split(rects, min_entries=4)
        combined = sorted(decision.group_a + decision.group_b)
        assert combined == list(range(17))
        assert len(decision.group_a) >= 4
        assert len(decision.group_b) >= 4

    def test_split_too_few_rejected(self):
        rects = [Rect.from_point([0.0, 0.0])] * 3
        with pytest.raises(IndexError_):
            rstar_split(rects, min_entries=2)

    def test_clusters_separate_cleanly(self):
        # Two clearly separated clusters must not be mixed by the split.
        left = [Rect.from_point([float(i) / 10, 0.0]) for i in range(6)]
        right = [Rect.from_point([100.0 + float(i) / 10, 0.0]) for i in range(6)]
        decision = rstar_split(left + right, min_entries=4)
        group_a = set(decision.group_a)
        assert group_a in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})
        assert decision.overlap == 0.0

    @given(st.integers(12, 40), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_random_splits_respect_min_entries(self, n, m):
        rng = np.random.default_rng(n * 31 + m)
        rects = [Rect.from_point(p) for p in rng.random((n, 3))]
        decision = rstar_split(rects, min_entries=m)
        assert min(len(decision.group_a), len(decision.group_b)) >= m
        assert sorted(decision.group_a + decision.group_b) == list(range(n))

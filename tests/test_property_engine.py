"""Property-based end-to-end tests: the engine against the exact oracle.

Hypothesis generates random small databases, covariances and thresholds;
for every generated world and every strategy combination the engine (with
the exact integrator) must return exactly the set of objects whose true
qualification probability reaches θ.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.database import SpatialDatabase
from repro.core.strategies import STRATEGY_COMBINATIONS
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.integrate.exact import ExactIntegrator


@st.composite
def worlds(draw):
    """A random (points, gaussian, delta, theta) tuple in 2-D or 3-D."""
    dim = draw(st.integers(2, 3))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_points = draw(st.integers(20, 120))
    spread = draw(st.floats(5.0, 50.0))
    points = rng.standard_normal((n_points, dim)) * spread

    a = rng.standard_normal((dim, dim))
    sigma = a @ a.T + 0.5 * np.eye(dim)
    scale = draw(st.floats(0.5, 30.0))
    gaussian = Gaussian(rng.standard_normal(dim) * 5.0, scale * sigma)

    delta = draw(st.floats(1.0, 40.0))
    theta = draw(st.floats(0.005, 0.95))
    return points, gaussian, delta, theta


def oracle_ids(points, gaussian, delta, theta):
    probs = np.array(
        [
            qualification_probability_exact(gaussian, p, delta, method="ruben")
            for p in points
        ]
    )
    # Guard against decision-boundary ties: exact CDF and engine should
    # agree bit-for-bit since both call the same function, so no epsilon.
    return tuple(sorted(int(i) for i in np.nonzero(probs >= theta)[0]))


class TestEngineMatchesOracle:
    @given(worlds(), st.sampled_from(sorted(STRATEGY_COMBINATIONS)))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exact_engine_equals_oracle(self, world, spec):
        points, gaussian, delta, theta = world
        db = SpatialDatabase(points)
        result = db.probabilistic_range_query(
            gaussian, delta, theta, strategies=spec, integrator=ExactIntegrator()
        )
        assert result.ids == oracle_ids(points, gaussian, delta, theta)

    @given(worlds())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_monotone_in_theta(self, world):
        points, gaussian, delta, _ = world
        db = SpatialDatabase(points)
        previous: set[int] | None = None
        for theta in (0.6, 0.3, 0.1, 0.02):
            ids = set(
                db.probabilistic_range_query(
                    gaussian, delta, theta, strategies="all",
                    integrator=ExactIntegrator(),
                ).ids
            )
            if previous is not None:
                assert previous <= ids  # smaller theta can only add objects
            previous = ids

    @given(worlds())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_monotone_in_delta(self, world):
        points, gaussian, _, theta = world
        db = SpatialDatabase(points)
        previous: set[int] | None = None
        for delta in (2.0, 8.0, 20.0, 50.0):
            ids = set(
                db.probabilistic_range_query(
                    gaussian, delta, theta, strategies="all",
                    integrator=ExactIntegrator(),
                ).ids
            )
            if previous is not None:
                assert previous <= ids  # larger delta can only add objects
            previous = ids


class TestOneDimensionalCrossValidation:
    """The full d-dimensional engine at d = 1 must agree with the
    closed-form 1-D solver (repro.core.oned)."""

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_engine_matches_closed_form(self, seed):
        from repro.core.oned import OneDimensionalDatabase

        rng = np.random.default_rng(seed)
        values = rng.random(300) * 100
        q = float(rng.uniform(0, 100))
        sigma = float(rng.uniform(0.5, 15.0))
        delta = float(rng.uniform(1.0, 25.0))
        theta = float(rng.uniform(0.02, 0.9))

        closed_form = OneDimensionalDatabase(values).probabilistic_range_query(
            q, sigma, delta, theta
        )
        db = SpatialDatabase(values[:, None])
        engine_result = db.probabilistic_range_query(
            Gaussian([q], [[sigma**2]]), delta, theta,
            strategies="all", integrator=ExactIntegrator(),
        )
        assert list(engine_result.ids) == closed_form

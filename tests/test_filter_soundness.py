"""Oracle-backed soundness of every Phase-2 filter decision.

Properties 1–5 of the paper guarantee that a REJECT is only issued when
the true qualification probability is provably below θ, and an ACCEPT
(BF's lower bounding function) only when it is provably at least θ.
These tests replay that contract against a high-sample Monte-Carlo
oracle over seeded random Gaussians, δ and θ in d ∈ {2, 3}: no REJECTed
point may have oracle probability ≥ θ and every ACCEPTed point must
have oracle probability ≥ θ, up to the oracle's own sampling noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import (
    ACCEPT,
    REJECT,
    BoundingFunctionStrategy,
    EllipsoidStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
)
from repro.gaussian.distribution import Gaussian

from tests.conftest import random_spd

#: Oracle sample budget.  At 300k samples the binomial standard error at
#: p = 0.05 is ~4e-4, far below the classification margins asserted.
ORACLE_SAMPLES = 300_000

#: Soundness slack in oracle standard errors.  A sound filter decision
#: can only be flagged if the oracle estimate crosses θ by more than
#: this many stderr — probability ~1e-6 per point under H0.
Z_SLACK = 5.0


def oracle_probabilities(
    gaussian: Gaussian, points: np.ndarray, delta: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo qualification probabilities with one shared sample set.

    Returns (estimates, stderrs) per candidate row.
    """
    rng = np.random.default_rng(seed)
    samples = gaussian.sample(ORACLE_SAMPLES, rng)
    threshold = delta * delta
    s_sq = np.einsum("ij,ij->i", samples, samples)
    estimates = np.empty(points.shape[0])
    for start in range(0, points.shape[0], 64):
        block = points[start : start + 64]
        o_sq = np.einsum("ij,ij->i", block, block)
        cross = samples @ block.T
        within = (s_sq[:, None] - 2.0 * cross + o_sq[None, :]) <= threshold
        estimates[start : start + 64] = (
            np.count_nonzero(within, axis=0) / ORACLE_SAMPLES
        )
    stderrs = np.sqrt(estimates * (1.0 - estimates) / ORACLE_SAMPLES)
    return estimates, stderrs


def seeded_case(dim: int, seed: int):
    """One random (query, candidate cloud) pair for a soundness check."""
    rng = np.random.default_rng(seed)
    sigma = random_spd(rng, dim, scale=1.0 + 3.0 * rng.random())
    center = 10.0 * rng.standard_normal(dim)
    gaussian = Gaussian(center, sigma)
    delta = float(0.5 + 2.5 * rng.random())
    theta = float(np.exp(rng.uniform(np.log(0.01), np.log(0.4))))
    query = ProbabilisticRangeQuery(gaussian, delta, theta)
    # Candidates spread from deep inside the region to well outside it so
    # every classification code actually occurs.
    spread = np.sqrt(gaussian.eigenvalues.max())
    radii = (0.2 + 4.0 * rng.random(160)) * (spread + delta)
    directions = rng.standard_normal((160, dim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    points = center + radii[:, None] * directions
    return query, points


STRATEGY_FACTORIES = {
    "RR": lambda: RectilinearStrategy(),
    "OR": lambda: ObliqueStrategy(),
    "BF": lambda: BoundingFunctionStrategy(),
    "EM": lambda: EllipsoidStrategy(),
}


@pytest.mark.parametrize("dim", [2, 3])
@pytest.mark.parametrize("name", sorted(STRATEGY_FACTORIES))
def test_filter_decisions_match_oracle(dim: int, name: str):
    for seed in (101, 202):
        query, points = seeded_case(dim, seed)
        strategy = STRATEGY_FACTORIES[name]()
        strategy.prepare(query)
        if strategy.proves_empty:
            # Empty proof == everything rejected; check below covers it.
            codes = np.full(points.shape[0], REJECT, dtype=np.int8)
        else:
            codes = strategy.classify_many(points)

        if name != "BF":
            assert not np.any(codes == ACCEPT), (
                f"{name} must never ACCEPT (only BF has a lower bound)"
            )
        rejected = np.nonzero(codes == REJECT)[0]
        accepted = np.nonzero(codes == ACCEPT)[0]
        if rejected.size == 0 and accepted.size == 0:
            continue
        checked = np.concatenate([rejected, accepted])
        est, err = oracle_probabilities(
            query.gaussian, points[checked], query.delta, seed=seed + 7
        )
        est_rej, err_rej = est[: rejected.size], err[: rejected.size]
        est_acc, err_acc = est[rejected.size :], err[rejected.size :]

        bad_rejects = est_rej - Z_SLACK * err_rej >= query.theta
        assert not np.any(bad_rejects), (
            f"{name} (d={dim}, seed={seed}) rejected points with oracle "
            f"probability >= theta={query.theta:g}: "
            f"{est_rej[bad_rejects][:5]}"
        )
        bad_accepts = est_acc + Z_SLACK * err_acc < query.theta
        assert not np.any(bad_accepts), (
            f"{name} (d={dim}, seed={seed}) accepted points with oracle "
            f"probability < theta={query.theta:g}: "
            f"{est_acc[bad_accepts][:5]}"
        )


def test_oracle_sees_all_three_codes():
    """The candidate clouds genuinely exercise REJECT and UNKNOWN (and
    ACCEPT for BF) — guarding against a vacuous soundness pass."""
    seen = set()
    for dim in (2, 3):
        for seed in (101, 202):
            query, points = seeded_case(dim, seed)
            bf = BoundingFunctionStrategy()
            bf.prepare(query)
            if not bf.proves_empty:
                seen.update(np.unique(bf.classify_many(points)).tolist())
    assert REJECT in seen and 0 in seen
    assert ACCEPT in seen, "no BF acceptance hole exercised; widen the cases"

"""Tests for the future-work extensions: probabilistic k-NN, uncertain
targets, and the closed-form 1-D case."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.database import SpatialDatabase
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.oned import (
    OneDimensionalDatabase,
    interval_probability,
    qualifying_interval,
)
from repro.core.query import ProbabilisticRangeQuery
from repro.core.uncertain import UncertainDatabase, UncertainObject
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.integrate.exact import ExactIntegrator


class TestProbabilisticNN:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(5)
        return SpatialDatabase(rng.random((2000, 2)) * 100)

    def test_probabilities_match_brute_force(self, db):
        gaussian = Gaussian([50.0, 50.0], 4.0 * np.eye(2))
        results = probabilistic_nearest_neighbors(
            db, gaussian, k=1, theta=0.02, n_samples=4000, seed=1
        )
        assert results, "at least one object must clear a 2% NN threshold"
        # Brute-force check: resample and recount over ALL points.
        rng = np.random.default_rng(999)
        samples = gaussian.sample(4000, rng)
        all_points = np.vstack([db.point(i) for i in range(len(db))])
        brute_counts = np.zeros(len(db), dtype=int)
        for start in range(0, 4000, 500):
            block = samples[start : start + 500]
            d2 = ((block[:, None, :] - all_points[None, :, :]) ** 2).sum(axis=2)
            np.add.at(brute_counts, np.argmin(d2, axis=1), 1)
        # Not a strict equality (different sample sets); the top object must
        # agree and probabilities must be plausible.
        top = results[0]
        assert top.obj_id == int(np.argmax(brute_counts))
        assert abs(top.probability - brute_counts.max() / 4000) < 0.05

    def test_probabilities_sum_to_at_most_k(self, db):
        gaussian = Gaussian([30.0, 70.0], 9.0 * np.eye(2))
        results = probabilistic_nearest_neighbors(
            db, gaussian, k=3, theta=0.01, n_samples=3000, seed=2
        )
        assert sum(r.probability for r in results) <= 3.0 + 1e-9

    def test_sorted_by_probability(self, db):
        gaussian = Gaussian([50.0, 50.0], 25.0 * np.eye(2))
        results = probabilistic_nearest_neighbors(
            db, gaussian, k=2, theta=0.005, n_samples=2000, seed=3
        )
        probs = [r.probability for r in results]
        assert probs == sorted(probs, reverse=True)

    def test_tight_gaussian_certain_nn(self, db):
        # Vanishing uncertainty: the NN of the mean wins with probability 1.
        mean = db.point(123) + 0.01
        gaussian = Gaussian(mean, 1e-8 * np.eye(2))
        results = probabilistic_nearest_neighbors(
            db, gaussian, k=1, theta=0.99, n_samples=500, seed=4
        )
        assert len(results) == 1
        assert results[0].obj_id == 123
        assert results[0].probability == 1.0

    def test_validation(self, db):
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(QueryError):
            probabilistic_nearest_neighbors(db, gaussian, k=0)
        with pytest.raises(QueryError):
            probabilistic_nearest_neighbors(db, gaussian, theta=0.0)
        with pytest.raises(QueryError):
            probabilistic_nearest_neighbors(db, gaussian, n_samples=5)
        with pytest.raises(QueryError):
            probabilistic_nearest_neighbors(db, Gaussian([0.0], np.eye(1)), k=1)
        with pytest.raises(QueryError):
            probabilistic_nearest_neighbors(db, gaussian, k=10**7)


class TestUncertainTargets:
    def test_reduces_to_exact_when_targets_precise(self, rng):
        # Near-zero target covariance: results must match the exact-target
        # machinery on the same points.
        points = rng.random((500, 2)) * 100
        tiny = 1e-12 * np.eye(2)
        udb = UncertainDatabase(
            [UncertainObject(i, Gaussian(p, tiny)) for i, p in enumerate(points)]
        )
        precise = SpatialDatabase(points)
        gaussian = Gaussian([50.0, 50.0], 20.0 * np.eye(2))
        query = ProbabilisticRangeQuery(gaussian, 10.0, 0.05)
        got, stats = udb.probabilistic_range_query(query)
        expected = precise.probabilistic_range_query(
            gaussian, 10.0, 0.05, strategies="all", integrator=ExactIntegrator()
        )
        assert got == sorted(expected.ids)
        assert stats.results == len(got)

    def test_convolution_against_monte_carlo(self, rng):
        # One uncertain target: P(||x - y|| <= delta) by simulation.
        target = UncertainObject(0, Gaussian([10.0, 0.0], np.diag([4.0, 1.0])))
        udb = UncertainDatabase([target])
        query_gaussian = Gaussian([0.0, 0.0], np.diag([2.0, 2.0]))
        delta, theta = 12.0, 0.5
        query = ProbabilisticRangeQuery(query_gaussian, delta, theta)
        got, _ = udb.probabilistic_range_query(query)
        x = query_gaussian.sample(300_000, rng)
        y = target.gaussian.sample(300_000, rng)
        p = np.mean(np.sum((x - y) ** 2, axis=1) <= delta**2)
        assert (0 in got) == (p >= theta)
        # And the convolved closed form agrees with simulation.
        combined = query_gaussian.convolve(Gaussian([0.0, 0.0], target.gaussian.sigma))
        exact = qualification_probability_exact(
            combined, target.mean, delta
        )
        assert exact == pytest.approx(p, abs=0.005)

    def test_uncertainty_widens_or_shrinks_result(self, rng):
        # Increasing target uncertainty lowers qualification probability for
        # well-inside targets (mass leaks out of the ball).
        points = np.array([[1.0, 0.0]])
        q = Gaussian([0.0, 0.0], 0.5 * np.eye(2))
        query = ProbabilisticRangeQuery(q, 3.0, 0.8)
        small = UncertainDatabase.from_points(points, 0.01 * np.eye(2))
        large = UncertainDatabase.from_points(points, 25.0 * np.eye(2))
        got_small, _ = small.probabilistic_range_query(query)
        got_large, _ = large.probabilistic_range_query(query)
        assert got_small == [0]
        assert got_large == []

    def test_phase1_prunes_far_targets(self, rng):
        points = np.vstack([rng.random((50, 2)) * 5, [[500.0, 500.0]]])
        udb = UncertainDatabase.from_points(points, np.eye(2))
        query = ProbabilisticRangeQuery(Gaussian([2.0, 2.0], np.eye(2)), 3.0, 0.1)
        got, stats = udb.probabilistic_range_query(query)
        assert 50 not in got
        assert stats.retrieved < len(points)

    def test_validation(self):
        with pytest.raises(QueryError):
            UncertainDatabase([])
        with pytest.raises(QueryError):
            UncertainDatabase(
                [
                    UncertainObject(0, Gaussian([0.0], np.eye(1))),
                    UncertainObject(1, Gaussian([0.0, 0.0], np.eye(2))),
                ]
            )
        with pytest.raises(QueryError):
            UncertainDatabase(
                [
                    UncertainObject(0, Gaussian([0.0], np.eye(1))),
                    UncertainObject(0, Gaussian([1.0], np.eye(1))),
                ]
            )

    def test_object_accessor(self):
        udb = UncertainDatabase.from_points(np.zeros((1, 2)), np.eye(2))
        assert udb.object(0).obj_id == 0
        with pytest.raises(QueryError):
            udb.object(5)


class TestOneDimensional:
    def test_interval_probability_matches_normal_cdf(self):
        got = interval_probability(q=1.0, sigma=2.0, o=2.0, delta=1.5)
        expected = stats.norm.cdf(3.5, 1, 2) - stats.norm.cdf(0.5, 1, 2)
        assert got == pytest.approx(expected, rel=1e-12)

    def test_qualifying_interval_symmetric(self):
        interval = qualifying_interval(q=5.0, sigma=1.0, delta=2.0, theta=0.5)
        assert interval is not None
        lo, hi = interval
        assert lo + hi == pytest.approx(10.0)
        # The boundary object has probability exactly theta.
        assert interval_probability(5.0, 1.0, hi, 2.0) == pytest.approx(0.5)

    def test_qualifying_interval_none_when_unreachable(self):
        assert qualifying_interval(0.0, 10.0, 0.1, 0.9) is None

    def test_database_query_matches_brute_force(self, rng):
        values = rng.random(3000) * 100
        db = OneDimensionalDatabase(values)
        q, sigma, delta, theta = 50.0, 5.0, 8.0, 0.3
        got = db.probabilistic_range_query(q, sigma, delta, theta)
        probs = stats.norm.cdf((values + delta - q) / sigma) - stats.norm.cdf(
            (values - delta - q) / sigma
        )
        expected = sorted(np.nonzero(probs >= theta)[0].tolist())
        assert got == expected

    def test_database_empty_result(self, rng):
        db = OneDimensionalDatabase(rng.random(100) * 100)
        assert db.probabilistic_range_query(50.0, 100.0, 0.1, 0.9) == []

    def test_qualification_probabilities_vectorised(self, rng):
        values = np.array([1.0, 5.0, 9.0])
        db = OneDimensionalDatabase(values)
        probs = db.qualification_probabilities(5.0, 2.0, 3.0)
        for v, p in zip(np.sort(values), probs):
            assert p == pytest.approx(
                interval_probability(5.0, 2.0, float(v), 3.0), rel=1e-12
            )

    def test_custom_ids(self):
        db = OneDimensionalDatabase([3.0, 1.0, 2.0], ids=["c", "a", "b"])
        got = db.probabilistic_range_query(2.0, 1.0, 5.0, 0.5)
        assert got == ["a", "b", "c"]

    def test_validation(self):
        with pytest.raises(QueryError):
            OneDimensionalDatabase([])
        with pytest.raises(QueryError):
            OneDimensionalDatabase([1.0], ids=[1, 2])
        with pytest.raises(QueryError):
            interval_probability(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(QueryError):
            interval_probability(0.0, 1.0, 1.0, -1.0)
        with pytest.raises(QueryError):
            qualifying_interval(0.0, 1.0, 1.0, 1.5)

"""Tests for the mixed-workload generator and runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workload import WorkloadGenerator, run_workload
from repro.core.database import SpatialDatabase
from repro.datasets.synthetic import clustered_points
from repro.errors import ReproError
from repro.integrate.exact import ExactIntegrator


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase(clustered_points(8_000, 2, seed=19))


class TestWorkloadGenerator:
    def test_queries_within_configured_ranges(self, db):
        generator = WorkloadGenerator(
            db, delta_range=(5.0, 20.0), theta_range=(0.01, 0.2), seed=1
        )
        for query in generator.batch(50):
            assert 5.0 <= query.delta <= 20.0
            assert 0.01 <= query.theta <= 0.2
            assert query.dim == 2

    def test_deterministic(self, db):
        a = WorkloadGenerator(db, seed=5).batch(10)
        b = WorkloadGenerator(db, seed=5).batch(10)
        for qa, qb in zip(a, b):
            np.testing.assert_array_equal(qa.center, qb.center)
            assert qa.delta == qb.delta and qa.theta == qb.theta

    def test_centers_are_data_points(self, db):
        generator = WorkloadGenerator(db, seed=2)
        all_points = {tuple(db.point(i)) for i in range(len(db))}
        for query in generator.batch(20):
            assert tuple(query.center) in all_points

    def test_validation(self, db):
        with pytest.raises(ReproError):
            WorkloadGenerator(db, delta_range=(5.0, 5.0))
        with pytest.raises(ReproError):
            WorkloadGenerator(db, theta_range=(0.0, 0.5))
        with pytest.raises(ReproError):
            WorkloadGenerator(db).batch(0)
        db9 = SpatialDatabase(np.random.default_rng(0).random((100, 9)))
        with pytest.raises(ReproError):
            WorkloadGenerator(db9)


class TestRunWorkload:
    def test_report_aggregates(self, db):
        generator = WorkloadGenerator(db, seed=3)
        report = run_workload(
            db, generator.batch(12), integrator=ExactIntegrator()
        )
        assert len(report.latencies) == 12
        assert report.percentile(50) <= report.percentile(95) <= report.percentile(99)
        assert report.queries_per_second > 0
        text = report.table().render()
        assert "p95 latency" in text
        assert "throughput" in text

    def test_phase_shares_sum_to_100(self, db):
        generator = WorkloadGenerator(db, seed=4)
        report = run_workload(db, generator.batch(6), integrator=ExactIntegrator())
        table = report.table()
        shares = [
            row[1] for row in table.rows if str(row[0]).startswith("phase")
        ]
        assert sum(shares) == pytest.approx(100.0)

    def test_default_sequential_integrator(self, db):
        generator = WorkloadGenerator(
            db, theta_range=(0.05, 0.2), delta_range=(10.0, 20.0), seed=6
        )
        report = run_workload(db, generator.batch(5))
        assert all(latency > 0 for latency in report.latencies)

    def test_empty_report_rejected(self):
        from repro.bench.workload import WorkloadReport

        with pytest.raises(ReproError):
            WorkloadReport().percentile(50)

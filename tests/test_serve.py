"""The embedded query service: parity, backpressure, deadlines, caching.

The service's contract (docs/serving.md): non-degraded responses are
bit-identical to direct ``run_batch`` execution regardless of coalescing;
a full queue answers ``overloaded`` without blocking; expired deadlines
answer ``deadline_exceeded``; degraded responses carry rigorous sandwich
probability bounds; failures are typed responses, never scheduler hangs.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    QueryError,
    ServiceClosedError,
    ServiceError,
)
from repro.gaussian.distribution import Gaussian
from repro.integrate.cascade import CascadeIntegrator
from repro.integrate.exact import ExactIntegrator
from repro.obs import Observability
from repro.serve import (
    AdmissionQueue,
    CostTracker,
    PRQRequest,
    ResultCache,
    ServiceConfig,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_OVERLOADED,
)


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(42)
    return SpatialDatabase(rng.random((2_000, 2)) * 1000.0)


class FakeClock:
    """Deterministic stand-in for ``time.monotonic``.

    Injected via ``database.serve(..., clock=clock)``: every deadline
    decision and latency figure then reads this clock, so the deadline
    tests below assert scheduling *policy*, not wall-clock luck on a
    loaded CI machine.  ``step`` advances the clock on every read
    (simulating a fixed per-operation latency); ``advance`` moves it
    explicitly.
    """

    def __init__(self, start: float = 1_000.0, step: float = 0.0):
        self._now = start
        self._step = step
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            now = self._now
            self._now += self._step
            return now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._now += seconds


def make_requests(n: int, seed: int = 0, **envelope) -> list[PRQRequest]:
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        center = rng.random(2) * 900.0 + 50.0
        scale = float(rng.choice([2.0, 5.0, 20.0]))
        requests.append(PRQRequest(
            Gaussian(center, scale * np.eye(2)),
            float(rng.choice([5.0, 10.0])),
            float(rng.choice([0.1, 0.3])),
            request_id=i,
            **envelope,
        ))
    return requests


class TestParity:
    def test_coalesced_responses_match_direct_run_batch(self, database):
        """Bit-identical to the engine for any batching configuration."""
        requests = make_requests(24, seed=1)
        direct = database.engine(integrator=CascadeIntegrator()).run_batch(
            [r.query for r in requests], workers=1
        )
        for max_batch in (1, 4, 32):
            with database.serve(
                max_batch=max_batch, batch_window=0.001,
                integrator=CascadeIntegrator(), cache_size=0, degrade=False,
            ) as service:
                futures = [service.submit(r) for r in requests]
                responses = [f.result(timeout=30) for f in futures]
            assert all(r.status == STATUS_OK for r in responses)
            assert tuple(r.ids for r in responses) == direct.ids, (
                f"diverged at max_batch={max_batch}"
            )

    def test_sampling_results_independent_of_coalescing(self, database):
        """Fingerprint-derived seeds: a sampling integrator returns the
        same answer whether the request rides alone or in a batch."""
        from repro.integrate.importance import ImportanceSamplingIntegrator

        request = make_requests(1, seed=9)[0]
        outcomes = []
        for max_batch in (1, 8):
            with database.serve(
                max_batch=max_batch, batch_window=0.001,
                integrator=ImportanceSamplingIntegrator(5_000),
                cache_size=0, degrade=False,
            ) as service:
                padding = make_requests(7, seed=10)
                futures = [service.submit(r) for r in [request] + padding]
                outcomes.append(futures[0].result(timeout=30).ids)
        assert outcomes[0] == outcomes[1]

    def test_in_flight_duplicates_coalesce_to_one_execution(self, database):
        request = make_requests(1, seed=4)[0]
        copies = [
            PRQRequest(
                request.gaussian, request.delta, request.theta, request_id=i
            )
            for i in range(10)
        ]
        with database.serve(
            max_batch=16, batch_window=0.05,
            integrator=CascadeIntegrator(), cache_size=0, degrade=False,
        ) as service:
            futures = [service.submit(r) for r in copies]
            responses = [f.result(timeout=30) for f in futures]
            stats = service.stats()
        assert len({r.ids for r in responses}) == 1
        assert [r.request_id for r in responses] == list(range(10))
        assert stats["executed"] + stats["deduplicated"] == 10
        assert stats["deduplicated"] >= 1


class TestAdmissionControl:
    def test_full_queue_rejects_with_typed_response(self, database):
        """Backpressure: submits never block; beyond the bound every
        request resolves immediately as ``overloaded``."""
        requests = make_requests(30, seed=2)
        gate = threading.Event()

        class GatedIntegrator(CascadeIntegrator):
            # fork() runs once per executed request (decide() only runs
            # when Phase 3 has candidates), so gating it guarantees the
            # scheduler is blocked while the submit burst lands.
            def fork(self, seed):
                gate.wait(timeout=30)
                return super().fork(seed)

        with database.serve(
            max_queue=4, max_batch=2, batch_window=0.0,
            integrator=GatedIntegrator(), cache_size=0, degrade=False,
        ) as service:
            futures = [service.submit(r) for r in requests]
            overloaded = [
                f.result(timeout=1)
                for f in futures
                if f.done() and f.result().status == STATUS_OVERLOADED
            ]
            # Bounded queue + 30 instant submits: most must be shed, and
            # each rejection carries the typed error, not an exception.
            assert len(overloaded) >= 30 - (4 + 2 + 1)
            for response in overloaded:
                assert isinstance(response.error, OverloadedError)
                assert not response.ok
            gate.set()
            served = [f.result(timeout=30) for f in futures]
        assert all(
            r.status in (STATUS_OK, STATUS_OVERLOADED) for r in served
        )
        assert any(r.status == STATUS_OK for r in served)

    def test_admission_queue_priority_order(self):
        class Item:
            def __init__(self, priority, tag):
                self.priority = priority
                self.tag = tag

        queue = AdmissionQueue(max_queue=8)
        for priority, tag in [(0, "a"), (2, "b"), (1, "c"), (2, "d")]:
            assert queue.offer(Item(priority, tag))
        batch = queue.next_batch(max_batch=3, window=0.0)
        assert [item.tag for item in batch] == ["b", "d", "c"]
        assert queue.next_batch(max_batch=3, window=0.0)[0].tag == "a"
        queue.close()
        with pytest.raises(ServiceError):
            queue.offer(Item(0, "late"))
        assert queue.next_batch(max_batch=1, window=0.0) == []

    def test_submit_after_close_raises(self, database):
        service = database.serve(integrator=CascadeIntegrator())
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(make_requests(1)[0])
        service.close()  # idempotent

    def test_close_drains_admitted_requests(self, database):
        with database.serve(
            max_batch=4, batch_window=0.001, integrator=CascadeIntegrator()
        ) as service:
            futures = [service.submit(r) for r in make_requests(12, seed=3)]
        # Context exit closed the service; every admitted request still
        # got a real response.
        assert all(f.result(timeout=1).ok for f in futures)

    def test_dimension_mismatch_rejected_at_submit(self, database):
        with database.serve(integrator=CascadeIntegrator()) as service:
            with pytest.raises(QueryError, match="dimension"):
                service.submit(PRQRequest(
                    Gaussian([1.0, 2.0, 3.0], np.eye(3)), 5.0, 0.1
                ))


class TestDeadlines:
    def test_expired_deadline_returns_typed_response(self, database):
        with database.serve(integrator=CascadeIntegrator()) as service:
            response = service.query(
                make_requests(1, deadline=0.0)[0], timeout=30
            )
        assert response.status == STATUS_DEADLINE_EXCEEDED
        assert isinstance(response.error, DeadlineExceededError)
        assert not response.ok

    def test_deadline_expiry_is_clock_driven(self, database):
        """Expiry follows the injected clock, not wall time: a clock that
        gains 0.3s per read blows a 0.2s deadline between submission and
        drain, however fast the real machine is."""
        clock = FakeClock(step=0.3)
        with database.serve(
            integrator=CascadeIntegrator(), clock=clock
        ) as service:
            response = service.query(
                make_requests(1, deadline=0.2)[0], timeout=30
            )
        assert response.status == STATUS_DEADLINE_EXCEEDED
        assert isinstance(response.error, DeadlineExceededError)
        # Three clock reads separate submission from the expiry decision
        # (the queue's window deadline, its window-expiry check, and the
        # drain timestamp — the admission queue shares the service clock),
        # each gaining 0.3s.
        assert response.error.waited_seconds == pytest.approx(0.9)

    def test_tight_deadline_degrades_with_sound_bounds(self, database):
        """A deadline below the predicted full cost degrades; the bounds
        must enclose the exact probabilities and the certain ids must be
        exactly the provable subset of the full answer."""
        # Anisotropic Σ so the one-pass sandwich tier genuinely leaves
        # undecided candidates (isotropic bounds are exact).
        gaussian = Gaussian(
            [612.59, 857.49], np.array([[60.0, 25.0], [25.0, 20.0]])
        )
        theta = 0.123456789
        request = PRQRequest(gaussian, 10.0, theta, deadline=0.2)
        exact = ExactIntegrator()
        full = database.probabilistic_range_query(
            gaussian, 10.0, theta, integrator=exact
        )
        # Frozen fake clock: the request reaches the drain with its full
        # 0.2s budget intact no matter how slow the host is, so the 5s
        # cost prior forces degradation — never spurious expiry.
        with database.serve(
            integrator=CascadeIntegrator(), cost_prior=5.0, clock=FakeClock()
        ) as service:
            response = service.query(request, timeout=30)
        assert response.status == STATUS_DEGRADED
        assert response.degraded and response.ok
        certain = set(response.ids)
        undecided = {obj: (lo, hi) for obj, lo, hi in response.bounds}
        assert undecided, "query chosen to leave undecided candidates"
        assert certain <= set(full.ids)
        assert certain | set(undecided) >= set(full.ids)
        for obj, (lo, hi) in undecided.items():
            assert lo < theta <= hi  # genuinely undecided against theta
            p = exact.qualification_probabilities(
                gaussian, database.point(obj)[None, :], 10.0
            )[0].estimate
            assert lo - 1e-9 <= p <= hi + 1e-9

    def test_degradation_can_be_disabled(self, database):
        # Frozen clock: the deadline cannot expire, so the only question
        # is whether degrade=False really forces full execution despite
        # a cost prior far above the budget.
        request = make_requests(1, deadline=30.0)[0]
        with database.serve(
            integrator=CascadeIntegrator(), degrade=False, cost_prior=100.0,
            clock=FakeClock(),
        ) as service:
            response = service.query(request, timeout=30)
        assert response.status == STATUS_OK

    def test_cost_tracker_ema(self):
        tracker = CostTracker(alpha=0.5, prior=1.0)
        assert tracker.predict() == 1.0
        assert tracker.would_exceed(1.5, safety=2.0)
        tracker.observe(0.1)  # first sample replaces the prior
        assert tracker.predict() == pytest.approx(0.1)
        tracker.observe(0.3)
        assert tracker.predict() == pytest.approx(0.2)
        assert tracker.samples == 2
        assert not tracker.would_exceed(1.0, safety=2.0)
        with pytest.raises(ServiceError):
            CostTracker(alpha=0.0)
        with pytest.raises(ServiceError):
            CostTracker(prior=0.0)


class TestResultCache:
    def test_cache_hit_skips_execution_and_matches(self, database):
        request = make_requests(1, seed=5)[0]
        with database.serve(integrator=CascadeIntegrator()) as service:
            first = service.query(request, timeout=30)
            second = service.query(request, timeout=30)
            stats = service.stats()
        assert not first.cache_hit and second.cache_hit
        assert second.ids == first.ids
        assert stats["cache_hits"] == 1 and stats["executed"] == 1

    def test_cache_requires_exact_parameters(self, database):
        """Quantized-similar but not bit-identical requests never share a
        cache entry (the fingerprint half of the key)."""
        base = make_requests(1, seed=6)[0]
        near = PRQRequest(
            base.gaussian, base.delta * (1.0 + 1e-12), base.theta
        )
        cache = ResultCache(max_entries=8)
        cache.put(base, (1, 2, 3))
        assert cache.get(base) == (1, 2, 3)
        assert cache.get(near) is None
        # Same quantized shape bucket, distinct entries.
        cache.put(near, (4,))
        assert cache.distinct_shapes() == 1
        assert cache.info()["currsize"] == 2

    def test_cache_lru_eviction(self):
        requests = make_requests(5, seed=7)
        cache = ResultCache(max_entries=2)
        for i, request in enumerate(requests[:3]):
            cache.put(request, (i,))
        assert cache.info()["currsize"] == 2
        assert cache.get(requests[0]) is None  # evicted
        assert cache.get(requests[2]) == (2,)

    def test_degraded_responses_are_not_cached(self, database):
        request = PRQRequest(
            Gaussian([500.0, 500.0], 15.0 * np.eye(2)), 10.0, 0.3,
            deadline=0.2,
        )
        retry = PRQRequest(
            Gaussian([500.0, 500.0], 15.0 * np.eye(2)), 10.0, 0.3
        )
        # Frozen clock: deterministic degrade-vs-expire split (see
        # TestDeadlines for the policy rationale).
        with database.serve(
            integrator=CascadeIntegrator(), cost_prior=5.0, clock=FakeClock()
        ) as service:
            degraded = service.query(request, timeout=30)
            full = service.query(retry, timeout=30)
        assert degraded.status == STATUS_DEGRADED
        assert full.status == STATUS_OK and not full.cache_hit


class TestFaultIsolation:
    def test_failing_request_gets_typed_response_others_survive(
        self, database
    ):
        class Exploding(CascadeIntegrator):
            def decide(self, gaussian, points, delta, theta):
                if theta == 0.123456789:  # only the poisoned request
                    raise RuntimeError("kaboom")
                return super().decide(gaussian, points, delta, theta)

        # Anisotropic Σ leaves Phase-3 work (isotropic sandwich bounds
        # are exact, so the filter would decide every candidate itself).
        poisoned = PRQRequest(
            Gaussian(
                [623.27, 292.81], np.array([[60.0, 25.0], [25.0, 20.0]])
            ),
            10.0,
            0.123456789,
            request_id="poison",
        )
        healthy = make_requests(6, seed=8)
        with database.serve(
            max_batch=8, batch_window=0.05,
            integrator=Exploding(), cache_size=0, degrade=False,
        ) as service:
            futures = [service.submit(r) for r in healthy + [poisoned]]
            responses = [f.result(timeout=30) for f in futures]
            follow_up = service.query(healthy[0], timeout=30)
        assert responses[-1].status == "failed"
        assert isinstance(responses[-1].error, QueryError)
        assert all(r.status == STATUS_OK for r in responses[:-1])
        assert follow_up.status == STATUS_OK  # scheduler still alive


class TestTelemetryAndConfig:
    def test_serve_metrics_and_span(self, database):
        obs = Observability(trace=True, metrics=True)
        with database.serve(
            integrator=CascadeIntegrator(), obs=obs, max_batch=8,
            batch_window=0.02,
        ) as service:
            futures = [service.submit(r) for r in make_requests(10, seed=11)]
            [f.result(timeout=30) for f in futures]
            service.query(make_requests(1, seed=11)[0], timeout=30)
        rendered = obs.render_metrics()
        for name in (
            "repro_serve_queue_depth",
            "repro_serve_batch_size",
            "repro_serve_wait_seconds",
            "repro_serve_requests_total",
            "repro_serve_cache_requests_total",
            "repro_serve_cache_entries",
            "repro_serve_queue_capacity",
        ):
            assert name in rendered, f"{name} missing from exposition"
        assert obs.metrics.get_sample(
            "repro_serve_requests_total", status="ok"
        ) == 11.0
        assert obs.metrics.get_sample(
            "repro_serve_cache_requests_total", outcome="hit"
        ) == 1.0
        assert any(s.name == "serve:batch" for s in obs.tracer.spans)
        # Engine spans ride along under the same sink.
        assert any(s.name == "query" for s in obs.tracer.spans)

    def test_config_validation(self, database):
        for bad in (
            {"max_queue": 0},
            {"max_batch": 0},
            {"batch_window": -0.1},
            {"workers": 0},
            {"cache_size": -1},
            {"degrade_safety": 0.5},
        ):
            with pytest.raises(ServiceError):
                ServiceConfig(**bad)
        with pytest.raises(ServiceError):
            database.serve(ServiceConfig(), max_batch=4)

    def test_request_validation(self):
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(ServiceError):
            PRQRequest(gaussian, 5.0, 0.1, deadline=-1.0)
        with pytest.raises(QueryError):
            PRQRequest(gaussian, -5.0, 0.1)
        request = PRQRequest(gaussian, 5.0, 0.1)
        assert request.fingerprint == PRQRequest(gaussian, 5.0, 0.1).fingerprint
        assert request.fingerprint != PRQRequest(gaussian, 5.0, 0.2).fingerprint
        entropy_a = request.seed_sequence().entropy
        entropy_b = PRQRequest(gaussian, 5.0, 0.1).seed_sequence().entropy
        assert entropy_a == entropy_b

    def test_response_to_dict_digest(self, database):
        with database.serve(integrator=CascadeIntegrator()) as service:
            response = service.query(make_requests(1, seed=12)[0], timeout=30)
        row = response.to_dict()
        assert row["status"] == STATUS_OK
        assert row["ids"] == list(response.ids)
        assert "queued_ms" in row and "service_ms" in row
        assert "error" not in row

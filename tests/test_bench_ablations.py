"""Small-scale tests for the ablation experiment runners."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    run_ablation_catalog_resolution,
    run_ablation_integrators,
    run_ablation_lookup_fidelity,
    run_ablation_sequential,
    run_candidate_grid,
)


class TestIntegratorAblation:
    def test_errors_reported_against_truth(self):
        table = run_ablation_integrators(budgets=(2_000, 20_000))
        assert len(table.rows) == 2
        # Every error column is a small non-negative number.
        for row in table.rows:
            for value in row[1::2][:3]:
                assert 0.0 <= value < 0.2


class TestCatalogResolutionAblation:
    def test_conservative_and_converging(self):
        table = run_ablation_catalog_resolution(
            resolutions=(5, 65), n_trials=2
        )
        rows = {row[0]: row for row in table.rows}
        assert rows["catalog/5"][2] >= rows["exact"][2]
        assert rows["catalog/65"][2] >= rows["exact"][2]
        assert rows["catalog/65"][2] <= rows["catalog/5"][2]


class TestSequentialAblation:
    def test_sample_savings(self):
        table = run_ablation_sequential(n_trials=2, max_samples=40_000)
        rows = {row[0]: row for row in table.rows}
        assert rows["sequential"][2] < rows["fixed"][2]
        assert rows["sequential"][1] == rows["fixed"][1]


class TestLookupFidelityAblation:
    def test_catalogs_strictly_more_conservative(self):
        table = run_ablation_lookup_fidelity(n_trials=2)
        rows = {row[0]: row for row in table.rows}
        assert rows["mc-catalogs"][1] >= rows["exact"][1]
        assert rows["mc-catalogs"][2] <= rows["exact"][2]


class TestCandidateGrid:
    def test_matches_timed_grid_counts(self):
        from repro.bench.experiments import run_strategy_grid

        counted = run_candidate_grid(
            gammas=(10.0,), n_trials=2, seed=5, answer_samples=20_000
        )
        timed = run_strategy_grid(
            gammas=(10.0,), n_trials=2, n_samples=1_000, seed=5
        )
        # Candidate counts are deterministic given the seed: both paths
        # must agree exactly.
        for spec in ("rr", "bf", "all"):
            assert counted.candidates[(10.0, spec)] == pytest.approx(
                timed.candidates[(10.0, spec)]
            )

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussian.distribution import Gaussian


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def paper_sigma_10() -> np.ndarray:
    """The paper's default 2-D covariance (Eq. 34 with γ = 10)."""
    root3 = np.sqrt(3.0)
    return 10.0 * np.array([[7.0, 2.0 * root3], [2.0 * root3, 3.0]])


@pytest.fixture
def paper_gaussian(paper_sigma_10) -> Gaussian:
    return Gaussian([500.0, 500.0], paper_sigma_10)


def random_spd(rng: np.random.Generator, dim: int, *, scale: float = 1.0) -> np.ndarray:
    """A random symmetric positive-definite matrix for property tests."""
    a = rng.standard_normal((dim, dim))
    return scale * (a @ a.T + dim * np.eye(dim) * 0.05)

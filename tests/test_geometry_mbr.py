"""Unit and property tests for axis-aligned rectangles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.mbr import Rect


def boxes(dim: int = 2, max_coord: float = 100.0):
    """Hypothesis strategy generating valid rectangles."""
    coord = st.floats(-max_coord, max_coord, allow_nan=False, allow_infinity=False)

    def build(pairs):
        lows = [min(a, b) for a, b in pairs]
        highs = [max(a, b) for a, b in pairs]
        return Rect(lows, highs)

    return st.lists(st.tuples(coord, coord), min_size=dim, max_size=dim).map(build)


class TestConstruction:
    def test_basic(self):
        r = Rect([0.0, 1.0], [2.0, 3.0])
        assert r.dim == 2
        assert r.volume() == pytest.approx(4.0)
        assert r.margin() == pytest.approx(4.0)
        np.testing.assert_allclose(r.center, [1.0, 2.0])

    def test_degenerate_point_rect(self):
        r = Rect.from_point([5.0, 7.0])
        assert r.volume() == 0.0
        assert r.contains_point([5.0, 7.0])

    def test_from_center(self):
        r = Rect.from_center([10.0, 10.0], [2.0, 3.0])
        np.testing.assert_allclose(r.lows, [8.0, 7.0])
        np.testing.assert_allclose(r.highs, [12.0, 13.0])

    def test_from_center_rejects_negative_half_width(self):
        with pytest.raises(GeometryError):
            Rect.from_center([0.0], [-1.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Rect([1.0, 0.0], [0.0, 1.0])

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            Rect([np.nan], [1.0])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Rect([0.0, 0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect([], [])

    def test_immutability(self):
        r = Rect([0.0], [1.0])
        with pytest.raises(ValueError):
            r.lows[0] = 5.0

    def test_bounding_points(self):
        pts = np.array([[1.0, 5.0], [3.0, 2.0], [2.0, 9.0]])
        r = Rect.bounding_points(pts)
        np.testing.assert_allclose(r.lows, [1.0, 2.0])
        np.testing.assert_allclose(r.highs, [3.0, 9.0])

    def test_union_of_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.union_of([])


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect([0.0, 0.0], [1.0, 1.0])
        assert r.contains_point([0.0, 0.0])
        assert r.contains_point([1.0, 1.0])
        assert not r.contains_point([1.0 + 1e-12, 0.5])

    def test_contains_rect(self):
        outer = Rect([0.0, 0.0], [10.0, 10.0])
        inner = Rect([2.0, 2.0], [3.0, 3.0])
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_touching_edges(self):
        a = Rect([0.0, 0.0], [1.0, 1.0])
        b = Rect([1.0, 0.0], [2.0, 1.0])
        assert a.intersects(b)
        c = Rect([1.1, 0.0], [2.0, 1.0])
        assert not a.intersects(c)

    def test_contains_points_vectorised_matches_scalar(self, rng):
        r = Rect([-1.0, -2.0], [3.0, 4.0])
        pts = rng.uniform(-5, 5, size=(50, 2))
        mask = r.contains_points(pts)
        for p, inside in zip(pts, mask):
            assert inside == r.contains_point(p)


class TestCombination:
    def test_union(self):
        a = Rect([0.0], [1.0])
        b = Rect([2.0], [3.0])
        u = a.union(b)
        assert u == Rect([0.0], [3.0])

    def test_intersection_disjoint_is_none(self):
        assert Rect([0.0], [1.0]).intersection(Rect([2.0], [3.0])) is None

    def test_intersection_volume(self):
        a = Rect([0.0, 0.0], [2.0, 2.0])
        b = Rect([1.0, 1.0], [4.0, 4.0])
        assert a.intersection_volume(b) == pytest.approx(1.0)

    def test_enlargement_zero_when_contained(self):
        a = Rect([0.0, 0.0], [10.0, 10.0])
        b = Rect([1.0, 1.0], [2.0, 2.0])
        assert a.enlargement(b) == pytest.approx(0.0)

    def test_expand(self):
        r = Rect([0.0, 0.0], [1.0, 1.0]).expand(0.5)
        np.testing.assert_allclose(r.lows, [-0.5, -0.5])
        np.testing.assert_allclose(r.highs, [1.5, 1.5])

    def test_expand_negative_over_shrink_rejected(self):
        with pytest.raises(GeometryError):
            Rect([0.0], [1.0]).expand(-0.6)


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        r = Rect([0.0, 0.0], [2.0, 2.0])
        assert r.min_distance([1.0, 1.0]) == 0.0

    def test_min_distance_corner(self):
        r = Rect([0.0, 0.0], [1.0, 1.0])
        assert r.min_distance([2.0, 2.0]) == pytest.approx(np.sqrt(2.0))

    def test_max_distance(self):
        r = Rect([0.0, 0.0], [1.0, 1.0])
        assert r.max_distance([0.0, 0.0]) == pytest.approx(np.sqrt(2.0))

    def test_intersects_sphere(self):
        r = Rect([0.0, 0.0], [1.0, 1.0])
        assert r.intersects_sphere([2.0, 0.5], 1.0)
        assert not r.intersects_sphere([2.0, 0.5], 0.9)


class TestDunder:
    def test_equality_and_hash(self):
        a = Rect([0.0], [1.0])
        b = Rect([0.0], [1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect([0.0], [2.0])

    def test_iter_pairs(self):
        r = Rect([0.0, 1.0], [2.0, 3.0])
        assert list(r) == [(0.0, 2.0), (1.0, 3.0)]

    def test_repr_round(self):
        assert "Rect" in repr(Rect([0.0], [1.0]))


class TestProperties:
    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_intersection_symmetric_and_contained(self, a, b):
        ab = a.intersection(b)
        ba = b.intersection(a)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba
            assert a.contains_rect(ab)
            assert b.contains_rect(ab)

    @given(boxes(), boxes())
    @settings(max_examples=80, deadline=None)
    def test_volume_inclusion_exclusion_bound(self, a, b):
        union_volume = a.union(b).volume()
        assert union_volume >= max(a.volume(), b.volume()) - 1e-9

    @given(boxes(dim=3))
    @settings(max_examples=60, deadline=None)
    def test_min_distance_zero_iff_contained(self, r):
        center = r.center
        assert r.min_distance(center) == 0.0
        outside = r.highs + np.ones(r.dim)
        assert r.min_distance(outside) > 0.0

    @given(boxes(), st.floats(0.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_expand_monotone(self, r, amount):
        grown = r.expand(amount)
        assert grown.contains_rect(r)
        assert grown.volume() >= r.volume() - 1e-9

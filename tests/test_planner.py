"""Cost-based query planner: correctness, caching, determinism, explain."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExactIntegrator,
    Gaussian,
    ImportanceSamplingIntegrator,
    PlannerCostModel,
    QueryPlanner,
    SpatialDatabase,
)
from repro.core.planner import DEFAULT_COMBOS, PlanChoice
from repro.core.query import ProbabilisticRangeQuery
from repro.errors import QueryError
from repro.geometry.mbr import Rect


def make_database(n: int = 4_000, seed: int = 5) -> SpatialDatabase:
    """Clustered 2-D points in [0, 1000]^2 — realistic planner terrain."""
    rng = np.random.default_rng(seed)
    clusters = []
    for center in ((250.0, 300.0), (700.0, 650.0), (500.0, 500.0)):
        clusters.append(center + rng.standard_normal((n // 4, 2)) * 60.0)
    clusters.append(rng.random((n - 3 * (n // 4), 2)) * 1000.0)
    points = np.clip(np.vstack(clusters), 0.0, 1000.0)
    return SpatialDatabase(points)


def make_queries(db: SpatialDatabase, count: int = 6, seed: int = 9):
    rng = np.random.default_rng(seed)
    root3 = np.sqrt(3.0)
    queries = []
    for _ in range(count):
        gamma = float(rng.choice([1.0, 10.0, 100.0]))
        sigma = gamma * np.array([[7.0, 2 * root3], [2 * root3, 3.0]])
        center = db.point(int(rng.integers(len(db))))
        delta = float(rng.choice([15.0, 30.0]))
        theta = float(rng.choice([0.01, 0.1]))
        queries.append(
            ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
        )
    return queries


class TestPlannedResults:
    def test_auto_matches_fixed_results_exactly(self):
        """Planning changes *which* sound filters run, never the answer.

        With the exact integrator the result set is integrator-noise-free,
        so auto must agree bit-for-bit with every fixed combination.
        """
        db = make_database()
        auto = db.engine(strategies="auto", integrator=ExactIntegrator())
        fixed = db.engine(strategies="all", integrator=ExactIntegrator())
        for query in make_queries(db):
            assert auto.execute(query).ids == fixed.execute(query).ids

    def test_probabilistic_range_query_accepts_auto(self):
        db = make_database()
        query = make_queries(db, count=1)[0]
        result = db.probabilistic_range_query(
            query.gaussian,
            query.delta,
            query.theta,
            strategies="auto",
            integrator=ExactIntegrator(),
        )
        reference = db.probabilistic_range_query(
            query.gaussian,
            query.delta,
            query.theta,
            strategies="all",
            integrator=ExactIntegrator(),
        )
        assert result.ids == reference.ids
        assert result.stats.plan_strategies is not None

    def test_stats_record_plan_fields(self):
        db = make_database()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        stats = engine.execute(make_queries(db, count=1)[0]).stats
        assert stats.plan_strategies is not None
        assert all(isinstance(name, str) for name in stats.plan_strategies)
        assert stats.plan_phase1 in ("intersect", "primary")
        assert stats.plan_cache_hit in (True, False)
        assert isinstance(stats.predicted_integrations, float)
        assert stats.predicted_seconds > 0.0
        assert "plan" in stats.phase_seconds

    def test_batch_stats_roll_up_planner_counters(self):
        db = make_database()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        queries = make_queries(db, count=4)
        batch = engine.run_batch(queries + queries, workers=1)
        assert batch.stats.planned_queries == 8
        # The second copy of each query shape must hit the plan cache.
        assert batch.stats.plan_cache_hits >= 4
        assert batch.stats.predicted_integrations >= 0.0


class TestPlanCache:
    def test_repeat_shape_hits_cache(self):
        db = make_database()
        planner = db.planner()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        query = make_queries(db, count=1)[0]
        first = engine.execute(query).stats
        second = engine.execute(query).stats
        assert first.plan_cache_hit is False
        assert second.plan_cache_hit is True
        info = planner.cache_info()
        assert info["hits"] >= 1
        assert info["misses"] >= 1
        assert 0 < info["currsize"] <= info["maxsize"]

    def test_same_shape_different_center_shares_plan(self):
        """Plans depend only on the quantized (Σ-spectrum, δ, θ) shape."""
        db = make_database()
        planner = db.planner()
        sigma = 10.0 * np.array([[7.0, 3.4], [3.4, 3.0]])
        integrator = ExactIntegrator()
        a = planner.plan(
            ProbabilisticRangeQuery(Gaussian([100.0, 900.0], sigma), 25.0, 0.01),
            integrator,
        )
        b = planner.plan(
            ProbabilisticRangeQuery(Gaussian([800.0, 50.0], sigma), 25.0, 0.01),
            integrator,
        )
        assert a.key == b.key
        assert b.cache_hit is True
        assert a.chosen == b.chosen

    def test_lru_eviction_respects_cache_size(self):
        db = make_database()
        planner = db.planner(cache_size=2)
        integrator = ExactIntegrator()
        for delta in (10.0, 20.0, 40.0):
            planner.plan(
                ProbabilisticRangeQuery(
                    Gaussian([500.0, 500.0], 50.0 * np.eye(2)), delta, 0.05
                ),
                integrator,
            )
        assert planner.cache_info()["currsize"] == 2
        planner.clear_cache()
        assert planner.cache_info()["currsize"] == 0

    def test_cold_and_warm_cache_identical_results(self):
        """A warm plan cache may be faster, never different."""
        db = make_database()
        queries = make_queries(db, count=5)
        engine = db.engine(
            strategies="auto",
            integrator=ImportanceSamplingIntegrator(4_000, seed=3),
        )
        cold = engine.run_batch(queries, workers=1, base_seed=0)
        warm = engine.run_batch(queries, workers=1, base_seed=0)
        assert cold.ids == warm.ids

    def test_run_batch_worker_count_identity_with_planner(self):
        db = make_database()
        queries = make_queries(db, count=8)
        engine = db.engine(
            strategies="auto",
            integrator=ImportanceSamplingIntegrator(4_000, seed=3),
        )
        reference = engine.run(queries, base_seed=7)
        for workers in (2, 4):
            batch = engine.run_batch(queries, workers=workers, base_seed=7)
            assert batch.ids == reference.ids


class TestExplain:
    def test_planned_explain_renders_comparison_table(self):
        db = make_database()
        engine = db.engine(strategies="auto", integrator=ExactIntegrator())
        plan = engine.explain(make_queries(db, count=1)[0])
        assert plan.planned is True
        assert plan.comparison, "planner must attach the scored plans"
        costs = [choice.predicted_seconds for choice in plan.comparison]
        assert costs == sorted(costs)
        assert plan.predicted_seconds == costs[0]
        text = plan.render()
        assert "chosen by cost-based planner" in text
        assert "plans considered" in text
        assert "plan: strategies=" in text

    def test_fixed_explain_has_no_comparison(self):
        db = make_database()
        engine = db.engine(strategies="rr+or", integrator=ExactIntegrator())
        plan = engine.explain(make_queries(db, count=1)[0])
        assert plan.planned is False
        assert plan.comparison == ()

    def test_summary_includes_bf_radii_when_bf_active(self):
        """Satellite: QueryPlan.summary() must expose BF's α∥/α⊥ radii."""
        db = make_database()
        engine = db.engine(strategies="rr+bf", integrator=ExactIntegrator())
        query = ProbabilisticRangeQuery(
            Gaussian([500.0, 500.0], 50.0 * np.eye(2)), 25.0, 0.05
        )
        plan = engine.explain(query)
        assert "BF" in plan.strategies
        assert plan.alpha_upper is not None
        summary = plan.summary()
        assert f"alpha_par={plan.alpha_upper:.3f}" in summary
        assert "alpha_perp=" in summary

    def test_summary_omits_bf_radii_without_bf(self):
        db = make_database()
        engine = db.engine(strategies="rr+or", integrator=ExactIntegrator())
        summary = engine.explain(make_queries(db, count=1)[0]).summary()
        assert "alpha_par" not in summary
        assert "alpha_perp" not in summary


class TestPlannerConfig:
    def test_cost_model_drives_choice(self):
        """An absurd BF prepare cost must push the planner off BF plans."""
        db = make_database()
        no_bf_model = PlannerCostModel(
            prepare_seconds={"RR": 2e-5, "OR": 4e-5, "BF": 1e6, "EM": 2e-5}
        )
        planner = db.planner(cost_model=no_bf_model)
        decision = planner.plan(
            make_queries(db, count=1)[0], ExactIntegrator()
        )
        assert "BF" not in decision.chosen.strategy_names

    def test_custom_combo_menu(self):
        db = make_database()
        planner = db.planner(combos=("rr",), phase1_modes=("primary",))
        decision = planner.plan(
            make_queries(db, count=1)[0], ExactIntegrator()
        )
        assert decision.chosen.strategies == "rr"
        assert decision.chosen.phase1 == "primary"
        assert all(c.strategies == "rr" for c in decision.considered)

    def test_default_combo_menu_is_the_papers(self):
        assert DEFAULT_COMBOS == ("rr", "bf", "rr+bf", "rr+or", "bf+or", "all")

    def test_validation_errors(self):
        bounds = Rect([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(QueryError):
            QueryPlanner(total_points=0, data_bounds=bounds)
        with pytest.raises(QueryError):
            QueryPlanner(total_points=10, data_bounds=bounds, combos=())
        with pytest.raises(QueryError):
            QueryPlanner(
                total_points=10, data_bounds=bounds, phase1_modes=("sideways",)
            )
        with pytest.raises(QueryError):
            QueryPlanner(total_points=10, data_bounds=bounds, cache_size=0)
        with pytest.raises(QueryError):
            QueryPlanner(total_points=10, data_bounds=bounds, bins_per_efold=0)
        with pytest.raises(QueryError):
            QueryPlanner(total_points=10, data_bounds=bounds, n_samples=10)

    def test_uniform_fallback_without_estimator(self):
        """Above d=3 no histogram exists; plans still come out sane."""
        rng = np.random.default_rng(2)
        db = SpatialDatabase(rng.random((2_000, 4)) * 100.0)
        planner = db.planner()
        query = ProbabilisticRangeQuery(
            Gaussian(np.full(4, 50.0), 25.0 * np.eye(4)), 10.0, 0.01
        )
        decision = planner.plan(query, ExactIntegrator())
        assert isinstance(decision.chosen, PlanChoice)
        assert decision.chosen.predicted_seconds > 0.0

    def test_plan_choice_fields(self):
        db = make_database()
        decision = db.planner().plan(
            make_queries(db, count=1)[0], ExactIntegrator()
        )
        chosen = decision.chosen
        assert chosen.strategies in DEFAULT_COMBOS
        assert chosen.phase1 in ("intersect", "primary")
        assert chosen.integrator == ExactIntegrator().name
        assert chosen.predicted_retrieved >= 0.0
        assert chosen.predicted_candidates >= 0.0


class TestPlanCacheThreadSafety:
    def test_concurrent_planning_no_duplicates_and_warm_parity(self):
        """Hammer one planner from many threads: the LRU must end up with
        exactly one entry per distinct shape, and every plan must be
        bit-identical to the cold single-threaded decision."""
        from concurrent.futures import ThreadPoolExecutor

        db = make_database()
        shapes = make_queries(db, count=8, seed=41)
        integrator = ExactIntegrator()

        cold_planner = db.planner(cache_size=64)
        cold = {
            id(q): cold_planner.plan(q, integrator).chosen for q in shapes
        }
        distinct_keys = {
            cold_planner._cache_key(q, integrator) for q in shapes
        }

        planner = db.planner(cache_size=64)
        workload = [shapes[i % len(shapes)] for i in range(160)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            decisions = list(
                pool.map(lambda q: (q, planner.plan(q, integrator)), workload)
            )

        info = planner.cache_info()
        assert info["currsize"] == len(distinct_keys), "duplicate cache entries"
        assert info["hits"] + info["misses"] == len(workload)
        assert info["hits"] >= len(workload) - 8 * len(distinct_keys)
        for query, decision in decisions:
            assert decision.chosen == cold[id(query)], (
                "warm/concurrent plan diverged from cold plan"
            )
            assert decision.key in distinct_keys

    def test_quantized_shape_key_helper_matches_cache_key(self):
        """The shared quantization helper is exactly the plan-cache key
        minus the integrator suffix (the serve result cache relies on
        this alignment)."""
        from repro.core.planner import quantize_log, quantized_shape_key

        db = make_database()
        planner = db.planner()
        integrator = ExactIntegrator()
        for query in make_queries(db, count=4, seed=7):
            key = planner._cache_key(query, integrator)
            assert key[:-1] == quantized_shape_key(query, planner._bins)
            assert key[-1] == integrator.name
        assert quantize_log(np.e, 1) == 1
        assert quantize_log(1.0, 7) == 0
        assert quantize_log(0.0, 4) == quantize_log(1e-300, 4)

"""The memory-mapped structure-of-arrays store (repro.core.storage).

Covers the storage contract from docs/architecture.md: O(1) mapped
loads, legacy ``.npz`` migration, corrupt-file diagnostics that name the
path, the ``format="npz"`` escape hatch, and bit-identical sharded
execution served straight from the mapped file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.storage import (
    SOA_MAGIC,
    is_soa_file,
    open_soa,
    write_soa,
)
from repro.errors import DatabaseLoadError, QueryError
from repro.gaussian.distribution import Gaussian


@pytest.fixture
def rng():
    return np.random.default_rng(42)


# ----------------------------------------------------------------------
# Round trips and format sniffing
# ----------------------------------------------------------------------


def test_soa_round_trip_preserves_everything(tmp_path, rng):
    points = rng.random((257, 3)) * 100
    db = SpatialDatabase(points, ids=range(1000, 1257))
    path = tmp_path / "db.soa"
    db.save(path)
    assert is_soa_file(path)
    loaded = SpatialDatabase.load(path)
    assert len(loaded) == 257 and loaded.dim == 3
    np.testing.assert_array_equal(np.asarray(loaded.points), points)
    np.testing.assert_array_equal(
        np.asarray(loaded.ids), np.arange(1000, 1257)
    )
    center = points.mean(axis=0)
    assert sorted(loaded.range_query(center, 20.0)) == sorted(
        db.range_query(center, 20.0)
    )


def test_save_default_is_soa_but_npz_escape_hatch_works(tmp_path, rng):
    points = rng.random((64, 2))
    db = SpatialDatabase(points)
    soa_path, npz_path = tmp_path / "a.db", tmp_path / "b.npz"
    db.save(soa_path)
    db.save(npz_path, format="npz")
    assert is_soa_file(soa_path)
    assert not is_soa_file(npz_path)
    with np.load(npz_path) as archive:  # still a real, portable .npz
        np.testing.assert_array_equal(archive["points"], points)
    for p in (soa_path, npz_path):
        np.testing.assert_array_equal(
            np.asarray(SpatialDatabase.load(p).points), points
        )


def test_save_rejects_unknown_format(tmp_path, rng):
    db = SpatialDatabase(rng.random((8, 2)))
    with pytest.raises(QueryError, match="format"):
        db.save(tmp_path / "x", format="parquet")


def test_legacy_npz_archives_still_load(tmp_path, rng):
    """Migration shim: archives written by older releases keep loading."""
    points = rng.random((120, 2))
    ids = np.arange(120, dtype=np.int64) * 3
    path = tmp_path / "legacy.npz"
    np.savez_compressed(path, points=points, ids=ids)
    loaded = SpatialDatabase.load(path)
    np.testing.assert_array_equal(np.asarray(loaded.points), points)
    np.testing.assert_array_equal(np.asarray(loaded.ids), ids)


def test_loaded_store_is_memory_mapped(tmp_path, rng):
    db = SpatialDatabase(rng.random((50, 2)))
    path = tmp_path / "db.soa"
    db.save(path)
    loaded = SpatialDatabase.load(path)
    backing = loaded._backing
    assert isinstance(backing.points, np.memmap)
    assert isinstance(backing.ids, np.memmap)
    # The database serves zero-copy views of the mapped columns.
    assert np.shares_memory(loaded.points, backing.points)
    assert np.shares_memory(loaded.ids, backing.ids)
    assert not loaded.points.flags.writeable


def test_load_is_o1_deferred_until_index_needed(tmp_path, rng):
    """Opening a store touches no data pages; the index builds lazily."""
    db = SpatialDatabase(rng.random((5000, 2)))
    path = tmp_path / "db.soa"
    db.save(path)
    loaded = SpatialDatabase.load(path)
    assert loaded._built_index is None  # nothing built yet
    assert len(loaded) == 5000  # header metadata only
    hits = loaded.range_query(np.array([0.5, 0.5]), 0.1)  # forces the build
    assert loaded._built_index is not None
    assert sorted(hits) == sorted(db.range_query(np.array([0.5, 0.5]), 0.1))


# ----------------------------------------------------------------------
# Corruption diagnostics
# ----------------------------------------------------------------------


def test_missing_store_names_path(tmp_path):
    path = tmp_path / "absent.soa"
    with pytest.raises(DatabaseLoadError, match="does not exist") as info:
        open_soa(path)
    assert str(path) in str(info.value)


def test_truncated_header_names_path(tmp_path):
    path = tmp_path / "torn.soa"
    path.write_bytes(SOA_MAGIC + b"\x01")  # 9 bytes of a 64-byte header
    with pytest.raises(DatabaseLoadError, match="truncated or corrupt") as info:
        SpatialDatabase.load(path)
    assert str(path) in str(info.value)


def test_truncated_columns_name_path(tmp_path, rng):
    path = tmp_path / "torn2.soa"
    write_soa(path, np.arange(300), rng.random((300, 2)))
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(DatabaseLoadError, match="truncated or corrupt") as info:
        SpatialDatabase.load(path)
    assert str(path) in str(info.value)


def test_garbage_header_names_path(tmp_path):
    path = tmp_path / "junk.soa"
    path.write_bytes(b"\xde\xad\xbe\xef" * 64)
    with pytest.raises(DatabaseLoadError, match="not a SpatialDatabase") as info:
        open_soa(path)
    assert str(path) in str(info.value)


def test_future_version_is_rejected(tmp_path, rng):
    path = tmp_path / "v9.soa"
    write_soa(path, np.arange(4), rng.random((4, 2)))
    payload = bytearray(path.read_bytes())
    payload[8] = 9  # version field (little-endian u32 at offset 8)
    path.write_bytes(bytes(payload))
    with pytest.raises(DatabaseLoadError, match="version"):
        open_soa(path)


# ----------------------------------------------------------------------
# Sharding straight from the mapped file
# ----------------------------------------------------------------------


def test_sharded_query_from_mapped_file_is_bit_identical(tmp_path, rng):
    points = np.vstack(
        [
            rng.normal((30.0, 30.0), 6.0, (400, 2)),
            rng.normal((70.0, 60.0), 5.0, (400, 2)),
            rng.uniform(0.0, 100.0, (200, 2)),
        ]
    )
    db = SpatialDatabase(points)
    path = tmp_path / "db.soa"
    db.save(path)
    mapped = SpatialDatabase.load(path)
    gaussian = Gaussian(np.array([40.0, 40.0]), 30.0 * np.eye(2))

    single = db.probabilistic_range_query(gaussian, delta=12.0, theta=0.2)
    with mapped.shard(3) as sharded:
        from repro.shard.shm import MappedFileStore

        assert isinstance(sharded._store, MappedFileStore)
        scattered = sharded.probabilistic_range_query(
            gaussian, delta=12.0, theta=0.2
        )
    assert scattered.ids == single.ids

"""Tests for the antithetic sampler and the threshold sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.sweep import threshold_sweep
from repro.errors import IntegrationError, QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.antithetic import AntitheticImportanceSampler
from repro.integrate.exact import ExactIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator


class TestAntitheticSampler:
    def test_unbiased(self, paper_gaussian):
        point = paper_gaussian.mean + np.array([30.0, -15.0])
        truth = ExactIntegrator().qualification_probability(
            paper_gaussian, point, 25.0
        ).estimate
        result = AntitheticImportanceSampler(
            200_000, seed=4
        ).qualification_probability(paper_gaussian, point, 25.0)
        assert abs(result.estimate - truth) < 5 * result.stderr + 1e-9

    def test_odd_budget_rounded_up(self, paper_gaussian):
        sampler = AntitheticImportanceSampler(1001)
        assert sampler.n_samples == 1002

    def test_variance_reduction_on_offset_sphere(self, paper_gaussian):
        # In the moderately-off-centre regime the antithetic legs are
        # anticorrelated: across repeated runs the antithetic estimator's
        # spread must beat plain importance sampling at equal budget.
        # (For spheres covering the centre the correlation fades and the
        # two estimators tie — the docstring documents this.)
        point = paper_gaussian.mean + np.array([20.0, 5.0])
        n = 4_000

        def spread(factory) -> float:
            estimates = [
                factory(seed).qualification_probability(
                    paper_gaussian, point, 25.0
                ).estimate
                for seed in range(40)
            ]
            return float(np.std(estimates))

        plain = spread(lambda s: ImportanceSamplingIntegrator(n, seed=s))
        antithetic = spread(lambda s: AntitheticImportanceSampler(n, seed=s))
        assert antithetic < 0.95 * plain

    def test_reported_stderr_calibrated(self, paper_gaussian):
        point = paper_gaussian.mean + np.array([35.0, 10.0])
        truth = ExactIntegrator().qualification_probability(
            paper_gaussian, point, 25.0
        ).estimate
        hits = 0
        for seed in range(25):
            result = AntitheticImportanceSampler(
                5_000, seed=seed
            ).qualification_probability(paper_gaussian, point, 25.0)
            lo, hi = result.confidence_interval()
            hits += lo <= truth <= hi
        assert hits >= 21  # ~95% CI should cover most of 25 runs

    def test_validation(self):
        with pytest.raises(IntegrationError):
            AntitheticImportanceSampler(1)


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(61)
        points = rng.random((3000, 2)) * 1000
        db = SpatialDatabase(points)
        sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
        return db, Gaussian([500.0, 500.0], sigma)

    def test_matches_individual_queries(self, world):
        db, gaussian = world
        thetas = (0.01, 0.1, 0.4)
        sweep = threshold_sweep(db, gaussian, 25.0, thetas)
        for theta in thetas:
            individual = db.probabilistic_range_query(
                gaussian, 25.0, theta, strategies="all",
                integrator=ExactIntegrator(),
            )
            assert sweep.answer(theta) == individual.ids

    def test_answers_nested(self, world):
        db, gaussian = world
        sweep = threshold_sweep(db, gaussian, 25.0, (0.01, 0.05, 0.2, 0.6))
        previous = None
        for theta in sorted(sweep.answers):
            current = set(sweep.answer(theta))
            if previous is not None:
                assert current <= previous
            previous = current

    def test_probabilities_align_with_ids(self, world):
        db, gaussian = world
        sweep = threshold_sweep(db, gaussian, 25.0, (0.05,))
        for obj_id, probability in zip(sweep.candidate_ids, sweep.probabilities):
            exact = ExactIntegrator().qualification_probability(
                gaussian, db.point(obj_id), 25.0
            ).estimate
            assert probability == pytest.approx(exact, abs=1e-9)

    def test_unknown_theta_rejected(self, world):
        db, gaussian = world
        sweep = threshold_sweep(db, gaussian, 25.0, (0.1,))
        with pytest.raises(QueryError):
            sweep.answer(0.2)

    def test_empty_region(self, world):
        db, _ = world
        tight = Gaussian.isotropic([500.0, 500.0], 400.0)
        sweep = threshold_sweep(db, tight, 1.0, (0.9, 0.95), strategies="bf")
        assert sweep.answer(0.9) == ()
        assert sweep.candidate_ids == ()

    def test_validation(self, world):
        db, gaussian = world
        with pytest.raises(QueryError):
            threshold_sweep(db, gaussian, 25.0, ())
        with pytest.raises(QueryError):
            threshold_sweep(db, gaussian, 25.0, (0.0, 0.5))
        with pytest.raises(QueryError):
            threshold_sweep(db, gaussian, 25.0, (0.5, 1.0))

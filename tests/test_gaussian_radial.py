"""Tests for radial mass functions — including the paper's numeric anchors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import GeometryError
from repro.gaussian.radial import (
    alpha_for_mass,
    offset_sphere_mass,
    r_theta,
    radial_cdf,
    radial_ppf,
)


class TestRadialCdf:
    def test_matches_chi_distribution(self):
        for dim in (1, 2, 3, 9, 15):
            r = np.linspace(0.01, 6.0, 30)
            np.testing.assert_allclose(
                radial_cdf(dim, r), stats.chi.cdf(r, dim), rtol=1e-12
            )

    def test_paper_anchor_2d_39_percent(self):
        # Section VI: "if a query object obeys 2D pnorm ... the probability
        # that the object is located within distance one ... is 39%".
        assert radial_cdf(2, 1.0) == pytest.approx(0.393, abs=0.001)

    def test_paper_anchor_9d_9_percent(self):
        # "for the 9D case, the probability within distance two ... is only 9%".
        assert radial_cdf(9, 2.0) == pytest.approx(0.09, abs=0.005)

    def test_monotone_in_radius(self):
        r = np.linspace(0, 5, 50)
        values = radial_cdf(5, r)
        assert np.all(np.diff(values) >= 0)

    def test_decreasing_in_dimension(self):
        # Curse of dimensionality (Fig. 17): at fixed radius, mass shrinks
        # as the dimension grows.
        masses = [radial_cdf(d, 2.0) for d in (2, 3, 5, 9, 15)]
        assert all(a > b for a, b in zip(masses, masses[1:]))

    def test_rejects_negative_radius(self):
        with pytest.raises(GeometryError):
            radial_cdf(2, -1.0)

    def test_rejects_bad_dim(self):
        with pytest.raises(GeometryError):
            radial_cdf(0, 1.0)


class TestRadialPpf:
    @given(st.integers(1, 20), st.floats(0.001, 0.999))
    @settings(max_examples=60, deadline=None)
    def test_inverse_of_cdf(self, dim, mass):
        r = radial_ppf(dim, mass)
        assert radial_cdf(dim, r) == pytest.approx(mass, abs=1e-9)

    def test_zero_mass(self):
        assert radial_ppf(3, 0.0) == 0.0

    def test_rejects_mass_one(self):
        with pytest.raises(GeometryError):
            radial_ppf(2, 1.0)


class TestRTheta:
    def test_paper_anchor_2d(self):
        # rtheta for the 98% region (theta=0.01) is 2.79 in the paper.
        assert r_theta(2, 0.01) == pytest.approx(2.79, abs=0.01)

    def test_paper_anchor_9d_98(self):
        assert r_theta(9, 0.01) == pytest.approx(4.44, abs=0.01)

    def test_paper_anchor_9d_40(self):
        # Section VI-A: theta = 40% gives rtheta = 2.32.
        assert r_theta(9, 0.40) == pytest.approx(2.32, abs=0.01)

    def test_encloses_exactly_1_minus_2theta(self):
        for theta in (0.01, 0.1, 0.4):
            assert radial_cdf(2, r_theta(2, theta)) == pytest.approx(
                1 - 2 * theta, abs=1e-10
            )

    def test_decreasing_in_theta(self):
        radii = [r_theta(3, t) for t in (0.01, 0.1, 0.2, 0.4)]
        assert all(a > b for a, b in zip(radii, radii[1:]))

    @pytest.mark.parametrize("theta", [0.0, 0.5, 0.7, -0.1])
    def test_rejects_theta_outside_open_half(self, theta):
        with pytest.raises(GeometryError):
            r_theta(2, theta)


class TestOffsetSphereMass:
    def test_zero_offset_equals_radial_cdf(self):
        assert offset_sphere_mass(3, 1.5, 0.0) == pytest.approx(
            radial_cdf(3, 1.5), rel=1e-10
        )

    def test_matches_monte_carlo(self, rng):
        dim, delta, alpha = 2, 2.0, 1.5
        z = rng.standard_normal((400_000, dim))
        offset = np.zeros(dim)
        offset[0] = alpha
        frac = np.mean(np.sum((z - offset) ** 2, axis=1) <= delta**2)
        assert offset_sphere_mass(dim, delta, alpha) == pytest.approx(
            frac, abs=0.003
        )

    def test_decreasing_in_offset(self):
        masses = [offset_sphere_mass(2, 1.0, a) for a in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert all(a > b for a, b in zip(masses, masses[1:]))

    def test_zero_radius_mass_is_zero(self):
        assert offset_sphere_mass(2, 0.0, 1.0) == 0.0


class TestAlphaForMass:
    @given(
        st.integers(1, 9),
        st.floats(0.3, 4.0),
        st.floats(0.001, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, dim, delta, theta):
        alpha = alpha_for_mass(dim, delta, theta)
        if alpha is None:
            # No solution means even the centred ball is too light.
            assert radial_cdf(dim, delta) < theta
        else:
            assert offset_sphere_mass(dim, delta, alpha) == pytest.approx(
                theta, abs=1e-9
            )

    def test_none_when_unreachable(self):
        # In 9-D a sphere of radius 1 holds ~0.04% of the mass: theta = 0.5
        # is unreachable at any offset.
        assert alpha_for_mass(9, 1.0, 0.5) is None

    def test_zero_alpha_at_max_mass(self):
        peak = radial_cdf(2, 1.0)
        assert alpha_for_mass(2, 1.0, peak) == pytest.approx(0.0, abs=1e-6)

    def test_rejects_bad_arguments(self):
        with pytest.raises(GeometryError):
            alpha_for_mass(2, 0.0, 0.1)
        with pytest.raises(GeometryError):
            alpha_for_mass(2, 1.0, 0.0)
        with pytest.raises(GeometryError):
            alpha_for_mass(2, 1.0, 1.0)

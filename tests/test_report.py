"""Tests for the full-report orchestrator and its CLI entry."""

from __future__ import annotations

import pytest

from repro.bench.report import run_full_report, write_full_report


@pytest.fixture(scope="module")
def report_text():
    # Smallest meaningful scale; skip the slow 9-D section.
    return run_full_report(n_trials=2, n_samples=2_000, include_9d=False)


class TestFullReport:
    def test_contains_every_section(self, report_text):
        for marker in (
            "Table I",
            "Table II",
            "Figs. 13-16",
            "Fig. 17",
            "Sensitivity — candidates vs delta",
            "Sensitivity — candidates vs theta",
            "Sensitivity — candidates vs axis ratio",
            "Ablation — integrator error",
            "Ablation — RR candidates vs r_theta catalog",
            "Ablation — sequential vs fixed",
            "Ablation — exact lookups vs MC-built",
            "Ablation — EM",
            "Extension — RR fringe filter in 3-D",
            "total wall time",
        ):
            assert marker in report_text, f"missing section: {marker}"

    def test_9d_excluded_when_asked(self, report_text):
        assert "Table III" not in report_text

    def test_configuration_header(self, report_text):
        assert "2 trials" in report_text
        assert "2000 IS samples" in report_text

    def test_write_to_file(self, tmp_path, report_text, monkeypatch):
        # Reuse the cached text by monkeypatching the runner: writing is
        # what we test here, not a second multi-second run.
        import repro.bench.report as report_module

        monkeypatch.setattr(
            report_module, "run_full_report", lambda **kwargs: report_text
        )
        target = write_full_report(tmp_path / "report.txt")
        assert target.read_text().startswith("repro ")


class TestCliAll:
    def test_experiment_all_via_cli(self, tmp_path, capsys, monkeypatch):
        import repro.bench.report as report_module
        from repro.cli import main

        monkeypatch.setattr(
            report_module,
            "run_full_report",
            lambda **kwargs: "repro stub report\nTable I stub",
        )
        out_file = tmp_path / "r.txt"
        assert main(["experiment", "all", "--output", str(out_file)]) == 0
        printed = capsys.readouterr().out
        assert "stub report" in printed
        assert out_file.read_text().startswith("repro stub")

"""End-to-end assertions of the paper's numeric anchors and qualitative claims.

These tests pin the reproduction to the paper: each one cites the table,
figure or sentence it checks.  Scales are reduced where the full-size
experiment lives in ``benchmarks/`` instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import (
    SPEC_ORDER,
    _CountOnlyIntegrator,
    region_geometry,
)
from repro.bench.harness import paper_sigma
from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.datasets.roadnet import long_beach_like
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import r_theta, radial_cdf
from repro.integrate.exact import ExactIntegrator


@pytest.fixture(scope="module")
def road_db():
    # A 12k-point slice of the road dataset keeps this module fast while
    # preserving the spatial skew.
    return SpatialDatabase(long_beach_like(12_000, seed=0).midpoints)


class TestSectionIVAnchors:
    def test_rtheta_2d_theta001(self):
        """Section VI: 'the corresponding value rθ = 2.79 for the 2D case'."""
        assert r_theta(2, 0.01) == pytest.approx(2.79, abs=0.01)

    def test_rtheta_9d_theta001(self):
        """Section VI: 'we need to use rθ = 4.44 for the 9D case'."""
        assert r_theta(9, 0.01) == pytest.approx(4.44, abs=0.01)

    def test_rtheta_9d_theta04(self):
        """Section VI-A: 'the appropriate rθ was derived as rθ = 2.32'."""
        assert r_theta(9, 0.40) == pytest.approx(2.32, abs=0.01)


class TestFig17Anchors:
    def test_2d_radius1_39_percent(self):
        """Fig. 17 discussion: 2-D mass within radius 1 is 39 %."""
        assert radial_cdf(2, 1.0) == pytest.approx(0.39, abs=0.005)

    def test_9d_radius2_9_percent(self):
        """Fig. 17 discussion: 9-D mass within radius 2 is only 9 %."""
        assert radial_cdf(9, 2.0) == pytest.approx(0.09, abs=0.005)


class TestFig13To16Anchors:
    def test_fig13_rr_box(self):
        """Fig. 13 labels the γ=10 RR box half-widths 23.4 and 15.3."""
        g = region_geometry(10.0)
        assert g["rr_half_width_x"] == pytest.approx(23.4, abs=0.1)
        assert g["rr_half_width_y"] == pytest.approx(15.3, abs=0.1)

    def test_fig15_fig16_rr_boxes(self):
        """Figs. 15/16 label the γ=1 and γ=100 boxes 7.4/4.8 and 74.1/48.5."""
        g1, g100 = region_geometry(1.0), region_geometry(100.0)
        assert g1["rr_half_width_x"] == pytest.approx(7.4, abs=0.1)
        assert g1["rr_half_width_y"] == pytest.approx(4.8, abs=0.1)
        assert g100["rr_half_width_x"] == pytest.approx(74.1, abs=0.3)
        assert g100["rr_half_width_y"] == pytest.approx(48.5, abs=0.3)

    def test_fig14_all_region_is_intersection(self):
        """Fig. 14: the ALL integration region is the smallest of the four."""
        g = region_geometry(10.0)
        assert g["all_area"] < g["rr_area"]
        assert g["all_area"] < g["or_area"]
        assert g["all_area"] < g["bf_area"]

    def test_fig15_combination_barely_helps_for_gamma1(self):
        """'combining the strategies does not improve the query cost very
        much for γ = 1. In contrast ... efficient processing for γ = 100'."""
        ratio = {}
        for gamma in (1.0, 100.0):
            g = region_geometry(gamma)
            ratio[gamma] = min(g["rr_area"], g["bf_area"], g["or_area"]) / g["all_area"]
        assert ratio[1.0] < 1.5  # little gain
        assert ratio[100.0] > ratio[1.0] + 0.1  # visibly more gain


class TestTableIIShape:
    """Table II's qualitative structure on the (reduced) road data."""

    @pytest.fixture(scope="class")
    def counts(self, road_db):
        gaussian_center = road_db.point(777)
        counting = _CountOnlyIntegrator()
        out = {}
        for gamma in (1.0, 10.0, 100.0):
            gaussian = Gaussian(gaussian_center, paper_sigma(gamma))
            query = ProbabilisticRangeQuery(gaussian, 25.0, 0.01)
            for spec in SPEC_ORDER:
                engine = road_db.engine(strategies=spec, integrator=counting)
                out[(gamma, spec)] = engine.execute(query).stats.integrations
        return out

    def test_all_is_best_for_every_gamma(self, counts):
        for gamma in (1.0, 10.0, 100.0):
            row = {spec: counts[(gamma, spec)] for spec in SPEC_ORDER}
            assert row["all"] == min(row.values())

    def test_candidates_grow_with_gamma(self, counts):
        for spec in SPEC_ORDER:
            assert counts[(1.0, spec)] <= counts[(10.0, spec)] <= counts[(100.0, spec)]

    def test_combinations_dominate_components(self, counts):
        for gamma in (1.0, 10.0, 100.0):
            assert counts[(gamma, "rr+bf")] <= min(
                counts[(gamma, "rr")], counts[(gamma, "bf")]
            )
            assert counts[(gamma, "rr+or")] <= counts[(gamma, "rr")]
            assert counts[(gamma, "bf+or")] <= counts[(gamma, "bf")]

    def test_results_match_oracle_for_default_query(self, road_db):
        """Table II's ANS column: the result set is exact for every combo."""
        gaussian = Gaussian(road_db.point(777), paper_sigma(10.0))
        reference = None
        for spec in SPEC_ORDER:
            result = road_db.probabilistic_range_query(
                gaussian, 25.0, 0.01, strategies=spec, integrator=ExactIntegrator()
            )
            if reference is None:
                reference = set(result.ids)
            assert set(result.ids) == reference


class TestSectionVB3Claims:
    """The sensitivity claims reported as text in §V-B-3."""

    def test_theta_01_vs_001_nearly_same_cost(self, road_db):
        """'the processing cost does not increase ... from θ = 0.1 to 0.01'
        — the exponential tail makes the filtering regions almost equal."""
        gaussian = Gaussian(road_db.point(300), paper_sigma(10.0))
        counting = _CountOnlyIntegrator()
        engine = road_db.engine(strategies="all", integrator=counting)
        c_01 = engine.execute(
            ProbabilisticRangeQuery(gaussian, 25.0, 0.1)
        ).stats.integrations
        c_001 = engine.execute(
            ProbabilisticRangeQuery(gaussian, 25.0, 0.01)
        ).stats.integrations
        assert c_001 <= 1.6 * max(c_01, 1)

    def test_spherical_covariance_equalizes_strategies(self, road_db):
        """'When the matrix is close to being a unit matrix, the difference
        between the three strategies becomes small'.

        With an exactly spherical covariance our BF bound is *exact*
        (λ∥ = λ⊥), so it integrates nothing; the comparison that remains
        meaningful is the Phase-1 retrieval volume, which differs between
        the square RR box and the BF disc by at most the box/disc ratio.
        """
        gaussian = Gaussian(road_db.point(300), 210.0 * np.eye(2))
        counting = _CountOnlyIntegrator()
        query = ProbabilisticRangeQuery(gaussian, 25.0, 0.01)
        retrieved = {
            spec: road_db.engine(strategies=spec, integrator=counting)
            .execute(query)
            .stats.retrieved
            for spec in ("rr", "bf", "all")
        }
        assert max(retrieved.values()) <= 1.6 * min(retrieved.values())
        # And BF alone already decides every candidate without integration.
        bf_stats = (
            road_db.engine(strategies="bf", integrator=counting)
            .execute(query)
            .stats
        )
        assert bf_stats.integrations == 0


class TestSectionVIBehaviour:
    def test_bf_loses_inner_hole_in_ill_shaped_9d(self):
        """Section VI: '(λ⊥)^{d/2}|Σ|^{1/2} may become larger than one. That
        means we cannot find an internal hole'."""
        from repro.core.strategies import BoundingFunctionStrategy

        eigenvalues = np.concatenate([[50.0], np.full(8, 0.02)])
        gaussian = Gaussian(np.zeros(9), np.diag(eigenvalues))
        strategy = BoundingFunctionStrategy()
        strategy.prepare(ProbabilisticRangeQuery(gaussian, 0.7, 0.4))
        assert strategy.alpha_lower is None

    def test_spherical_bf_needs_no_integration(self):
        """Section VI: 'if λ∥ = λ⊥ ... BF is the best method since it can
        directly select answer objects'."""
        from repro.core.strategies import BoundingFunctionStrategy, UNKNOWN

        gaussian = Gaussian.isotropic(np.zeros(9), 1.0)
        strategy = BoundingFunctionStrategy()
        strategy.prepare(ProbabilisticRangeQuery(gaussian, 3.0, 0.2))
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((200, 9)) * 2
        assert not np.any(strategy.classify(pts) == UNKNOWN)

"""Tests for the U-catalogs: conservative lookups, builders, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.bf import BFCatalog, ExactBFLookup
from repro.catalog.io import load_catalog, save_catalog
from repro.catalog.rtheta import ExactRThetaLookup, RThetaCatalog
from repro.errors import CatalogError, CatalogLookupError
from repro.gaussian.radial import alpha_for_mass, r_theta


class TestExactRThetaLookup:
    def test_matches_closed_form(self):
        lookup = ExactRThetaLookup(2)
        assert lookup.r_theta(0.01) == pytest.approx(r_theta(2, 0.01))

    def test_rejects_zero_dim(self):
        with pytest.raises(CatalogError):
            ExactRThetaLookup(0)


class TestRThetaCatalog:
    def test_exact_hit(self):
        catalog = RThetaCatalog.build_analytic(2, [0.01, 0.05, 0.1])
        assert catalog.r_theta(0.05) == pytest.approx(r_theta(2, 0.05))

    def test_conservative_between_entries(self):
        catalog = RThetaCatalog.build_analytic(2, [0.01, 0.1])
        # theta = 0.06 is absent; the lookup must use theta* = 0.01, whose
        # radius is LARGER (a superset region) — exactly Algorithm 1 line 4.
        looked_up = catalog.r_theta(0.06)
        assert looked_up == pytest.approx(r_theta(2, 0.01))
        assert looked_up > r_theta(2, 0.06)

    def test_lookup_below_smallest_raises(self):
        catalog = RThetaCatalog.build_analytic(2, [0.05, 0.1])
        with pytest.raises(CatalogLookupError):
            catalog.r_theta(0.01)

    def test_rejects_unsorted_thetas(self):
        with pytest.raises(CatalogError):
            RThetaCatalog(2, [0.1, 0.05], [1.0, 2.0])

    def test_rejects_non_monotone_radii(self):
        with pytest.raises(CatalogError):
            RThetaCatalog(2, [0.05, 0.1], [1.0, 2.0])

    def test_rejects_theta_out_of_range(self):
        with pytest.raises(CatalogError):
            RThetaCatalog(2, [0.6], [1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(CatalogError):
            RThetaCatalog(2, [0.1, 0.2], [1.0])

    def test_default_grid_covers_small_thetas(self):
        catalog = RThetaCatalog.default_grid(2, resolution=99)
        assert catalog.r_theta(0.01) >= r_theta(2, 0.01)

    def test_monte_carlo_builder_close_and_conservative(self):
        thetas = [0.01, 0.05, 0.1, 0.25]
        mc = RThetaCatalog.build_monte_carlo(2, thetas, n_samples=400_000, seed=1)
        for theta in thetas:
            exact = r_theta(2, theta)
            got = mc.r_theta(theta)
            assert got == pytest.approx(exact, rel=0.02)

    def test_monte_carlo_builder_rejects_tiny_sample(self):
        with pytest.raises(CatalogError):
            RThetaCatalog.build_monte_carlo(2, [0.1], n_samples=10)

    def test_len(self):
        assert len(RThetaCatalog.build_analytic(3, [0.1, 0.2])) == 2


class TestExactBFLookup:
    def test_matches_closed_form(self):
        lookup = ExactBFLookup(2)
        assert lookup.alpha_upper(2.0, 0.1) == pytest.approx(
            alpha_for_mass(2, 2.0, 0.1)
        )
        assert lookup.alpha_lower(2.0, 0.1) == pytest.approx(
            alpha_for_mass(2, 2.0, 0.1)
        )

    def test_none_when_unreachable(self):
        assert ExactBFLookup(9).alpha_upper(1.0, 0.5) is None

    def test_theta_ge_one_is_none(self):
        assert ExactBFLookup(2).alpha_upper(1.0, 1.5) is None


class TestBFCatalog:
    @pytest.fixture
    def catalog(self):
        return BFCatalog.build_analytic(
            2, deltas=[1.0, 2.0, 3.0], thetas=[0.01, 0.05, 0.1, 0.3]
        )

    def test_exact_grid_hit(self, catalog):
        got = catalog.alpha_upper(2.0, 0.05)
        assert got == pytest.approx(alpha_for_mass(2, 2.0, 0.05), abs=1e-9)

    def test_upper_lookup_is_conservative(self, catalog):
        # Off-grid query: returned alpha must be >= the true alpha so that
        # pruning keeps a superset (Eq. 32).
        true_alpha = alpha_for_mass(2, 1.7, 0.07)
        got = catalog.alpha_upper(1.7, 0.07)
        assert got is not None and got >= true_alpha

    def test_lower_lookup_is_conservative(self, catalog):
        # Eq. 33: returned alpha must be <= the true alpha so acceptance
        # without integration never overreaches.
        true_alpha = alpha_for_mass(2, 1.7, 0.07)
        got = catalog.alpha_lower(1.7, 0.07)
        assert got is not None and got <= true_alpha

    def test_upper_none_when_no_dominating_entry(self, catalog):
        assert catalog.alpha_upper(5.0, 0.05) is None  # no delta' >= 5

    def test_lower_none_when_no_dominated_entry(self, catalog):
        assert catalog.alpha_lower(0.5, 0.05) is None  # no delta' <= 0.5

    def test_rejects_invalid_queries(self, catalog):
        with pytest.raises(CatalogError):
            catalog.alpha_upper(0.0, 0.1)
        with pytest.raises(CatalogError):
            catalog.alpha_lower(1.0, 0.0)

    def test_rejects_parallel_array_mismatch(self):
        with pytest.raises(CatalogError):
            BFCatalog(2, [1.0], [0.1, 0.2], [0.5, 0.6])

    def test_monte_carlo_builder_close_to_analytic(self):
        deltas, thetas = [1.5, 2.5], [0.05, 0.2]
        mc = BFCatalog.build_monte_carlo(
            2, deltas, thetas, n_samples=300_000, seed=2
        )
        analytic = BFCatalog.build_analytic(2, deltas, thetas)
        np.testing.assert_allclose(mc.alphas, analytic.alphas, atol=0.02)

    def test_skips_unreachable_grid_points(self):
        catalog = BFCatalog.build_analytic(9, deltas=[1.0], thetas=[0.0004, 0.9])
        # theta=0.9 is unreachable for a 9-D unit sphere; only one entry.
        assert len(catalog) == 1

    def test_build_rejects_fully_unreachable_grid(self):
        with pytest.raises(CatalogError):
            BFCatalog.build_analytic(9, deltas=[0.5], thetas=[0.9])


class TestCatalogIO:
    def test_rtheta_round_trip(self, tmp_path):
        catalog = RThetaCatalog.build_analytic(3, [0.01, 0.1, 0.3])
        path = tmp_path / "rtheta.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert isinstance(loaded, RThetaCatalog)
        assert loaded.dim == 3
        np.testing.assert_allclose(loaded.radii, catalog.radii)

    def test_bf_round_trip(self, tmp_path):
        catalog = BFCatalog.build_analytic(2, [1.0, 2.0], [0.05, 0.2])
        path = tmp_path / "bf.json"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert isinstance(loaded, BFCatalog)
        assert loaded.alpha_upper(1.5, 0.1) == catalog.alpha_upper(1.5, 0.1)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {{{")
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"format": 1, "kind": "mystery"}')
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"format": 99, "kind": "rtheta"}')
        with pytest.raises(CatalogError):
            load_catalog(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CatalogError):
            load_catalog(tmp_path / "absent.json")

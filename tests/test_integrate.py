"""Tests for the Phase-3 probability integrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IntegrationError
from repro.integrate import (
    ExactIntegrator,
    ImportanceSamplingIntegrator,
    MonteCarloIntegrator,
    QuasiMonteCarloIntegrator,
)
from repro.integrate.result import IntegrationResult


@pytest.fixture
def target_point():
    return np.array([510.0, 490.0])


@pytest.fixture
def exact_value(paper_gaussian, target_point):
    return ExactIntegrator().qualification_probability(
        paper_gaussian, target_point, 25.0
    ).estimate


class TestIntegrationResult:
    def test_confidence_interval_clipped(self):
        r = IntegrationResult(0.99, 0.02, 100, "x")
        lo, hi = r.confidence_interval()
        assert lo == pytest.approx(0.99 - 1.96 * 0.02, abs=1e-3)
        assert hi == 1.0

    def test_meets_threshold(self):
        assert IntegrationResult(0.5, 0.0, 1, "x").meets_threshold(0.5)
        assert not IntegrationResult(0.49, 0.0, 1, "x").meets_threshold(0.5)

    def test_rejects_nan(self):
        with pytest.raises(IntegrationError):
            IntegrationResult(float("nan"), 0.0, 1, "x")

    def test_rejects_negative_stderr(self):
        with pytest.raises(IntegrationError):
            IntegrationResult(0.5, -0.1, 1, "x")

    def test_str(self):
        assert "n=10" in str(IntegrationResult(0.5, 0.01, 10, "mc"))


class TestExactIntegrator:
    def test_zero_stderr(self, paper_gaussian, target_point):
        r = ExactIntegrator().qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert r.stderr == 0.0
        assert r.n_samples == 0

    def test_methods_agree(self, paper_gaussian, target_point):
        a = ExactIntegrator("imhof").qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        b = ExactIntegrator("ruben").qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert a.estimate == pytest.approx(b.estimate, abs=1e-7)

    def test_rejects_unknown_method(self):
        with pytest.raises(IntegrationError):
            ExactIntegrator("simpson")

    def test_batch_api(self, paper_gaussian):
        pts = np.array([[500.0, 500.0], [510.0, 490.0]])
        results = ExactIntegrator().qualification_probabilities(
            paper_gaussian, pts, 25.0
        )
        assert len(results) == 2
        assert results[0].estimate > results[1].estimate


class TestImportanceSampling:
    def test_unbiased_within_stderr(self, paper_gaussian, target_point, exact_value):
        r = ImportanceSamplingIntegrator(200_000, seed=3).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert abs(r.estimate - exact_value) < 5 * r.stderr + 1e-9

    def test_binomial_stderr(self, paper_gaussian, target_point):
        r = ImportanceSamplingIntegrator(10_000, seed=1).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        expected = np.sqrt(r.estimate * (1 - r.estimate) / 10_000)
        assert r.stderr == pytest.approx(expected)

    def test_deterministic_given_seed(self, paper_gaussian, target_point):
        a = ImportanceSamplingIntegrator(5_000, seed=42).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        b = ImportanceSamplingIntegrator(5_000, seed=42).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert a.estimate == b.estimate

    def test_shared_samples_batch_matches_exact(self, paper_gaussian):
        pts = np.array([[500.0, 500.0], [510.0, 490.0], [530.0, 530.0]])
        integ = ImportanceSamplingIntegrator(
            100_000, seed=5, share_samples=True, chunk_size=2
        )
        results = integ.qualification_probabilities(paper_gaussian, pts, 25.0)
        exact = ExactIntegrator().qualification_probabilities(
            paper_gaussian, pts, 25.0
        )
        for r, e in zip(results, exact):
            assert r.estimate == pytest.approx(e.estimate, abs=0.01)
        assert all(r.method == "importance-shared" for r in results)

    def test_empty_batch(self, paper_gaussian):
        integ = ImportanceSamplingIntegrator(1_000, share_samples=True)
        assert integ.qualification_probabilities(
            paper_gaussian, np.empty((0, 2)), 25.0
        ) == []

    def test_rejects_bad_params(self):
        with pytest.raises(IntegrationError):
            ImportanceSamplingIntegrator(0)
        with pytest.raises(IntegrationError):
            ImportanceSamplingIntegrator(10, chunk_size=0)

    def test_rejects_dim_mismatch(self, paper_gaussian):
        with pytest.raises(IntegrationError):
            ImportanceSamplingIntegrator(100).qualification_probability(
                paper_gaussian, np.zeros(3), 1.0
            )


class TestMonteCarlo:
    def test_converges_to_exact(self, paper_gaussian, target_point, exact_value):
        r = MonteCarloIntegrator(300_000, seed=2).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert abs(r.estimate - exact_value) < 5 * r.stderr + 1e-9

    def test_zero_delta(self, paper_gaussian, target_point):
        r = MonteCarloIntegrator(1_000).qualification_probability(
            paper_gaussian, target_point, 0.0
        )
        assert r.estimate == 0.0

    def test_higher_variance_than_importance(
        self, paper_gaussian, target_point
    ):
        # On these skewed queries the hit-ratio estimator dominates plain MC
        # — the reason the paper chose importance sampling.
        n = 50_000
        mc = MonteCarloIntegrator(n, seed=7).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        imp = ImportanceSamplingIntegrator(n, seed=7).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert mc.stderr > imp.stderr


class TestQuasiMonteCarlo:
    def test_beats_plain_importance_on_accuracy(
        self, paper_gaussian, target_point, exact_value
    ):
        qmc = QuasiMonteCarloIntegrator(50_000, seed=1).qualification_probability(
            paper_gaussian, target_point, 25.0
        )
        assert abs(qmc.estimate - exact_value) < 1e-3

    def test_stderr_reflects_replicates(self, paper_gaussian, target_point):
        r = QuasiMonteCarloIntegrator(
            40_000, n_replicates=8, seed=3
        ).qualification_probability(paper_gaussian, target_point, 25.0)
        assert r.n_samples == 40_000
        assert r.stderr < 0.01

    def test_rejects_single_replicate(self):
        with pytest.raises(IntegrationError):
            QuasiMonteCarloIntegrator(100, n_replicates=1)

    def test_rejects_budget_below_replicates(self):
        with pytest.raises(IntegrationError):
            QuasiMonteCarloIntegrator(4, n_replicates=8)

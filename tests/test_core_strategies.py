"""Soundness and behaviour tests for the RR, OR and BF strategies.

The central invariant, checked property-style against the exact
qualification probability: a strategy may only REJECT objects whose true
probability is below θ, and only ACCEPT objects whose true probability is
at or above θ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.bf import BFCatalog
from repro.catalog.rtheta import RThetaCatalog
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import (
    ACCEPT,
    REJECT,
    UNKNOWN,
    BoundingFunctionStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
    make_strategies,
)
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from tests.conftest import random_spd


def exact_probs(gaussian, points, delta):
    return np.array(
        [
            qualification_probability_exact(gaussian, p, delta, method="ruben")
            for p in points
        ]
    )


def assert_sound(strategy, query, points, probs=None):
    """No REJECT may kill a qualifying object; no ACCEPT may admit a
    non-qualifying one."""
    codes = strategy.classify(points)
    if probs is None:
        probs = exact_probs(query.gaussian, points, query.delta)
    qualifying = probs >= query.theta
    rejected_ids = np.nonzero(codes == REJECT)[0]
    assert not np.any(qualifying[rejected_ids]), (
        f"{strategy.name} rejected qualifying objects: "
        f"{points[rejected_ids[qualifying[rejected_ids]]]}"
    )
    accepted_ids = np.nonzero(codes == ACCEPT)[0]
    assert np.all(qualifying[accepted_ids]), (
        f"{strategy.name} accepted non-qualifying objects"
    )


@pytest.fixture(scope="module")
def query():
    root3 = np.sqrt(3.0)
    sigma = 10.0 * np.array([[7.0, 2.0 * root3], [2.0 * root3, 3.0]])
    return ProbabilisticRangeQuery(Gaussian([500.0, 500.0], sigma), 25.0, 0.01)


@pytest.fixture(scope="module")
def candidate_cloud(query):
    """Points concentrated around the decision boundary."""
    rng = np.random.default_rng(12345)
    return query.gaussian.mean + rng.uniform(-120, 120, size=(400, 2))


@pytest.fixture(scope="module")
def cloud_probs(query, candidate_cloud):
    """Exact qualification probabilities of the shared cloud, computed once."""
    return exact_probs(query.gaussian, candidate_cloud, query.delta)


class TestRectilinearStrategy:
    def test_soundness(self, query, candidate_cloud, cloud_probs):
        strategy = RectilinearStrategy()
        strategy.prepare(query)
        assert_sound(strategy, query, candidate_cloud, cloud_probs)

    def test_search_rect_is_minkowski_bounding_box(self, query):
        strategy = RectilinearStrategy()
        strategy.prepare(query)
        rect = strategy.search_rect()
        region = strategy.region
        assert rect == region.bounding_rect()
        # Half widths: sigma_i * r_theta + delta (Property 2 + Fig. 4).
        expected = np.sqrt(np.diag(query.gaussian.sigma)) * 2.797 + 25.0
        np.testing.assert_allclose(
            (rect.highs - rect.lows) / 2.0, expected, rtol=1e-3
        )

    def test_fringe_filter_rejects_corners_only(self, query, rng):
        strategy = RectilinearStrategy()
        strategy.prepare(query)
        pts = query.gaussian.mean + rng.uniform(-80, 80, size=(500, 2))
        codes = strategy.classify(pts)
        fringe = strategy.region.in_fringe(pts)
        inside_box = strategy.search_rect().contains_points(pts)
        # Inside the box: REJECT iff fringe.
        np.testing.assert_array_equal(
            codes[inside_box] == REJECT, fringe[inside_box]
        )

    def test_paper_mode_disables_fringe_beyond_2d(self, rng):
        sigma = random_spd(rng, 3)
        gaussian = Gaussian(np.zeros(3), sigma)
        query3 = ProbabilisticRangeQuery(gaussian, 2.0, 0.05)
        paper = RectilinearStrategy(fringe_filter="paper")
        paper.prepare(query3)
        pts = rng.uniform(-10, 10, size=(100, 3))
        assert np.all(paper.classify(pts) == UNKNOWN)
        exact = RectilinearStrategy(fringe_filter="exact")
        exact.prepare(query3)
        assert np.any(exact.classify(pts) == REJECT)

    def test_off_mode_never_rejects(self, query, candidate_cloud):
        strategy = RectilinearStrategy(fringe_filter="off")
        strategy.prepare(query)
        assert np.all(strategy.classify(candidate_cloud) == UNKNOWN)

    def test_invalid_mode_rejected(self):
        with pytest.raises(QueryError):
            RectilinearStrategy(fringe_filter="maybe")

    def test_use_before_prepare_rejected(self):
        with pytest.raises(QueryError):
            RectilinearStrategy().search_rect()

    def test_catalog_lookup_enlarges_region(self, query):
        # A coarse catalog without theta=0.01 must fall back to a smaller
        # theta* and hence a larger box.
        coarse = RThetaCatalog.build_analytic(2, [0.005, 0.25])
        strategy = RectilinearStrategy(coarse)
        strategy.prepare(query)
        exact = RectilinearStrategy()
        exact.prepare(query)
        assert strategy.search_rect().contains_rect(exact.search_rect())

    def test_dim_mismatch_lookup_rejected(self, query):
        with pytest.raises(QueryError):
            RectilinearStrategy(RThetaCatalog.build_analytic(3, [0.01])).prepare(query)


class TestObliqueStrategy:
    def test_soundness(self, query, candidate_cloud, cloud_probs):
        strategy = ObliqueStrategy()
        strategy.prepare(query)
        assert_sound(strategy, query, candidate_cloud, cloud_probs)

    def test_oblique_box_tighter_than_rr_for_tilted_gaussians(self, query, rng):
        # The signature OR advantage: its box area is smaller than the RR
        # bounding box for the paper's tilted covariance.
        oblique = ObliqueStrategy()
        oblique.prepare(query)
        rr = RectilinearStrategy()
        rr.prepare(query)
        assert oblique.box.volume() < rr.search_rect().volume()

    def test_classify_matches_box_membership(self, query, candidate_cloud):
        strategy = ObliqueStrategy()
        strategy.prepare(query)
        codes = strategy.classify(candidate_cloud)
        inside = strategy.box.contains_points(candidate_cloud)
        np.testing.assert_array_equal(codes == UNKNOWN, inside)
        np.testing.assert_array_equal(codes == REJECT, ~inside)

    def test_use_before_prepare_rejected(self):
        with pytest.raises(QueryError):
            ObliqueStrategy().classify(np.zeros((1, 2)))


class TestBoundingFunctionStrategy:
    def test_soundness(self, query, candidate_cloud, cloud_probs):
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        assert_sound(strategy, query, candidate_cloud, cloud_probs)

    def test_alpha_ordering(self, query):
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        assert strategy.alpha_lower is not None
        assert strategy.alpha_upper is not None
        assert 0 < strategy.alpha_lower < strategy.alpha_upper

    def test_accepts_inner_points_without_integration(self, query):
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        inner = query.gaussian.mean + np.array([[1.0, 1.0]])
        assert strategy.classify(inner)[0] == ACCEPT

    def test_rejects_far_points(self, query):
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        far = query.gaussian.mean + np.array([[500.0, 0.0]])
        assert strategy.classify(far)[0] == REJECT

    def test_annulus_is_unknown(self, query):
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        mid_radius = 0.5 * (strategy.alpha_lower + strategy.alpha_upper)
        mid = query.gaussian.mean + np.array([[mid_radius, 0.0]])
        assert strategy.classify(mid)[0] == UNKNOWN

    def test_spherical_gaussian_needs_no_integration(self, rng):
        # When lambda_par == lambda_perp the bounds coincide: BF decides
        # every object exactly (the paper's "completely spherical" remark).
        gaussian = Gaussian.isotropic([0.0, 0.0], 9.0)
        query = ProbabilisticRangeQuery(gaussian, 5.0, 0.1)
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        assert strategy.alpha_lower == pytest.approx(strategy.alpha_upper, rel=1e-9)
        pts = rng.uniform(-20, 20, size=(300, 2))
        codes = strategy.classify(pts)
        assert not np.any(codes == UNKNOWN)
        probs = exact_probs(gaussian, pts, 5.0)
        boundary_gap = np.abs(probs - 0.1) > 1e-6
        np.testing.assert_array_equal(
            (codes == ACCEPT)[boundary_gap], (probs >= 0.1)[boundary_gap]
        )

    def test_no_inner_hole_for_ill_shaped_high_dim(self, rng):
        # Section VI: for narrow high-dimensional Gaussians the scaled theta
        # of Eq. 37 exceeds one and the inner hole vanishes.
        eigenvalues = np.concatenate([[100.0], np.full(8, 0.01)])
        gaussian = Gaussian(np.zeros(9), np.diag(eigenvalues))
        query = ProbabilisticRangeQuery(gaussian, 0.7, 0.4)
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        assert strategy.alpha_lower is None

    def test_proves_empty_when_theta_unreachable(self):
        # Tiny delta + high theta: no location can qualify.
        gaussian = Gaussian.isotropic([0.0, 0.0], 100.0)
        query = ProbabilisticRangeQuery(gaussian, 0.1, 0.9)
        strategy = BoundingFunctionStrategy()
        strategy.prepare(query)
        assert strategy.proves_empty
        assert strategy.search_rect() is None
        pts = np.array([[0.0, 0.0]])
        assert strategy.classify(pts)[0] == REJECT

    def test_catalog_backed_lookup_still_sound(self, query, candidate_cloud, cloud_probs):
        catalog = BFCatalog.build_analytic(
            2,
            deltas=np.linspace(0.5, 5.0, 12),
            thetas=np.geomspace(1e-4, 0.45, 12),
        )
        strategy = BoundingFunctionStrategy(catalog)
        strategy.prepare(query)
        if not strategy.proves_empty:
            assert_sound(strategy, query, candidate_cloud, cloud_probs)

    def test_use_before_prepare_rejected(self):
        with pytest.raises(QueryError):
            BoundingFunctionStrategy().search_rect()


class TestMakeStrategies:
    @pytest.mark.parametrize(
        "spec,names",
        [
            ("rr", ["RR"]),
            ("bf", ["BF"]),
            ("rr+bf", ["RR", "BF"]),
            ("rr+or", ["RR", "OR"]),
            ("bf+or", ["BF", "OR"]),
            ("all", ["RR", "BF", "OR"]),
        ],
    )
    def test_specs(self, spec, names):
        assert [s.name for s in make_strategies(spec)] == names

    def test_spec_order_insensitive(self):
        assert [s.name for s in make_strategies("or+rr")] == ["RR", "OR"]

    def test_case_insensitive(self):
        assert [s.name for s in make_strategies("ALL")] == ["RR", "BF", "OR"]

    def test_unknown_spec_rejected(self):
        with pytest.raises(QueryError):
            make_strategies("rr+xx")


class TestRandomizedSoundness:
    """Property-style sweep: every strategy stays sound across random
    covariances, thresholds and dimensionalities."""

    @pytest.mark.parametrize("dim", [2, 3, 5])
    @pytest.mark.parametrize("theta", [0.01, 0.2, 0.45])
    def test_all_strategies_sound(self, dim, theta):
        rng = np.random.default_rng(dim * 100 + int(theta * 1000))
        sigma = random_spd(rng, dim, scale=4.0)
        gaussian = Gaussian(rng.standard_normal(dim), sigma)
        delta = float(np.sqrt(np.trace(sigma)) * 0.8)
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        spread = 3.0 * np.sqrt(np.trace(sigma)) + delta
        points = gaussian.mean + rng.uniform(-spread, spread, size=(90, dim))
        for strategy in make_strategies("all"):
            strategy.prepare(query)
            if strategy.proves_empty:
                probs = exact_probs(gaussian, points, delta)
                assert np.all(probs < theta)
                continue
            assert_sound(strategy, query, points)

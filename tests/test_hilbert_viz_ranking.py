"""Tests for the Hilbert curve, the SVG figures, top-k ranking and the
bisector NN filter."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.nn import bisector_upper_bounds, halfspace_win_probability
from repro.errors import IndexError_, QueryError, ReproError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.index.hilbert import hilbert_index, hilbert_order
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RStarTree
from repro.viz import (
    SvgDocument,
    render_radial_figure,
    render_regions_figure,
    render_road_network,
)


class TestHilbertIndex:
    def test_bijective_on_small_grid(self):
        # Every cell of a 2-D 3-bit grid maps to a distinct curve position
        # covering 0 .. 4^3 - 1.
        coords = np.array(
            [[x, y] for x in range(8) for y in range(8)], dtype=np.int64
        )
        indices = hilbert_index(coords, bits=3)
        assert sorted(indices.tolist()) == list(range(64))

    def test_locality_consecutive_cells_adjacent(self):
        # Walking the curve, consecutive positions differ by exactly one
        # grid step — the defining Hilbert property.
        coords = np.array(
            [[x, y] for x in range(16) for y in range(16)], dtype=np.int64
        )
        indices = hilbert_index(coords, bits=4)
        by_curve = coords[np.argsort(indices)]
        steps = np.abs(np.diff(by_curve, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_3d_bijective(self):
        coords = np.array(
            [[x, y, z] for x in range(4) for y in range(4) for z in range(4)],
            dtype=np.int64,
        )
        indices = hilbert_index(coords, bits=2)
        assert sorted(indices.tolist()) == list(range(64))

    def test_validation(self):
        with pytest.raises(IndexError_):
            hilbert_index(np.array([[0.5]]), bits=2)  # non-integer
        with pytest.raises(IndexError_):
            hilbert_index(np.array([[8]], dtype=np.int64), bits=3)  # out of range
        with pytest.raises(IndexError_):
            hilbert_index(np.array([[1]] * 2, dtype=np.int64).T, bits=40)  # overflow
        with pytest.raises(IndexError_):
            hilbert_order(np.empty((0, 2)))

    def test_order_handles_degenerate_dimension(self):
        pts = np.column_stack([np.arange(10.0), np.zeros(10)])
        order = hilbert_order(pts, bits=4)
        assert sorted(order.tolist()) == list(range(10))


class TestHilbertBulkLoad:
    def test_queries_match_oracle(self, rng):
        pts = rng.random((3000, 2)) * 100
        tree = RStarTree(2, max_entries=20)
        tree.bulk_load(range(3000), pts, method="hilbert")
        tree.check_invariants()
        oracle = LinearScanIndex(2)
        oracle.bulk_load(range(3000), pts)
        from repro.geometry.mbr import Rect

        for _ in range(8):
            lo = rng.random(2) * 70
            rect = Rect(lo, lo + 20)
            assert sorted(tree.range_search_rect(rect)) == sorted(
                oracle.range_search_rect(rect)
            )
        got = tree.knn([50.0, 50.0], 10)
        expected = oracle.knn([50.0, 50.0], 10)
        assert [i for i, _ in got] == [i for i, _ in expected]
        np.testing.assert_allclose(
            [d for _, d in got], [d for _, d in expected], rtol=1e-12
        )

    def test_unknown_method_rejected(self):
        tree = RStarTree(2)
        with pytest.raises(IndexError_):
            tree.bulk_load([0], np.zeros((1, 2)), method="zorder")

    def test_competitive_node_accesses_on_skewed_data(self):
        from repro.datasets.synthetic import clustered_points
        from repro.geometry.mbr import Rect

        pts = clustered_points(20_000, 2, n_clusters=12, spread=15.0, seed=9)
        accesses = {}
        for method in ("str", "hilbert"):
            tree = RStarTree(2, max_entries=32)
            tree.bulk_load(range(20_000), pts, method=method)
            tree.stats.reset()
            rng = np.random.default_rng(4)
            for _ in range(40):
                lo = rng.random(2) * 900
                tree.range_search_rect(Rect(lo, lo + 60))
            accesses[method] = tree.stats.node_accesses
        # Both packings must be in the same ballpark (within 2x).
        ratio = accesses["hilbert"] / accesses["str"]
        assert 0.5 < ratio < 2.0


class TestSvgDocument:
    def test_valid_xml(self):
        doc = SvgDocument(100, 80)
        doc.rect(1, 2, 10, 10, rx=2, fill="red")
        doc.circle(5, 5, 3)
        doc.ellipse(10, 10, 6, 3, rotation_degrees=30)
        doc.line(0, 0, 10, 10, stroke="black")
        doc.polyline([(0, 0), (5, 5), (9, 2)], stroke="blue")
        doc.polygon([(0, 0), (5, 5), (9, 2)], fill="green")
        doc.text(3, 9, "hello <&> world")
        root = ET.fromstring(doc.to_string())
        assert root.tag.endswith("svg")
        assert len(list(root)) == 7

    def test_validation(self):
        with pytest.raises(ReproError):
            SvgDocument(0, 10)
        doc = SvgDocument(10, 10)
        with pytest.raises(ReproError):
            doc.circle(0, 0, -1)
        with pytest.raises(ReproError):
            doc.rect(0, 0, -1, 1)
        with pytest.raises(ReproError):
            doc.polyline([(0, 0)])

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        doc.circle(5, 5, 2)
        target = doc.save(tmp_path / "out.svg")
        assert target.read_text().startswith("<svg")


class TestFigures:
    @pytest.mark.parametrize("gamma", [1.0, 10.0, 100.0])
    def test_regions_figure_parses(self, gamma):
        text = render_regions_figure(gamma).to_string()
        root = ET.fromstring(text)
        tags = [child.tag.split("}")[-1] for child in root]
        assert "ellipse" in tags  # the theta-region
        assert tags.count("circle") >= 1  # BF radii
        assert "polygon" in tags  # the oblique box

    def test_radial_figure_has_all_curves(self):
        root = ET.fromstring(render_radial_figure().to_string())
        polylines = [c for c in root if c.tag.split("}")[-1] == "polyline"]
        assert len(polylines) == 5

    def test_road_network_figure(self, rng):
        pts = rng.random((500, 2)) * 1000
        root = ET.fromstring(render_road_network(pts).to_string())
        circles = [c for c in root if c.tag.split("}")[-1] == "circle"]
        assert len(circles) == 500

    def test_road_network_subsamples(self, rng):
        pts = rng.random((1000, 2))
        root = ET.fromstring(
            render_road_network(pts, max_points=100).to_string()
        )
        circles = [c for c in root if c.tag.split("}")[-1] == "circle"]
        assert len(circles) == 100


class TestTopKByProbability:
    @pytest.fixture(scope="class")
    def world(self):
        rng = np.random.default_rng(17)
        points = rng.random((2500, 2)) * 1000
        db = SpatialDatabase(points)
        sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
        return db, points, Gaussian([500.0, 500.0], sigma)

    def test_matches_brute_force(self, world):
        db, points, gaussian = world
        top = db.top_k_by_probability(gaussian, 25.0, 12)
        probs = np.array(
            [
                qualification_probability_exact(gaussian, p, 25.0, method="ruben")
                for p in points
            ]
        )
        expected_ids = np.argsort(-probs)[:12]
        assert [i for i, _ in top] == [int(i) for i in expected_ids]
        for (_, got), i in zip(top, expected_ids):
            assert got == pytest.approx(float(probs[i]), abs=1e-9)

    def test_probabilities_descending(self, world):
        db, _, gaussian = world
        top = db.top_k_by_probability(gaussian, 25.0, 8)
        values = [p for _, p in top]
        assert values == sorted(values, reverse=True)

    def test_k_larger_than_region_expands(self, world):
        db, _, gaussian = world
        # Ask for more objects than clear the initial theta floor: the
        # region must expand until every non-negligible object is ranked;
        # objects with probability below the 1e-12 floor are omitted.
        small = db.top_k_by_probability(gaussian, 25.0, 10, theta_floor=0.3)
        big = db.top_k_by_probability(gaussian, 25.0, 60, theta_floor=0.3)
        assert len(big) > len(small)
        assert big[: len(small)] == small  # prefix-stable ranking
        values = [p for _, p in big]
        assert values == sorted(values, reverse=True)

    def test_validation(self, world):
        db, _, gaussian = world
        with pytest.raises(QueryError):
            db.top_k_by_probability(gaussian, 25.0, 0)
        with pytest.raises(QueryError):
            db.top_k_by_probability(gaussian, 25.0, 1, theta_floor=0.7)


class TestBisectorFilter:
    def test_halfspace_probability_matches_monte_carlo(self, rng, paper_gaussian):
        candidate = paper_gaussian.mean + np.array([5.0, -3.0])
        competitor = paper_gaussian.mean + np.array([-8.0, 6.0])
        exact = halfspace_win_probability(paper_gaussian, candidate, competitor)
        samples = paper_gaussian.sample(300_000, rng)
        wins = np.mean(
            np.linalg.norm(samples - candidate, axis=1)
            <= np.linalg.norm(samples - competitor, axis=1)
        )
        assert exact == pytest.approx(wins, abs=0.004)

    def test_identical_points_probability_one(self, paper_gaussian):
        p = paper_gaussian.mean + 1.0
        assert halfspace_win_probability(paper_gaussian, p, p) == 1.0

    def test_bounds_are_valid_upper_bounds(self, rng, paper_gaussian):
        candidates = paper_gaussian.mean + rng.uniform(-40, 40, size=(30, 2))
        bounds = bisector_upper_bounds(paper_gaussian, candidates)
        # Monte Carlo NN probabilities.
        samples = paper_gaussian.sample(40_000, rng)
        d2 = (
            np.einsum("ij,ij->i", samples, samples)[:, None]
            - 2.0 * samples @ candidates.T
            + np.einsum("ij,ij->i", candidates, candidates)[None, :]
        )
        wins = np.bincount(np.argmin(d2, axis=1), minlength=30) / 40_000
        stderr = np.sqrt(wins * (1 - wins) / 40_000)
        assert np.all(bounds + 4 * stderr + 1e-9 >= wins)

    def test_shapes(self, paper_gaussian):
        assert bisector_upper_bounds(paper_gaussian, np.empty((0, 2))).size == 0
        single = bisector_upper_bounds(paper_gaussian, np.zeros((1, 2)))
        assert single[0] == 1.0

    def test_wrong_dim_rejected(self, paper_gaussian):
        with pytest.raises(QueryError):
            halfspace_win_probability(paper_gaussian, np.zeros(3), np.zeros(2))

"""Hypothesis stateful testing: the R*-tree against a dictionary model.

A rule-based state machine performs arbitrary interleavings of inserts,
deletes and queries; after every step the tree must agree with a plain
``dict`` model and satisfy its structural invariants.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.geometry.mbr import Rect
from repro.index.rtree import RStarTree

_coords = st.tuples(
    st.floats(-100.0, 100.0, allow_nan=False, width=32),
    st.floats(-100.0, 100.0, allow_nan=False, width=32),
)


class RTreeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.tree = RStarTree(2, max_entries=8)
        self.model: dict[int, np.ndarray] = {}
        self.next_id = 0
        self.steps = 0

    @rule(point=_coords)
    def insert(self, point) -> None:
        p = np.asarray(point, dtype=float)
        self.tree.insert(self.next_id, p)
        self.model[self.next_id] = p
        self.next_id += 1
        self.steps += 1

    @precondition(lambda self: bool(self.model))
    @rule(pick=st.randoms(use_true_random=False))
    def delete_existing(self, pick) -> None:
        victim = pick.choice(sorted(self.model))
        self.tree.delete(victim)
        del self.model[victim]
        self.steps += 1

    @rule(low=_coords, extent=st.tuples(st.floats(0.0, 80.0), st.floats(0.0, 80.0)))
    def range_query_matches_model(self, low, extent) -> None:
        lo = np.asarray(low, dtype=float)
        rect = Rect(lo, lo + np.asarray(extent, dtype=float))
        got = sorted(self.tree.range_search_rect(rect))
        expected = sorted(
            obj_id
            for obj_id, p in self.model.items()
            if rect.contains_point(p)
        )
        assert got == expected

    @rule(center=_coords, k=st.integers(1, 6))
    def knn_matches_model(self, center, k) -> None:
        if not self.model:
            assert self.tree.knn(list(center), k) == []
            return
        c = np.asarray(center, dtype=float)
        got = self.tree.knn(c, k)
        ordered = sorted(
            self.model, key=lambda i: (float(np.linalg.norm(self.model[i] - c)), i)
        )
        got_distances = [d for _, d in got]
        expected_distances = sorted(
            float(np.linalg.norm(self.model[i] - c)) for i in self.model
        )[: len(got)]
        np.testing.assert_allclose(got_distances, expected_distances, rtol=1e-9)
        assert len(got) == min(k, len(self.model))
        del ordered  # ids may legitimately tie by distance; distances decide

    @invariant()
    def sizes_agree(self) -> None:
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self) -> None:
        # Full structural validation is O(n); run it periodically.
        if self.steps % 5 == 0:
            self.tree.check_invariants()


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

"""Tests for Gaussian marginalization and conditioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.gaussian.distribution import Gaussian
from tests.conftest import random_spd


@pytest.fixture
def gaussian_4d(rng):
    return Gaussian(rng.standard_normal(4), random_spd(rng, 4))


class TestMarginal:
    def test_selects_blocks(self, gaussian_4d):
        marginal = gaussian_4d.marginal([1, 3])
        np.testing.assert_allclose(marginal.mean, gaussian_4d.mean[[1, 3]])
        np.testing.assert_allclose(
            marginal.sigma, gaussian_4d.sigma[np.ix_([1, 3], [1, 3])]
        )

    def test_matches_sampled_marginal(self, rng, gaussian_4d):
        samples = gaussian_4d.sample(120_000, rng)[:, [0, 2]]
        marginal = gaussian_4d.marginal([0, 2])
        np.testing.assert_allclose(samples.mean(axis=0), marginal.mean, atol=0.03)
        np.testing.assert_allclose(np.cov(samples.T), marginal.sigma, atol=0.08)

    def test_full_marginal_is_identity(self, gaussian_4d):
        same = gaussian_4d.marginal([0, 1, 2, 3])
        assert same == gaussian_4d

    def test_validation(self, gaussian_4d):
        with pytest.raises(GeometryError):
            gaussian_4d.marginal([])
        with pytest.raises(GeometryError):
            gaussian_4d.marginal([0, 0])
        with pytest.raises(GeometryError):
            gaussian_4d.marginal([4])


class TestCondition:
    def test_independent_dims_unchanged(self, rng):
        g = Gaussian([1.0, 2.0], np.diag([4.0, 9.0]))
        conditioned = g.condition([1], [5.0])
        np.testing.assert_allclose(conditioned.mean, [1.0])
        np.testing.assert_allclose(conditioned.sigma, [[4.0]])

    def test_formula_against_sampling(self, rng, gaussian_4d):
        observed_value = gaussian_4d.mean[3] + 0.5
        conditioned = gaussian_4d.condition([3], [observed_value])
        # Rejection-sample the conditional from the joint.
        samples = gaussian_4d.sample(600_000, rng)
        band = np.abs(samples[:, 3] - observed_value) < 0.05
        kept = samples[band][:, :3]
        assert kept.shape[0] > 3_000
        np.testing.assert_allclose(kept.mean(axis=0), conditioned.mean, atol=0.1)
        np.testing.assert_allclose(np.cov(kept.T), conditioned.sigma, atol=0.25)

    def test_conditioning_reduces_variance(self, gaussian_4d):
        conditioned = gaussian_4d.condition([0], [0.0])
        # Determinant shrinks (or stays) after observing a dimension.
        remaining = gaussian_4d.marginal([1, 2, 3])
        assert conditioned.det_sigma <= remaining.det_sigma + 1e-12

    def test_kalman_update_equivalence(self):
        # Conditioning a joint (state, measurement) Gaussian on the
        # measurement is exactly the Kalman update.
        from repro.robotics.kalman import KalmanFilter

        p0 = np.array([[2.0, 0.5], [0.5, 1.0]])
        r = 0.64
        kf = KalmanFilter(
            transition=np.eye(2),
            process_noise=1e-12 * np.eye(2),
            observation=np.array([[1.0, 0.0]]),
            observation_noise=np.array([[r]]),
        )
        kf.initialize(np.zeros(2), p0)
        kf.predict()
        kf.update(np.array([1.2]))
        mean_kf, cov_kf = kf.state

        # Joint over (x0, x1, z) with z = x0 + noise.
        joint_mean = np.zeros(3)
        joint_cov = np.zeros((3, 3))
        joint_cov[:2, :2] = p0
        joint_cov[2, :2] = p0[0, :]
        joint_cov[:2, 2] = p0[:, 0]
        joint_cov[2, 2] = p0[0, 0] + r
        joint = Gaussian(joint_mean, joint_cov)
        conditioned = joint.condition([2], [1.2])
        np.testing.assert_allclose(conditioned.mean, mean_kf, atol=1e-6)
        np.testing.assert_allclose(conditioned.sigma, cov_kf, atol=1e-6)

    def test_validation(self, gaussian_4d):
        with pytest.raises(DimensionMismatchError):
            gaussian_4d.condition([0], [1.0, 2.0])
        with pytest.raises(GeometryError):
            gaussian_4d.condition([0, 1, 2, 3], [0.0, 0.0, 0.0, 0.0])

"""Batched execution: parity, determinism, and the classify_many fallback.

``run_batch`` seeds every query's integrator from its position in the
batch, so the same workload must come out bit-identical whether it runs
on 1, 2 or 4 workers — and identical to the sequential ``run``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workload import WorkloadGenerator, run_workload
from repro.core.database import SpatialDatabase
from repro.core.engine import BatchResult, QueryResult
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.core.strategies import RectilinearStrategy, Strategy
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.sequential import SequentialImportanceSampler


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(99)
    return SpatialDatabase(rng.random((4000, 2)) * 1000.0)


@pytest.fixture(scope="module")
def workload(database) -> list[ProbabilisticRangeQuery]:
    return WorkloadGenerator(database, seed=5).batch(12)


def batch_counts(batch: BatchResult) -> tuple:
    s = batch.stats
    return (
        s.retrieved,
        s.accepted_without_integration,
        s.integrations,
        s.results,
        dict(s.rejected_by_filter),
    )


def test_run_batch_matches_sequential_run(database, workload):
    engine = database.engine()
    sequential = engine.run(workload, base_seed=17)
    for workers in (1, 2, 4):
        batch = engine.run_batch(workload, workers=workers, base_seed=17)
        assert batch.ids == sequential.ids, f"ids diverged at workers={workers}"
        assert batch_counts(batch) == batch_counts(sequential)
        assert batch.stats.workers == workers
        assert batch.stats.n_queries == len(workload)


def test_run_batch_with_adaptive_factory(database, workload):
    engine = database.engine()
    factory = lambda q, seed: SequentialImportanceSampler(  # noqa: E731
        q.theta, max_samples=20_000, seed=seed, share_batches=True
    )
    sequential = engine.run(workload, base_seed=3, integrator_factory=factory)
    for workers in (2, 4):
        batch = engine.run_batch(
            workload, workers=workers, base_seed=3, integrator_factory=factory
        )
        assert batch.ids == sequential.ids
        # Same forked seeds => identical adaptive stopping points.
        assert batch.stats.integration_samples == (
            sequential.stats.integration_samples
        )


def test_run_workload_workers_parity(database, workload):
    seq = run_workload(database, workload, workers=1)
    par = run_workload(database, workload, workers=4)
    assert seq.answers == par.answers
    assert seq.integrations == par.integrations
    assert par.workers == 4 and par.wall_seconds is not None


def test_run_batch_rejects_bad_workers(database, workload):
    engine = database.engine()
    with pytest.raises(QueryError):
        engine.run_batch(workload, workers=0)


def test_run_batch_empty_batch(database):
    batch = database.engine().run_batch([])
    assert len(batch) == 0 and batch.stats.n_queries == 0


def test_batch_result_container_protocol(database, workload):
    batch = database.engine().run_batch(workload[:3], workers=2)
    assert len(batch) == 3
    assert [r for r in batch] == list(batch.results)
    assert batch[1] is batch.results[1]
    assert batch.ids == tuple(r.ids for r in batch.results)


class ScalarOnlyStrategy(Strategy):
    """Implements only the per-point scalar path; classify_many must fall
    back to it through the abstract base."""

    name = "RRscalar"

    def __init__(self):
        self._inner = RectilinearStrategy()

    def clone(self):
        # The base shallow copy would share the mutable ``_inner`` across
        # per-query clones — exactly the case the Strategy.clone docstring
        # says requires an override.
        return ScalarOnlyStrategy()

    def prepare(self, query) -> None:
        self._inner.prepare(query)

    def search_rect(self):
        return self._inner.search_rect()

    def classify(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        assert pts.shape[0] == 1, "scalar path must be fed row by row"
        return self._inner.classify(pts)


def test_classify_many_scalar_fallback(database):
    query = ProbabilisticRangeQuery(
        Gaussian([500.0, 500.0], 100.0 * np.eye(2)), 25.0, 0.05
    )
    scalar = ScalarOnlyStrategy()
    vectorised = RectilinearStrategy()
    scalar.prepare(query)
    vectorised.prepare(query)
    rng = np.random.default_rng(1)
    points = 400.0 + 200.0 * rng.random((50, 2))
    np.testing.assert_array_equal(
        scalar.classify_many(points), vectorised.classify_many(points)
    )
    assert scalar.classify_many(np.empty((0, 2))).size == 0


def test_engine_accepts_scalar_only_strategy(database):
    """The batch path works end to end with a base-fallback strategy."""
    queries = WorkloadGenerator(database, seed=8).batch(3)
    reference = database.engine(strategies="rr").run(queries, base_seed=5)
    engine = database.engine(strategies=[ScalarOnlyStrategy()])
    batch = engine.run_batch(queries, workers=2, base_seed=5)
    assert batch.ids == reference.ids


def test_query_result_contains_uses_cached_set():
    result = QueryResult((3, 7, 11), QueryStats())
    assert 7 in result and 8 not in result
    assert result._id_set is result._id_set  # memoized, not rebuilt per check
    assert isinstance(result._id_set, frozenset)


class FaultyIntegrator(SequentialImportanceSampler):
    """Raises on queries whose θ matches a poison value."""

    name = "faulty"

    def __init__(self, poison_theta: float, seed=None):
        super().__init__(0.05, max_samples=5_000, seed=seed)
        self.poison_theta = poison_theta

    def fork(self, seed):
        return FaultyIntegrator(self.poison_theta, seed=seed)

    def qualification_probabilities(self, gaussian, points, delta):
        if getattr(self, "_armed", False):
            raise RuntimeError("integrator blew up")
        return super().qualification_probabilities(gaussian, points, delta)


class _ArmingFactory:
    """Arms the FaultyIntegrator only for the poisoned query."""

    def __init__(self, poison_theta: float):
        self.poison_theta = poison_theta

    def __call__(self, query, seed):
        integrator = FaultyIntegrator(self.poison_theta, seed=seed)
        integrator._armed = query.theta == self.poison_theta
        return integrator


def _poisoned_workload(database):
    """A workload whose middle query carries a recognisably unique θ."""
    queries = list(WorkloadGenerator(database, seed=21).batch(8))
    victim = queries[4]
    poisoned = ProbabilisticRangeQuery(
        victim.gaussian, victim.delta, 0.123456789
    )
    queries[4] = poisoned
    return queries, poisoned.theta


def test_run_batch_return_errors_isolates_failure(database):
    """A query whose integrator raises fails alone, with a typed error,
    identically for every worker count — and the batch still completes."""
    queries, poison = _poisoned_workload(database)
    engine = database.engine()
    reference = None
    for workers in (1, 2, 4):
        batch = engine.run_batch(
            queries,
            workers=workers,
            base_seed=11,
            integrator_factory=_ArmingFactory(poison),
            return_errors=True,
        )
        assert len(batch) == len(queries)
        assert batch.stats.failed == 1
        failed = [i for i, r in enumerate(batch.results) if r.failed]
        assert failed == [4]
        assert isinstance(batch[4].error, QueryError)
        assert "RuntimeError" in str(batch[4].error)
        assert isinstance(batch[4].error.__cause__, RuntimeError)
        assert batch[4].ids == ()
        healthy = tuple(r.ids for i, r in enumerate(batch.results) if i != 4)
        assert all(r.error is None for i, r in enumerate(batch.results) if i != 4)
        if reference is None:
            reference = healthy
        else:
            assert healthy == reference, f"results drifted at workers={workers}"


def test_run_batch_failure_raises_typed_error_by_default(database):
    queries, poison = _poisoned_workload(database)
    engine = database.engine()
    with pytest.raises(QueryError, match="RuntimeError"):
        engine.run_batch(
            queries,
            workers=4,
            integrator_factory=_ArmingFactory(poison),
        )


def test_run_batch_pool_survives_failures(database):
    """The engine stays healthy after a failing batch: the next batch on
    the same instance is complete and bit-identical to a fresh engine."""
    queries, poison = _poisoned_workload(database)
    engine = database.engine()
    engine.run_batch(
        queries,
        workers=4,
        base_seed=2,
        integrator_factory=_ArmingFactory(poison),
        return_errors=True,
    )
    clean = WorkloadGenerator(database, seed=33).batch(6)
    after = engine.run_batch(clean, workers=4, base_seed=7)
    fresh = database.engine().run_batch(clean, workers=4, base_seed=7)
    assert after.ids == fresh.ids
    assert after.stats.failed == 0


def test_run_batch_keeps_library_errors_untyped_wrapped(database):
    """A ReproError raised inside execution propagates as-is (no
    double-wrapping)."""
    queries, poison = _poisoned_workload(database)

    class TypedFaultFactory(_ArmingFactory):
        def __call__(self, query, seed):
            integrator = super().__call__(query, seed)
            if integrator._armed:
                class Typed(FaultyIntegrator):
                    def qualification_probabilities(self, g, p, d):
                        raise QueryError("already typed")
                typed = Typed(self.poison_theta, seed=seed)
                typed._armed = True
                return typed
            return integrator

    batch = database.engine().run_batch(
        queries,
        workers=2,
        integrator_factory=TypedFaultFactory(poison),
        return_errors=True,
    )
    assert str(batch[4].error) == "already typed"
    assert type(batch[4].error) is not QueryError or batch[4].error.args == (
        "already typed",
    )


def test_strategy_clone_isolates_prepared_state(database):
    template = RectilinearStrategy()
    q1 = ProbabilisticRangeQuery(
        Gaussian([100.0, 100.0], 50.0 * np.eye(2)), 10.0, 0.1
    )
    q2 = ProbabilisticRangeQuery(
        Gaussian([900.0, 900.0], 50.0 * np.eye(2)), 10.0, 0.1
    )
    a, b = template.clone(), template.clone()
    a.prepare(q1)
    b.prepare(q2)
    assert a.region.core.center[0] != b.region.core.center[0]
    with pytest.raises(QueryError):
        template.region  # the template itself stays unprepared

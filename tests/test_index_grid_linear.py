"""Tests for the grid and linear-scan index baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geometry.mbr import Rect
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex


@pytest.fixture
def bounds():
    return Rect([0.0, 0.0], [100.0, 100.0])


class TestGridIndex:
    def test_insert_search(self, bounds, rng):
        grid = GridIndex(bounds, cells_per_dim=10)
        pts = rng.random((400, 2)) * 100
        for i, p in enumerate(pts):
            grid.insert(i, p)
        oracle = LinearScanIndex(2)
        oracle.bulk_load(range(400), pts)
        for _ in range(10):
            lo = rng.random(2) * 70
            rect = Rect(lo, lo + 25)
            assert sorted(grid.range_search_rect(rect)) == sorted(
                oracle.range_search_rect(rect)
            )

    def test_points_outside_bounds_clamped_but_found(self, bounds):
        grid = GridIndex(bounds, cells_per_dim=4)
        grid.insert(1, [150.0, -20.0])  # outside the declared bounds
        assert grid.range_search_rect(Rect([100.0, -30.0], [200.0, 0.0])) == [1]
        found = grid.range_search_sphere([150.0, -20.0], 1.0)
        assert found == [1]

    def test_duplicate_id_rejected(self, bounds):
        grid = GridIndex(bounds)
        grid.insert(1, [5.0, 5.0])
        with pytest.raises(IndexError_):
            grid.insert(1, [6.0, 6.0])

    def test_delete(self, bounds):
        grid = GridIndex(bounds)
        grid.insert(1, [5.0, 5.0])
        grid.delete(1)
        assert len(grid) == 0
        with pytest.raises(IndexError_):
            grid.delete(1)

    def test_knn_matches_linear(self, bounds, rng):
        grid = GridIndex(bounds, cells_per_dim=8)
        oracle = LinearScanIndex(2)
        pts = rng.random((300, 2)) * 100
        for i, p in enumerate(pts):
            grid.insert(i, p)
            oracle.insert(i, p)
        for _ in range(10):
            q = rng.random(2) * 100
            got = grid.knn(q, 7)
            expected = oracle.knn(q, 7)
            assert [i for i, _ in got] == [i for i, _ in expected]

    def test_high_dim_cell_blowup_rejected(self):
        with pytest.raises(IndexError_):
            GridIndex(Rect([0.0] * 9, [1.0] * 9), cells_per_dim=16)

    def test_occupancy(self, bounds):
        grid = GridIndex(bounds, cells_per_dim=10)
        grid.insert(1, [5.0, 5.0])
        assert grid.occupancy() == pytest.approx(0.01)

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(IndexError_):
            GridIndex(Rect([0.0, 0.0], [0.0, 1.0]))


class TestLinearScanIndex:
    def test_basic_round_trip(self, rng):
        idx = LinearScanIndex(3)
        pts = rng.random((50, 3))
        for i, p in enumerate(pts):
            idx.insert(i, p)
        assert len(idx) == 50
        np.testing.assert_array_equal(idx.get(7), pts[7])

    def test_delete_swaps_last(self, rng):
        idx = LinearScanIndex(2)
        for i in range(10):
            idx.insert(i, [float(i), 0.0])
        idx.delete(3)
        assert len(idx) == 9
        assert sorted(idx.range_search_rect(Rect([0, 0], [20, 0]))) == [
            0, 1, 2, 4, 5, 6, 7, 8, 9,
        ]

    def test_empty_queries(self):
        idx = LinearScanIndex(2)
        assert idx.range_search_rect(Rect([0, 0], [1, 1])) == []
        assert idx.range_search_sphere([0.0, 0.0], 1.0) == []
        assert idx.knn([0.0, 0.0], 5) == []

    def test_knn_stable_order_for_ties(self):
        idx = LinearScanIndex(2)
        idx.insert(10, [1.0, 0.0])
        idx.insert(20, [0.0, 1.0])  # same distance from origin
        result = idx.knn([0.0, 0.0], 2)
        assert {i for i, _ in result} == {10, 20}
        assert result[0][1] == result[1][1] == pytest.approx(1.0)

    def test_duplicate_and_unknown_errors(self):
        idx = LinearScanIndex(2)
        idx.insert(1, [0.0, 0.0])
        with pytest.raises(IndexError_):
            idx.insert(1, [1.0, 1.0])
        with pytest.raises(IndexError_):
            idx.delete(2)
        with pytest.raises(IndexError_):
            idx.get(2)

    def test_stats_count_full_scans(self, rng):
        idx = LinearScanIndex(2)
        idx.bulk_load(range(100), rng.random((100, 2)))
        idx.range_search_rect(Rect([0, 0], [1, 1]))
        idx.range_search_sphere([0.5, 0.5], 0.2)
        assert idx.stats.queries == 2
        assert idx.stats.entries_examined == 200

"""Docs drift guard: the public API must be documented.

Every name exported from ``repro.__init__`` (``repro.__all__``) has to
appear in ``docs/api.md`` — by name, anywhere in the page.  The check is
deliberately a substring test, not a structural one: it cannot rot when
the docs are reorganised, but it does fail the moment someone exports a
new symbol without documenting it (or renames one without updating the
docs).
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro

DOCS = Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(scope="module")
def api_doc() -> str:
    path = DOCS / "api.md"
    assert path.is_file(), "docs/api.md is missing"
    return path.read_text()


@pytest.mark.parametrize("name", sorted(n for n in repro.__all__ if n != "__version__"))
def test_exported_name_is_documented(api_doc, name):
    assert name in api_doc, (
        f"repro.{name} is exported from repro.__init__ but never mentioned "
        f"in docs/api.md — document it (or stop exporting it)"
    )


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.serve", fromlist=["__all__"]).__all__),
)
def test_serve_export_is_documented(name):
    """Every ``repro.serve.__all__`` name must appear in the API docs."""
    import repro.serve

    assert hasattr(repro.serve, name), (
        f"repro.serve.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    serving = (DOCS / "serving.md").read_text()
    assert name in api or name in serving, (
        f"repro.serve.{name} is exported but appears in neither docs/api.md "
        f"nor docs/serving.md — document it (or stop exporting it)"
    )


def test_serving_doc_cross_links():
    """The serving contract must stay linked from the doc hub pages."""
    serving = DOCS / "serving.md"
    assert serving.is_file(), "docs/serving.md is missing"
    for hub in ("api.md", "architecture.md"):
        text = (DOCS / hub).read_text()
        assert "serving.md" in text, f"docs/{hub} lost its serving link"
    readme = (DOCS.parent / "README.md").read_text()
    assert "serving.md" in readme, "README lost its serving link"


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.serve.monitor", fromlist=["__all__"]).__all__),
)
def test_monitor_export_is_documented(name):
    """Every ``repro.serve.monitor.__all__`` name must appear in the docs."""
    import repro.serve.monitor

    assert hasattr(repro.serve.monitor, name), (
        f"repro.serve.monitor.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    monitoring = (DOCS / "monitoring.md").read_text()
    assert name in api or name in monitoring, (
        f"repro.serve.monitor.{name} is exported but appears in neither "
        f"docs/api.md nor docs/monitoring.md — document it (or stop "
        f"exporting it)"
    )


def test_monitoring_doc_cross_links():
    """The monitoring contract must stay linked from the doc hub pages."""
    monitoring = DOCS / "monitoring.md"
    assert monitoring.is_file(), "docs/monitoring.md is missing"
    for hub in ("api.md", "architecture.md", "serving.md"):
        text = (DOCS / hub).read_text()
        assert "monitoring.md" in text, f"docs/{hub} lost its monitoring link"
    readme = (DOCS.parent / "README.md").read_text()
    assert "monitoring.md" in readme, "README lost its monitoring link"


def test_monitoring_doc_covers_the_wire_vocabulary():
    """The contract page must spell out every request type, outcome and
    status *value* a monitor response can carry — these strings are the
    wire format ``repro serve`` emits, so the doc must track them."""
    from repro.serve import REQUEST_TYPES, STATUS_DEGRADED
    from repro.serve.monitor import (
        OUTCOME_DEGRADED,
        OUTCOME_REINTEGRATED,
        OUTCOME_REPLANNED,
        OUTCOME_SURVIVED,
    )

    monitoring = (DOCS / "monitoring.md").read_text()
    for value in REQUEST_TYPES:
        assert f"`{value}`" in monitoring, (
            f"docs/monitoring.md never mentions request type `{value}`"
        )
    for value in (
        OUTCOME_SURVIVED,
        OUTCOME_REINTEGRATED,
        OUTCOME_REPLANNED,
        OUTCOME_DEGRADED,
        STATUS_DEGRADED,
    ):
        assert f"`{value}`" in monitoring, (
            f"docs/monitoring.md never mentions outcome/status `{value}`"
        )
    for metric in (
        "repro_monitor_updates_total",
        "repro_monitor_update_seconds",
        "repro_monitor_rechecked_candidates",
        "repro_monitor_subscriptions",
    ):
        assert metric in monitoring, (
            f"docs/monitoring.md lost the {metric} metric row"
        )
    assert "monitor:update" in monitoring, (
        "docs/monitoring.md lost the monitor:update span"
    )


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.load", fromlist=["__all__"]).__all__),
)
def test_load_export_is_documented(name):
    """Every ``repro.load.__all__`` name must appear in the docs."""
    import repro.load

    assert hasattr(repro.load, name), (
        f"repro.load.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    load_doc = (DOCS / "load.md").read_text()
    assert name in api or name in load_doc, (
        f"repro.load.{name} is exported but appears in neither docs/api.md "
        f"nor docs/load.md — document it (or stop exporting it)"
    )


def test_load_doc_cross_links():
    """The load-harness contract must stay linked from the doc hub pages."""
    load_doc = DOCS / "load.md"
    assert load_doc.is_file(), "docs/load.md is missing"
    for hub in ("api.md", "architecture.md", "serving.md"):
        text = (DOCS / hub).read_text()
        assert "load.md" in text, f"docs/{hub} lost its load-harness link"
    readme = (DOCS.parent / "README.md").read_text()
    assert "load.md" in readme, "README lost its load-harness link"


def test_load_doc_covers_the_report_vocabulary():
    """The contract page must spell out the capacity-report fields and the
    five-status response vocabulary the harness aggregates — these are the
    ``BENCH_capacity.json`` wire format CI trend-gates."""
    load_doc = (DOCS / "load.md").read_text()
    for field in (
        "offered_qps",
        "goodput_qps",
        "shed_rate",
        "degraded_rate",
        "deadline_exceeded_rate",
        "latency_ms",
        "knee_qps",
        "capacity_qps",
        "schema_version",
    ):
        assert f"`{field}`" in load_doc, (
            f"docs/load.md never mentions report field `{field}`"
        )
    for status in ("ok", "degraded", "overloaded", "deadline_exceeded",
                   "failed"):
        assert f"`{status}`" in load_doc, (
            f"docs/load.md never mentions response status `{status}`"
        )
    assert "coordinated omission" in load_doc, (
        "docs/load.md lost the open-loop/coordinated-omission rationale"
    )
    assert "BENCH_capacity.json" in load_doc, (
        "docs/load.md lost the BENCH_capacity.json artifact contract"
    )


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.shard", fromlist=["__all__"]).__all__),
)
def test_shard_export_is_documented(name):
    """Every ``repro.shard.__all__`` name must appear in the API docs."""
    import repro.shard

    assert hasattr(repro.shard, name), (
        f"repro.shard.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    sharding = (DOCS / "sharding.md").read_text()
    assert name in api or name in sharding, (
        f"repro.shard.{name} is exported but appears in neither docs/api.md "
        f"nor docs/sharding.md — document it (or stop exporting it)"
    )


def test_sharding_doc_cross_links():
    """The sharding contract must stay linked from the doc hub pages."""
    sharding = DOCS / "sharding.md"
    assert sharding.is_file(), "docs/sharding.md is missing"
    for hub in ("api.md", "architecture.md"):
        text = (DOCS / hub).read_text()
        assert "sharding.md" in text, f"docs/{hub} lost its sharding link"
    readme = (DOCS.parent / "README.md").read_text()
    assert "sharding.md" in readme, "README lost its sharding link"


def test_observability_doc_cross_links():
    """The telemetry contract must stay linked from the doc hub pages."""
    obs_doc = DOCS / "observability.md"
    assert obs_doc.is_file(), "docs/observability.md is missing"
    for hub in ("api.md", "architecture.md"):
        text = (DOCS / hub).read_text()
        assert "observability.md" in text, f"docs/{hub} lost its observability link"
    assert "Measuring the paper's claims" in (DOCS / "paper_mapping.md").read_text()


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.kernels", fromlist=["__all__"]).__all__),
)
def test_kernels_export_is_documented(name):
    """Every ``repro.kernels.__all__`` name must appear in the API docs."""
    import repro.kernels

    assert hasattr(repro.kernels, name), (
        f"repro.kernels.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    arch = (DOCS / "architecture.md").read_text()
    assert name in api or name in arch, (
        f"repro.kernels.{name} is exported but appears in neither "
        f"docs/api.md nor docs/architecture.md — document it (or stop "
        f"exporting it)"
    )


@pytest.mark.parametrize(
    "name",
    sorted(__import__("repro.core.storage", fromlist=["__all__"]).__all__),
)
def test_storage_export_is_documented(name):
    """Every ``repro.core.storage.__all__`` name must appear in the docs."""
    import repro.core.storage

    assert hasattr(repro.core.storage, name), (
        f"repro.core.storage.__all__ lists missing name {name!r}"
    )
    api = (DOCS / "api.md").read_text()
    assert name in api, (
        f"repro.core.storage.{name} is exported but never mentioned in "
        f"docs/api.md — document it (or stop exporting it)"
    )


def test_kernels_and_storage_architecture_sections_exist():
    """The hub page must keep the kernels + storage design sections."""
    arch = (DOCS / "architecture.md").read_text()
    assert "## Compiled kernels" in arch
    assert "## Storage format" in arch
    assert "REPRO_NO_JIT" in arch
    mapping = (DOCS / "paper_mapping.md").read_text()
    assert "compiled kernels" in mapping

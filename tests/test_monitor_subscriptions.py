"""Safe-region subscription monitoring: soundness, parity, degradation.

The load-bearing guarantee is *bit-parity*: whatever outcome a
subscription update takes (survived / reintegrated / replanned), the
returned ids must equal a cold full re-evaluation of the same query at
the updated location.  The trajectory batteries below drive random walks
through every outcome and check the oracle at every single step; the
shell-radius tests pin the underlying alpha-shell math against the exact
integrator; the degradation tests check that deadline-pressed answers
stay sound (certain ids ⊆ truth ⊆ certain ∪ interval-bounded) and that
the subscription recovers; the storm test is the CI monitor-smoke
workload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.saferegion import (
    DECISION_REINTEGRATE,
    DECISION_REPLAN,
    DECISION_SURVIVED,
    SafeRegion,
    alpha_shell_radii,
)
from repro.errors import QueryError, ServiceError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.integrate.cascade import CascadeIntegrator
from repro.integrate.exact import ExactIntegrator
from repro.obs import Observability
from repro.serve import (
    MonitorRequest,
    OUTCOME_DEGRADED,
    OUTCOME_REINTEGRATED,
    OUTCOME_REPLANNED,
    OUTCOME_SURVIVED,
    REQUEST_TYPES,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    SubscriptionManager,
)


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(42)
    return SpatialDatabase(rng.uniform(0.0, 1000.0, size=(6_000, 2)))


@pytest.fixture(scope="module")
def engine(database):
    return database.engine(integrator=CascadeIntegrator())


def make_manager(database, engine, **knobs) -> SubscriptionManager:
    return SubscriptionManager(database, engine, **knobs)


def cold_answer(engine, gaussian, delta, theta) -> tuple[int, ...]:
    """The oracle: a cold full evaluation at the given location."""
    query = ProbabilisticRangeQuery(gaussian, delta, theta)
    return engine.run_batch([query]).results[0].ids


def random_spd(rng, dim, scale=1.0) -> np.ndarray:
    basis, _ = np.linalg.qr(rng.normal(size=(dim, dim)))
    eigs = rng.uniform(0.5, 2.0, size=dim) * scale
    return basis @ np.diag(eigs) @ basis.T


# ----------------------------------------------------------------------
# Alpha-shell radii: the safe region's mathematical foundation
# ----------------------------------------------------------------------


class TestAlphaShellRadii:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("theta", [0.2, 0.5, 0.8])
    def test_radii_are_sound_against_exact_probability(self, dim, theta):
        """Inside r_accept ⇒ P ≥ θ; beyond r_reject ⇒ P < θ, exactly the
        certain-accept / certain-reject semantics classify relies on."""
        rng = np.random.default_rng(dim * 100 + int(theta * 10))
        gaussian = Gaussian(np.zeros(dim), random_spd(rng, dim))
        delta = 3.0
        r_accept, r_reject = alpha_shell_radii(gaussian, delta, theta)
        assert r_reject is not None and r_reject > 0
        direction = rng.normal(size=dim)
        # A Mahalanobis-unit direction: points at mahal distance m are
        # mean + m * (Σ^{1/2} u / ‖u‖ in whitened coords).
        unit = gaussian.basis @ (
            np.sqrt(gaussian.eigenvalues)
            * (direction / np.linalg.norm(direction))
        )
        probe = gaussian.mahalanobis(
            (gaussian.mean + unit).reshape(1, -1)
        )[0]
        unit = unit / probe  # exactly mahal length 1 now
        if r_accept is not None:
            for m in (0.25 * r_accept, 0.95 * r_accept):
                point = gaussian.mean + m * unit
                p = qualification_probability_exact(gaussian, point, delta)
                assert p >= theta - 1e-9
        for m in (1.05 * r_reject, 2.0 * r_reject):
            point = gaussian.mean + m * unit
            p = qualification_probability_exact(gaussian, point, delta)
            assert p < theta + 1e-9
        if r_accept is not None:
            assert r_accept <= r_reject + 1e-12

    def test_impossible_theta_yields_always_empty(self):
        """A huge covariance cannot concentrate δ-mass anywhere: no
        certain-accept shell and no reject radius (always empty)."""
        gaussian = Gaussian([0.0, 0.0], 1e6 * np.eye(2))
        r_accept, r_reject = alpha_shell_radii(gaussian, 1.0, 0.9)
        assert r_accept is None
        assert r_reject is None

    def test_validation(self):
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(QueryError):
            alpha_shell_radii(gaussian, -1.0, 0.5)
        with pytest.raises(QueryError):
            alpha_shell_radii(gaussian, 1.0, 1.5)


# ----------------------------------------------------------------------
# SafeRegion.classify: the O(1) update decision
# ----------------------------------------------------------------------


class TestClassify:
    def build_region(self, database, engine, gaussian, delta, theta):
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        answer = engine.run_batch([query]).results[0].ids
        from repro.core.stages import SearchStage
        from repro.core.stats import QueryStats

        strategies = [s.clone() for s in engine.strategies]
        rect = SearchStage(engine.index, phase1=engine.phase1).prepare(
            query, strategies, QueryStats()
        )
        return SafeRegion.build(
            query,
            answer,
            index=database.index,
            point_of=database.point,
            anchor_rect=rect,
        )

    def test_zero_shift_survives(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 2.0 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 20.0, 0.5)
        decision = region.classify(np.array([500.0, 500.0]))
        assert decision.kind == DECISION_SURVIVED
        assert decision.shift == 0.0

    def test_covariance_change_replans(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 2.0 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 20.0, 0.5)
        decision = region.classify(
            np.array([500.0, 500.0]), 3.0 * np.eye(2)
        )
        assert decision.kind == DECISION_REPLAN
        assert decision.reason == "covariance"
        same = region.classify(np.array([500.0, 500.0]), 2.0 * np.eye(2))
        assert same.kind == DECISION_SURVIVED

    def test_cache_overrun_replans(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 2.0 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 20.0, 0.5)
        decision = region.classify(np.array([900.0, 900.0]))
        assert decision.kind == DECISION_REPLAN
        assert decision.reason == "cache-overrun"

    def test_small_shift_rechecks_only_low_slack_rows(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 2.0 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 20.0, 0.5)
        decision = region.classify(np.array([500.4, 500.2]))
        assert decision.kind in (DECISION_SURVIVED, DECISION_REINTEGRATE)
        if decision.kind == DECISION_REINTEGRATE:
            assert decision.recheck is not None
            # Exactly the rows whose slack the shift exhausted.
            rechecked = set(decision.recheck.tolist())
            for row in range(region.ids.size):
                if region.slack[row] <= decision.shift:
                    assert row in rechecked
                else:
                    assert row not in rechecked

    def test_always_empty_region_survives_everything(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 1e6 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 1.0, 0.9)
        assert region.always_empty
        assert region.answer == ()
        decision = region.classify(np.array([100.0, 900.0]))
        assert decision.kind == DECISION_SURVIVED

    def test_mismatched_mean_shape_raises(self, database, engine):
        gaussian = Gaussian([500.0, 500.0], 2.0 * np.eye(2))
        region = self.build_region(database, engine, gaussian, 20.0, 0.5)
        with pytest.raises(QueryError):
            region.classify(np.array([1.0, 2.0, 3.0]))


# ----------------------------------------------------------------------
# The tentpole guarantee: trajectory oracle bit-parity
# ----------------------------------------------------------------------


class TestTrajectoryParity:
    @pytest.mark.parametrize(
        "sigma_scale,delta,theta,step_sd",
        [
            (0.25, 15.0, 0.5, 0.4),  # tight: survived-dominant
            (4.0, 25.0, 0.3, 2.5),  # loose eccentric: border-heavy
            (1.0, 20.0, 0.7, 8.0),  # large steps: replan-heavy
        ],
    )
    def test_every_step_matches_cold_evaluation(
        self, database, engine, sigma_scale, delta, theta, step_sd
    ):
        rng = np.random.default_rng(int(sigma_scale * 10) + int(step_sd))
        sigma = random_spd(rng, 2, scale=sigma_scale)
        manager = make_manager(database, engine)
        position = rng.uniform(300.0, 700.0, size=2)
        response = manager.subscribe(
            Gaussian(position, sigma), delta, theta, subscription_id="traj"
        )
        assert response.status == STATUS_OK
        assert response.ids == cold_answer(
            engine, Gaussian(position, sigma), delta, theta
        )
        outcomes = set()
        for _ in range(50):
            position = position + rng.normal(0.0, step_sd, size=2)
            update = manager.update("traj", position)
            assert update.status == STATUS_OK
            outcomes.add(update.outcome)
            assert update.ids == cold_answer(
                engine, Gaussian(position, sigma), delta, theta
            ), f"outcome {update.outcome} diverged from cold evaluation"
        assert outcomes <= {
            OUTCOME_SURVIVED,
            OUTCOME_REINTEGRATED,
            OUTCOME_REPLANNED,
        }

    def test_survived_answers_are_the_anchor_answer(self, database, engine):
        """When classify proves survival, the committed answer must be
        exactly the anchor's — and exactly the cold truth."""
        rng = np.random.default_rng(77)
        sigma = 0.25 * np.eye(2)
        manager = make_manager(database, engine)
        position = np.array([480.0, 510.0])
        manager.subscribe(
            Gaussian(position, sigma), 15.0, 0.5, subscription_id="s"
        )
        survived = 0
        for _ in range(60):
            position = position + rng.normal(0.0, 0.05, size=2)
            update = manager.update("s", position)
            if update.outcome == OUTCOME_SURVIVED:
                survived += 1
                assert update.rechecked == 0
                assert update.added == () and update.removed == ()
                assert update.ids == cold_answer(
                    engine, Gaussian(position, sigma), 15.0, 0.5
                )
        assert survived > 0, "step size chosen to exercise the O(1) path"

    def test_covariance_update_replans_and_stays_exact(
        self, database, engine
    ):
        manager = make_manager(database, engine)
        position = np.array([500.0, 500.0])
        manager.subscribe(
            Gaussian(position, 1.0 * np.eye(2)), 20.0, 0.5,
            subscription_id="cov",
        )
        new_sigma = 3.0 * np.eye(2)
        update = manager.update("cov", position + 1.0, new_sigma)
        assert update.outcome == OUTCOME_REPLANNED
        assert update.ids == cold_answer(
            engine, Gaussian(position + 1.0, new_sigma), 20.0, 0.5
        )
        # The new covariance is now the anchor: repeating it is no longer
        # a structural change.
        again = manager.update("cov", position + 1.05, new_sigma)
        assert again.outcome != OUTCOME_REPLANNED or again.shift > 0

    @pytest.mark.parametrize("method", ["cascade", "exact"])
    def test_parity_holds_for_every_deterministic_integrator(
        self, database, method
    ):
        integrator = (
            CascadeIntegrator() if method == "cascade" else ExactIntegrator()
        )
        engine = database.engine(integrator=integrator)
        manager = make_manager(database, engine)
        rng = np.random.default_rng(5)
        position = np.array([620.0, 380.0])
        sigma = random_spd(rng, 2, scale=1.5)
        manager.subscribe(
            Gaussian(position, sigma), 18.0, 0.4, subscription_id="det"
        )
        for _ in range(12):
            position = position + rng.normal(0.0, 1.0, size=2)
            update = manager.update("det", position)
            assert update.ids == cold_answer(
                engine, Gaussian(position, sigma), 18.0, 0.4
            )

    def test_empty_region_far_from_data(self, database, engine):
        """A subscription whose query can never match stays empty and
        cheap across arbitrary motion."""
        manager = make_manager(database, engine)
        gaussian = Gaussian([5000.0, 5000.0], 0.5 * np.eye(2))
        response = manager.subscribe(
            gaussian, 10.0, 0.5, subscription_id="far"
        )
        assert response.ids == ()
        update = manager.update("far", [5100.0, 4900.0])
        assert update.status == STATUS_OK
        assert update.ids == ()


# ----------------------------------------------------------------------
# Degradation: sound partial answers under deadline pressure
# ----------------------------------------------------------------------


class TestDegradation:
    def test_deadline_pressure_degrades_soundly_and_recovers(
        self, database, engine
    ):
        # A huge cost prior makes any finite deadline predictably
        # insufficient, forcing degradation deterministically.
        manager = make_manager(database, engine, cost_prior=10.0)
        sigma = 4.0 * np.eye(2)
        position = np.array([500.0, 500.0])
        manager.subscribe(
            Gaussian(position, sigma), 25.0, 0.4, subscription_id="d"
        )
        moved = position + np.array([1.5, -1.0])
        update = manager.update("d", moved, deadline=0.01)
        assert update.status == STATUS_DEGRADED
        assert update.outcome == OUTCOME_DEGRADED
        assert update.stale
        truth = set(cold_answer(engine, Gaussian(moved, sigma), 25.0, 0.4))
        certain = set(update.ids)
        undecided = {obj: (lo, hi) for obj, lo, hi in update.bounds}
        assert certain <= truth
        assert truth <= certain | set(undecided)
        exact = ExactIntegrator()
        for obj, (lo, hi) in undecided.items():
            assert lo < 0.4 <= hi  # genuinely undecided against theta
            p = exact.qualification_probabilities(
                Gaussian(moved, sigma),
                database.point(obj).reshape(1, -1),
                25.0,
            )[0].estimate
            assert lo - 1e-9 <= p <= hi + 1e-9
        # The committed answer was not perturbed: notify echoes the
        # anchor answer, flagged stale.
        note = manager.notify("d")
        assert note.stale
        # An unconstrained update re-converges and clears staleness.
        recovered = manager.update("d", moved)
        assert recovered.status == STATUS_OK
        assert set(recovered.ids) == truth
        assert not manager.notify("d").stale

    def test_replans_never_degrade(self, database, engine):
        """A structural break (covariance change) executes fully even
        under a deadline that would degrade a reintegration."""
        manager = make_manager(database, engine, cost_prior=10.0)
        position = np.array([500.0, 500.0])
        manager.subscribe(
            Gaussian(position, np.eye(2)), 20.0, 0.5, subscription_id="r"
        )
        update = manager.update(
            "r", position, 2.0 * np.eye(2), deadline=0.001
        )
        assert update.status == STATUS_OK
        assert update.outcome == OUTCOME_REPLANNED

    def test_degrade_disabled_runs_fully(self, database, engine):
        manager = make_manager(
            database, engine, degrade=False, cost_prior=10.0
        )
        position = np.array([500.0, 500.0])
        manager.subscribe(
            Gaussian(position, np.eye(2)), 20.0, 0.5, subscription_id="f"
        )
        update = manager.update("f", position + 0.5, deadline=0.001)
        assert update.status == STATUS_OK


# ----------------------------------------------------------------------
# Manager contract: gates, lifecycle, service integration
# ----------------------------------------------------------------------


class TestManagerContract:
    def test_sampling_integrator_is_rejected(self, database):
        from repro.integrate.importance import ImportanceSamplingIntegrator

        engine = database.engine(
            integrator=ImportanceSamplingIntegrator(seed=0)
        )
        manager = make_manager(database, engine)
        with pytest.raises(ServiceError, match="composition-independent"):
            manager.subscribe(Gaussian([0.0, 0.0], np.eye(2)), 5.0, 0.5)

    def test_kinded_queries_are_rejected(self, database, engine, monkeypatch):
        import repro.serve.monitor as monitor_mod

        manager = make_manager(database, engine)
        monkeypatch.setattr(monitor_mod, "query_kind", lambda _query: "knn")
        with pytest.raises(ServiceError, match="exact-target"):
            manager.subscribe(Gaussian([500.0, 500.0], np.eye(2)), 5.0, 0.5)

    def test_dimension_mismatch_raises(self, database, engine):
        manager = make_manager(database, engine)
        with pytest.raises(QueryError, match="dimension"):
            manager.subscribe(Gaussian([0.0, 0.0, 0.0], np.eye(3)), 5.0, 0.5)

    def test_duplicate_subscription_id_raises(self, database, engine):
        manager = make_manager(database, engine)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        manager.subscribe(gaussian, 10.0, 0.5, subscription_id="dup")
        with pytest.raises(ServiceError, match="already exists"):
            manager.subscribe(gaussian, 10.0, 0.5, subscription_id="dup")

    def test_unknown_subscription_is_a_failed_response(
        self, database, engine
    ):
        manager = make_manager(database, engine)
        for response in (
            manager.update("ghost", [0.0, 0.0]),
            manager.unsubscribe("ghost"),
            manager.notify("ghost"),
        ):
            assert response.status == STATUS_FAILED
            assert "ghost" in str(response.error)

    def test_auto_assigned_keys_and_len(self, database, engine):
        manager = make_manager(database, engine)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        first = manager.subscribe(gaussian, 10.0, 0.5)
        second = manager.subscribe(gaussian, 12.0, 0.5)
        assert first.subscription_id != second.subscription_id
        assert len(manager) == 2
        manager.unsubscribe(first.subscription_id)
        assert len(manager) == 1

    def test_handle_dispatches_and_wraps_misuse(self, database, engine):
        manager = make_manager(database, engine)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        response = manager.handle(
            MonitorRequest.subscribe(
                gaussian, 10.0, 0.5, subscription_id="h", request_id="r1"
            )
        )
        assert response.status == STATUS_OK and response.request_id == "r1"
        update = manager.handle(MonitorRequest.update("h", [500.5, 500.0]))
        assert update.status == STATUS_OK
        assert manager.handle(MonitorRequest.notify("h")).ids == update.ids
        assert (
            manager.handle(MonitorRequest.unsubscribe("h")).status
            == STATUS_OK
        )
        # Misuse through handle() becomes a typed failed response.
        wrong_dim = manager.handle(
            MonitorRequest.subscribe(
                Gaussian([0.0, 0.0, 0.0], np.eye(3)), 5.0, 0.5
            )
        )
        assert wrong_dim.status == STATUS_FAILED

    def test_request_validation(self):
        with pytest.raises(ServiceError, match="unknown monitor request"):
            MonitorRequest("bogus", subscription_id="x")
        with pytest.raises(ServiceError, match="requires gaussian"):
            MonitorRequest("subscribe")
        with pytest.raises(ServiceError, match="requires subscription_id"):
            MonitorRequest("update", mean=np.zeros(2))
        with pytest.raises(ServiceError, match="requires mean"):
            MonitorRequest("update", subscription_id="x")
        assert len(REQUEST_TYPES) == 4

    def test_response_to_dict_round_trips_json(self, database, engine):
        manager = make_manager(database, engine)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        response = manager.subscribe(gaussian, 10.0, 0.5, request_id=7)
        row = json.loads(json.dumps(response.to_dict()))
        assert row["status"] == "ok" and row["type"] == "subscribe"
        update = manager.update(
            response.subscription_id, [500.2, 500.1], request_id=8
        )
        row = json.loads(json.dumps(update.to_dict()))
        assert row["outcome"] in (
            OUTCOME_SURVIVED,
            OUTCOME_REINTEGRATED,
            OUTCOME_REPLANNED,
        )
        assert "shift" in row and "rechecked" in row

    def test_service_owns_a_manager_sharing_engine_and_answers(
        self, database
    ):
        from repro.serve import PRQRequest

        with database.serve(workers=2) as service:
            gaussian = Gaussian([420.0, 580.0], 2.0 * np.eye(2))
            sub = service.monitor.subscribe(
                gaussian, 20.0, 0.5, subscription_id="svc"
            )
            direct = service.query(
                PRQRequest(gaussian, 20.0, 0.5), timeout=30
            )
            assert sub.ids == direct.ids
            update = service.monitor.update("svc", [421.0, 579.5])
            assert update.status == STATUS_OK
            assert service.monitor.stats()["updates"] == 1

    def test_stats_counters_accumulate(self, database, engine):
        manager = make_manager(database, engine)
        gaussian = Gaussian([500.0, 500.0], 0.25 * np.eye(2))
        manager.subscribe(gaussian, 15.0, 0.5, subscription_id="c")
        rng = np.random.default_rng(3)
        position = np.array([500.0, 500.0])
        for _ in range(10):
            position = position + rng.normal(0.0, 0.3, size=2)
            manager.update("c", position)
        stats = manager.stats()
        assert stats["subscribed"] == 1
        assert stats["updates"] == 10
        assert (
            stats["survived"] + stats["reintegrated"] + stats["replanned"]
            == 10
        )
        assert stats["active_subscriptions"] == 1


# ----------------------------------------------------------------------
# Telemetry: metrics and the monitor:update span
# ----------------------------------------------------------------------


class TestTelemetry:
    def test_update_metrics_and_span(self, database):
        obs = Observability(trace=True, metrics=True)
        engine = database.engine(integrator=CascadeIntegrator(), obs=obs)
        manager = make_manager(database, engine, obs=obs)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        manager.subscribe(gaussian, 15.0, 0.5, subscription_id="t")
        manager.update("t", [500.3, 500.1])
        manager.update("t", [500.6, 500.2])
        rendered = obs.render_metrics()
        assert "repro_monitor_updates_total" in rendered
        assert "repro_monitor_update_seconds" in rendered
        assert "repro_monitor_rechecked_candidates" in rendered
        assert "repro_monitor_subscriptions" in rendered
        spans = [s for s in obs.tracer.spans if s.name == "monitor:update"]
        assert len(spans) == 2
        for span in spans:
            assert span.attributes["subscription"] == "t"
            assert span.attributes["outcome"] in (
                OUTCOME_SURVIVED,
                OUTCOME_REINTEGRATED,
                OUTCOME_REPLANNED,
            )
            assert "rechecked" in span.attributes

    def test_subscription_gauge_tracks_population(self, database):
        obs = Observability(metrics=True)
        engine = database.engine(integrator=CascadeIntegrator())
        manager = make_manager(database, engine, obs=obs)
        gaussian = Gaussian([500.0, 500.0], np.eye(2))
        manager.subscribe(gaussian, 15.0, 0.5, subscription_id="g1")
        manager.subscribe(gaussian, 16.0, 0.5, subscription_id="g2")
        assert 'repro_monitor_subscriptions 2' in obs.render_metrics()
        manager.unsubscribe("g1")
        assert 'repro_monitor_subscriptions 1' in obs.render_metrics()


# ----------------------------------------------------------------------
# Sharded routing: updates scatter like any other query
# ----------------------------------------------------------------------


class TestSharded:
    def test_sharded_subscription_matches_single_process(self, database):
        sharded = database.shard(2)
        try:
            engine = sharded.engine(integrator=CascadeIntegrator())
            single = database.engine(integrator=CascadeIntegrator())
            manager = make_manager(sharded, engine)
            rng = np.random.default_rng(9)
            position = np.array([550.0, 450.0])
            sigma = random_spd(rng, 2, scale=1.0)
            sub = manager.subscribe(
                Gaussian(position, sigma), 18.0, 0.4, subscription_id="sh"
            )
            assert sub.ids == cold_answer(
                single, Gaussian(position, sigma), 18.0, 0.4
            )
            outcomes = set()
            for _ in range(12):
                position = position + rng.normal(0.0, 2.0, size=2)
                update = manager.update("sh", position)
                outcomes.add(update.outcome)
                assert update.ids == cold_answer(
                    single, Gaussian(position, sigma), 18.0, 0.4
                )
            assert outcomes  # at least one outcome exercised end-to-end
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# Update storm: the CI monitor-smoke workload
# ----------------------------------------------------------------------


class TestUpdateStorm:
    def test_fleet_storm_counters_and_spot_checked_parity(
        self, database, engine
    ):
        """A fleet of standing subscriptions across update storms: the
        outcome counters must account for every update, and sampled
        updates must match cold evaluation exactly."""
        manager = make_manager(database, engine)
        rng = np.random.default_rng(1234)
        fleet = 40
        positions = rng.uniform(200.0, 800.0, size=(fleet, 2))
        sigma = 0.5 * np.eye(2)
        delta, theta = 18.0, 0.5
        for key in range(fleet):
            response = manager.subscribe(
                Gaussian(positions[key], sigma), delta, theta,
                subscription_id=key,
            )
            assert response.status == STATUS_OK
        checked = 0
        for step in range(8):
            positions += rng.normal(0.0, 0.6, size=positions.shape)
            for key in range(fleet):
                update = manager.update(key, positions[key])
                assert update.status == STATUS_OK
                if (step * fleet + key) % 37 == 0:
                    checked += 1
                    assert update.ids == cold_answer(
                        engine, Gaussian(positions[key], sigma), delta, theta
                    )
        assert checked >= 8
        stats = manager.stats()
        assert stats["updates"] == fleet * 8
        assert (
            stats["survived"]
            + stats["reintegrated"]
            + stats["replanned"]
            + stats["degraded"]
            == fleet * 8
        )
        assert stats["survived"] > 0, "storm tuned to exercise the O(1) path"
        assert stats["reintegrated"] > 0
        assert stats["active_subscriptions"] == fleet
        for key in range(fleet):
            assert manager.unsubscribe(key).status == STATUS_OK
        assert len(manager) == 0

"""Tests for spheres, ellipsoids, Minkowski regions and oblique boxes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.ellipsoid import Ellipsoid
from repro.geometry.mbr import Rect
from repro.geometry.minkowski import MinkowskiRegion
from repro.geometry.obliquebox import ObliqueBox
from repro.geometry.sphere import Sphere, unit_ball_volume
from repro.geometry.transforms import EigenTransform


class TestSphere:
    def test_volume_2d_3d(self):
        assert Sphere([0, 0], 2.0).volume() == pytest.approx(math.pi * 4.0)
        assert Sphere([0, 0, 0], 1.0).volume() == pytest.approx(4.0 / 3.0 * math.pi)

    def test_unit_ball_volume_known(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)

    def test_unit_ball_volume_rejects_zero_dim(self):
        with pytest.raises(GeometryError):
            unit_ball_volume(0)

    def test_contains_boundary(self):
        s = Sphere([0.0, 0.0], 1.0)
        assert s.contains_point([1.0, 0.0])
        assert not s.contains_point([1.0 + 1e-9, 0.0])

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Sphere([0.0], -1.0)

    def test_intersects_sphere(self):
        a = Sphere([0.0, 0.0], 1.0)
        assert a.intersects_sphere(Sphere([2.0, 0.0], 1.0))
        assert not a.intersects_sphere(Sphere([2.1, 0.0], 1.0))

    def test_bounding_rect(self):
        r = Sphere([1.0, 2.0], 3.0).bounding_rect()
        np.testing.assert_allclose(r.lows, [-2.0, -1.0])
        np.testing.assert_allclose(r.highs, [4.0, 5.0])

    def test_contains_rect(self):
        s = Sphere([0.0, 0.0], 2.0)
        assert s.contains_rect(Rect([-1.0, -1.0], [1.0, 1.0]))
        assert not s.contains_rect(Rect([-2.0, -2.0], [2.0, 2.0]))

    def test_interior_samples_are_inside(self, rng):
        s = Sphere([5.0, -3.0, 2.0], 2.5)
        pts = s.sample_interior(500, rng)
        assert np.all(s.contains_points(pts))

    def test_surface_samples_on_boundary(self, rng):
        s = Sphere([0.0, 0.0], 2.0)
        pts = s.sample_surface(200, rng)
        radii = np.linalg.norm(pts, axis=1)
        np.testing.assert_allclose(radii, 2.0, rtol=1e-10)

    def test_interior_sampling_uniformity(self, rng):
        # In 2-D, the fraction within half the radius should be ~ 1/4.
        s = Sphere([0.0, 0.0], 1.0)
        pts = s.sample_interior(20_000, rng)
        frac = np.mean(np.linalg.norm(pts, axis=1) <= 0.5)
        assert frac == pytest.approx(0.25, abs=0.02)


class TestEllipsoid:
    def test_spherical_case_matches_sphere(self):
        e = Ellipsoid([0.0, 0.0], np.eye(2), 2.0)
        assert e.contains_point([2.0, 0.0])
        assert not e.contains_point([2.0 + 1e-9, 0.0])
        np.testing.assert_allclose(e.semi_axes, [2.0, 2.0])

    def test_semi_axes_order_descending(self, paper_sigma_10):
        e = Ellipsoid([0.0, 0.0], paper_sigma_10, 1.0)
        # Eigenvalues of the paper covariance are 90 and 10.
        np.testing.assert_allclose(e.semi_axes, [np.sqrt(90), np.sqrt(10)], rtol=1e-12)

    def test_bounding_rect_property2(self, paper_sigma_10):
        # Property 2: half-width along axis i is sigma_i * r.
        r = 2.0
        e = Ellipsoid([0.0, 0.0], paper_sigma_10, r)
        rect = e.bounding_rect()
        np.testing.assert_allclose(
            rect.highs, np.sqrt(np.diag(paper_sigma_10)) * r, rtol=1e-12
        )

    def test_bounding_rect_is_tight(self, paper_sigma_10, rng):
        # The ellipsoid boundary must touch every face of the box.
        e = Ellipsoid([0.0, 0.0], paper_sigma_10, 1.5)
        rect = e.bounding_rect()
        theta = np.linspace(0, 2 * math.pi, 100_000)
        boundary = e.transform.to_world(
            1.5
            * np.sqrt(e.transform.eigenvalues)
            * np.column_stack([np.cos(theta), np.sin(theta)])
        )
        assert boundary[:, 0].max() == pytest.approx(rect.highs[0], rel=1e-4)
        assert boundary[:, 1].max() == pytest.approx(rect.highs[1], rel=1e-4)
        assert np.all(rect.contains_points(boundary))

    def test_mahalanobis_matches_quadratic_form(self, paper_sigma_10, rng):
        e = Ellipsoid([3.0, -1.0], paper_sigma_10, 1.0)
        pts = rng.uniform(-20, 20, size=(30, 2))
        inv = np.linalg.inv(paper_sigma_10)
        expected = np.sqrt(
            np.einsum("ij,jk,ik->i", pts - e.center, inv, pts - e.center)
        )
        np.testing.assert_allclose(e.mahalanobis(pts), expected, rtol=1e-9)

    def test_volume_spherical(self):
        e = Ellipsoid([0.0, 0.0], 4.0 * np.eye(2), 1.0)
        assert e.volume() == pytest.approx(math.pi * 4.0)

    def test_scaled(self, paper_sigma_10):
        e = Ellipsoid([0.0, 0.0], paper_sigma_10, 1.0)
        bigger = e.scaled(2.0)
        np.testing.assert_allclose(bigger.semi_axes, 2.0 * e.semi_axes)

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Ellipsoid([0.0], np.eye(1), -1.0)


class TestMinkowskiRegion:
    def test_contains_matches_distance_to_rect(self, rng):
        core = Rect([0.0, 0.0], [4.0, 2.0])
        region = MinkowskiRegion(core, 1.5)
        pts = rng.uniform(-3, 7, size=(300, 2))
        expected = np.array([core.min_distance(p) <= 1.5 for p in pts])
        np.testing.assert_array_equal(region.contains_points(pts), expected)

    def test_fringe_is_box_minus_region(self, rng):
        region = MinkowskiRegion(Rect([0.0, 0.0], [4.0, 2.0]), 1.0)
        pts = rng.uniform(-2, 6, size=(300, 2))
        fringe = region.in_fringe(pts)
        in_box = region.bounding_rect().contains_points(pts)
        in_region = region.contains_points(pts)
        np.testing.assert_array_equal(fringe, in_box & ~in_region)

    def test_corner_point_excluded(self):
        region = MinkowskiRegion(Rect([0.0, 0.0], [1.0, 1.0]), 1.0)
        # The bounding-box corner is sqrt(2) > 1 from the core rectangle.
        assert not region.contains_point([2.0, 2.0])
        assert region.in_fringe(np.array([[2.0, 2.0]]))[0]

    def test_area_formulas(self):
        region = MinkowskiRegion(Rect([0.0, 0.0], [4.0, 2.0]), 1.0)
        assert region.volume_2d() == pytest.approx(8 + 2 * 6 + math.pi)
        assert region.fringe_volume_2d() == pytest.approx(4 - math.pi)

    def test_area_formula_matches_monte_carlo(self, rng):
        region = MinkowskiRegion(Rect([0.0, 0.0], [4.0, 2.0]), 1.0)
        box = region.bounding_rect()
        pts = box.lows + rng.random((200_000, 2)) * box.extents
        frac = np.mean(region.contains_points(pts))
        assert frac * box.volume() == pytest.approx(region.volume_2d(), rel=0.02)

    def test_3d_region_supported(self):
        region = MinkowskiRegion(Rect([0.0] * 3, [1.0] * 3), 1.0)
        assert region.contains_point([1.5, 0.5, 0.5])
        assert not region.contains_point([1.8, 1.8, 0.5])
        with pytest.raises(GeometryError):
            region.volume_2d()

    def test_negative_delta_rejected(self):
        with pytest.raises(GeometryError):
            MinkowskiRegion(Rect([0.0], [1.0]), -0.1)

    def test_zero_delta_degenerates_to_rect(self):
        core = Rect([0.0, 0.0], [1.0, 1.0])
        region = MinkowskiRegion(core, 0.0)
        assert region.contains_point([1.0, 1.0])
        assert not region.contains_point([1.0001, 1.0])


class TestObliqueBox:
    def test_axis_aligned_case(self):
        box = ObliqueBox.for_range_query([0.0, 0.0], np.diag([4.0, 1.0]), 1.0, 0.5)
        # Half widths: r*sqrt(eig) + delta = (2.5, 1.5), eigen order descending.
        np.testing.assert_allclose(box.half_widths, [2.5, 1.5])
        assert box.contains_point([2.5, 0.0])
        assert not box.contains_point([2.6, 0.0])

    def test_rotation_invariance(self, paper_sigma_10):
        # Points on the theta-ellipsoid surface must lie inside the box even
        # before the delta inflation.
        box = ObliqueBox.for_range_query([0.0, 0.0], paper_sigma_10, 2.0, 0.0)
        transform = EigenTransform([0.0, 0.0], paper_sigma_10)
        angles = np.linspace(0, 2 * math.pi, 500)
        surface = transform.to_world(
            (2.0 - 1e-9)
            * np.sqrt(transform.eigenvalues)
            * np.column_stack([np.cos(angles), np.sin(angles)])
        )
        assert np.all(box.contains_points(surface))

    def test_bounding_rect_covers_corners(self, paper_sigma_10):
        box = ObliqueBox.for_range_query([5.0, -2.0], paper_sigma_10, 2.0, 3.0)
        rect = box.bounding_rect()
        corners = box.corners()
        assert np.all(rect.contains_points(corners))
        # And it is tight: some corner touches each face.
        assert corners[:, 0].max() == pytest.approx(rect.highs[0], rel=1e-9)
        assert corners[:, 1].min() == pytest.approx(rect.lows[1], rel=1e-9)

    def test_volume(self):
        box = ObliqueBox.for_range_query([0.0, 0.0], np.diag([4.0, 1.0]), 1.0, 0.5)
        assert box.volume() == pytest.approx(5.0 * 3.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(GeometryError):
            ObliqueBox.for_range_query([0.0, 0.0], np.eye(2), -1.0, 0.0)

    @given(st.floats(0.1, 5.0), st.floats(0.0, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_contains_center_always(self, r_theta, delta):
        box = ObliqueBox.for_range_query(
            [1.0, 2.0], np.array([[2.0, 0.5], [0.5, 1.0]]), r_theta, delta
        )
        assert box.contains_point([1.0, 2.0])

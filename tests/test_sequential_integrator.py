"""Tests for the adaptive sequential importance sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.errors import IntegrationError
from repro.integrate.exact import ExactIntegrator
from repro.integrate.sequential import SequentialImportanceSampler


class TestConstruction:
    def test_validation(self):
        with pytest.raises(IntegrationError):
            SequentialImportanceSampler(theta=0.0)
        with pytest.raises(IntegrationError):
            SequentialImportanceSampler(theta=1.0)
        with pytest.raises(IntegrationError):
            SequentialImportanceSampler(theta=0.1, max_samples=100, batch_size=200)
        with pytest.raises(IntegrationError):
            SequentialImportanceSampler(theta=0.1, batch_size=5)
        with pytest.raises(IntegrationError):
            SequentialImportanceSampler(theta=0.1, z=0.0)


class TestEarlyStopping:
    def test_clear_cases_stop_early(self, paper_gaussian):
        sampler = SequentialImportanceSampler(
            theta=0.01, max_samples=100_000, batch_size=1_000, seed=0
        )
        # Far point: probability ~ 0, decided in the first batch.
        far = paper_gaussian.mean + np.array([400.0, 0.0])
        result = sampler.qualification_probability(paper_gaussian, far, 25.0)
        assert result.n_samples <= 2_000
        assert result.estimate < 0.01
        # Centre point: probability ~ 0.99, also decided immediately.
        result = sampler.qualification_probability(
            paper_gaussian, paper_gaussian.mean, 25.0
        )
        assert result.n_samples <= 2_000
        assert result.estimate > 0.9

    def test_borderline_cases_spend_budget(self, paper_gaussian):
        theta = 0.5
        sampler = SequentialImportanceSampler(
            theta=theta, max_samples=50_000, batch_size=1_000, seed=1
        )
        # Find a point whose probability is very near theta.
        exact = ExactIntegrator()
        lo, hi = 0.0, 200.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            p = exact.qualification_probability(
                paper_gaussian, paper_gaussian.mean + np.array([mid, 0.0]), 25.0
            ).estimate
            if p > theta:
                lo = mid
            else:
                hi = mid
        boundary = paper_gaussian.mean + np.array([0.5 * (lo + hi), 0.0])
        result = sampler.qualification_probability(paper_gaussian, boundary, 25.0)
        assert result.n_samples == 50_000  # budget exhausted on the boundary

    def test_estimate_remains_accurate(self, paper_gaussian):
        sampler = SequentialImportanceSampler(
            theta=0.01, max_samples=100_000, batch_size=5_000, seed=2
        )
        point = paper_gaussian.mean + np.array([30.0, -10.0])
        exact = ExactIntegrator().qualification_probability(
            paper_gaussian, point, 25.0
        ).estimate
        result = sampler.qualification_probability(paper_gaussian, point, 25.0)
        # The curtailed estimate is approximately unbiased for points away
        # from theta; require CI coverage with slack.
        assert abs(result.estimate - exact) < 6 * result.stderr + 1e-9


class TestDecisionQuality:
    def test_engine_answers_match_exact(self, rng, paper_gaussian):
        points = paper_gaussian.mean + rng.uniform(-120, 120, size=(2500, 2))
        db = SpatialDatabase(points)
        theta = 0.01
        exact = db.probabilistic_range_query(
            paper_gaussian, 25.0, theta, strategies="all",
            integrator=ExactIntegrator(),
        )
        sequential = db.probabilistic_range_query(
            paper_gaussian, 25.0, theta, strategies="all",
            integrator=SequentialImportanceSampler(
                theta=theta, max_samples=100_000, batch_size=2_000, seed=3
            ),
        )
        diff = set(exact.ids) ^ set(sequential.ids)
        assert len(diff) <= max(2, len(exact.ids) // 20)

    def test_saves_samples_vs_fixed_budget(self, rng, paper_gaussian):
        points = paper_gaussian.mean + rng.uniform(-120, 120, size=(800, 2))
        db = SpatialDatabase(points)
        sequential = SequentialImportanceSampler(
            theta=0.01, max_samples=100_000, batch_size=2_000, seed=4
        )
        result = db.probabilistic_range_query(
            paper_gaussian, 25.0, 0.01, strategies="all", integrator=sequential
        )
        fixed_budget = result.stats.integrations * 100_000
        # The adaptive sampler must spend well under half the fixed budget.
        assert result.stats.integration_samples < 0.5 * fixed_budget

"""Tests for the EM (ellipsoid-Minkowski) strategy and the point-to-
ellipsoid distance routine behind it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import (
    REJECT,
    UNKNOWN,
    EllipsoidStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
    make_strategies,
)
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.geometry.ellipsoid import Ellipsoid
from repro.integrate.exact import ExactIntegrator
from tests.conftest import random_spd


class TestDistanceToSurface:
    def test_sphere_case_closed_form(self):
        e = Ellipsoid([0.0, 0.0], np.eye(2), 2.0)
        pts = np.array([[5.0, 0.0], [0.0, -7.0], [1.0, 1.0], [3.0, 4.0]])
        expected = np.maximum(np.linalg.norm(pts, axis=1) - 2.0, 0.0)
        np.testing.assert_allclose(e.distance_to_surface(pts), expected, atol=1e-9)

    def test_interior_points_zero(self, paper_sigma_10, rng):
        e = Ellipsoid([0.0, 0.0], paper_sigma_10, 2.0)
        interior = e.transform.to_world(
            0.9
            * np.sqrt(e.transform.eigenvalues)
            * 2.0
            * (rng.random((40, 2)) - 0.5)
        )
        inside = e.contains_points(interior)
        distances = e.distance_to_surface(interior)
        assert np.all(distances[inside] == 0.0)

    def test_matches_dense_surface_sampling(self, paper_sigma_10, rng):
        e = Ellipsoid([3.0, -2.0], paper_sigma_10, 1.8)
        angles = np.linspace(0, 2 * np.pi, 60_000)
        surface = e.transform.to_world(
            1.8
            * np.sqrt(e.transform.eigenvalues)
            * np.column_stack([np.cos(angles), np.sin(angles)])
        )
        pts = e.center + rng.uniform(-40, 40, size=(25, 2))
        got = e.distance_to_surface(pts)
        for p, d in zip(pts, got):
            brute = float(np.min(np.linalg.norm(surface - p, axis=1)))
            if e.contains_point(p):
                assert d == 0.0
            else:
                assert d == pytest.approx(brute, abs=2e-3)

    def test_high_eccentricity_stable(self):
        e = Ellipsoid([0.0, 0.0], np.diag([1e4, 1e-2]), 1.0)
        pts = np.array([[150.0, 0.0], [0.0, 5.0], [80.0, 3.0]])
        d = e.distance_to_surface(pts)
        assert d[0] == pytest.approx(50.0, rel=1e-6)
        assert d[1] == pytest.approx(4.9, rel=1e-6)
        assert np.all(np.isfinite(d))

    def test_3d(self, rng):
        sigma = random_spd(rng, 3)
        e = Ellipsoid(rng.standard_normal(3), sigma, 1.5)
        pts = e.center + rng.standard_normal((50, 3)) * 6
        d = e.distance_to_surface(pts)
        inside = e.contains_points(pts)
        assert np.all(d[inside] == 0.0)
        assert np.all(d[~inside] > 0.0)
        # Triangle sanity: distance to surface <= distance to centre.
        assert np.all(d <= np.linalg.norm(pts - e.center, axis=1) + 1e-9)

    def test_zero_radius_degenerates_to_point(self):
        e = Ellipsoid([1.0, 2.0], np.eye(2), 0.0)
        np.testing.assert_allclose(
            e.distance_to_surface(np.array([[4.0, 6.0]])), [5.0]
        )


class TestEllipsoidStrategy:
    @pytest.fixture
    def query(self, paper_gaussian):
        return ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.01)

    def test_soundness(self, query, rng):
        strategy = EllipsoidStrategy()
        strategy.prepare(query)
        pts = query.gaussian.mean + rng.uniform(-120, 120, size=(300, 2))
        codes = strategy.classify(pts)
        rejected = pts[codes == REJECT]
        for p in rejected:
            prob = qualification_probability_exact(
                query.gaussian, p, query.delta, method="ruben"
            )
            assert prob < query.theta

    def test_region_within_rr_and_or(self, query, rng):
        em = EllipsoidStrategy()
        rr = RectilinearStrategy()
        oblique = ObliqueStrategy()
        for s in (em, rr, oblique):
            s.prepare(query)
        pts = query.gaussian.mean + rng.uniform(-120, 120, size=(500, 2))
        em_keep = em.classify(pts) == UNKNOWN
        rr_keep = rr.classify(pts) != REJECT
        or_keep = oblique.classify(pts) != REJECT
        # EM's undecided set is a subset of both RR's and OR's.
        assert np.all(~em_keep | rr_keep)
        assert np.all(~em_keep | or_keep)

    def test_search_rect_equals_rr_box(self, query):
        em = EllipsoidStrategy()
        rr = RectilinearStrategy()
        em.prepare(query)
        rr.prepare(query)
        assert em.search_rect() == rr.search_rect()

    def test_engine_results_match_oracle(self, rng, paper_gaussian):
        pts = paper_gaussian.mean + rng.uniform(-150, 150, size=(2000, 2))
        db = SpatialDatabase(pts)
        reference = db.probabilistic_range_query(
            paper_gaussian, 25.0, 0.01, strategies="all",
            integrator=ExactIntegrator(),
        )
        for spec in ("em", "em+bf"):
            result = db.probabilistic_range_query(
                paper_gaussian, 25.0, 0.01, strategies=spec,
                integrator=ExactIntegrator(),
            )
            assert result.ids == reference.ids

    def test_em_bf_never_looser_than_all(self, rng, paper_gaussian):
        from repro.bench.experiments import _CountOnlyIntegrator

        pts = paper_gaussian.mean + rng.uniform(-150, 150, size=(3000, 2))
        db = SpatialDatabase(pts)
        counting = _CountOnlyIntegrator()
        query = ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.01)
        counts = {
            spec: db.engine(strategies=spec, integrator=counting)
            .execute(query)
            .stats.integrations
            for spec in ("all", "em+bf", "em", "rr+or")
        }
        assert counts["em"] <= counts["rr+or"]
        assert counts["em+bf"] <= counts["all"]

    def test_spec_listing(self):
        assert [s.name for s in make_strategies("em")] == ["EM"]
        assert [s.name for s in make_strategies("em+bf")] == ["EM", "BF"]

    def test_use_before_prepare_rejected(self):
        with pytest.raises(QueryError):
            EllipsoidStrategy().search_rect()

    @pytest.mark.parametrize("dim", [3, 5])
    def test_higher_dimensions_sound(self, dim):
        rng = np.random.default_rng(dim)
        sigma = random_spd(rng, dim, scale=3.0)
        gaussian = Gaussian(rng.standard_normal(dim), sigma)
        delta = float(np.sqrt(np.trace(sigma)))
        query = ProbabilisticRangeQuery(gaussian, delta, 0.05)
        strategy = EllipsoidStrategy()
        strategy.prepare(query)
        pts = gaussian.mean + rng.uniform(-4, 4, size=(70, dim)) * np.sqrt(
            np.diag(sigma)
        )
        codes = strategy.classify(pts)
        for p in pts[codes == REJECT]:
            prob = qualification_probability_exact(gaussian, p, delta, method="ruben")
            assert prob < 0.05

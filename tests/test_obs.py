"""Observability layer: tracing, metrics, hooks, and the engine wiring.

The contract under test is docs/observability.md: spans and metrics are
deterministic (RNG-free, worker-count independent), attaching a sink
never changes query answers, and the documented span/metric names are
what the pipeline actually emits.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.workload import WorkloadGenerator
from repro.core.database import SpatialDatabase
from repro.errors import ReproError
from repro.integrate.cascade import CascadeIntegrator
from repro.obs import (
    COUNT_BUCKETS,
    ERROR_BUCKETS,
    NULL_SPAN,
    TIME_BUCKETS,
    CProfileHook,
    MetricsRegistry,
    Observability,
    Tracer,
)


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(42)
    return SpatialDatabase(rng.random((3000, 2)) * 1000.0)


@pytest.fixture(scope="module")
def workload(database):
    return WorkloadGenerator(database, seed=11).batch(10)


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_nesting_and_attributes(self):
        tracer = Tracer()
        with tracer.span("query", delta=5.0) as q:
            with tracer.span("phase:search") as s:
                s.annotate(retrieved=7)
        spans = {s.name: s for s in tracer.spans}
        assert set(spans) == {"query", "phase:search"}
        assert spans["phase:search"].parent_id == spans["query"].span_id
        assert spans["query"].parent_id is None
        assert spans["query"].attributes == {"delta": 5.0}
        assert spans["phase:search"].attributes == {"retrieved": 7}
        assert spans["query"].wall_seconds >= spans["phase:search"].wall_seconds >= 0

    def test_post_order_buffer(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a") as h:
            assert tracer.current_span() is h.span
        assert tracer.current_span() is None

    def test_merge_rebases_ids(self):
        parent, child = Tracer(), Tracer()
        with parent.span("query"):
            pass
        with child.span("query"):
            with child.span("phase:filter"):
                pass
        parent.merge(child)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids)) == 3
        by_name = {}
        for s in parent.spans:
            by_name.setdefault(s.name, []).append(s)
        merged_query = by_name["query"][1]
        assert by_name["phase:filter"][0].parent_id == merged_query.span_id

    def test_absorb_reroots_under_parent(self):
        parent = Observability()
        child = parent.child()
        with child.span("query"):
            pass
        handle = parent.span("batch")
        handle.__enter__()
        parent.absorb(child, parent=handle.span)
        handle.__exit__(None, None, None)
        spans = {s.name: s for s in parent.tracer.spans}
        assert spans["query"].parent_id == spans["batch"].span_id

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query", theta=0.1):
            with tracer.span("phase:integrate"):
                pass
        path = tmp_path / "t.jsonl"
        assert tracer.export_jsonl(path) == 2
        loaded = Tracer.load_jsonl(path)
        assert [s.name for s in loaded] == [s.name for s in tracer.spans]
        assert loaded[1].attributes == {"theta": 0.1}
        # Each line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        text = reg.render()
        assert 'repro_things_total{kind="a"} 3' in text
        assert 'repro_things_total{kind="b"} 1' in text
        assert "# TYPE repro_things_total counter" in text

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("repro_workers", "workers").set(4)
        assert "repro_workers 4" in reg.render()

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum 5.55" in text

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.histogram("repro_bad", "x", buckets=())
        with pytest.raises(ReproError):
            reg.histogram("repro_bad2", "x", buckets=(1.0, 1.0))
        with pytest.raises(ReproError):
            reg.histogram("repro_bad3", "x", buckets=(2.0, 1.0))

    def test_documented_bucket_edges(self):
        assert TIME_BUCKETS[0] == 1e-4 and TIME_BUCKETS[-1] == 10.0
        assert COUNT_BUCKETS[0] == 0 and COUNT_BUCKETS[-1] == 10_000
        assert ERROR_BUCKETS[0] == -1000 and ERROR_BUCKETS[-1] == 1000
        for edges in (TIME_BUCKETS, COUNT_BUCKETS, ERROR_BUCKETS):
            assert list(edges) == sorted(edges)

    def test_merge_adds_counters_and_buckets_keeps_gauge_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            reg.counter("repro_q_total", "q").inc(n)
            reg.gauge("repro_w", "w").set(n)
            reg.histogram("repro_h", "h", buckets=(1.0, 2.0)).observe(n)
        a.merge(b)
        text = a.render()
        assert "repro_q_total 5" in text
        assert "repro_w 3" in text
        assert 'repro_h_bucket{le="2"} 1' in text
        assert "repro_h_count 2" in text

    def test_render_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_z_total", "z").inc()
            reg.counter("repro_a_total", "a", labelnames=("s",)).inc(s="y")
            reg.counter("repro_a_total", "a", labelnames=("s",)).inc(s="x")
            return reg.render()

        text = build()
        assert text == build()
        assert text.index("repro_a_total") < text.index("repro_z_total")
        assert text.index('s="x"') < text.index('s="y"')


# ---------------------------------------------------------------------------
# Observability facade + hooks


class TestObservability:
    def test_disabled_instruments_are_none(self):
        obs = Observability(trace=False, metrics=False)
        assert obs.tracer is None and obs.metrics is None
        assert obs.span("query") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.annotate(x=1)  # must not raise

    def test_hooks_fire_per_span(self):
        events = []

        class Hook:
            def on_span_start(self, span):
                events.append(("start", span.name))

            def on_span_end(self, span):
                events.append(("end", span.name))

        obs = Observability(hooks=[Hook()])
        with obs.span("query"):
            with obs.span("phase:search"):
                pass
        assert events == [
            ("start", "query"),
            ("start", "phase:search"),
            ("end", "phase:search"),
            ("end", "query"),
        ]

    def test_cprofile_hook_collects_stats(self, database, workload):
        hook = CProfileHook(span_prefix="phase:integrate")
        obs = Observability(hooks=[hook])
        engine = database.engine(
            strategies="rr", integrator=CascadeIntegrator(), obs=obs
        )
        engine.run(workload)
        stats = hook.stats()
        assert stats is not None and stats.total_calls > 0


# ---------------------------------------------------------------------------
# Engine wiring


class TestEngineSpans:
    def test_query_span_tree_covers_all_phases(self, database, workload):
        obs = Observability()
        engine = database.engine(
            strategies="auto", integrator=CascadeIntegrator(), obs=obs
        )
        engine.execute(workload[0])
        spans = {s.name: s for s in obs.tracer.spans}
        query = spans["query"]
        for phase in ("phase:plan", "phase:search", "phase:filter", "phase:integrate"):
            assert phase in spans, f"missing {phase} span"
            assert spans[phase].parent_id == query.span_id
        assert {"delta", "theta", "retrieved", "integrations", "results"} <= set(
            query.attributes
        )
        assert spans["phase:plan"].attributes.keys() >= {
            "strategies",
            "phase1",
            "cache_hit",
        }

    def test_cascade_tier_spans_nest_under_integrate(self, database):
        gen = WorkloadGenerator(database, seed=3)
        query = gen.batch(1)[0]
        obs = Observability()
        engine = database.engine(
            strategies="rr", integrator=CascadeIntegrator(), obs=obs
        )
        result = engine.execute(query)
        spans = {s.name: s for s in obs.tracer.spans}
        if result.stats.integrations == 0:
            pytest.skip("query decided without Phase 3")
        assert "tier:sandwich" in spans
        assert spans["tier:sandwich"].parent_id == spans["phase:integrate"].span_id
        assert spans["tier:sandwich"].attributes["candidates"] > 0

    def test_integrator_obs_is_cleared_after_query(self, database, workload):
        obs = Observability()
        integrator = CascadeIntegrator()
        engine = database.engine(strategies="rr", integrator=integrator, obs=obs)
        engine.execute(workload[0])
        assert integrator.obs is None

    def test_metrics_cover_pipeline_and_planner(self, database, workload):
        obs = Observability()
        engine = database.engine(
            strategies="auto", integrator=CascadeIntegrator(), obs=obs
        )
        engine.run_batch(workload, workers=2)
        text = obs.render_metrics()
        for name in (
            "repro_queries_total 10",
            "repro_batches_total 1",
            f"repro_batch_queries_total {len(workload)}",
            "repro_batch_workers 2",
            "repro_query_seconds_count 10",
            'repro_phase_seconds_count{phase="search"} 10',
            'repro_phase_seconds_count{phase="integrate"} 10',
            'repro_phase_seconds_count{phase="plan"} 10',
            "repro_retrieved_candidates_count 10",
            "repro_phase3_candidates_count 10",
            "repro_planner_prediction_error_count 10",
            'repro_planner_plans_total{cache="',
            "repro_planner_cache_size",
            "repro_retrieved_total",
            "repro_results_total",
        ):
            assert name in text, f"metric line missing: {name}"

    def test_answers_identical_with_obs_on_and_off(self, database, workload):
        plain = database.engine(strategies="all")
        observed = database.engine(strategies="all", obs=Observability())
        for query in workload[:4]:
            a, b = plain.execute(query), observed.execute(query)
            assert list(a.ids) == list(b.ids)
            assert a.stats.retrieved == b.stats.retrieved
            assert a.stats.integrations == b.stats.integrations


class TestBatchDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_identical_results_obs_on_vs_off(
        self, database, workload, workers
    ):
        plain = database.engine(strategies="auto")
        base = plain.run_batch(workload, workers=workers, base_seed=17)
        obs = Observability()
        observed_engine = database.engine(strategies="auto", obs=obs)
        observed = observed_engine.run_batch(workload, workers=workers, base_seed=17)
        assert [list(r.ids) for r in base.results] == [
            list(r.ids) for r in observed.results
        ]
        assert [
            (r.stats.retrieved, r.stats.integrations, r.stats.results)
            for r in base.results
        ] == [
            (r.stats.retrieved, r.stats.integrations, r.stats.results)
            for r in observed.results
        ]

    def test_trace_and_counts_independent_of_worker_count(self, database, workload):
        def run(workers):
            obs = Observability()
            engine = database.engine(
                strategies="auto", integrator=CascadeIntegrator(), obs=obs
            )
            engine.run_batch(workload, workers=workers, base_seed=17)
            skeleton = [
                (s.name, s.span_id, s.parent_id, sorted(s.attributes))
                for s in obs.tracer.spans
            ]
            counts = "\n".join(
                line
                for line in obs.render_metrics().splitlines()
                if "_seconds" not in line
                and "cache" not in line
                and "workers" not in line
            )
            return skeleton, counts

        one = run(1)
        for workers in (2, 4):
            assert run(workers) == one

    def test_batch_span_is_root_of_query_spans(self, database, workload):
        obs = Observability()
        engine = database.engine(strategies="rr", obs=obs)
        engine.run_batch(workload[:3], workers=2)
        spans = obs.tracer.spans
        batch = [s for s in spans if s.name == "batch"]
        assert len(batch) == 1
        assert batch[0].attributes == {"queries": 3, "workers": 2}
        queries = [s for s in spans if s.name == "query"]
        assert len(queries) == 3
        assert all(q.parent_id == batch[0].span_id for q in queries)

"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDemo:
    def test_runs_and_prints_table(self, capsys):
        assert main(["demo", "--points", "1500", "--delta", "25",
                     "--theta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "strategies" in out
        assert "all" in out
        # Six combination rows.
        assert sum(1 for line in out.splitlines() if "rr" in line or "bf" in line or "all" in line) >= 6


class TestDatasetAndQuery:
    def test_dataset_then_query(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "query", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--exact",
        ]) == 0
        out = capsys.readouterr().out
        assert "objects qualify" in out

    def test_query_with_auto_strategies(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "query", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--strategies", "auto", "--exact",
        ]) == 0
        assert "objects qualify" in capsys.readouterr().out

    def test_explain_renders_plan(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "explain", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "chosen by cost-based planner" in out
        assert "plans considered" in out
        assert "plan: strategies=" in out

    def test_explain_fixed_strategies(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "explain", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--strategies", "rr+bf",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategies: RR + BF" in out
        assert "plans considered" not in out

    def test_explain_dim_mismatch_fails_cleanly(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        main(["dataset", "uniform", db_path, "--size", "100"])
        code = main([
            "explain", db_path, "--center", "1", "2", "3",
            "--delta", "1", "--theta", "0.1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_query_dim_mismatch_fails_cleanly(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        main(["dataset", "uniform", db_path, "--size", "100"])
        code = main([
            "query", db_path, "--center", "1", "2", "3",
            "--delta", "1", "--theta", "0.1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_road_dataset_generation(self, tmp_path, capsys):
        db_path = str(tmp_path / "road.npz")
        assert main(["dataset", "road", db_path, "--size", "3000"]) == 0
        with np.load(db_path) as archive:
            assert archive["points"].shape == (3000, 2)


class TestCatalog:
    def test_rtheta_catalog(self, tmp_path, capsys):
        out_path = str(tmp_path / "cat.json")
        assert main(["catalog", "rtheta", out_path, "--dim", "3",
                     "--resolution", "7"]) == 0
        from repro.catalog import load_catalog, RThetaCatalog

        catalog = load_catalog(out_path)
        assert isinstance(catalog, RThetaCatalog)
        assert catalog.dim == 3

    def test_bf_catalog_monte_carlo(self, tmp_path):
        out_path = str(tmp_path / "bf.json")
        assert main([
            "catalog", "bf", out_path, "--dim", "2", "--resolution", "4",
            "--deltas", "1.0", "2.0", "--monte-carlo",
        ]) == 0
        from repro.catalog import load_catalog, BFCatalog

        assert isinstance(load_catalog(out_path), BFCatalog)


class TestExperiment:
    def test_fig17(self, capsys):
        assert main(["experiment", "fig17"]) == 0
        assert "Fig. 17" in capsys.readouterr().out

    def test_regions(self, capsys):
        assert main(["experiment", "regions"]) == 0
        out = capsys.readouterr().out
        assert "23.4" in out  # the Fig. 13 half-width anchor

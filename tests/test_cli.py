"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDemo:
    def test_runs_and_prints_table(self, capsys):
        assert main(["demo", "--points", "1500", "--delta", "25",
                     "--theta", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "strategies" in out
        assert "all" in out
        # Six combination rows.
        assert sum(1 for line in out.splitlines() if "rr" in line or "bf" in line or "all" in line) >= 6


class TestDatasetAndQuery:
    def test_dataset_then_query(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "query", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--exact",
        ]) == 0
        out = capsys.readouterr().out
        assert "objects qualify" in out

    def test_query_with_auto_strategies(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "query", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--strategies", "auto", "--exact",
        ]) == 0
        assert "objects qualify" in capsys.readouterr().out

    def test_explain_renders_plan(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "explain", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "chosen by cost-based planner" in out
        assert "plans considered" in out
        assert "plan: strategies=" in out

    def test_explain_fixed_strategies(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", db_path, "--size", "400"]) == 0
        assert main([
            "explain", db_path,
            "--center", "500", "500",
            "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--strategies", "rr+bf",
        ]) == 0
        out = capsys.readouterr().out
        assert "strategies: RR + BF" in out
        assert "plans considered" not in out

    def test_explain_dim_mismatch_fails_cleanly(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        main(["dataset", "uniform", db_path, "--size", "100"])
        code = main([
            "explain", db_path, "--center", "1", "2", "3",
            "--delta", "1", "--theta", "0.1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_query_dim_mismatch_fails_cleanly(self, tmp_path, capsys):
        db_path = str(tmp_path / "data.npz")
        main(["dataset", "uniform", db_path, "--size", "100"])
        code = main([
            "query", db_path, "--center", "1", "2", "3",
            "--delta", "1", "--theta", "0.1",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_road_dataset_generation(self, tmp_path, capsys):
        db_path = str(tmp_path / "road.npz")
        assert main(["dataset", "road", db_path, "--size", "3000"]) == 0
        with np.load(db_path) as archive:
            assert archive["points"].shape == (3000, 2)


class TestCatalog:
    def test_rtheta_catalog(self, tmp_path, capsys):
        out_path = str(tmp_path / "cat.json")
        assert main(["catalog", "rtheta", out_path, "--dim", "3",
                     "--resolution", "7"]) == 0
        from repro.catalog import load_catalog, RThetaCatalog

        catalog = load_catalog(out_path)
        assert isinstance(catalog, RThetaCatalog)
        assert catalog.dim == 3

    def test_bf_catalog_monte_carlo(self, tmp_path):
        out_path = str(tmp_path / "bf.json")
        assert main([
            "catalog", "bf", out_path, "--dim", "2", "--resolution", "4",
            "--deltas", "1.0", "2.0", "--monte-carlo",
        ]) == 0
        from repro.catalog import load_catalog, BFCatalog

        assert isinstance(load_catalog(out_path), BFCatalog)


class TestExperiment:
    def test_fig17(self, capsys):
        assert main(["experiment", "fig17"]) == 0
        assert "Fig. 17" in capsys.readouterr().out

    def test_regions(self, capsys):
        assert main(["experiment", "regions"]) == 0
        out = capsys.readouterr().out
        assert "23.4" in out  # the Fig. 13 half-width anchor


class TestObservabilityCLI:
    """`repro query --trace-out/--metrics-out` and `repro trace`."""

    @pytest.fixture()
    def db_path(self, tmp_path):
        path = str(tmp_path / "data.npz")
        assert main(["dataset", "uniform", path, "--size", "400"]) == 0
        return path

    def test_query_writes_trace_and_metrics(self, db_path, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.txt"
        assert main([
            "query", db_path,
            "--center", "500", "500", "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.3",
            "--strategies", "auto", "--integrator", "cascade",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "objects qualify" in out
        assert f"wrote metrics to {metrics}" in out

        from repro.obs import Tracer

        names = {s.name for s in Tracer.load_jsonl(trace)}
        # The acceptance bar: all three phases plus the planner span.
        assert {"query", "phase:plan", "phase:search", "phase:filter",
                "phase:integrate"} <= names

        text = metrics.read_text()
        assert "repro_queries_total 1" in text
        assert "repro_planner_cache_misses 1" in text
        assert 'repro_planner_plans_total{cache="miss"} 1' in text
        assert 'repro_phase_seconds_count{phase="plan"} 1' in text

    def test_query_cascade_tier_metrics(self, db_path, tmp_path):
        metrics = tmp_path / "m.txt"
        assert main([
            "query", db_path,
            "--center", "500", "500", "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.3",
            "--strategies", "rr", "--integrator", "cascade",
            "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert 'repro_phase3_decisions_total{method="cascade-' in text

    def test_trace_command_renders_tree(self, db_path, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main([
            "query", db_path,
            "--center", "500", "500", "--sigma-scale", "900",
            "--delta", "60", "--theta", "0.05",
            "--strategies", "all", "--exact",
            "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "query" in out and "phase:search" in out
        assert "total ms" in out  # the summary table

        assert main(["trace", str(trace), "--summary-only"]) == 0
        out = capsys.readouterr().out
        assert "phase:" in out and "wall=" not in out

    def test_trace_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["trace", str(tmp_path / "missing.jsonl")]) == 2

    def test_batch_query_with_observability(self, db_path, tmp_path, capsys):
        import json

        batch_file = tmp_path / "batch.json"
        batch_file.write_text(json.dumps([
            {"center": [500, 500], "delta": 60, "theta": 0.05},
            {"center": [250, 250], "delta": 40, "theta": 0.1},
        ]))
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.txt"
        assert main([
            "query", db_path, "--sigma-scale", "900",
            "--batch", str(batch_file), "--workers", "2",
            "--strategies", "auto", "--integrator", "cascade",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "batch:" in out

        from repro.obs import Tracer

        spans = Tracer.load_jsonl(trace)
        assert sum(s.name == "batch" for s in spans) == 1
        assert sum(s.name == "query" for s in spans) == 2
        text = metrics.read_text()
        assert "repro_batch_queries_total 2" in text
        assert "repro_batch_workers 2" in text


class TestDatabaseLoadErrors:
    """Store-load failures surface as ``error: ...`` + exit 2, no traceback."""

    @pytest.mark.parametrize("command", ["query", "explain"])
    def test_unreadable_store_is_a_cli_error(self, command, tmp_path, capsys):
        bad = tmp_path / "torn.soa"
        bad.write_bytes(b"RPROSOA1\x01")  # 9 bytes of a 64-byte header
        with pytest.raises(SystemExit) as excinfo:
            main([command, str(bad),
                  "--center", "1", "1", "--delta", "5", "--theta", "0.1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(bad) in err

    def test_missing_database_is_a_cli_error(self, tmp_path, capsys):
        absent = tmp_path / "absent.soa"
        with pytest.raises(SystemExit) as excinfo:
            main(["query", str(absent),
                  "--center", "1", "1", "--delta", "5", "--theta", "0.1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and str(absent) in err

"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_dimension_mismatch_message(self):
        err = errors.DimensionMismatchError(2, 3, "point")
        assert "point" in str(err)
        assert err.expected == 2 and err.actual == 3

    def test_invalid_threshold_message(self):
        err = errors.InvalidThresholdError(1.5)
        assert "1.5" in str(err)
        assert err.theta == 1.5

    def test_catalog_lookup_is_catalog_error(self):
        assert issubclass(errors.CatalogLookupError, errors.CatalogError)

    def test_geometry_errors_catchable_as_base(self):
        from repro.geometry.mbr import Rect

        with pytest.raises(errors.ReproError):
            Rect([1.0], [0.0])


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_subpackage_all_exports_resolve(self):
        import repro.catalog
        import repro.core
        import repro.datasets
        import repro.gaussian
        import repro.geometry
        import repro.index
        import repro.integrate
        import repro.robotics

        for module in (
            repro.core,
            repro.gaussian,
            repro.geometry,
            repro.index,
            repro.integrate,
            repro.catalog,
            repro.datasets,
            repro.robotics,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

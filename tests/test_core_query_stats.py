"""Tests for the query specification and statistics containers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.errors import InvalidThresholdError, QueryError


class TestProbabilisticRangeQuery:
    def test_create_convenience(self, paper_sigma_10):
        q = ProbabilisticRangeQuery.create([1.0, 2.0], paper_sigma_10, 25.0, 0.01)
        assert q.dim == 2
        np.testing.assert_allclose(q.center, [1.0, 2.0])

    @pytest.mark.parametrize("theta", [0.0, 1.0, -0.1, 1.5, float("nan")])
    def test_invalid_theta_rejected(self, paper_gaussian, theta):
        with pytest.raises((InvalidThresholdError, QueryError)):
            ProbabilisticRangeQuery(paper_gaussian, 25.0, theta)

    @pytest.mark.parametrize("delta", [0.0, -1.0, float("inf")])
    def test_invalid_delta_rejected(self, paper_gaussian, delta):
        with pytest.raises(QueryError):
            ProbabilisticRangeQuery(paper_gaussian, delta, 0.1)

    def test_non_gaussian_rejected(self):
        with pytest.raises(QueryError):
            ProbabilisticRangeQuery("not a gaussian", 1.0, 0.1)

    def test_region_theta_passthrough_below_half(self, paper_gaussian):
        q = ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.3)
        assert q.region_theta == 0.3

    def test_region_theta_clamped_at_half(self, paper_gaussian):
        q = ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.8)
        assert q.region_theta < 0.5
        assert q.region_theta == pytest.approx(0.5, abs=1e-6)

    def test_repr(self, paper_gaussian):
        assert "PRQ" in repr(ProbabilisticRangeQuery(paper_gaussian, 25.0, 0.01))


class TestQueryStats:
    def test_phase_timing_accumulates(self):
        stats = QueryStats()
        with stats.time_phase("integrate"):
            time.sleep(0.01)
        with stats.time_phase("integrate"):
            time.sleep(0.01)
        assert stats.phase_seconds["integrate"] >= 0.02
        assert stats.total_seconds == sum(stats.phase_seconds.values())

    def test_timing_survives_exception(self):
        stats = QueryStats()
        with pytest.raises(RuntimeError):
            with stats.time_phase("search"):
                raise RuntimeError("boom")
        assert "search" in stats.phase_seconds

    def test_rejection_bookkeeping(self):
        stats = QueryStats()
        stats.note_rejections("RR", 5)
        stats.note_rejections("RR", 3)
        stats.note_rejections("OR", 0)  # zero is not recorded
        assert stats.rejected_by_filter == {"RR": 8}
        assert stats.total_rejected == 8

    def test_summary_contains_counts(self):
        stats = QueryStats()
        stats.retrieved = 10
        stats.integrations = 4
        text = stats.summary()
        assert "retrieved=10" in text and "integrated=4" in text

"""The shared convolved-reach helper (`repro.gaussian.convolve`).

`conservative_reach_alpha(gaussian, delta, theta, max_target_eig)` is the
one Phase-1 reach bound every uncertain-target code path shares (the UT
strategy, the planner's fixed uncertain plan, the deprecated shim).  It
must (a) reduce exactly to the paper's BF α∥ when targets are exact,
(b) only ever grow with the target spread, and (c) stay *sound*: a target
mean beyond the radius can never qualify under its convolved Gaussian.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.bf import alpha_radii
from repro.errors import QueryError
from repro.gaussian import Gaussian, conservative_reach_alpha
from repro.gaussian.quadform import qualification_probability_exact


def random_gaussian(rng, dim, scale=10.0):
    a = rng.normal(size=(dim, dim))
    sigma = scale * (a @ a.T + dim * np.eye(dim))
    return Gaussian(rng.normal(size=dim) * 10.0, sigma)


class TestExactTargetReduction:
    """max_target_eig = 0 must reproduce the single-Gaussian α∥ bit-for-bit."""

    @pytest.mark.parametrize("dim", [1, 2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bf_alpha_upper(self, dim, seed):
        rng = np.random.default_rng(seed)
        gaussian = random_gaussian(rng, dim)
        delta, theta = 8.0, 0.05
        expected, _ = alpha_radii(gaussian, delta, theta)
        got = conservative_reach_alpha(gaussian, delta, theta, 0.0)
        assert got == expected

    def test_empty_proof_matches(self):
        # A tiny delta with a demanding theta is provably empty both ways.
        gaussian = Gaussian([0.0, 0.0], 100.0 * np.eye(2))
        assert alpha_radii(gaussian, 0.01, 0.4)[0] is None
        assert conservative_reach_alpha(gaussian, 0.01, 0.4, 0.0) is None


class TestConvolvedBound:
    def test_grows_with_target_spread(self):
        gaussian = Gaussian([0.0, 0.0], 25.0 * np.eye(2))
        alphas = [
            conservative_reach_alpha(gaussian, 10.0, 0.01, eig)
            for eig in (0.0, 5.0, 50.0)
        ]
        assert all(a is not None for a in alphas)
        assert alphas[0] < alphas[1] < alphas[2]

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_sound_against_exact_convolved_probability(self, dim, seed):
        """No target mean beyond alpha can reach theta under any Σ_o
        whose largest eigenvalue respects the bound."""
        rng = np.random.default_rng(seed)
        gaussian = random_gaussian(rng, dim, scale=4.0)
        delta, theta = 6.0, 0.02
        max_eig = 9.0
        alpha = conservative_reach_alpha(gaussian, delta, theta, max_eig)
        assert alpha is not None
        for _ in range(20):
            a = rng.normal(size=(dim, dim))
            target_sigma = a @ a.T + 0.1 * np.eye(dim)
            target_sigma *= max_eig / np.linalg.eigvalsh(target_sigma)[-1]
            convolved = Gaussian(gaussian.mean, gaussian.sigma + target_sigma)
            direction = rng.normal(size=dim)
            direction /= np.linalg.norm(direction)
            radius = alpha * (1.0 + rng.uniform(0.01, 2.0))
            mean = gaussian.mean + radius * direction
            prob = qualification_probability_exact(convolved, mean, delta)
            assert prob < theta

    def test_none_when_threshold_unreachable(self):
        gaussian = Gaussian([0.0, 0.0, 0.0], 50.0 * np.eye(3))
        assert conservative_reach_alpha(gaussian, 0.05, 0.3, 25.0) is None

    def test_negative_max_eig_raises(self):
        gaussian = Gaussian([0.0, 0.0], np.eye(2))
        with pytest.raises(QueryError, match="max_target_eig"):
            conservative_reach_alpha(gaussian, 1.0, 0.1, -1.0)

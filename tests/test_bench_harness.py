"""Tests for the benchmark harness and experiment runners (small scales)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import (
    SPEC_ORDER,
    pseudo_feedback_gaussian,
    region_geometry,
    run_fig17,
    run_strategy_grid,
    run_table3,
)
from repro.bench.harness import ExperimentTable, format_table, paper_sigma
from repro.core.database import SpatialDatabase
from repro.datasets.synthetic import clustered_points
from repro.gaussian.radial import radial_cdf


class TestPaperSigma:
    def test_shape_and_eigenvalues(self):
        sigma = paper_sigma(10.0)
        np.testing.assert_allclose(np.linalg.eigvalsh(sigma), [10.0, 90.0], rtol=1e-12)

    def test_tilt_is_30_degrees(self):
        sigma = paper_sigma(1.0)
        _, vecs = np.linalg.eigh(sigma)
        major = vecs[:, 1]  # largest eigenvalue
        angle = np.degrees(np.arctan2(major[1], major[0]))
        assert angle % 180 == pytest.approx(30.0, abs=1e-6)


class TestTableFormatting:
    def test_add_row_validates_width(self):
        table = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_alignment(self):
        table = ExperimentTable("Title", ["col", "value"])
        table.add_row("x", 1.5)
        table.add_row("longer", 22.25)
        table.note("a note")
        text = table.render()
        assert "Title" in text
        assert "# a note" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:4]}) == 1  # header aligned

    def test_format_table_cell_styles(self):
        text = format_table("t", ["v"], [[0.000123], [1234.5], [3.25], [0]])
        assert "0.000123" in text
        assert "1234" in text  # large values rendered without decimals


class TestRegionGeometry:
    def test_paper_fig13_rr_labels(self):
        g = region_geometry(10.0)
        assert g["rr_half_width_x"] == pytest.approx(23.4, abs=0.1)
        assert g["rr_half_width_y"] == pytest.approx(15.3, abs=0.1)

    def test_paper_fig15_fig16_rr_labels(self):
        g1 = region_geometry(1.0)
        assert g1["rr_half_width_x"] == pytest.approx(7.4, abs=0.1)
        assert g1["rr_half_width_y"] == pytest.approx(4.8, abs=0.1)
        g100 = region_geometry(100.0)
        assert g100["rr_half_width_x"] == pytest.approx(74.0, abs=0.2)
        assert g100["rr_half_width_y"] == pytest.approx(48.4, abs=0.2)

    def test_all_region_smallest(self):
        g = region_geometry(10.0)
        assert g["all_area"] <= min(g["rr_area"], g["or_area"], g["bf_area"]) * 1.02

    def test_combination_gain_grows_with_gamma(self):
        # Figs. 15/16: combining strategies helps little for gamma=1 and a
        # lot for gamma=100.
        gain = {}
        for gamma in (1.0, 100.0):
            g = region_geometry(gamma)
            gain[gamma] = min(g["rr_area"], g["bf_area"]) / g["all_area"]
        assert gain[100.0] > gain[1.0]


class TestStrategyGrid:
    @pytest.fixture(scope="class")
    def small_db(self):
        return SpatialDatabase(clustered_points(6_000, 2, seed=11))

    def test_grid_runs_and_orders(self, small_db):
        result = run_strategy_grid(
            gammas=(10.0,),
            n_trials=2,
            n_samples=500,
            seed=1,
            database=small_db,
        )
        counts = {spec: result.candidates[(10.0, spec)] for spec in SPEC_ORDER}
        # ALL must be the tightest filter; every combo at least as tight as
        # its components (the paper's headline finding).
        assert counts["all"] <= min(counts.values()) + 1e-9
        assert counts["rr+bf"] <= min(counts["rr"], counts["bf"]) + 1e-9
        assert counts["bf+or"] <= counts["bf"] + 1e-9
        table = result.table_candidates().render()
        assert "ANS" in table
        time_table = result.table_time().render()
        assert "Table I" in time_table


class TestFig17:
    def test_table_and_anchor_values(self):
        table, curves = run_fig17()
        assert set(curves) == {2, 3, 5, 9, 15}
        assert curves[2][0] == 0.0
        # Curse of dimensionality: at every radius, higher dim => less mass.
        for i in range(1, 25):
            values = [curves[d][i] for d in (2, 3, 5, 9, 15)]
            assert all(a >= b for a, b in zip(values, values[1:]))
        assert "Fig. 17" in table.render()

    def test_matches_radial_cdf(self):
        _, curves = run_fig17(dims=(2,), radii=np.array([0.5, 1.0, 2.0]))
        np.testing.assert_allclose(
            curves[2], radial_cdf(2, np.array([0.5, 1.0, 2.0]))
        )


class TestTable3SmallScale:
    def test_pseudo_feedback_covariance(self):
        pts = clustered_points(3_000, 9, n_clusters=15, spread=1.0, high=10.0, seed=3)
        db = SpatialDatabase(pts)
        gaussian = pseudo_feedback_gaussian(pts, db, query_index=0, k=20)
        assert gaussian.dim == 9
        # kappa regularization keeps the covariance well conditioned.
        assert gaussian.condition_number < 1e6
        np.testing.assert_array_equal(gaussian.mean, pts[0])

    def test_run_table3_small(self):
        pts = clustered_points(2_000, 9, n_clusters=10, spread=0.5, high=8.0, seed=4)
        table = run_table3(n_trials=2, points=pts, seed=5)
        text = table.render()
        assert "Table III" in text
        assert "r_theta(9, 0.4) = 2.32" in text
        row = table.rows[0]
        counts = dict(zip([s.upper() for s in SPEC_ORDER], row))
        assert counts["ALL"] <= min(
            counts["RR"], counts["BF"], counts["RR+BF"], counts["RR+OR"],
            counts["BF+OR"],
        ) + 1e-9

"""Tests for the Kalman filter and robot trajectory substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.robotics.kalman import KalmanFilter
from repro.robotics.trajectory import RobotSimulator


def position_filter(process_std=1.0, measurement_std=2.0):
    identity = np.eye(2)
    kf = KalmanFilter(
        transition=identity,
        process_noise=process_std**2 * identity,
        observation=identity,
        observation_noise=measurement_std**2 * identity,
        control=identity,
    )
    kf.initialize(np.zeros(2), identity)
    return kf


class TestKalmanFilter:
    def test_predict_grows_uncertainty(self):
        kf = position_filter()
        _, p0 = kf.state
        kf.predict()
        _, p1 = kf.state
        assert np.trace(p1) > np.trace(p0)

    def test_update_shrinks_uncertainty(self):
        kf = position_filter()
        kf.predict()
        _, before = kf.state
        kf.update(np.array([0.5, -0.5]))
        _, after = kf.state
        assert np.trace(after) < np.trace(before)

    def test_covariance_stays_symmetric_positive(self):
        kf = position_filter()
        rng = np.random.default_rng(0)
        for _ in range(200):
            kf.predict(rng.standard_normal(2))
            if rng.random() < 0.3:
                kf.update(rng.standard_normal(2) * 5)
        _, cov = kf.state
        np.testing.assert_allclose(cov, cov.T, atol=1e-12)
        assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_steady_state_matches_riccati(self):
        # For the scalar random-walk + noisy-observation model the steady
        # state variance P solves P = (P + Q) R / (P + Q + R).
        q_var, r_var = 1.0, 4.0
        kf = KalmanFilter(
            transition=np.eye(1),
            process_noise=q_var * np.eye(1),
            observation=np.eye(1),
            observation_noise=r_var * np.eye(1),
        )
        kf.initialize(np.zeros(1), 10.0 * np.eye(1))
        for _ in range(200):
            kf.predict()
            kf.update(np.zeros(1))
        _, cov = kf.state
        p = cov[0, 0]
        expected = (p + q_var) * r_var / (p + q_var + r_var)
        assert p == pytest.approx(expected, rel=1e-6)

    def test_estimates_converge_to_truth(self):
        rng = np.random.default_rng(1)
        kf = position_filter(process_std=0.1, measurement_std=1.0)
        truth = np.array([3.0, -2.0])
        for _ in range(300):
            kf.predict()
            kf.update(truth + rng.normal(0, 1.0, 2))
        mean, _ = kf.state
        np.testing.assert_allclose(mean, truth, atol=0.5)

    def test_belief_is_gaussian(self):
        kf = position_filter()
        belief = kf.belief()
        assert belief.dim == 2

    def test_use_before_initialize_rejected(self):
        kf = KalmanFilter(np.eye(1), np.eye(1), np.eye(1), np.eye(1))
        with pytest.raises(ReproError):
            kf.predict()
        with pytest.raises(ReproError):
            kf.belief()

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            KalmanFilter(np.ones((2, 3)), np.eye(2), np.eye(2), np.eye(2))
        with pytest.raises(ReproError):
            KalmanFilter(np.eye(2), np.eye(3), np.eye(2), np.eye(2))
        with pytest.raises(ReproError):
            KalmanFilter(np.eye(2), np.eye(2), np.ones((1, 3)), np.eye(1))
        kf = position_filter()
        with pytest.raises(ReproError):
            kf.update(np.zeros(3))
        with pytest.raises(ReproError):
            kf.predict(np.zeros(3))

    def test_control_without_matrix_rejected(self):
        kf = KalmanFilter(np.eye(2), np.eye(2), np.eye(2), np.eye(2))
        kf.initialize(np.zeros(2), np.eye(2))
        with pytest.raises(ReproError):
            kf.predict(np.ones(2))


class TestRobotSimulator:
    def test_uncertainty_grows_between_fixes(self):
        sim = RobotSimulator(fix_interval=50, seed=3)
        estimates = sim.run([np.array([1.0, 0.0])] * 30)
        determinants = [e.belief.det_sigma for e in estimates]
        assert all(a < b for a, b in zip(determinants, determinants[1:]))
        assert not any(e.had_fix for e in estimates)

    def test_fix_shrinks_uncertainty(self):
        sim = RobotSimulator(fix_interval=10, seed=4)
        estimates = sim.run([np.array([1.0, 0.0])] * 10)
        assert estimates[-1].had_fix
        assert estimates[-1].belief.det_sigma < estimates[-2].belief.det_sigma

    def test_dead_reckoning_mode(self):
        sim = RobotSimulator(fix_interval=0, seed=5)
        estimates = sim.run([np.array([0.5, 0.5])] * 40)
        assert not any(e.had_fix for e in estimates)

    def test_tracking_error_bounded_with_fixes(self):
        sim = RobotSimulator(fix_interval=5, odometry_noise=0.5, fix_noise=1.0, seed=6)
        estimates = sim.run([np.array([1.0, 0.2])] * 200)
        late_errors = [e.error for e in estimates[-50:]]
        assert np.mean(late_errors) < 5.0

    def test_deterministic(self):
        a = RobotSimulator(seed=7).run([np.array([1.0, 0.0])] * 20)
        b = RobotSimulator(seed=7).run([np.array([1.0, 0.0])] * 20)
        np.testing.assert_array_equal(a[-1].true_position, b[-1].true_position)

    def test_validation(self):
        with pytest.raises(ReproError):
            RobotSimulator(odometry_noise=0.0)
        with pytest.raises(ReproError):
            RobotSimulator(fix_interval=-1)
        with pytest.raises(ReproError):
            RobotSimulator(start=(0.0, 0.0, 0.0))
        sim = RobotSimulator()
        with pytest.raises(ReproError):
            sim.advance(np.zeros(3))

    def test_belief_usable_as_query_object(self):
        from repro.core.database import SpatialDatabase
        from repro.integrate.exact import ExactIntegrator

        rng = np.random.default_rng(8)
        db = SpatialDatabase(rng.random((500, 2)) * 40 - 20)
        sim = RobotSimulator(fix_interval=0, seed=9)
        estimate = sim.run([np.array([0.5, 0.0])] * 15)[-1]
        result = db.probabilistic_range_query(
            estimate.belief, delta=10.0, theta=0.2, integrator=ExactIntegrator()
        )
        assert result.stats.retrieved >= len(result.ids)


class TestRangeBearingEKF:
    def make_ekf(self):
        from repro.robotics.ekf import RangeBearingEKF

        landmarks = np.array([[0.0, 0.0], [50.0, 0.0], [25.0, 40.0]])
        ekf = RangeBearingEKF(
            landmarks,
            process_noise_std=0.4,
            range_noise_std=0.5,
            bearing_noise_std=0.03,
        )
        ekf.initialize([10.0, 10.0], 4.0 * np.eye(2))
        return ekf

    def test_wrap_angle(self):
        from repro.robotics.ekf import wrap_angle

        assert wrap_angle(0.0) == 0.0
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)
        assert wrap_angle(-np.pi - 0.1) == pytest.approx(np.pi - 0.1)
        assert wrap_angle(7 * np.pi) == pytest.approx(np.pi)

    def test_localizes_from_landmarks(self):
        rng = np.random.default_rng(3)
        ekf = self.make_ekf()
        true_position = np.array([12.0, 8.0])
        for _ in range(60):
            ekf.predict(np.zeros(2))
            for idx in range(3):
                ekf.update(idx, ekf.observe(true_position, idx, rng))
        belief = ekf.belief()
        np.testing.assert_allclose(belief.mean, true_position, atol=0.6)
        assert belief.det_sigma < 0.1

    def test_tracks_moving_robot(self):
        rng = np.random.default_rng(4)
        ekf = self.make_ekf()
        truth = np.array([10.0, 10.0])
        for _ in range(80):
            v = np.array([0.5, 0.2])
            truth = truth + v + rng.normal(0, 0.4, 2)
            ekf.predict(v)
            ekf.update(0, ekf.observe(truth, 0, rng))
            ekf.update(2, ekf.observe(truth, 2, rng))
        assert np.linalg.norm(ekf.belief().mean - truth) < 2.5

    def test_update_shrinks_uncertainty(self):
        rng = np.random.default_rng(5)
        ekf = self.make_ekf()
        ekf.predict(np.zeros(2))
        before = ekf.belief().det_sigma
        ekf.update(0, ekf.observe(np.array([10.0, 10.0]), 0, rng))
        assert ekf.belief().det_sigma < before

    def test_belief_feeds_prq(self):
        from repro.core.database import SpatialDatabase
        from repro.integrate.exact import ExactIntegrator

        rng = np.random.default_rng(6)
        ekf = self.make_ekf()
        for _ in range(10):
            ekf.predict(np.zeros(2))
            ekf.update(0, ekf.observe(np.array([10.0, 10.0]), 0, rng))
        db = SpatialDatabase(rng.uniform(0, 30, size=(400, 2)))
        result = db.probabilistic_range_query(
            ekf.belief(), delta=5.0, theta=0.2, integrator=ExactIntegrator()
        )
        assert result.stats.results == len(result.ids)

    def test_validation(self):
        from repro.errors import ReproError
        from repro.robotics.ekf import RangeBearingEKF

        with pytest.raises(ReproError):
            RangeBearingEKF(np.zeros((0, 2)))
        with pytest.raises(ReproError):
            RangeBearingEKF(np.zeros((3, 3)))
        with pytest.raises(ReproError):
            RangeBearingEKF(np.zeros((1, 2)), range_noise_std=0.0)
        ekf = self.make_ekf()
        with pytest.raises(ReproError):
            ekf.update(99, np.zeros(2))
        with pytest.raises(ReproError):
            ekf.update(0, np.zeros(3))
        with pytest.raises(ReproError):
            ekf.predict(np.zeros(3))
        fresh = type(ekf)(np.array([[0.0, 0.0]]))
        with pytest.raises(ReproError):
            fresh.predict(np.zeros(2))

    def test_on_landmark_rejected(self):
        ekf = self.make_ekf()
        ekf.initialize([0.0, 0.0], np.eye(2))  # exactly on landmark 0
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ekf.update(0, np.array([1.0, 0.0]))

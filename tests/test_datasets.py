"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.corel import average_range_count, color_moments_like
from repro.datasets.roadnet import long_beach_like
from repro.datasets.synthetic import clustered_points, uniform_points
from repro.errors import ReproError


class TestUniformPoints:
    def test_shape_and_bounds(self):
        pts = uniform_points(500, 3, low=10.0, high=20.0, seed=1)
        assert pts.shape == (500, 3)
        assert pts.min() >= 10.0 and pts.max() <= 20.0

    def test_deterministic(self):
        np.testing.assert_array_equal(
            uniform_points(50, 2, seed=7), uniform_points(50, 2, seed=7)
        )

    def test_seed_changes_data(self):
        assert not np.array_equal(
            uniform_points(50, 2, seed=1), uniform_points(50, 2, seed=2)
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            uniform_points(-1, 2)
        with pytest.raises(ReproError):
            uniform_points(10, 2, low=5.0, high=5.0)


class TestClusteredPoints:
    def test_shape_and_clipping(self):
        pts = clustered_points(1000, 2, seed=3)
        assert pts.shape == (1000, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1000.0

    def test_is_actually_clustered(self):
        # Clustered data has far higher local density variance than uniform.
        clustered = clustered_points(3000, 2, n_clusters=10, spread=15.0, seed=4)
        uniform = uniform_points(3000, 2, seed=4)

        def density_variance(pts):
            hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=20)
            return hist.var()

        assert density_variance(clustered) > 5 * density_variance(uniform)

    def test_validation(self):
        with pytest.raises(ReproError):
            clustered_points(10, 2, n_clusters=0)
        with pytest.raises(ReproError):
            clustered_points(10, 2, spread=0.0)


class TestRoadNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return long_beach_like(20_000, seed=1)

    def test_exact_cardinality(self, network):
        assert network.size == 20_000
        assert network.midpoints.shape == (20_000, 2)

    def test_normalized_to_extent(self, network):
        np.testing.assert_allclose(network.midpoints.min(axis=0), [0, 0], atol=1e-9)
        np.testing.assert_allclose(
            network.midpoints.max(axis=0), [1000, 1000], atol=1e-9
        )

    def test_deterministic(self):
        a = long_beach_like(5_000, seed=2)
        b = long_beach_like(5_000, seed=2)
        np.testing.assert_array_equal(a.midpoints, b.midpoints)

    def test_skewed_density(self, network):
        hist, _, _ = np.histogram2d(
            network.midpoints[:, 0], network.midpoints[:, 1], bins=20
        )
        uniform_expectation = network.size / 400
        # Road data concentrates in towns: peak cells are far above uniform.
        assert hist.max() > 2 * uniform_expectation
        assert (hist == 0).sum() > 0  # and some cells are empty

    def test_default_size_matches_paper(self):
        # The default must be TIGER Long Beach's 50,747 (checked cheaply via
        # the module constant to avoid regenerating the full set here).
        from repro.datasets.roadnet import LONG_BEACH_SIZE

        assert LONG_BEACH_SIZE == 50_747

    def test_too_large_request_rejected(self):
        with pytest.raises(ReproError):
            long_beach_like(10**7, seed=0, n_towns=4)

    def test_validation(self):
        with pytest.raises(ReproError):
            long_beach_like(0)
        with pytest.raises(ReproError):
            long_beach_like(100, n_towns=1)


class TestCorel:
    @pytest.fixture(scope="class")
    def data(self):
        return color_moments_like(15_000, seed=2)

    def test_shape(self, data):
        assert data.shape == (15_000, 9)

    def test_calibration_close_to_paper(self, data):
        count = average_range_count(data, 0.7, n_queries=400, seed=10)
        # The paper reports 15.3 on the real data; sampling noise on the
        # synthetic set is heavy-tailed, so accept a generous band.
        assert 5.0 < count < 45.0

    def test_deterministic(self):
        a = color_moments_like(2_000, seed=5, calibration_queries=100)
        b = color_moments_like(2_000, seed=5, calibration_queries=100)
        np.testing.assert_array_equal(a, b)

    def test_clustered_not_single_gaussian(self, data):
        # Destroying cross-dimension correlations (shuffling each column
        # independently) must push nearest neighbours measurably farther
        # away if the data is genuinely clustered.
        rng = np.random.default_rng(0)
        subset = data[rng.choice(data.shape[0], 1500, replace=False)]
        shuffled = subset.copy()
        for d in range(shuffled.shape[1]):
            rng.shuffle(shuffled[:, d])

        def mean_nn_distance(pts):
            d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            return float(np.sqrt(d2.min(axis=1)).mean())

        assert mean_nn_distance(subset) < 0.8 * mean_nn_distance(shuffled)

    def test_average_range_count_includes_self(self):
        pts = np.zeros((5, 9))
        assert average_range_count(pts, 0.1, n_queries=5, seed=0) == 5.0

    def test_validation(self):
        with pytest.raises(ReproError):
            color_moments_like(50)
        with pytest.raises(ReproError):
            average_range_count(np.empty((0, 9)), 0.7)

"""Seeded reproducibility of the Monte-Carlo estimates.

The batch path memoizes per-shape preparation (spectral decompositions,
r_theta and alpha lookups) behind LRU caches.  Those caches are pure
value caches: whether a call hits or misses must never change which
random numbers a query's integrator consumes.  These tests pin that down
by comparing fresh-engine runs against each other and against runs with
deliberately cleared caches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workload import WorkloadGenerator
from repro.catalog.bf import _alpha_for_mass_cached
from repro.catalog.rtheta import _r_theta_cached
from repro.core.database import SpatialDatabase
from repro.core.engine import BatchResult
from repro.geometry.transforms import _spectral_decomposition_cached
from repro.integrate.sequential import SequentialImportanceSampler


@pytest.fixture(scope="module")
def database() -> SpatialDatabase:
    rng = np.random.default_rng(42)
    return SpatialDatabase(rng.random((3000, 2)) * 800.0)


@pytest.fixture(scope="module")
def workload(database):
    # quantize= gives repeated (delta, theta) shapes, so the LRU caches
    # actually get hits within the batch.
    return WorkloadGenerator(database, seed=13, quantize=4).batch(10)


def adaptive_factory(query, seed):
    return SequentialImportanceSampler(
        query.theta, max_samples=30_000, seed=seed, share_batches=True
    )


def run_fresh(database, workload, *, workers: int = 1) -> BatchResult:
    """A brand-new engine over the same workload."""
    return database.engine().run_batch(
        workload, workers=workers, base_seed=77, integrator_factory=adaptive_factory
    )


def fingerprint(batch: BatchResult):
    return (
        batch.ids,
        batch.stats.integration_samples,
        batch.stats.integrations,
        tuple(sorted(batch.stats.rejected_by_filter.items())),
    )


def clear_prep_caches() -> None:
    _spectral_decomposition_cached.cache_clear()
    _r_theta_cached.cache_clear()
    _alpha_for_mass_cached.cache_clear()


def test_same_seed_two_fresh_engines(database, workload):
    assert fingerprint(run_fresh(database, workload)) == fingerprint(
        run_fresh(database, workload)
    )


def test_cold_and_warm_caches_agree(database, workload):
    """A cache hit must not perturb the RNG streams.

    First run starts from cleared caches (all misses), second run reuses
    the now-warm caches (all hits).  Any cache that consumed or reseeded
    randomness on miss would break this equality.
    """
    clear_prep_caches()
    cold = run_fresh(database, workload)
    assert _spectral_decomposition_cached.cache_info().currsize > 0
    assert _r_theta_cached.cache_info().currsize > 0
    warm = run_fresh(database, workload)
    assert fingerprint(cold) == fingerprint(warm)


def test_cache_hits_actually_happen(database, workload):
    """The quantized workload reuses shapes, so the LRUs must hit."""
    clear_prep_caches()
    run_fresh(database, workload)
    assert _r_theta_cached.cache_info().hits > 0
    assert _spectral_decomposition_cached.cache_info().hits > 0


def test_worker_count_does_not_change_estimates(database, workload):
    baseline = fingerprint(run_fresh(database, workload, workers=1))
    for workers in (2, 3):
        assert fingerprint(run_fresh(database, workload, workers=workers)) == (
            baseline
        )


def test_different_seed_changes_sampling(database, workload):
    """Sanity: the seed actually reaches the integrators (the adaptive
    sampler draws different sample counts under a different base seed)."""
    a = database.engine().run_batch(
        workload, base_seed=1, integrator_factory=adaptive_factory
    )
    b = database.engine().run_batch(
        workload, base_seed=2, integrator_factory=adaptive_factory
    )
    assert a.stats.integration_samples != b.stats.integration_samples

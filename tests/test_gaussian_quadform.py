"""Tests for the exact quadratic-form CDFs (Imhof and Ruben)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import GeometryError, IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import (
    GaussianQuadraticForm,
    chi2_sandwich_bounds,
    imhof_cdf,
    qualification_probability_exact,
    ruben_cdf,
)
from tests.conftest import random_spd


def _form(weights, dofs=None, ncs=None) -> GaussianQuadraticForm:
    w = np.asarray(weights, dtype=float)
    return GaussianQuadraticForm(
        w,
        np.ones_like(w) if dofs is None else np.asarray(dofs, float),
        np.zeros_like(w) if ncs is None else np.asarray(ncs, float),
    )


class TestFormConstruction:
    def test_moments(self):
        form = _form([2.0, 3.0], ncs=[1.0, 0.5])
        assert form.mean() == pytest.approx(2 * (1 + 1.0) + 3 * (1 + 0.5))
        assert form.variance() == pytest.approx(2 * (4 * 3.0 + 9 * 2.0))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GeometryError):
            _form([1.0, 0.0])

    def test_rejects_negative_noncentrality(self):
        with pytest.raises(GeometryError):
            _form([1.0], ncs=[-0.5])

    def test_rejects_fractional_dof(self):
        with pytest.raises(GeometryError):
            _form([1.0], dofs=[1.5])

    def test_squared_distance_form(self, paper_gaussian):
        o = np.array([510.0, 490.0])
        form = GaussianQuadraticForm.squared_distance(paper_gaussian, o)
        # E||x - o||^2 = ||mu||^2 + tr(Sigma)
        mu = paper_gaussian.mean - o
        expected = float(mu @ mu + np.trace(paper_gaussian.sigma))
        assert form.mean() == pytest.approx(expected, rel=1e-10)

    def test_sample_moments(self, rng):
        form = _form([1.0, 4.0], ncs=[2.0, 0.0])
        draws = form.sample(200_000, rng)
        assert draws.mean() == pytest.approx(form.mean(), rel=0.02)
        assert draws.var() == pytest.approx(form.variance(), rel=0.05)


class TestAgainstClosedForms:
    def test_central_chi2_single_weight(self):
        # Q = 2 * chi2_3: CDF known exactly.
        form = _form([2.0, 2.0, 2.0])
        for x in (0.5, 2.0, 6.0, 20.0):
            expected = stats.chi2.cdf(x / 2.0, 3)
            assert imhof_cdf(form, x) == pytest.approx(expected, abs=1e-7)
            assert ruben_cdf(form, x) == pytest.approx(expected, abs=1e-10)

    def test_noncentral_chi2_single_weight(self):
        form = _form([1.5, 1.5], ncs=[2.0, 1.0])
        for x in (1.0, 5.0, 15.0):
            expected = stats.ncx2.cdf(x / 1.5, 2, 3.0)
            assert imhof_cdf(form, x) == pytest.approx(expected, abs=1e-7)
            assert ruben_cdf(form, x) == pytest.approx(expected, abs=1e-9)

    def test_exponential_case_d2(self):
        # Q = chi2_2 = Exp(1/2): P(Q <= x) = 1 - exp(-x/2).
        form = _form([1.0, 1.0])
        for x in (0.1, 1.0, 4.0):
            expected = 1.0 - np.exp(-x / 2.0)
            assert ruben_cdf(form, x) == pytest.approx(expected, abs=1e-12)


class TestImhofVsRuben:
    @given(
        st.lists(st.floats(0.2, 30.0), min_size=1, max_size=6),
        st.lists(st.floats(0.0, 8.0), min_size=1, max_size=6),
        st.floats(0.1, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_agreement(self, weights, ncs, x_scale):
        n = min(len(weights), len(ncs))
        form = _form(weights[:n], ncs=ncs[:n])
        x = x_scale * form.mean()
        assert imhof_cdf(form, x) == pytest.approx(ruben_cdf(form, x), abs=2e-6)

    def test_agreement_against_simulation(self, rng):
        form = _form([5.0, 1.0, 0.3], ncs=[1.0, 4.0, 0.0])
        draws = form.sample(400_000, rng)
        for x in np.quantile(draws, [0.1, 0.5, 0.9]):
            empirical = np.mean(draws <= x)
            assert imhof_cdf(form, float(x)) == pytest.approx(empirical, abs=0.005)


class TestEdgeBehaviour:
    def test_negative_threshold_is_zero(self):
        form = _form([1.0])
        assert imhof_cdf(form, -1.0) == 0.0
        assert ruben_cdf(form, -1.0) == 0.0

    def test_zero_threshold(self):
        form = _form([1.0])
        assert ruben_cdf(form, 0.0) == 0.0

    def test_huge_threshold_is_one(self):
        form = _form([1.0, 2.0], ncs=[1.0, 1.0])
        assert imhof_cdf(form, 1e4) == pytest.approx(1.0, abs=1e-8)
        assert ruben_cdf(form, 1e4) == pytest.approx(1.0, abs=1e-10)

    def test_ruben_raises_on_extreme_noncentrality(self):
        form = _form([1.0, 1.0], ncs=[2000.0, 2000.0])
        with pytest.raises(IntegrationError):
            ruben_cdf(form, 100.0)

    def test_sandwich_bounds_contain_truth(self):
        form = _form([5.0, 1.0], ncs=[2.0, 1.0])
        for x in (1.0, 5.0, 20.0, 60.0):
            lower, upper = chi2_sandwich_bounds(form, x)
            truth = imhof_cdf(form, x)
            assert lower - 1e-9 <= truth <= upper + 1e-9


class TestQualificationProbability:
    def test_methods_agree(self, paper_gaussian):
        for point in ([510.0, 490.0], [500.0, 500.0], [540.0, 520.0]):
            p_i = qualification_probability_exact(
                paper_gaussian, np.array(point), 25.0, method="imhof"
            )
            p_r = qualification_probability_exact(
                paper_gaussian, np.array(point), 25.0, method="ruben"
            )
            assert p_i == pytest.approx(p_r, abs=1e-6)

    def test_against_monte_carlo(self, rng, paper_gaussian):
        point = np.array([515.0, 495.0])
        exact = qualification_probability_exact(paper_gaussian, point, 25.0)
        samples = paper_gaussian.sample(400_000, rng)
        frac = np.mean(np.sum((samples - point) ** 2, axis=1) <= 625.0)
        assert exact == pytest.approx(frac, abs=0.004)

    def test_far_point_is_zero(self, paper_gaussian):
        # The sandwich shortcut must kick in and return ~0 without error in
        # either method.
        far = np.array([5000.0, 5000.0])
        assert qualification_probability_exact(paper_gaussian, far, 25.0) < 1e-14
        assert (
            qualification_probability_exact(
                paper_gaussian, far, 25.0, method="ruben"
            )
            < 1e-14
        )

    def test_ruben_falls_back_to_imhof(self):
        # Moderately large noncentrality that underflows Ruben's a0 but has
        # a non-negligible probability: the fallback must engage silently.
        g = Gaussian([0.0, 0.0], np.diag([1.0, 1.0]))
        point = np.array([40.0, 0.0])
        delta = 42.0  # ball reaches past the mean: substantial probability
        p = qualification_probability_exact(g, point, delta, method="ruben")
        p_imhof = qualification_probability_exact(g, point, delta, method="imhof")
        assert p == pytest.approx(p_imhof, abs=1e-9)
        assert 0.5 < p < 1.0

    def test_zero_delta(self, paper_gaussian):
        assert (
            qualification_probability_exact(paper_gaussian, np.zeros(2), 0.0) == 0.0
        )

    def test_rejects_unknown_method(self, paper_gaussian):
        with pytest.raises(GeometryError):
            qualification_probability_exact(
                paper_gaussian, np.zeros(2), 1.0, method="magic"
            )

    def test_high_dimensional_consistency(self, rng):
        sigma = random_spd(rng, 9)
        g = Gaussian(rng.standard_normal(9), sigma)
        point = g.mean + rng.standard_normal(9)
        delta = float(np.sqrt(np.trace(sigma)))
        p_i = qualification_probability_exact(g, point, delta, method="imhof")
        p_r = qualification_probability_exact(g, point, delta, method="ruben")
        assert p_i == pytest.approx(p_r, abs=1e-6)
        samples = g.sample(200_000, rng)
        frac = np.mean(np.sum((samples - point) ** 2, axis=1) <= delta**2)
        assert p_i == pytest.approx(frac, abs=0.005)

    def test_probability_decreases_with_distance(self, paper_gaussian):
        probs = [
            qualification_probability_exact(
                paper_gaussian, paper_gaussian.mean + np.array([d, 0.0]), 25.0
            )
            for d in (0.0, 20.0, 40.0, 80.0)
        ]
        assert all(a > b for a, b in zip(probs, probs[1:]))

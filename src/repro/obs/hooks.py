"""Profiling hooks: observe span lifecycles without patching the engine.

A :class:`ProfilingHook` is anything with ``on_span_start(span)`` and
``on_span_end(span)``; attach instances via
``Observability(hooks=[...])`` (or directly to a :class:`Tracer`) and the
tracer calls them around every span.  Hooks run on the thread that owns
the span, so a hook wrapping a thread-local profiler composes naturally
with ``run_batch``.

:class:`CProfileHook` is the batteries-included example: it runs
:mod:`cProfile` over every span whose name matches a prefix, which is how
you get a function-level profile of, say, only Phase 3 without touching
engine code::

    hook = CProfileHook("phase:integrate")
    obs = Observability(trace=True, hooks=[hook])
    engine = db.engine(strategies="all", obs=obs)
    engine.execute(query)
    hook.print_stats()          # cProfile output for Phase 3 only
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Span

__all__ = ["ProfilingHook", "CProfileHook"]


@runtime_checkable
class ProfilingHook(Protocol):
    """The span-lifecycle protocol custom sinks implement."""

    def on_span_start(self, span: "Span") -> None:
        """Called when a span opens (before the timed body runs)."""

    def on_span_end(self, span: "Span") -> None:
        """Called when a span closes (timings and payload are final)."""


class CProfileHook:
    """Profile every span whose name starts with ``span_prefix``.

    Uses one :class:`cProfile.Profile` per thread (cProfile is not
    re-entrant across threads) and accumulates all matching spans into
    one set of statistics.  ``nested=False`` (default) ignores matching
    spans opened while a profiled span is already active on the same
    thread, so ``span_prefix=""`` profiles whole query trees without
    double-enabling.
    """

    def __init__(self, span_prefix: str = "", *, nested: bool = False):
        import threading

        self.span_prefix = span_prefix
        self.nested = nested
        self._local = threading.local()
        self._profiles: list = []
        self._lock = threading.Lock()

    def _state(self):
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {"profile": None, "depth": 0}
        return state

    def on_span_start(self, span: "Span") -> None:
        if not span.name.startswith(self.span_prefix):
            return
        state = self._state()
        state["depth"] += 1
        if state["depth"] > 1 and not self.nested:
            return
        import cProfile

        profile = cProfile.Profile()
        with self._lock:
            self._profiles.append(profile)
        state["profile"] = profile
        profile.enable()

    def on_span_end(self, span: "Span") -> None:
        if not span.name.startswith(self.span_prefix):
            return
        state = self._state()
        if state["depth"] == 0:
            return
        state["depth"] -= 1
        if state["depth"] == 0 and state["profile"] is not None:
            state["profile"].disable()
            state["profile"] = None

    def stats(self, sort: str = "cumulative"):
        """A merged :class:`pstats.Stats` over every profiled span."""
        import io
        import pstats

        if not self._profiles:
            raise ValueError("no spans were profiled")
        stats = pstats.Stats(self._profiles[0], stream=io.StringIO())
        for profile in self._profiles[1:]:
            stats.add(profile)
        return stats.sort_stats(sort)

    def print_stats(self, limit: int = 20, sort: str = "cumulative") -> None:
        import pstats
        import sys

        stats = self.stats(sort)
        stats.stream = sys.stdout  # type: ignore[attr-defined]
        pstats.Stats.print_stats(stats, limit)

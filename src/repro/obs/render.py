"""Render JSON-lines traces for humans — the engine behind ``repro trace``.

:func:`render_trace` prints the span tree (children indented under their
parents, input order preserved) with wall/CPU milliseconds and the
counter payload; :func:`summarize_trace` aggregates spans by name into
a per-name table (count, total/mean wall time) — the quickest way to see
which phase dominates a workload, mirroring the paper's own finding that
integration is ≥ 97 % of query time (§VI).
"""

from __future__ import annotations

from repro.obs.tracer import Span

__all__ = ["render_trace", "summarize_trace"]


def _format_attributes(attributes: dict) -> str:
    if not attributes:
        return ""
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render_trace(
    spans: list[Span], *, min_ms: float = 0.0, max_spans: int | None = None
) -> str:
    """The span forest as an indented text tree.

    ``min_ms`` hides spans (and their subtrees) faster than the cutoff;
    ``max_spans`` truncates enormous traces with an ellipsis line.
    """
    by_parent: dict[int | None, list[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        # Orphans (parent not in the file) render as roots.
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []
    truncated = False

    def emit(span: Span, depth: int) -> None:
        nonlocal truncated
        if span.wall_seconds * 1e3 < min_ms:
            return
        if max_spans is not None and len(lines) >= max_spans:
            truncated = True
            return
        lines.append(
            f"{'  ' * depth}{span.name}  "
            f"wall={span.wall_seconds * 1e3:.2f}ms "
            f"cpu={span.cpu_seconds * 1e3:.2f}ms"
            f"{_format_attributes(span.attributes)}"
        )
        for child in by_parent.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in by_parent.get(None, ()):
        emit(root, 0)
    if truncated:
        lines.append(f"... ({len(spans)} spans total, output truncated)")
    if not lines:
        return "(no spans)"
    return "\n".join(lines)


def summarize_trace(spans: list[Span]) -> str:
    """Aggregate spans by name: count, total and mean wall milliseconds."""
    totals: dict[str, tuple[int, float, float]] = {}
    for span in spans:
        count, wall, cpu = totals.get(span.name, (0, 0.0, 0.0))
        totals[span.name] = (
            count + 1,
            wall + span.wall_seconds,
            cpu + span.cpu_seconds,
        )
    if not totals:
        return "(no spans)"
    name_width = max(len(name) for name in totals)
    header = (
        f"{'span':<{name_width}}  {'count':>6}  {'total ms':>10}  "
        f"{'mean ms':>9}  {'cpu ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, (count, wall, cpu) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        lines.append(
            f"{name:<{name_width}}  {count:>6}  {wall * 1e3:>10.2f}  "
            f"{wall * 1e3 / count:>9.2f}  {cpu * 1e3:>10.2f}"
        )
    return "\n".join(lines)

"""Deterministic, zero-dependency metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named metrics and renders them as a
Prometheus-style text exposition (``# TYPE`` headers, ``name{label="v"}
value`` sample lines).  Three properties make it safe to wire through the
query engine's hot paths:

- **Deterministic output.**  Histograms use *fixed* bucket edges supplied
  at registration (never adaptive ones), and ``render()`` sorts metric
  families by name and samples by label values, so two runs over the same
  workload produce byte-identical expositions (timing histograms aside).
- **Lock-free batch merging.**  ``run_batch`` gives every query its own
  child registry and folds them back with :meth:`MetricsRegistry.merge`
  in *input order* after the pool drains — no locks on the hot path, no
  dependence on completion order.
- **No RNG, no side effects.**  Recording a sample touches plain Python
  floats and dicts only, so enabling metrics cannot perturb seeded
  sampling streams — engine results stay bit-identical on or off.

Example — the exposition format::

    >>> registry = MetricsRegistry()
    >>> queries = registry.counter(
    ...     "repro_queries_total", "Queries executed")
    >>> queries.inc()
    >>> rejections = registry.counter(
    ...     "repro_filter_rejections_total",
    ...     "Phase-2 rejections by strategy", labelnames=("strategy",))
    >>> rejections.inc(3, strategy="RR")
    >>> rejections.inc(2, strategy="BF")
    >>> cands = registry.histogram(
    ...     "repro_phase3_candidates", "Candidates reaching Phase 3",
    ...     buckets=(1, 10, 100))
    >>> cands.observe(7)
    >>> print(registry.render())
    # TYPE repro_filter_rejections_total counter
    repro_filter_rejections_total{strategy="BF"} 2
    repro_filter_rejections_total{strategy="RR"} 3
    # TYPE repro_phase3_candidates histogram
    repro_phase3_candidates_bucket{le="1"} 0
    repro_phase3_candidates_bucket{le="10"} 1
    repro_phase3_candidates_bucket{le="100"} 1
    repro_phase3_candidates_bucket{le="+Inf"} 1
    repro_phase3_candidates_sum 7
    repro_phase3_candidates_count 1
    # TYPE repro_queries_total counter
    repro_queries_total 1

Merging child registries (how ``run_batch`` aggregates workers)::

    >>> child = MetricsRegistry()
    >>> child.counter("repro_queries_total", "Queries executed").inc(4)
    >>> registry.merge(child)
    >>> registry.get_sample("repro_queries_total")
    5.0
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "ERROR_BUCKETS",
    "QUEUE_BUCKETS",
]

#: Fixed bucket edges (seconds) for every duration histogram in the
#: telemetry contract — spans ~0.1 ms .. 10 s, log-ish spacing.
TIME_BUCKETS: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixed bucket edges for candidate/result-count histograms.
COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

#: Fixed bucket edges for signed prediction errors (predicted − actual
#: Phase-3 candidates): symmetric around zero so under- and
#: over-prediction are distinguishable from the exposition alone.
ERROR_BUCKETS: tuple[float, ...] = (
    -1000.0, -100.0, -10.0, -1.0, 0.0, 1.0, 10.0, 100.0, 1000.0,
)

#: Fixed bucket edges for the serving layer's small-cardinality
#: distributions (queue depth at drain time, coalesced micro-batch
#: sizes): powers of two so doubling the batch window shifts mass by
#: exactly one bucket.
QUEUE_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
)


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ReproError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{value}"' for name, value in zip(labelnames, key)
    )
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    name: str
    help: str
    labelnames: tuple[str, ...] = ()
    _samples: dict[tuple[str, ...], float] = field(default_factory=dict)

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(self.labelnames, labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(self.labelnames, labels), 0.0)

    def merge(self, other: "Counter") -> None:
        for key, value in other._samples.items():
            self._samples[key] = self._samples.get(key, 0.0) + value

    def render(self) -> list[str]:
        lines = [f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._samples):
            lines.append(
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_format_value(self._samples[key])}"
            )
        return lines


@dataclass
class Gauge(Counter):
    """A value that can go up and down; ``merge`` keeps the maximum."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(self.labelnames, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def merge(self, other: "Counter") -> None:
        # Max is the only order-independent fold that is also meaningful
        # for the gauges in the contract (cache sizes, worker counts).
        for key, value in other._samples.items():
            self._samples[key] = max(self._samples.get(key, value), value)


@dataclass
class Histogram:
    """Cumulative-bucket histogram over *fixed* edges.

    The edges are part of the telemetry contract: they are supplied at
    registration and never adapt to the data, so expositions from
    different runs and different workers line up bucket for bucket.
    """

    name: str
    help: str
    buckets: tuple[float, ...]
    labelnames: tuple[str, ...] = ()
    _counts: dict[tuple[str, ...], list[int]] = field(default_factory=dict)
    _sums: dict[tuple[str, ...], float] = field(default_factory=dict)
    _totals: dict[tuple[str, ...], int] = field(default_factory=dict)

    kind = "histogram"

    def __post_init__(self) -> None:
        edges = tuple(float(edge) for edge in self.buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ReproError(
                f"histogram {self.name} needs strictly increasing bucket "
                f"edges, got {self.buckets}"
            )
        self.buckets = edges

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(self.labelnames, labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(self.labelnames, labels), 0.0)

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ReproError(
                f"histogram {self.name} bucket edges differ: "
                f"{self.buckets} vs {other.buckets}"
            )
        for key, counts in other._counts.items():
            mine = self._counts.setdefault(key, [0] * len(self.buckets))
            for i, c in enumerate(counts):
                mine[i] += c
        for key, value in other._sums.items():
            self._sums[key] = self._sums.get(key, 0.0) + value
        for key, total in other._totals.items():
            self._totals[key] = self._totals.get(key, 0) + total

    def render(self) -> list[str]:
        lines = [f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._counts):
            labels = _render_labels(self.labelnames, key)
            for edge, cumulative in zip(self.buckets, self._counts[key]):
                le = _format_value(edge)
                if labels:
                    bucket_labels = labels[:-1] + f',le="{le}"}}'
                else:
                    bucket_labels = f'{{le="{le}"}}'
                lines.append(
                    f"{self.name}_bucket{bucket_labels} {cumulative}"
                )
            if labels:
                inf_labels = labels[:-1] + ',le="+Inf"}'
            else:
                inf_labels = '{le="+Inf"}'
            lines.append(
                f"{self.name}_bucket{inf_labels} {self._totals[key]}"
            )
            lines.append(
                f"{self.name}_sum{labels} "
                f"{_format_value(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{labels} {self._totals[key]}")
        return lines


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Registration is idempotent: asking for an existing name returns the
    existing metric (with a type/label/bucket consistency check), so the
    engine can declare its metrics lazily from several call sites.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(
        self, name: str, help: str = "", *, labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", *, labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: tuple[float, ...],
        labelnames: tuple[str, ...] = (),
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if (
                not isinstance(existing, Histogram)
                or existing.labelnames != tuple(labelnames)
                or existing.buckets != tuple(float(b) for b in buckets)
            ):
                raise ReproError(
                    f"metric {name!r} already registered with a different "
                    "type, labels or bucket edges"
                )
            return existing
        metric = Histogram(
            name, help, buckets=tuple(buckets), labelnames=tuple(labelnames)
        )
        self._metrics[name] = metric
        return metric

    def _register(self, cls, name: str, help: str, *, labelnames):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(
                labelnames
            ):
                raise ReproError(
                    f"metric {name!r} already registered with a different "
                    "type or labels"
                )
            return existing
        metric = cls(name, help, labelnames=tuple(labelnames))
        self._metrics[name] = metric
        return metric

    def get_sample(self, name: str, **labels: str) -> float:
        """One sample's current value (counter/gauge), for tests and docs."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise ReproError(
                f"{name} is a histogram; read .count()/.sum() instead"
            )
        return metric.value(**labels)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's samples into this one.

        Counters and histograms add; gauges keep the maximum.  Metrics
        present only in ``other`` are adopted wholesale.  ``run_batch``
        calls this once per query child, in input order, after the worker
        pool has drained — which is what keeps batch metrics lock-free
        *and* deterministic.
        """
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = metric
            else:
                mine.merge(metric)

    def render(self) -> str:
        """The Prometheus-style text exposition, sorted by metric name."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

"""repro.obs — zero-dependency observability for the query pipeline.

One :class:`Observability` object bundles the three instruments and is
accepted by every execution entry point (``QueryEngine(..., obs=…)``,
``SpatialDatabase.engine(obs=…)``, ``run_workload(obs=…)``, the CLI's
``--trace-out``/``--metrics-out`` flags):

- :class:`Tracer` — hierarchical spans (batch → query → phase →
  integrator tier) with wall/CPU time and counter payloads, exported as
  JSON-lines and rendered by ``repro trace``;
- :class:`MetricsRegistry` — deterministic counters, gauges and
  fixed-bucket histograms with a Prometheus-style text exposition;
- :class:`ProfilingHook` — a start/end callback protocol
  (:class:`CProfileHook` ships as the reference implementation) for
  attaching profilers or custom sinks without patching engine code.

The full telemetry contract — every span name, metric name, label and
bucket edge — is documented in ``docs/observability.md``.  Everything here
is off by default and RNG-free: enabling observability never changes
query results (``run_batch`` output is bit-identical with tracing on or
off, for any worker count).

Example — trace one query and read the metrics::

    >>> import numpy as np
    >>> from repro import (
    ...     SpatialDatabase, Gaussian, ProbabilisticRangeQuery, ExactIntegrator,
    ... )
    >>> from repro.obs import Observability
    >>> points = np.random.default_rng(0).random((400, 2)) * 100
    >>> db = SpatialDatabase(points)
    >>> obs = Observability()
    >>> engine = db.engine(strategies="all",
    ...                    integrator=ExactIntegrator(), obs=obs)
    >>> result = engine.execute(ProbabilisticRangeQuery(
    ...     Gaussian([50.0, 50.0], 20.0 * np.eye(2)), 10.0, 0.05))
    >>> sorted({s.name for s in obs.tracer.spans if "phase" in s.name})
    ['phase:filter', 'phase:integrate', 'phase:search']
    >>> obs.metrics.get_sample("repro_queries_total")
    1.0
    >>> obs.metrics.histogram(
    ...     "repro_phase3_candidates", buckets=COUNT_BUCKETS
    ... ).count() == 1
    True
"""

from __future__ import annotations

from repro.obs.hooks import CProfileHook, ProfilingHook
from repro.obs.metrics import (
    COUNT_BUCKETS,
    ERROR_BUCKETS,
    QUEUE_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ProfilingHook",
    "CProfileHook",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "ERROR_BUCKETS",
    "QUEUE_BUCKETS",
]


class _NullSpan:
    """No-op stand-in returned by :meth:`Observability.span` when tracing
    is disabled, so instrumented code never branches twice."""

    __slots__ = ()

    #: Mirrors the real handle's ``.span`` payload (used as an absorb
    #: re-rooting parent); always ``None`` when tracing is off.
    span = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **attributes) -> None:
        return None


NULL_SPAN = _NullSpan()


class Observability:
    """Tracer + metrics registry + hooks, threaded through the engine.

    Parameters
    ----------
    trace:
        Record spans (default on).  ``obs.tracer`` is ``None`` when off.
    metrics:
        Record metrics (default on).  ``obs.metrics`` is ``None`` when
        off.
    hooks:
        :class:`ProfilingHook` objects notified on every span start/end
        (implies nothing about ``trace``: hooks ride on the tracer, so
        they only fire when tracing is on).
    """

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        hooks=(),
    ):
        self._trace = bool(trace)
        self._metrics_on = bool(metrics)
        self.hooks = list(hooks)
        self.tracer: Tracer | None = (
            Tracer(hooks=self.hooks) if self._trace else None
        )
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if self._metrics_on else None
        )

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a span (a no-op handle when tracing is off)."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **attributes)

    # -- batch plumbing ------------------------------------------------

    def child(self) -> "Observability":
        """A same-configuration instance with empty buffers.

        ``run_batch`` gives each query its own child so workers never
        contend on shared buffers; children are folded back with
        :meth:`absorb` in input order.
        """
        return Observability(
            trace=self._trace, metrics=self._metrics_on, hooks=self.hooks
        )

    def absorb(self, child: "Observability", *, parent: Span | None = None) -> None:
        """Merge a child's spans and metrics into this instance.

        ``parent`` re-roots the child's top-level spans under an open
        span of this tracer (the batch span), keeping one connected tree.
        """
        if self.tracer is not None and child.tracer is not None:
            before = len(self.tracer._spans)
            self.tracer.merge(child.tracer)
            if parent is not None:
                with self.tracer._lock:
                    for span in self.tracer._spans[before:]:
                        if span.parent_id is None:
                            span.parent_id = parent.span_id
        if self.metrics is not None and child.metrics is not None:
            self.metrics.merge(child.metrics)

    # -- the metrics contract ------------------------------------------

    def record_query(self, stats) -> None:
        """Fold one finished query's :class:`repro.core.stats.QueryStats`
        into the registry — the single place the per-query metric names
        of the telemetry contract (``docs/observability.md``) are fed.
        """
        registry = self.metrics
        if registry is None:
            return
        registry.counter(
            "repro_queries_total", "Queries executed"
        ).inc()
        registry.counter(
            "repro_retrieved_total", "Phase-1 candidates retrieved"
        ).inc(stats.retrieved)
        registry.counter(
            "repro_results_total", "Qualifying objects returned"
        ).inc(stats.results)
        registry.counter(
            "repro_accept_free_total",
            "Candidates accepted without integration (BF inner ball)",
        ).inc(stats.accepted_without_integration)
        registry.counter(
            "repro_integration_samples_total",
            "Monte Carlo samples drawn in Phase 3",
        ).inc(stats.integration_samples)
        rejections = registry.counter(
            "repro_filter_rejections_total",
            "Phase-2 rejections by strategy",
            labelnames=("strategy",),
        )
        for strategy, count in stats.rejected_by_filter.items():
            rejections.inc(count, strategy=strategy)
        decisions = registry.counter(
            "repro_phase3_decisions_total",
            "Phase-3 theta-decisions by evaluator method",
            labelnames=("method",),
        )
        for method, count in stats.tier_decisions.items():
            decisions.inc(count, method=method)
        if stats.empty_by_strategy is not None:
            registry.counter(
                "repro_empty_results_total",
                "Queries proven empty before Phase 1",
                labelnames=("strategy",),
            ).inc(strategy=stats.empty_by_strategy)
        registry.histogram(
            "repro_query_seconds",
            "End-to-end query latency",
            buckets=TIME_BUCKETS,
        ).observe(stats.total_seconds)
        phase_hist = registry.histogram(
            "repro_phase_seconds",
            "Per-phase wall time",
            buckets=TIME_BUCKETS,
            labelnames=("phase",),
        )
        for phase, seconds in stats.phase_seconds.items():
            phase_hist.observe(seconds, phase=phase)
        registry.histogram(
            "repro_retrieved_candidates",
            "Phase-1 candidates per query",
            buckets=COUNT_BUCKETS,
        ).observe(stats.retrieved)
        registry.histogram(
            "repro_phase3_candidates",
            "Candidates reaching Phase 3 per query",
            buckets=COUNT_BUCKETS,
        ).observe(stats.integrations)
        if stats.plan_cache_hit is not None:
            registry.counter(
                "repro_planner_plans_total",
                "Planned queries by plan-cache outcome",
                labelnames=("cache",),
            ).inc(cache="hit" if stats.plan_cache_hit else "miss")
        if stats.predicted_integrations is not None:
            registry.histogram(
                "repro_planner_prediction_error",
                "Planner predicted minus actual Phase-3 candidates",
                buckets=ERROR_BUCKETS,
            ).observe(stats.predicted_integrations - stats.integrations)

    def record_batch(self, batch_stats) -> None:
        """Fold one :class:`repro.core.stats.BatchStats` into the registry."""
        registry = self.metrics
        if registry is None:
            return
        registry.counter(
            "repro_batches_total", "run_batch invocations"
        ).inc()
        registry.counter(
            "repro_batch_queries_total", "Queries executed via run_batch"
        ).inc(batch_stats.n_queries)
        registry.gauge(
            "repro_batch_workers", "Worker threads of the largest batch"
        ).set(batch_stats.workers)
        registry.histogram(
            "repro_batch_wall_seconds",
            "End-to-end batch wall time",
            buckets=TIME_BUCKETS,
        ).observe(batch_stats.wall_seconds)

    # -- exporting -----------------------------------------------------

    def export_trace(self, path) -> int:
        """Write the JSON-lines trace; returns the span count."""
        if self.tracer is None:
            raise ValueError("tracing is disabled on this Observability")
        return self.tracer.export_jsonl(path)

    def render_metrics(self) -> str:
        """The Prometheus-style text exposition."""
        if self.metrics is None:
            raise ValueError("metrics are disabled on this Observability")
        return self.metrics.render()

"""Hierarchical span tracing for the query pipeline.

A :class:`Tracer` records :class:`Span` trees — query → phase → integrator
tier — with wall *and* CPU time plus a free-form counter payload, and
exports them as JSON-lines for the ``repro trace`` renderer.  Like the
metrics registry it is deliberately boring: no RNG, no global state, no
threads of its own, so tracing can never change engine results.

Thread model: each span stack is thread-local (the ``run_batch`` worker
pool runs several queries concurrently), but ``run_batch`` normally gives
every query its own child tracer and merges them in input order, so the
exported span list is deterministic up to the recorded durations.

Example — nesting and the JSON-lines export::

    >>> tracer = Tracer()
    >>> with tracer.span("query", theta=0.05):
    ...     with tracer.span("phase:search"):
    ...         pass
    ...     with tracer.span("phase:integrate", candidates=7):
    ...         pass
    >>> [s.name for s in tracer.spans]
    ['phase:search', 'phase:integrate', 'query']
    >>> root = tracer.spans[-1]
    >>> root.parent_id is None and root.attributes["theta"] == 0.05
    True
    >>> tracer.spans[1].attributes
    {'candidates': 7}
    >>> tracer.spans[0].parent_id == root.span_id
    True

Attaching a :class:`~repro.obs.hooks.ProfilingHook`::

    >>> events = []
    >>> class Recorder:
    ...     def on_span_start(self, span):
    ...         events.append(("start", span.name))
    ...     def on_span_end(self, span):
    ...         events.append(("end", span.name))
    >>> tracer = Tracer(hooks=[Recorder()])
    >>> with tracer.span("query"):
    ...     pass
    >>> events
    [('start', 'query'), ('end', 'query')]
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.hooks import ProfilingHook

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed, attributed node of a trace tree.

    ``wall_seconds``/``cpu_seconds`` are filled in when the span closes;
    ``attributes`` holds the counter payload (candidate counts, tier
    decisions, plan choices — whatever the instrumented code attaches).
    """

    name: str
    span_id: int
    parent_id: int | None = None
    #: Wall-clock start relative to the tracer's epoch, seconds.
    start: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    attributes: dict = field(default_factory=dict)

    def annotate(self, **attributes) -> None:
        """Attach (or overwrite) counter payload entries."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        record: dict = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 9),
            "wall_seconds": round(self.wall_seconds, 9),
            "cpu_seconds": round(self.cpu_seconds, 9),
        }
        if self.attributes:
            record["attributes"] = self.attributes
        return record


class _SpanHandle:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_cpu_start")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._cpu_start = 0.0

    def annotate(self, **attributes) -> None:
        self.span.annotate(**attributes)

    def __enter__(self) -> "_SpanHandle":
        self._cpu_start = time.process_time()
        self.span.start = time.perf_counter() - self._tracer._epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self.span
        span.wall_seconds = (
            time.perf_counter() - self._tracer._epoch - span.start
        )
        span.cpu_seconds = time.process_time() - self._cpu_start
        self._tracer._finish(span)


class Tracer:
    """Collects hierarchical spans; exportable as JSON-lines.

    Spans are appended to the tracer's buffer as they *close* (children
    before parents, as in every post-order trace format); the parent
    linkage reconstructs the tree.  ``hooks`` are
    :class:`~repro.obs.hooks.ProfilingHook` objects notified on every
    span start/end.
    """

    def __init__(self, *, hooks: Sequence["ProfilingHook"] = ()):
        self.hooks = list(hooks)
        self._spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attributes) -> _SpanHandle:
        """Open a span under the current thread's innermost open span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            name, span_id, parent_id=parent_id, attributes=dict(attributes)
        )
        stack.append(span)
        for hook in self.hooks:
            hook.on_span_start(span)
        return _SpanHandle(self, span)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._spans.append(span)
        for hook in self.hooks:
            hook.on_span_end(span)

    # -- reading / exporting -------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every closed span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def merge(self, other: "Tracer") -> None:
        """Adopt a child tracer's spans, re-basing ids to stay unique.

        ``run_batch`` merges per-query child tracers in input order, so
        the combined buffer is deterministic regardless of completion
        order.  The child's relative timestamps are shifted onto this
        tracer's epoch so ``repro trace`` shows one consistent timeline.
        """
        child_spans = other.spans
        if not child_spans:
            return
        with self._lock:
            offset = self._next_id
            self._next_id += max(s.span_id for s in child_spans) + 1
            shift = other._epoch - self._epoch
            for span in child_spans:
                span.span_id += offset
                if span.parent_id is not None:
                    span.parent_id += offset
                span.start += shift
                self._spans.append(span)

    def export_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the span count."""
        spans = self.spans
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return len(spans)

    @staticmethod
    def load_jsonl(path) -> list[Span]:
        """Read spans back from a JSON-lines trace file."""
        spans: list[Span] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                spans.append(
                    Span(
                        name=record["name"],
                        span_id=record["span_id"],
                        parent_id=record.get("parent_id"),
                        start=record.get("start", 0.0),
                        wall_seconds=record.get("wall_seconds", 0.0),
                        cpu_seconds=record.get("cpu_seconds", 0.0),
                        attributes=record.get("attributes", {}),
                    )
                )
        return spans

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

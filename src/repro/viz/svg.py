"""A minimal SVG document builder (standard library only).

Just enough of SVG for the figures this library draws: basic shapes,
polylines/polygons, rotated ellipses, text, and groups.  Coordinates are
taken as-is; figure code is responsible for any world-to-canvas mapping.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

from repro.errors import ReproError

__all__ = ["SvgDocument"]


def _fmt(value: float) -> str:
    """Compact numeric formatting for attribute values."""
    if isinstance(value, float):
        text = f"{value:.3f}".rstrip("0").rstrip(".")
        return text if text not in ("-0", "") else "0"
    return str(value)


class SvgDocument:
    """An SVG scene assembled element by element.

    Parameters
    ----------
    width, height:
        Canvas size in user units (also the viewBox size).
    """

    def __init__(self, width: float, height: float):
        if width <= 0 or height <= 0:
            raise ReproError(f"canvas must be positive, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    # Element helpers
    # ------------------------------------------------------------------

    def _attrs(self, mapping: dict[str, object]) -> str:
        parts = []
        for key, value in mapping.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            rendered = _fmt(value) if isinstance(value, (int, float)) else str(value)
            parts.append(f"{name}={quoteattr(rendered)}")
        return " ".join(parts)

    def raw(self, element: str) -> None:
        """Append a pre-rendered element string."""
        self._elements.append(element)

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        rx: float = 0.0,
        **style: object,
    ) -> None:
        if width < 0 or height < 0:
            raise ReproError(f"rect size must be >= 0, got {width}x{height}")
        attrs = self._attrs(
            {"x": x, "y": y, "width": width, "height": height,
             "rx": rx or None, **style}
        )
        self.raw(f"<rect {attrs}/>")

    def circle(self, cx: float, cy: float, r: float, **style: object) -> None:
        if r < 0:
            raise ReproError(f"circle radius must be >= 0, got {r}")
        self.raw(f"<circle {self._attrs({'cx': cx, 'cy': cy, 'r': r, **style})}/>")

    def ellipse(
        self,
        cx: float,
        cy: float,
        rx: float,
        ry: float,
        *,
        rotation_degrees: float = 0.0,
        **style: object,
    ) -> None:
        if rx < 0 or ry < 0:
            raise ReproError(f"ellipse radii must be >= 0, got {rx}, {ry}")
        transform = (
            f"rotate({_fmt(rotation_degrees)} {_fmt(cx)} {_fmt(cy)})"
            if rotation_degrees
            else None
        )
        attrs = self._attrs(
            {"cx": cx, "cy": cy, "rx": rx, "ry": ry, "transform": transform, **style}
        )
        self.raw(f"<ellipse {attrs}/>")

    def line(
        self, x1: float, y1: float, x2: float, y2: float, **style: object
    ) -> None:
        self.raw(
            f"<line {self._attrs({'x1': x1, 'y1': y1, 'x2': x2, 'y2': y2, **style})}/>"
        )

    def _points_attr(self, points) -> str:
        coords = [f"{_fmt(float(x))},{_fmt(float(y))}" for x, y in points]
        if len(coords) < 2:
            raise ReproError("polyline/polygon needs at least 2 points")
        return " ".join(coords)

    def polyline(self, points, **style: object) -> None:
        attrs = self._attrs({"points": self._points_attr(points), "fill": "none",
                             **style})
        self.raw(f"<polyline {attrs}/>")

    def polygon(self, points, **style: object) -> None:
        attrs = self._attrs({"points": self._points_attr(points), **style})
        self.raw(f"<polygon {attrs}/>")

    def text(
        self, x: float, y: float, content: str, *, font_size: float = 12.0,
        **style: object,
    ) -> None:
        attrs = self._attrs({"x": x, "y": y, "font-size": font_size, **style})
        self.raw(f"<text {attrs}>{escape(content)}</text>")

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_string(self) -> str:
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        body = "\n".join(f"  {element}" for element in self._elements)
        return f"{header}\n{body}\n</svg>\n"

    def save(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.to_string())
        return target

"""Dependency-free SVG rendering of the paper's figures.

The evaluation figures of the paper are geometric: integration regions
(Figs. 13–16) and radial mass curves (Fig. 17).  This package regenerates
them as standalone SVG documents using only the standard library:

- :mod:`repro.viz.svg` — a minimal SVG document builder;
- :mod:`repro.viz.figures` — the figure constructors
  (:func:`render_regions_figure`, :func:`render_radial_figure`,
  :func:`render_road_network`).
"""

from repro.viz.svg import SvgDocument
from repro.viz.figures import (
    render_radial_figure,
    render_regions_figure,
    render_road_network,
)

__all__ = [
    "SvgDocument",
    "render_regions_figure",
    "render_radial_figure",
    "render_road_network",
]

"""SVG constructors for the paper's figures.

- :func:`render_regions_figure` — Figs. 13–16: the θ-region ellipse, the
  RR Minkowski region (a rounded rectangle), the OR oblique box and the
  BF annulus, all to scale for a given γ;
- :func:`render_radial_figure` — Fig. 17: radial mass curves per
  dimension with axes and a legend;
- :func:`render_road_network` — a view of the synthetic Long-Beach-like
  dataset (the paper describes the real one in §V-A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.harness import paper_sigma
from repro.catalog.rtheta import ExactRThetaLookup
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import (
    BoundingFunctionStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
)
from repro.errors import ReproError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import radial_cdf
from repro.viz.svg import SvgDocument

__all__ = [
    "render_regions_figure",
    "render_radial_figure",
    "render_road_network",
]

_SERIES_COLORS = ["#1965b0", "#dc050c", "#4eb265", "#f7a941", "#882e72"]


def render_regions_figure(
    gamma: float,
    *,
    delta: float = 25.0,
    theta: float = 0.01,
    canvas: float = 520.0,
) -> SvgDocument:
    """Figs. 13–16: the three integration regions for one γ, to scale."""
    gaussian = Gaussian([0.0, 0.0], paper_sigma(gamma))
    query = ProbabilisticRangeQuery(gaussian, delta, theta)
    rr = RectilinearStrategy()
    oblique = ObliqueStrategy()
    bf = BoundingFunctionStrategy()
    for strategy in (rr, oblique, bf):
        strategy.prepare(query)

    # World-to-canvas: fit the widest region with a margin.
    extent = max(
        float(np.max(np.abs(rr.search_rect().highs))),
        bf.alpha_upper or 0.0,
        float(np.max(np.linalg.norm(oblique.box.corners(), axis=1))),
    )
    scale = (canvas / 2.0 - 30.0) / extent
    mid = canvas / 2.0

    def to_canvas(x: float, y: float) -> tuple[float, float]:
        return (mid + x * scale, mid - y * scale)

    doc = SvgDocument(canvas, canvas)
    doc.rect(0, 0, canvas, canvas, fill="white")

    # RR region: rounded rectangle (the Minkowski sum of Fig. 4).
    core = rr.region.core
    x0, y0 = to_canvas(core.lows[0] - delta, core.highs[1] + delta)
    doc.rect(
        x0,
        y0,
        (core.extents[0] + 2 * delta) * scale,
        (core.extents[1] + 2 * delta) * scale,
        rx=delta * scale,
        fill="none",
        stroke="#1965b0",
        stroke_width=2,
    )

    # OR region: the oblique box as a polygon (corner order around hull).
    corners = oblique.box.corners()
    hull_order = np.argsort(np.arctan2(corners[:, 1], corners[:, 0]))
    doc.polygon(
        [to_canvas(float(x), float(y)) for x, y in corners[hull_order]],
        fill="none",
        stroke="#4eb265",
        stroke_width=2,
    )

    # BF region: the annulus between alpha_perp and alpha_par.
    if bf.alpha_upper is not None:
        doc.circle(
            mid, mid, bf.alpha_upper * scale,
            fill="none", stroke="#dc050c", stroke_width=2,
        )
    if bf.alpha_lower is not None:
        doc.circle(
            mid, mid, bf.alpha_lower * scale,
            fill="none", stroke="#dc050c", stroke_width=2,
            stroke_dasharray="6 4",
        )

    # The theta-region ellipse itself (shaded, like the paper's figures).
    r_theta = ExactRThetaLookup(2).r_theta(theta)
    semi_axes = r_theta * np.sqrt(gaussian.eigenvalues)
    major = gaussian.basis[:, 0]
    angle = -math.degrees(math.atan2(major[1], major[0]))  # canvas y flips
    doc.ellipse(
        mid,
        mid,
        float(semi_axes[0]) * scale,
        float(semi_axes[1]) * scale,
        rotation_degrees=angle,
        fill="#cccccc",
        fill_opacity=0.6,
        stroke="#555555",
    )

    doc.text(10, 18, f"gamma = {gamma:g}, delta = {delta:g}, theta = {theta:g}",
             font_size=13)
    doc.text(10, canvas - 34, "RR rounded box (blue), OR oblique box (green)",
             font_size=11)
    doc.text(10, canvas - 18,
             "BF annulus (red; dashed = accept radius), theta-region (grey)",
             font_size=11)
    return doc


def render_radial_figure(
    dims=(2, 3, 5, 9, 15),
    *,
    max_radius: float = 6.0,
    width: float = 560.0,
    height: float = 400.0,
) -> SvgDocument:
    """Fig. 17: probability of existence within a radius, one curve per d."""
    if max_radius <= 0:
        raise ReproError(f"max_radius must be > 0, got {max_radius}")
    margin = 48.0
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    doc = SvgDocument(width, height)
    doc.rect(0, 0, width, height, fill="white")
    doc.rect(margin, margin, plot_w, plot_h, fill="none", stroke="#333333")

    def to_canvas(radius: float, mass: float) -> tuple[float, float]:
        return (
            margin + radius / max_radius * plot_w,
            margin + (1.0 - mass) * plot_h,
        )

    # Axis ticks.
    for i in range(7):
        radius = max_radius * i / 6.0
        x, _ = to_canvas(radius, 0.0)
        doc.line(x, margin + plot_h, x, margin + plot_h + 5, stroke="#333333")
        doc.text(x - 8, margin + plot_h + 18, f"{radius:g}", font_size=10)
    for i in range(6):
        mass = i / 5.0
        _, y = to_canvas(0.0, mass)
        doc.line(margin - 5, y, margin, y, stroke="#333333")
        doc.text(margin - 34, y + 4, f"{mass:.1f}", font_size=10)
    doc.text(width / 2 - 18, height - 8, "Radius", font_size=12)
    doc.text(6, margin - 14, "Probability of existence", font_size=12)

    radii = np.linspace(0.0, max_radius, 121)
    for color, dim in zip(_SERIES_COLORS, dims):
        masses = radial_cdf(dim, radii)
        doc.polyline(
            [to_canvas(float(r), float(m)) for r, m in zip(radii, masses)],
            stroke=color,
            stroke_width=2,
        )
        # Legend entry.
        slot = list(dims).index(dim)
        y = margin + 16 + slot * 16
        doc.line(margin + plot_w - 92, y - 4, margin + plot_w - 72, y - 4,
                 stroke=color, stroke_width=2)
        doc.text(margin + plot_w - 66, y, f"{dim}D", font_size=11)
    return doc


def render_road_network(
    midpoints: np.ndarray,
    *,
    canvas: float = 600.0,
    max_points: int = 20_000,
    seed: int = 0,
) -> SvgDocument:
    """A dot plot of the synthetic road dataset (context for §V-A)."""
    pts = np.asarray(midpoints, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ReproError(f"midpoints must be (n, 2), got {pts.shape}")
    if pts.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(pts.shape[0], max_points, replace=False)]
    lo = pts.min(axis=0)
    span = float(np.max(pts.max(axis=0) - lo)) or 1.0
    scale = (canvas - 20.0) / span
    doc = SvgDocument(canvas, canvas)
    doc.rect(0, 0, canvas, canvas, fill="white")
    for x, y in pts:
        cx = 10.0 + (x - lo[0]) * scale
        cy = canvas - 10.0 - (y - lo[1]) * scale
        doc.circle(cx, cy, 0.6, fill="#1965b0", fill_opacity=0.5)
    return doc

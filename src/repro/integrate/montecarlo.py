"""Plain Monte Carlo over the integration sphere.

The "standard Monte Carlo method" the paper contrasts importance sampling
against: draw points uniformly inside ball(o, δ), average the Gaussian
density there, and multiply by the ball volume.  Converges slower than the
hit-ratio estimator whenever the density varies strongly across the ball —
exactly the regime of the paper's queries — which is why the paper (and
the default engine here) prefers importance sampling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.geometry.sphere import Sphere
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["MonteCarloIntegrator"]


class MonteCarloIntegrator(ProbabilityIntegrator):
    """Uniform-in-ball sampling: estimate = volume · mean density."""

    name = "montecarlo"

    def __init__(self, n_samples: int = 100_000, seed: int = 0):
        if n_samples < 2:
            raise IntegrationError(f"n_samples must be >= 2, got {n_samples}")
        self.n_samples = int(n_samples)
        self._rng = np.random.default_rng(seed)

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        if delta == 0.0:
            return IntegrationResult(0.0, 0.0, 0, self.name)
        ball = Sphere(p, delta)
        samples = ball.sample_interior(self.n_samples, self._rng)
        densities = gaussian.pdf(samples)
        volume = ball.volume()
        estimate = float(volume * densities.mean())
        stderr = float(volume * densities.std(ddof=1) / np.sqrt(self.n_samples))
        return IntegrationResult(
            estimate=min(estimate, 1.0),
            stderr=stderr,
            n_samples=self.n_samples,
            method=self.name,
        )

"""Deterministic tiered Phase-3 backend: prune cheap, evaluate rarely.

The paper reports Monte Carlo integration dominating query cost; the
repo's exact quadratic-form CDF (:mod:`repro.gaussian.quadform`) removes
the sampling noise but was scalar-only and always paid full price.  The
cascade makes the exact machinery *decision-aware*, in the spirit of
probabilistic pruning (Bernecker et al.) — most candidates can be decided
from bounds that cost next to nothing, and only the borderline few ever
reach an expensive evaluator:

- **Tier 1 — χ² sandwich bounds.**  All candidates of a query share the
  covariance spectrum, so one vectorised noncentral-χ² CDF call yields a
  rigorous [lower, upper] interval per candidate; any interval excluding
  θ decides its candidate with zero further work.
- **Tier 2 — batched Ruben series.**  The survivors run Ruben's
  mixture-of-central-χ² expansion as NumPy array operations over the
  whole block: eigenvalues, the expansion parameter β, the ratio powers
  and the incomplete-gamma table are shared, and each candidate stops as
  soon as its partial-sum ± remaining-mass interval excludes θ
  (decision-aware truncation).
- **Tier 3 — scalar Imhof.**  Only candidates whose Ruben expansion
  underflows (extreme noncentralities) fall back to characteristic-
  function inversion, one at a time.

The cascade draws no random numbers at all, so engine results are exact,
bit-identical across runs and worker counts, and — unlike every sampling
integrator — `integration_samples` stays at zero.  This goes beyond the
paper, which assumes the Gaussian cannot be integrated analytically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import (
    GaussianQuadraticForm,
    chi2_sandwich_bounds_block,
    imhof_cdf,
    ruben_series_block,
)
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult
from repro.obs import NULL_SPAN

__all__ = ["CascadeIntegrator"]

#: Tier labels as they appear in ``IntegrationResult.method`` and in the
#: engine's per-tier decision statistics.
TIER_SANDWICH = "cascade-sandwich"
TIER_RUBEN = "cascade-ruben"
TIER_IMHOF = "cascade-imhof"


class CascadeIntegrator(ProbabilityIntegrator):
    """Tiered deterministic Phase-3 evaluator (sandwich → Ruben → Imhof).

    Parameters
    ----------
    tol:
        Interval width at which a candidate counts as *evaluated* rather
        than merely decided: bounds tighter than this are collapsed to
        their midpoint.  Also the Ruben truncation tolerance when no θ is
        in play.
    max_terms:
        Ruben series term cap per candidate before falling back to Imhof.
    fast_dtype:
        Precision of the tier-1 candidate rotation: ``"float64"``
        (default, exact) or ``"float32"`` — the compiled single-precision
        fast path whose rotation error is absorbed into conservatively
        widened bounds, so decisions stay sound either way (see
        :func:`repro.gaussian.quadform.chi2_sandwich_bounds_block`).
        Borderline candidates the wider float32 interval cannot decide
        simply continue to tier 2.
    """

    name = "cascade"

    def __init__(
        self,
        *,
        tol: float = 1e-9,
        max_terms: int = 10_000,
        fast_dtype: str = "float64",
    ):
        if not 0 < tol < 1:
            raise IntegrationError(f"tol must lie in (0, 1), got {tol}")
        if max_terms < 1:
            raise IntegrationError(f"max_terms must be >= 1, got {max_terms}")
        if fast_dtype not in ("float64", "float32"):
            raise IntegrationError(
                f"fast_dtype must be 'float64' or 'float32', got {fast_dtype!r}"
            )
        self.tol = float(tol)
        self.max_terms = int(max_terms)
        self.fast_dtype = fast_dtype

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: vectorised sandwich bounds decide most
        candidates, so the amortized per-candidate cost is far below one
        scalar exact evaluation."""
        return 2.5e-5

    # ------------------------------------------------------------------
    # ProbabilityIntegrator interface
    # ------------------------------------------------------------------

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        return self._evaluate(gaussian, p[None, :], delta, theta=None)[2][0]

    def qualification_probabilities(
        self, gaussian: Gaussian, points: np.ndarray, delta: float
    ) -> list[IntegrationResult]:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return self._evaluate(gaussian, pts, delta, theta=None)[2]

    def decide(
        self,
        gaussian: Gaussian,
        points: np.ndarray,
        delta: float,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return self._evaluate(gaussian, pts, delta, theta=theta)

    # ------------------------------------------------------------------
    # The cascade
    # ------------------------------------------------------------------

    def _evaluate(
        self,
        gaussian: Gaussian,
        pts: np.ndarray,
        delta: float,
        *,
        theta: float | None,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        """Run the tiers; returns (accept_mask, reject_mask, results).

        With ``theta=None`` every candidate is evaluated to ``tol``
        precision instead of merely θ-decided, and the masks reflect the
        trivial rule estimate ≥ 0 (all "accepted") — callers wanting
        plain probabilities read only ``results``.
        """
        m = pts.shape[0]
        if m == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty, []
        if not np.isfinite(delta) or delta < 0:
            raise IntegrationError(f"delta must be finite and >= 0, got {delta}")
        obs = self.obs
        lower = np.zeros(m)
        upper = np.ones(m)
        tier = np.full(m, TIER_IMHOF, dtype=object)

        # Tier 1: one vectorised noncentral-χ² call for the whole block.
        with (
            obs.span("tier:sandwich") if obs is not None else NULL_SPAN
        ) as span:
            bounds = chi2_sandwich_bounds_block(
                gaussian, pts, delta, dtype=self.fast_dtype
            )
            lower, upper = bounds[:, 0].copy(), bounds[:, 1].copy()
            decided = self._decided(lower, upper, theta)
            tier[decided] = TIER_SANDWICH
            if obs is not None:
                span.annotate(
                    candidates=m, decided=int(np.count_nonzero(decided))
                )

        # Tier 2: batched Ruben over the survivors, shared tables.
        undecided = np.nonzero(~decided)[0]
        if undecided.size:
            with (
                obs.span("tier:ruben") if obs is not None else NULL_SPAN
            ) as span:
                weights, ncs = GaussianQuadraticForm.squared_distance_spectrum(
                    gaussian, pts[undecided]
                )
                lo2, hi2, ok2 = ruben_series_block(
                    weights,
                    np.ones_like(weights),
                    ncs,
                    delta * delta,
                    theta=theta,
                    tol=self.tol,
                    max_terms=self.max_terms,
                )
                # Ruben bounds only ever tighten the sandwich interval.
                take = np.nonzero(ok2)[0]
                rows = undecided[take]
                lower[rows] = np.maximum(lower[rows], lo2[take])
                upper[rows] = np.minimum(upper[rows], hi2[take])
                tier[rows] = TIER_RUBEN
                if obs is not None:
                    span.annotate(
                        candidates=int(undecided.size),
                        decided=int(take.size),
                    )

            # Tier 3: scalar Imhof for underflow/non-convergence leftovers.
            leftovers = undecided[~ok2]
            if leftovers.size:
                with (
                    obs.span("tier:imhof") if obs is not None else NULL_SPAN
                ) as span:
                    for row in leftovers:
                        form = GaussianQuadraticForm.squared_distance(
                            gaussian, pts[row]
                        )
                        value = imhof_cdf(form, delta * delta)
                        lower[row] = upper[row] = value
                    if obs is not None:
                        span.annotate(candidates=int(leftovers.size))

        return self._pack(lower, upper, tier, theta)

    def _decided(
        self, lower: np.ndarray, upper: np.ndarray, theta: float | None
    ) -> np.ndarray:
        converged = upper - lower < self.tol
        if theta is None:
            return converged
        return converged | (lower >= theta) | (upper < theta)

    def _pack(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        tier: np.ndarray,
        theta: float | None,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        """Turn per-candidate intervals into masks and IntegrationResults.

        The reported estimate is chosen to *preserve the decision* under
        the engine's ``estimate ≥ θ`` rule: the lower bound for accepts,
        the upper bound for rejects, the midpoint once the interval has
        collapsed below ``tol``.
        """
        converged = upper - lower < self.tol
        mid = 0.5 * (lower + upper)
        if theta is None:
            estimate = np.where(converged, mid, lower)
            accept = estimate >= 0.0
        else:
            accept = np.where(converged, mid >= theta, lower >= theta)
            estimate = np.where(converged, mid, np.where(accept, lower, upper))
        stderr = np.maximum(0.5 * (upper - lower), 0.0)
        results = [
            IntegrationResult(
                estimate=float(estimate[i]),
                stderr=float(stderr[i]),
                n_samples=0,
                method=str(tier[i]),
            )
            for i in range(lower.size)
        ]
        return accept, ~accept, results

"""Common result type for probability estimates."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import IntegrationError

__all__ = ["IntegrationResult"]

#: Two-sided z value for the default 95 % confidence interval.
_Z_95 = 1.959963984540054


@dataclass(frozen=True)
class IntegrationResult:
    """A probability estimate with its uncertainty.

    Attributes
    ----------
    estimate:
        Estimated probability in [0, 1].
    stderr:
        Standard error of the estimate (0 for exact evaluators).
    n_samples:
        Number of samples spent (0 for exact evaluators).
    method:
        Short name of the producing integrator, for reporting.
    """

    estimate: float
    stderr: float
    n_samples: int
    method: str

    def __post_init__(self) -> None:
        if not math.isfinite(self.estimate):
            raise IntegrationError(f"non-finite probability estimate {self.estimate}")
        if not math.isfinite(self.stderr) or self.stderr < 0:
            raise IntegrationError(f"invalid standard error {self.stderr}")
        if self.n_samples < 0:
            raise IntegrationError(f"negative sample count {self.n_samples}")

    def confidence_interval(self, z: float = _Z_95) -> tuple[float, float]:
        """(lower, upper) normal-approximation CI, clipped to [0, 1]."""
        return (
            max(0.0, self.estimate - z * self.stderr),
            min(1.0, self.estimate + z * self.stderr),
        )

    def meets_threshold(self, theta: float) -> bool:
        """Point-estimate decision rule used by Phase 3: estimate >= θ."""
        return self.estimate >= theta

    def __str__(self) -> str:
        return (
            f"{self.estimate:.6f} ± {self.stderr:.2e} "
            f"({self.method}, n={self.n_samples})"
        )

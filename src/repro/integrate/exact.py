"""Exact Phase-3 evaluator backed by the quadratic-form CDF.

Not available to the original system (the paper states Gaussian densities
"cannot be integrated analytically" over spheres and relies on Monte
Carlo); we expose it both as ground truth for testing the stochastic
integrators and as an optional deterministic engine configuration — the
ablation benchmark compares the two regimes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["ExactIntegrator"]


class ExactIntegrator(ProbabilityIntegrator):
    """Computes qualification probabilities via Imhof or Ruben, exactly."""

    name = "exact"

    def __init__(self, method: str = "ruben"):
        if method not in ("imhof", "ruben"):
            raise IntegrationError(
                f"method must be 'imhof' or 'ruben', got {method!r}"
            )
        self.method = method

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: one scalar Ruben/Imhof evaluation.

        Measured at roughly the cost of ~2k Monte Carlo samples on the
        2-D paper workloads.
        """
        return 1.5e-4

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        value = qualification_probability_exact(gaussian, p, delta, method=self.method)
        return IntegrationResult(
            estimate=value, stderr=0.0, n_samples=0, method=f"{self.name}-{self.method}"
        )

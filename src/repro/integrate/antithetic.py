"""Antithetic-variates importance sampling.

A classic variance-reduction refinement of the paper's estimator: draws
come in point-symmetric pairs (q + s, q − s).  Both legs are valid N(q, Σ)
samples; when the integration sphere sits moderately off-centre their hit
indicators are negatively correlated and the paired mean beats two
independent draws at identical cost (we measure ~25 % standard-error
reduction in that regime).  For spheres covering the centre or far in the
tail the indicator correlation fades and the estimator matches plain
importance sampling — it never does worse than ~its own pairing overhead.

The standard error is computed over pair averages (pairs are i.i.d. even
though legs are not), so the reported uncertainty remains honest in every
regime.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["AntitheticImportanceSampler"]


class AntitheticImportanceSampler(ProbabilityIntegrator):
    """Importance sampling with point-symmetric sample pairs.

    Parameters
    ----------
    n_samples:
        Total draws (rounded up to an even number; half are mirrored).
    seed:
        Seed for the internal generator.
    """

    name = "antithetic"

    def __init__(self, n_samples: int = 100_000, seed: int = 0):
        if n_samples < 2:
            raise IntegrationError(f"n_samples must be >= 2, got {n_samples}")
        self.n_samples = int(n_samples) + (int(n_samples) % 2)
        self._rng = np.random.default_rng(seed)

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: half the draws of a plain sampler (each
        draw yields a mirrored pair), distance tests unchanged."""
        from repro.integrate.base import SECONDS_PER_SAMPLE

        return self.n_samples * SECONDS_PER_SAMPLE * 0.75

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        pairs = self.n_samples // 2
        z = self._rng.standard_normal((pairs, gaussian.dim))
        forward = gaussian.whitening.unwhiten(z)
        mirrored = gaussian.whitening.unwhiten(-z)
        threshold = delta * delta

        def hits(samples: np.ndarray) -> np.ndarray:
            gaps = samples - p
            return (np.einsum("ij,ij->i", gaps, gaps) <= threshold).astype(float)

        pair_means = 0.5 * (hits(forward) + hits(mirrored))
        estimate = float(pair_means.mean())
        stderr = float(pair_means.std(ddof=1) / np.sqrt(pairs)) if pairs > 1 else 0.0
        return IntegrationResult(
            estimate=estimate,
            stderr=stderr,
            n_samples=self.n_samples,
            method=self.name,
        )

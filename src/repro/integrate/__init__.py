"""Numerical evaluation of qualification probabilities (Phase 3).

The paper evaluates ∫_{‖x−o‖≤δ} p_q(x) dx by importance sampling — drawing
from N(q, Σ) and counting the fraction of draws that land in the δ-ball
(Section V-A).  This package implements that estimator plus alternatives
sharing one interface:

- :class:`ImportanceSamplingIntegrator` — the paper's method;
- :class:`MonteCarloIntegrator` — plain MC: uniform draws in the ball
  times the ball volume times the mean density;
- :class:`QuasiMonteCarloIntegrator` — randomized-Halton QMC;
- :class:`ExactIntegrator` — the closed-form quadratic-form CDF
  (:mod:`repro.gaussian.quadform`), zero variance, used as ground truth;
- :class:`CascadeIntegrator` — tiered deterministic θ-decisions: vectorised
  χ² sandwich pruning, batched Ruben series with decision-aware
  truncation, scalar Imhof only as a last resort.

All of them return an :class:`IntegrationResult` carrying the estimate,
its standard error and the sample count.
"""

from repro.integrate.result import IntegrationResult
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.montecarlo import MonteCarloIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.integrate.halton import halton_sequence, first_primes
from repro.integrate.qmc import QuasiMonteCarloIntegrator
from repro.integrate.exact import ExactIntegrator
from repro.integrate.cascade import CascadeIntegrator
from repro.integrate.sequential import SequentialImportanceSampler
from repro.integrate.antithetic import AntitheticImportanceSampler

__all__ = [
    "IntegrationResult",
    "ProbabilityIntegrator",
    "MonteCarloIntegrator",
    "ImportanceSamplingIntegrator",
    "QuasiMonteCarloIntegrator",
    "ExactIntegrator",
    "CascadeIntegrator",
    "SequentialImportanceSampler",
    "AntitheticImportanceSampler",
    "halton_sequence",
    "first_primes",
]

"""The paper's integrator: importance sampling from the query Gaussian.

Section V-A: "We generate random numbers that obey a Gaussian distribution
and derive the ratio such that random numbers enter the specified region.
The ratio corresponds to the probability to be estimated."  The estimator
is a binomial hit ratio, so its standard error is √(p̂(1−p̂)/n).

Two execution modes are provided:

- *independent* (the paper's): every candidate gets a fresh sample set of
  size ``n_samples`` — unbiased, but n_samples·|candidates| draws per query;
- *shared* (:meth:`qualification_probabilities`): one sample set is drawn
  per query and reused for every candidate, making Phase 3 cost one draw
  plus |candidates| vectorised distance passes.  Estimates become
  positively correlated across candidates but remain individually unbiased.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["ImportanceSamplingIntegrator"]


def _binomial_stderr(p_hat: float, n: int) -> float:
    return float(np.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / n))


class ImportanceSamplingIntegrator(ProbabilityIntegrator):
    """Hit-ratio estimator under N(q, Σ) draws.

    Parameters
    ----------
    n_samples:
        Draws per estimate.  The paper uses 100,000.
    seed:
        Seed for the internal PCG64 generator.  The generator is advanced
        across calls, so repeated estimates differ, but a freshly
        constructed integrator always reproduces the same stream.
    share_samples:
        When true, :meth:`qualification_probabilities` draws one common
        sample set per query instead of one per candidate.
    chunk_size:
        Memory cap for the shared-samples distance computation: candidates
        are processed in blocks of this many rows.
    """

    name = "importance"

    def __init__(
        self,
        n_samples: int = 100_000,
        seed: int = 0,
        *,
        share_samples: bool = False,
        chunk_size: int = 256,
    ):
        if n_samples < 1:
            raise IntegrationError(f"n_samples must be >= 1, got {n_samples}")
        if chunk_size < 1:
            raise IntegrationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.n_samples = int(n_samples)
        self.share_samples = bool(share_samples)
        self.chunk_size = int(chunk_size)
        self._rng = np.random.default_rng(seed)

    @property
    def composition_independent(self) -> bool:
        """Shared-sample mode draws once per call, so grouping is inert.

        With ``share_samples`` every candidate of a ``decide`` call is
        scored against the same single draw, and per-call draws depend
        only on the RNG state at entry — partitioning candidates across
        calls with equal entry states cannot change any estimate.  The
        per-candidate mode advances the stream between candidates and is
        therefore composition-dependent.
        """
        return self.share_samples

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: a full fixed-budget pass per candidate.

        With ``share_samples`` the draw is amortized over the block, so
        each extra candidate only pays the distance tests (roughly half
        the per-sample work).
        """
        from repro.integrate.base import SECONDS_PER_SAMPLE

        scale = 0.5 if self.share_samples else 1.0
        return self.n_samples * SECONDS_PER_SAMPLE * scale

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        samples = gaussian.sample(self.n_samples, self._rng)
        deltas = samples - p
        hits = int(np.count_nonzero(np.einsum("ij,ij->i", deltas, deltas) <= delta**2))
        p_hat = hits / self.n_samples
        return IntegrationResult(
            estimate=p_hat,
            stderr=_binomial_stderr(p_hat, self.n_samples),
            n_samples=self.n_samples,
            method=self.name,
        )

    def qualification_probabilities(
        self, gaussian: Gaussian, points: np.ndarray, delta: float
    ) -> list[IntegrationResult]:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[0] == 0:
            return []
        if not self.share_samples:
            return super().qualification_probabilities(gaussian, pts, delta)
        samples = gaussian.sample(self.n_samples, self._rng)
        results: list[IntegrationResult] = []
        threshold = delta**2
        # (n_samples, m, d) would be huge; compute squared distances via
        # the expansion ||s - o||^2 = ||s||^2 - 2 s.o + ||o||^2, with both
        # squared-norm vectors computed once for all chunks.
        s_sq = np.einsum("ij,ij->i", samples, samples)
        o_sq_all = np.einsum("ij,ij->i", pts, pts)
        for start in range(0, pts.shape[0], self.chunk_size):
            block = pts[start : start + self.chunk_size]
            o_sq = o_sq_all[start : start + self.chunk_size]
            cross = samples @ block.T
            within = (s_sq[:, None] - 2.0 * cross + o_sq[None, :]) <= threshold
            for hits in np.count_nonzero(within, axis=0):
                p_hat = float(hits) / self.n_samples
                results.append(
                    IntegrationResult(
                        estimate=p_hat,
                        stderr=_binomial_stderr(p_hat, self.n_samples),
                        n_samples=self.n_samples,
                        method=f"{self.name}-shared",
                    )
                )
        return results

"""Integrator interface shared by Phase-3 evaluators."""

from __future__ import annotations

import abc
import copy

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.result import IntegrationResult

__all__ = ["ProbabilityIntegrator", "SECONDS_PER_SAMPLE"]

#: Rough wall-clock cost of one Monte Carlo sample (draw + distance test),
#: in seconds.  Anchors the sampling integrators' planner cost hints; the
#: absolute scale only matters relative to the per-strategy classify
#: coefficients in :class:`repro.core.planner.PlannerCostModel`.
SECONDS_PER_SAMPLE = 6e-8


class ProbabilityIntegrator(abc.ABC):
    """Evaluates P(‖x − point‖ ≤ delta) for x ~ N(q, Σ).

    Implementations must be deterministic given their construction
    arguments (stochastic ones take an explicit seed), so that experiments
    are reproducible run to run.
    """

    #: Short identifier used in reports and IntegrationResult.method.
    name: str = "abstract"

    #: Observability sink, attached by the engine's Phase 3 for the
    #: duration of a ``decide`` call (and cleared afterwards) so tier-aware
    #: backends can emit ``tier:*`` spans.  Always ``None`` outside the
    #: engine; implementations must treat it as optional and read-only.
    obs = None

    @abc.abstractmethod
    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        """Estimate the probability mass of ``gaussian`` in ball(point, delta)."""

    def qualification_probabilities(
        self, gaussian: Gaussian, points: np.ndarray, delta: float
    ) -> list[IntegrationResult]:
        """Evaluate a batch of candidate objects.

        The default loops over rows; subclasses override when they can
        share work across candidates (e.g. one common sample set).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return [
            self.qualification_probability(gaussian, row, delta) for row in pts
        ]

    def decide(
        self,
        gaussian: Gaussian,
        points: np.ndarray,
        delta: float,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        """Batched θ-decisions over the rows of ``points``.

        Phase 3 only needs the predicate ``p ≥ θ``, not the probability
        itself; this entry point lets decision-aware integrators (the
        cascade, the sequential sampler) spend work only until each
        candidate's decision is certain.  Returns
        ``(accept_mask, reject_mask, results)`` with the masks disjoint
        boolean arrays over the candidate rows and ``results`` the
        per-candidate estimates backing the decisions.

        The default derives both masks from the full-precision estimates,
        so for any integrator ``decide`` is exactly
        ``qualification_probabilities`` + the ``estimate ≥ θ`` rule — the
        engine can call it unconditionally without changing results.
        """
        results = self.qualification_probabilities(gaussian, points, delta)
        accept = np.fromiter(
            (r.meets_threshold(theta) for r in results),
            dtype=bool,
            count=len(results),
        )
        return accept, ~accept, results

    def decide_candidates(
        self,
        gaussian: Gaussian,
        ids: np.ndarray,
        points: np.ndarray,
        delta: float,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        """:meth:`decide` with the candidate object ids alongside the rows.

        The stage pipeline's Phase 3 always calls this entry point.  The
        paper's integrand is a pure function of the candidate location,
        so the default ignores ``ids`` and delegates to :meth:`decide`;
        kind adapters whose integrand depends on *which* object a row is
        (the convolved uncertain-target decider, the k-NN win counter)
        override it.
        """
        return self.decide(gaussian, points, delta, theta)

    @property
    def composition_independent(self) -> bool:
        """Whether per-candidate results ignore which candidates co-occur.

        ``True`` means a candidate's :class:`IntegrationResult` is a pure
        function of (integrator state at call entry, candidate point) — it
        does not depend on how the other candidates of a ``decide`` call
        are grouped or ordered.  That is exactly the property the sharded
        engine needs for bit-identical parity with the single-engine path:
        partitioning the candidate set across shards must not perturb any
        estimate.  Deterministic integrators (no internal RNG) qualify by
        construction; stream-advancing samplers do not, because each
        candidate consumes RNG state that shifts its successors.  RNG-free
        is detected the same way :meth:`fork` detects reseedability.
        """
        return not hasattr(self, "_rng")

    @property
    def cost_per_candidate(self) -> float:
        """Predicted seconds to θ-decide one Phase-3 candidate.

        The cost hint the :class:`repro.core.planner.QueryPlanner` charges
        per predicted Phase-3 candidate when scoring plans.  Subclasses
        override with a calibrated figure; the default assumes a full
        fixed-budget sampling pass when the instance exposes
        ``n_samples``, else a generic mid-range estimate.
        """
        n = getattr(self, "n_samples", None)
        if n:
            return float(n) * SECONDS_PER_SAMPLE
        return 1e-4

    def fork(self, seed) -> "ProbabilityIntegrator":
        """A same-configuration copy with a fresh, independent RNG stream.

        ``seed`` may be anything :func:`numpy.random.default_rng` accepts,
        including a :class:`numpy.random.SeedSequence`.  The batch engine
        forks one integrator per query from a spawned seed sequence, so
        estimates depend only on (engine seed, query position) — never on
        worker count or completion order.  Deterministic integrators
        (no internal RNG) are simply deep-copied.
        """
        clone = copy.deepcopy(self)
        if hasattr(clone, "_rng"):
            clone._rng = np.random.default_rng(seed)
        return clone

    @staticmethod
    def _validate(gaussian: Gaussian, point: np.ndarray, delta: float) -> np.ndarray:
        p = np.asarray(point, dtype=float)
        if p.shape != (gaussian.dim,):
            raise IntegrationError(
                f"point shape {p.shape} does not match query dimension {gaussian.dim}"
            )
        if not np.isfinite(delta) or delta < 0:
            raise IntegrationError(f"delta must be finite and >= 0, got {delta}")
        return p

"""Adaptive Phase-3 evaluation: stop sampling once the θ-decision is clear.

The engine does not need the qualification probability itself — only the
predicate ``p >= θ``.  A fixed 100k-sample budget (the paper's setting)
wastes most of its samples on candidates whose probability is far from θ.
``SequentialImportanceSampler`` draws in batches and stops as soon as the
running binomial confidence interval excludes θ, falling back to the full
budget only for genuinely borderline candidates.

The decision rule is a curtailed sequential test with a z-threshold; with
``z = 4`` the per-candidate error probability is ~1e-4 per look, small
against Monte Carlo noise at the boundary.  The ablation benchmark shows
order-of-magnitude Phase-3 savings at equal answer quality.

With ``share_batches=True`` the per-candidate loop is replaced by one
vectorised pass: every sample batch is drawn once and scored against all
still-undecided candidates with chunked matrix algebra, and candidates
drop out of the active set as soon as their own confidence interval
excludes θ.  Estimates become positively correlated across candidates
(exactly as in ``ImportanceSamplingIntegrator(share_samples=True)``) but
remain individually unbiased, and the per-candidate stopping rule is
unchanged.  This mode is what makes the engine's batched execution path
fast on Phase-3-dominated workloads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["SequentialImportanceSampler"]


class SequentialImportanceSampler(ProbabilityIntegrator):
    """Batched importance sampling with early stopping around θ.

    Parameters
    ----------
    theta:
        The decision threshold the engine will compare against.  The
        estimate returned is still unbiased for monitoring purposes, but
        early stopping is tuned to this θ.
    max_samples:
        Budget cap per candidate (the paper's fixed budget).
    batch_size:
        Samples per look.  Smaller batches stop earlier but look more
        often.
    z:
        Decision threshold in standard errors; the CI half-width used to
        exclude θ.
    seed:
        Seed for the internal generator.  ``seed`` accepts anything
        :func:`numpy.random.default_rng` does (ints, SeedSequences).
    share_batches:
        When true, :meth:`qualification_probabilities` draws each sample
        batch once and scores every still-active candidate against it in
        one vectorised pass instead of looping per candidate.
    chunk_size:
        Memory cap for the shared-batch distance computation: active
        candidates are scored in blocks of this many rows.
    """

    name = "sequential"

    def __init__(
        self,
        theta: float,
        max_samples: int = 100_000,
        batch_size: int = 2_000,
        z: float = 4.0,
        seed=0,
        *,
        share_batches: bool = False,
        chunk_size: int = 512,
    ):
        if not 0.0 < theta < 1.0:
            raise IntegrationError(f"theta must lie in (0, 1), got {theta}")
        if max_samples < batch_size or batch_size < 10:
            raise IntegrationError(
                f"need max_samples >= batch_size >= 10, got "
                f"{max_samples}, {batch_size}"
            )
        if z <= 0:
            raise IntegrationError(f"z must be > 0, got {z}")
        if chunk_size < 1:
            raise IntegrationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.theta = float(theta)
        self.max_samples = int(max_samples)
        self.batch_size = int(batch_size)
        self.z = float(z)
        self.share_batches = bool(share_batches)
        self.chunk_size = int(chunk_size)
        self._rng = np.random.default_rng(seed)

    @property
    def composition_independent(self) -> bool:
        """Shared-batch mode follows a fixed schedule, so grouping is inert.

        With ``share_batches`` the batch sizes are a pure function of the
        constructor budget (``min(batch_size, max_samples - drawn)``) and
        each candidate's stopping point depends only on its own hits
        against the shared stream prefix — never on which other candidates
        ride along.  The per-candidate mode consumes a variable amount of
        stream per candidate and is composition-dependent.
        """
        return self.share_batches

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: most candidates stop after a few batches.

        The adaptive stopping rule decides clear-cut candidates within
        the first confidence checks; budget a handful of batches rather
        than the full ``max_samples`` worst case.
        """
        from repro.integrate.base import SECONDS_PER_SAMPLE

        expected = min(self.max_samples, 5 * self.batch_size)
        return expected * SECONDS_PER_SAMPLE

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        threshold = delta * delta
        hits = 0
        drawn = 0
        while drawn < self.max_samples:
            batch = min(self.batch_size, self.max_samples - drawn)
            samples = gaussian.sample(batch, self._rng)
            deltas = samples - p
            hits += int(
                np.count_nonzero(
                    np.einsum("ij,ij->i", deltas, deltas) <= threshold
                )
            )
            drawn += batch
            estimate = hits / drawn
            stderr = float(
                np.sqrt(max(estimate * (1.0 - estimate), 1.0 / drawn) / drawn)
            )
            if abs(estimate - self.theta) > self.z * stderr:
                break
        estimate = hits / drawn
        stderr = float(np.sqrt(max(estimate * (1.0 - estimate), 0.0) / drawn))
        return IntegrationResult(
            estimate=estimate, stderr=stderr, n_samples=drawn, method=self.name
        )

    def qualification_probabilities(
        self, gaussian: Gaussian, points: np.ndarray, delta: float
    ) -> list[IntegrationResult]:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[0] == 0:
            return []
        if not self.share_batches:
            return super().qualification_probabilities(gaussian, pts, delta)

        m = pts.shape[0]
        threshold = delta * delta
        o_sq = np.einsum("ij,ij->i", pts, pts)
        hits = np.zeros(m, dtype=np.int64)
        final_hits = np.zeros(m, dtype=np.int64)
        final_drawn = np.zeros(m, dtype=np.int64)
        active = np.ones(m, dtype=bool)
        drawn = 0
        while drawn < self.max_samples and np.any(active):
            batch = min(self.batch_size, self.max_samples - drawn)
            samples = gaussian.sample(batch, self._rng)
            s_sq = np.einsum("ij,ij->i", samples, samples)
            idx = np.nonzero(active)[0]
            for start in range(0, idx.size, self.chunk_size):
                block = idx[start : start + self.chunk_size]
                # ||s - o||^2 = ||s||^2 - 2 s.o + ||o||^2, batched over the
                # block; avoids materialising (batch, m, d).
                cross = samples @ pts[block].T
                within = (
                    s_sq[:, None] - 2.0 * cross + o_sq[block][None, :]
                ) <= threshold
                hits[block] += np.count_nonzero(within, axis=0)
            drawn += batch
            estimate = hits[idx] / drawn
            stderr = np.sqrt(
                np.maximum(estimate * (1.0 - estimate), 1.0 / drawn) / drawn
            )
            decided = np.abs(estimate - self.theta) > self.z * stderr
            stopped = idx[decided]
            final_hits[stopped] = hits[stopped]
            final_drawn[stopped] = drawn
            active[stopped] = False
        # Candidates still active at the budget cap settle on the full draw.
        leftovers = np.nonzero(active)[0]
        final_hits[leftovers] = hits[leftovers]
        final_drawn[leftovers] = drawn
        results: list[IntegrationResult] = []
        for h, n in zip(final_hits, final_drawn):
            estimate = float(h) / int(n)
            stderr = float(np.sqrt(max(estimate * (1.0 - estimate), 0.0) / n))
            results.append(
                IntegrationResult(
                    estimate=estimate,
                    stderr=stderr,
                    n_samples=int(n),
                    method=f"{self.name}-shared",
                )
            )
        return results

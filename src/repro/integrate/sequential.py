"""Adaptive Phase-3 evaluation: stop sampling once the θ-decision is clear.

The engine does not need the qualification probability itself — only the
predicate ``p >= θ``.  A fixed 100k-sample budget (the paper's setting)
wastes most of its samples on candidates whose probability is far from θ.
``SequentialImportanceSampler`` draws in batches and stops as soon as the
running binomial confidence interval excludes θ, falling back to the full
budget only for genuinely borderline candidates.

The decision rule is a curtailed sequential test with a z-threshold; with
``z = 4`` the per-candidate error probability is ~1e-4 per look, small
against Monte Carlo noise at the boundary.  The ablation benchmark shows
order-of-magnitude Phase-3 savings at equal answer quality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["SequentialImportanceSampler"]


class SequentialImportanceSampler(ProbabilityIntegrator):
    """Batched importance sampling with early stopping around θ.

    Parameters
    ----------
    theta:
        The decision threshold the engine will compare against.  The
        estimate returned is still unbiased for monitoring purposes, but
        early stopping is tuned to this θ.
    max_samples:
        Budget cap per candidate (the paper's fixed budget).
    batch_size:
        Samples per look.  Smaller batches stop earlier but look more
        often.
    z:
        Decision threshold in standard errors; the CI half-width used to
        exclude θ.
    seed:
        Seed for the internal generator.
    """

    name = "sequential"

    def __init__(
        self,
        theta: float,
        max_samples: int = 100_000,
        batch_size: int = 2_000,
        z: float = 4.0,
        seed: int = 0,
    ):
        if not 0.0 < theta < 1.0:
            raise IntegrationError(f"theta must lie in (0, 1), got {theta}")
        if max_samples < batch_size or batch_size < 10:
            raise IntegrationError(
                f"need max_samples >= batch_size >= 10, got "
                f"{max_samples}, {batch_size}"
            )
        if z <= 0:
            raise IntegrationError(f"z must be > 0, got {z}")
        self.theta = float(theta)
        self.max_samples = int(max_samples)
        self.batch_size = int(batch_size)
        self.z = float(z)
        self._rng = np.random.default_rng(seed)

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        threshold = delta * delta
        hits = 0
        drawn = 0
        while drawn < self.max_samples:
            batch = min(self.batch_size, self.max_samples - drawn)
            samples = gaussian.sample(batch, self._rng)
            deltas = samples - p
            hits += int(
                np.count_nonzero(
                    np.einsum("ij,ij->i", deltas, deltas) <= threshold
                )
            )
            drawn += batch
            estimate = hits / drawn
            stderr = float(
                np.sqrt(max(estimate * (1.0 - estimate), 1.0 / drawn) / drawn)
            )
            if abs(estimate - self.theta) > self.z * stderr:
                break
        estimate = hits / drawn
        stderr = float(np.sqrt(max(estimate * (1.0 - estimate), 0.0) / drawn))
        return IntegrationResult(
            estimate=estimate, stderr=stderr, n_samples=drawn, method=self.name
        )

"""Randomized quasi-Monte Carlo integrator.

Halton points in the unit cube are mapped through the inverse normal CDF
and the query's whitening transform into N(q, Σ) samples; the estimator is
the same hit ratio as importance sampling, but the low-discrepancy design
converges roughly like n⁻¹ instead of n^{-1/2} in low dimension.  A small
number of independent Cranley–Patterson rotations provides an unbiased
combined estimate and an empirical standard error.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.errors import IntegrationError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.halton import halton_sequence
from repro.integrate.result import IntegrationResult

__all__ = ["QuasiMonteCarloIntegrator"]


def _inverse_normal(u: np.ndarray) -> np.ndarray:
    """Φ⁻¹ applied elementwise, with endpoints nudged into (0, 1)."""
    eps = np.finfo(float).tiny
    clipped = np.clip(u, eps, 1.0 - 1e-16)
    return special.ndtri(clipped)


class QuasiMonteCarloIntegrator(ProbabilityIntegrator):
    """Randomized-Halton hit-ratio estimator.

    Parameters
    ----------
    n_samples:
        Total budget; split evenly across ``n_replicates`` rotations.
    n_replicates:
        Independent randomizations (>= 2 so a standard error exists).
    seed:
        Seed for the rotation generator.
    """

    name = "qmc"

    def __init__(self, n_samples: int = 100_000, n_replicates: int = 8, seed: int = 0):
        if n_replicates < 2:
            raise IntegrationError(f"n_replicates must be >= 2, got {n_replicates}")
        if n_samples < n_replicates:
            raise IntegrationError(
                f"n_samples ({n_samples}) must be >= n_replicates ({n_replicates})"
            )
        self.n_samples = int(n_samples)
        self.n_replicates = int(n_replicates)
        self._rng = np.random.default_rng(seed)

    @property
    def cost_per_candidate(self) -> float:
        """Planner cost hint: Halton generation plus the inverse-normal
        transform cost noticeably more per point than a PRNG draw."""
        from repro.integrate.base import SECONDS_PER_SAMPLE

        return self.n_samples * SECONDS_PER_SAMPLE * 2.5

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        per_replicate = self.n_samples // self.n_replicates
        threshold = delta**2
        estimates = np.empty(self.n_replicates)
        for rep in range(self.n_replicates):
            shift = self._rng.random(gaussian.dim)
            cube = halton_sequence(per_replicate, gaussian.dim, shift=shift)
            samples = gaussian.whitening.unwhiten(_inverse_normal(cube))
            deltas = samples - p
            hits = np.count_nonzero(
                np.einsum("ij,ij->i", deltas, deltas) <= threshold
            )
            estimates[rep] = hits / per_replicate
        estimate = float(estimates.mean())
        stderr = float(estimates.std(ddof=1) / np.sqrt(self.n_replicates))
        return IntegrationResult(
            estimate=estimate,
            stderr=stderr,
            n_samples=per_replicate * self.n_replicates,
            method=self.name,
        )

"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  Subclasses are
grouped by subsystem: geometry, Gaussian math, catalogs, indexing, and the
query engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric object or operation (bad bounds, dimension, …)."""


class DimensionMismatchError(GeometryError):
    """Two objects with incompatible dimensionalities were combined."""

    def __init__(self, expected: int, actual: int, what: str = "operand"):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"dimension mismatch: {what} has dimension {actual}, expected {expected}"
        )


class NotPositiveDefiniteError(ReproError):
    """A covariance matrix is not symmetric positive definite."""


class IntegrationError(ReproError):
    """Numerical integration failed to produce a usable estimate."""


class CatalogError(ReproError):
    """A U-catalog is malformed, empty, or cannot serve a lookup."""


class CatalogLookupError(CatalogError):
    """No conservative catalog entry exists for the requested parameters."""


class IndexError_(ReproError):
    """Spatial index misuse (duplicate ids, unknown id, wrong dimension)."""


class QueryError(ReproError):
    """Invalid probabilistic query specification."""


class InvalidThresholdError(QueryError):
    """Probability threshold outside the open interval required by the query."""

    def __init__(self, theta: float, low: float = 0.0, high: float = 1.0):
        self.theta = theta
        super().__init__(
            f"probability threshold must satisfy {low} < theta < {high}, got {theta}"
        )

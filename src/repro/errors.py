"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  Subclasses are
grouped by subsystem: geometry, Gaussian math, catalogs, indexing, and the
query engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric object or operation (bad bounds, dimension, …)."""


class DimensionMismatchError(GeometryError):
    """Two objects with incompatible dimensionalities were combined."""

    def __init__(self, expected: int, actual: int, what: str = "operand"):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"dimension mismatch: {what} has dimension {actual}, expected {expected}"
        )


class NotPositiveDefiniteError(ReproError):
    """A covariance matrix is not symmetric positive definite."""


class IntegrationError(ReproError):
    """Numerical integration failed to produce a usable estimate."""


class CatalogError(ReproError):
    """A U-catalog is malformed, empty, or cannot serve a lookup."""


class CatalogLookupError(CatalogError):
    """No conservative catalog entry exists for the requested parameters."""


class IndexError_(ReproError):
    """Spatial index misuse (duplicate ids, unknown id, wrong dimension)."""


class DatabaseLoadError(ReproError):
    """A persisted database artifact is missing, truncated, or corrupt.

    Always names the offending path and the underlying failure, so a
    botched deployment artifact surfaces as one clear message instead of
    a raw unpickling/IO traceback.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"cannot load database from {self.path}: {reason}")


class ServiceError(ReproError):
    """Base class for errors raised by the embedded query service."""


class OverloadedError(ServiceError):
    """The service's admission queue is full; the request was rejected.

    The service itself never raises this at callers — it resolves the
    request with a typed ``overloaded`` response carrying this error —
    but the class is public so clients can re-raise uniformly.
    """

    def __init__(self, queue_size: int):
        self.queue_size = queue_size
        super().__init__(
            f"request rejected: admission queue is full ({queue_size} pending)"
        )


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before execution could start."""

    def __init__(self, deadline_seconds: float, waited_seconds: float):
        self.deadline_seconds = deadline_seconds
        self.waited_seconds = waited_seconds
        super().__init__(
            f"deadline of {deadline_seconds * 1e3:.1f}ms exceeded after "
            f"waiting {waited_seconds * 1e3:.1f}ms in the queue"
        )


class ServiceClosedError(ServiceError):
    """The service was closed; no further requests are accepted."""


class LoadError(ReproError):
    """Invalid load-harness usage: a malformed scenario spec, a sweep
    without rates, or a runner driven against the wrong service mode."""


class ShardError(ReproError):
    """A shard worker process failed while executing its slice of a query.

    Carries enough context to tell *which* shard died and on which query,
    so a batch caller using ``return_errors=True`` can retry or report the
    affected queries while keeping every surviving shard's results.
    """

    def __init__(self, shard_id: int, query_index: int, reason: str):
        self.shard_id = shard_id
        self.query_index = query_index
        self.reason = reason
        super().__init__(
            f"shard {shard_id} failed on query {query_index}: {reason}"
        )


class QueryError(ReproError):
    """Invalid probabilistic query specification."""


class InvalidThresholdError(QueryError):
    """Probability threshold outside the open interval required by the query."""

    def __init__(self, theta: float, low: float = 0.0, high: float = 1.0):
        self.theta = theta
        super().__init__(
            f"probability threshold must satisfy {low} < theta < {high}, got {theta}"
        )

"""R*-tree split algorithms (Beckmann et al. 1990), decoupled from nodes.

The functions here operate on plain arrays of rectangle bounds and return
index partitions, so they are unit-testable without building trees.

``rstar_split`` picks the axis whose candidate distributions have the
smallest total margin (perimeter), then the distribution along that axis
with the least overlap between the two groups, breaking ties by combined
volume.  Prefix/suffix cumulative bounds make each axis O(M·d) instead of
O(M²·d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.geometry.mbr import Rect

__all__ = ["SplitDecision", "rstar_split"]


@dataclass(frozen=True)
class SplitDecision:
    """Outcome of a split: two disjoint index groups covering all inputs."""

    group_a: tuple[int, ...]
    group_b: tuple[int, ...]
    axis: int
    overlap: float
    volume: float
    margin: float


def _distribution_metrics(
    lows: np.ndarray, highs: np.ndarray, order: np.ndarray, min_entries: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(margins, overlaps, volumes) for every valid split of one ordering.

    Split position k means the first group takes ``order[:k]``; valid k
    ranges over ``min_entries .. count − min_entries``.
    """
    ordered_lows = lows[order]
    ordered_highs = highs[order]
    prefix_low = np.minimum.accumulate(ordered_lows, axis=0)
    prefix_high = np.maximum.accumulate(ordered_highs, axis=0)
    suffix_low = np.minimum.accumulate(ordered_lows[::-1], axis=0)[::-1]
    suffix_high = np.maximum.accumulate(ordered_highs[::-1], axis=0)[::-1]

    count = order.size
    ks = np.arange(min_entries, count - min_entries + 1)
    a_low, a_high = prefix_low[ks - 1], prefix_high[ks - 1]
    b_low, b_high = suffix_low[ks], suffix_high[ks]

    margins = np.sum(a_high - a_low, axis=1) + np.sum(b_high - b_low, axis=1)
    gap = np.clip(np.minimum(a_high, b_high) - np.maximum(a_low, b_low), 0.0, None)
    overlaps = np.prod(gap, axis=1)
    volumes = np.prod(a_high - a_low, axis=1) + np.prod(b_high - b_low, axis=1)
    return margins, overlaps, volumes


def rstar_split(rects: list[Rect], min_entries: int) -> SplitDecision:
    """Partition ``rects`` into two groups per the R* split criteria.

    Parameters
    ----------
    rects:
        The overflowing node's entry rectangles (length M + 1).
    min_entries:
        Minimum entries per resulting node (m); both groups respect it.
    """
    count = len(rects)
    if count < 2 * min_entries:
        raise IndexError_(
            f"cannot split {count} entries with min_entries={min_entries}"
        )
    lows = np.array([r.lows for r in rects])
    highs = np.array([r.highs for r in rects])
    dim = lows.shape[1]

    # --- ChooseSplitAxis: minimize total margin across distributions.
    best_axis = -1
    best_axis_margin = float("inf")
    best_orders: tuple[np.ndarray, np.ndarray] | None = None
    for axis in range(dim):
        by_low = np.lexsort((highs[:, axis], lows[:, axis]))
        by_high = np.lexsort((lows[:, axis], highs[:, axis]))
        margin = 0.0
        for order in (by_low, by_high):
            margins, _, _ = _distribution_metrics(lows, highs, order, min_entries)
            margin += float(margins.sum())
        if margin < best_axis_margin:
            best_axis_margin = margin
            best_axis = axis
            best_orders = (by_low, by_high)

    assert best_orders is not None  # dim >= 1 guarantees one axis won

    # --- ChooseSplitIndex: least overlap, ties by least combined volume,
    # final ties (common with degenerate point data) by least margin.
    best: SplitDecision | None = None
    for order in best_orders:
        margins, overlaps, volumes = _distribution_metrics(
            lows, highs, order, min_entries
        )
        for slot, k in enumerate(range(min_entries, count - min_entries + 1)):
            key = (float(overlaps[slot]), float(volumes[slot]), float(margins[slot]))
            if best is None or key < (best.overlap, best.volume, best.margin):
                best = SplitDecision(
                    tuple(int(i) for i in order[:k]),
                    tuple(int(i) for i in order[k:]),
                    best_axis,
                    *key,
                )
    assert best is not None
    return best

"""A uniform grid (spatial hashing) index baseline.

Cells partition a fixed bounding region; points outside the region are
clamped into the boundary cells, so the index remains correct (if slower)
for out-of-bounds data.  Serves as an ablation partner for the R*-tree:
grids shine on uniformly distributed low-dimensional data and degrade on
skewed or medium-dimensional data — the road/Corel contrast of the paper.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex

__all__ = ["GridIndex"]

_ArrayLike = Sequence[float] | np.ndarray


class GridIndex(SpatialIndex):
    """Fixed uniform grid over ``bounds`` with ``cells_per_dim`` cells per axis."""

    def __init__(self, bounds: Rect, cells_per_dim: int = 64):
        super().__init__(bounds.dim)
        if cells_per_dim < 1:
            raise IndexError_(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        if bounds.dim > 8 and cells_per_dim > 4:
            raise IndexError_(
                f"{cells_per_dim}^{bounds.dim} cells is impractical; use fewer "
                "cells per dimension or the R*-tree for high dimensions"
            )
        self.bounds = bounds
        self.cells_per_dim = int(cells_per_dim)
        widths = bounds.extents / cells_per_dim
        if np.any(widths <= 0):
            raise IndexError_(
                f"bounds must have positive extent on every axis, got {bounds}"
            )
        self._widths = widths
        self._cells: dict[tuple[int, ...], dict[int, np.ndarray]] = {}
        self._points: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Cell addressing
    # ------------------------------------------------------------------

    def _cell_of(self, point: np.ndarray) -> tuple[int, ...]:
        raw = (point - self.bounds.lows) / self._widths
        clamped = np.clip(np.floor(raw).astype(int), 0, self.cells_per_dim - 1)
        return tuple(int(c) for c in clamped)

    def _cell_range(self, rect: Rect) -> list[range]:
        lows = np.clip(
            np.floor((rect.lows - self.bounds.lows) / self._widths).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        highs = np.clip(
            np.floor((rect.highs - self.bounds.lows) / self._widths).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        return [range(int(lo), int(hi) + 1) for lo, hi in zip(lows, highs)]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj_id: int, point: _ArrayLike) -> None:
        p = self._validate_point(point)
        if obj_id in self._points:
            raise IndexError_(f"duplicate object id {obj_id!r}")
        self._points[obj_id] = p
        self._cells.setdefault(self._cell_of(p), {})[obj_id] = p

    def delete(self, obj_id: int) -> None:
        try:
            p = self._points.pop(obj_id)
        except KeyError:
            raise IndexError_(f"unknown object id {obj_id!r}") from None
        cell = self._cell_of(p)
        bucket = self._cells[cell]
        del bucket[obj_id]
        if not bucket:
            del self._cells[cell]

    def get(self, obj_id: int) -> np.ndarray:
        try:
            return self._points[obj_id]
        except KeyError:
            raise IndexError_(f"unknown object id {obj_id!r}") from None

    def ids(self) -> list[int]:
        return sorted(self._points)

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search_rect(self, rect: Rect) -> list[int]:
        self._validate_rect(rect)
        self.stats.queries += 1
        hits: list[int] = []
        for cell in itertools.product(*self._cell_range(rect)):
            bucket = self._cells.get(cell)
            if bucket is None:
                continue
            self.stats.node_accesses += 1
            for obj_id, p in bucket.items():
                self.stats.entries_examined += 1
                if rect.contains_point(p):
                    hits.append(obj_id)
        return hits

    def knn(self, point: _ArrayLike, k: int) -> list[tuple[int, float]]:
        """Best-first over cells by MINDIST, identical contract to the R*-tree."""
        p = self._validate_point(point)
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.queries += 1
        counter = itertools.count()
        heap: list[tuple[float, int, tuple[int, ...] | None, int | None]] = []
        for cell in self._cells:
            rect = self._cell_rect(cell)
            heapq.heappush(heap, (rect.min_distance(p), next(counter), cell, None))
        results: list[tuple[int, float]] = []
        while heap and len(results) < k:
            distance, _, cell, obj_id = heapq.heappop(heap)
            if cell is None:
                results.append((obj_id, distance))  # type: ignore[arg-type]
                continue
            self.stats.node_accesses += 1
            for candidate_id, candidate in self._cells[cell].items():
                self.stats.entries_examined += 1
                heapq.heappush(
                    heap,
                    (
                        float(np.linalg.norm(candidate - p)),
                        next(counter),
                        None,
                        candidate_id,
                    ),
                )
        return results

    def _cell_rect(self, cell: tuple[int, ...]) -> Rect:
        lows = self.bounds.lows + np.array(cell) * self._widths
        return Rect(lows, lows + self._widths)

    def occupancy(self) -> float:
        """Fraction of possible cells that hold at least one point."""
        total = self.cells_per_dim**self._dim
        return len(self._cells) / total if total else math.nan

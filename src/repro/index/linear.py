"""The no-index baseline: a flat array scanned in full on every query.

Useful for correctness oracles in tests and for quantifying what the
R*-tree buys in Phase 1 (which the paper reports as negligible next to
Phase 3 — the ablation benchmark verifies that claim holds here too).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex

__all__ = ["LinearScanIndex"]

_ArrayLike = Sequence[float] | np.ndarray


class LinearScanIndex(SpatialIndex):
    """Stores points densely; answers every query by a vectorised scan."""

    def __init__(self, dim: int):
        super().__init__(dim)
        self._ids: list[int] = []
        self._rows: list[np.ndarray] = []
        self._id_to_slot: dict[int, int] = {}
        self._matrix: np.ndarray | None = None  # cache rebuilt lazily

    def _points_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = (
                np.vstack(self._rows) if self._rows else np.empty((0, self._dim))
            )
        return self._matrix

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, obj_id: int, point: _ArrayLike) -> None:
        p = self._validate_point(point)
        if obj_id in self._id_to_slot:
            raise IndexError_(f"duplicate object id {obj_id!r}")
        self._id_to_slot[obj_id] = len(self._ids)
        self._ids.append(obj_id)
        self._rows.append(p)
        self._matrix = None

    def delete(self, obj_id: int) -> None:
        slot = self._id_to_slot.pop(obj_id, None)
        if slot is None:
            raise IndexError_(f"unknown object id {obj_id!r}")
        last = len(self._ids) - 1
        if slot != last:
            self._ids[slot] = self._ids[last]
            self._rows[slot] = self._rows[last]
            self._id_to_slot[self._ids[slot]] = slot
        self._ids.pop()
        self._rows.pop()
        self._matrix = None

    def get(self, obj_id: int) -> np.ndarray:
        slot = self._id_to_slot.get(obj_id)
        if slot is None:
            raise IndexError_(f"unknown object id {obj_id!r}")
        return self._rows[slot]

    def ids(self) -> list[int]:
        return sorted(self._id_to_slot)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search_rect(self, rect: Rect) -> list[int]:
        self._validate_rect(rect)
        self.stats.queries += 1
        pts = self._points_matrix()
        self.stats.node_accesses += 1
        self.stats.entries_examined += len(self._ids)
        mask = rect.contains_points(pts) if len(self._ids) else np.array([], bool)
        return [self._ids[i] for i in np.nonzero(mask)[0]]

    def range_search_sphere(self, center: _ArrayLike, radius: float) -> list[int]:
        c = self._validate_point(center)
        if radius < 0:
            raise IndexError_(f"radius must be >= 0, got {radius}")
        self.stats.queries += 1
        pts = self._points_matrix()
        self.stats.node_accesses += 1
        self.stats.entries_examined += len(self._ids)
        if not len(self._ids):
            return []
        deltas = pts - c
        mask = np.einsum("ij,ij->i", deltas, deltas) <= radius * radius
        return [self._ids[i] for i in np.nonzero(mask)[0]]

    def knn(self, point: _ArrayLike, k: int) -> list[tuple[int, float]]:
        p = self._validate_point(point)
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        self.stats.queries += 1
        pts = self._points_matrix()
        self.stats.node_accesses += 1
        self.stats.entries_examined += len(self._ids)
        if not len(self._ids):
            return []
        distances = np.linalg.norm(pts - p, axis=1)
        k_eff = min(k, len(self._ids))
        order = np.argpartition(distances, k_eff - 1)[:k_eff]
        order = order[np.argsort(distances[order], kind="stable")]
        return [(self._ids[i], float(distances[i])) for i in order]

"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

Leutenegger, Lopez, Edgington (1997): sort the points along the first
dimension into vertical slabs of ≈ √(n/M) · … pages, recurse on the
remaining dimensions inside each slab, pack leaves at capacity, then pack
the leaves themselves the same way level by level.  Produces a tree with
near-100 % fill and far better node locality than repeated insertion —
it is how the benchmark datasets are loaded.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import IndexError_

__all__ = ["str_pack", "tile_points"]


def tile_points(
    order: np.ndarray, points: np.ndarray, capacity: int, axis: int
) -> list[np.ndarray]:
    """Recursively tile ``order`` (an index array into ``points``) into runs
    of at most ``capacity``, sorting by ``axis`` then slicing into
    ⌈(n/capacity)^(1/(d−axis))⌉ slabs that are tiled on the next axis.
    """
    n = order.size
    if n <= capacity:
        return [order]
    dim = points.shape[1]
    sorted_order = order[np.argsort(points[order, axis], kind="stable")]
    if axis == dim - 1:
        return [
            sorted_order[start : start + capacity]
            for start in range(0, n, capacity)
        ]
    pages = math.ceil(n / capacity)
    slabs = math.ceil(pages ** (1.0 / (dim - axis)))
    per_slab = math.ceil(n / slabs)
    tiles: list[np.ndarray] = []
    for start in range(0, n, per_slab):
        tiles.extend(
            tile_points(sorted_order[start : start + per_slab], points, capacity, axis + 1)
        )
    return tiles


def str_pack(ids: Sequence[int], points: np.ndarray, capacity: int, *, node_cls, entry_cls):
    """Build a packed tree and return its root node.

    ``node_cls`` / ``entry_cls`` are the R*-tree's private node and entry
    types — passed in to keep this module free of circular imports.
    """
    pts = np.asarray(points, dtype=float)
    n = pts.shape[0]
    if n == 0:
        return node_cls(level=0)
    if capacity < 2:
        raise IndexError_(f"capacity must be >= 2, got {capacity}")

    id_array = np.asarray(list(ids))
    tiles = tile_points(np.arange(n), pts, capacity, axis=0)
    nodes = [
        node_cls(
            0,
            [
                entry_cls.for_object(int(id_array[i]), pts[i])
                for i in tile
            ],
        )
        for tile in tiles
    ]
    level = 0
    while len(nodes) > 1:
        level += 1
        centers = np.array([node.mbr().center for node in nodes])
        groups = tile_points(np.arange(len(nodes)), centers, capacity, axis=0)
        nodes = [
            node_cls(level, [entry_cls.for_child(nodes[i]) for i in group])
            for group in groups
        ]
    root = nodes[0]
    return root


def hilbert_pack(
    ids: Sequence[int],
    points: np.ndarray,
    capacity: int,
    *,
    node_cls,
    entry_cls,
    bits: int = 10,
):
    """Hilbert-curve bulk loading (Kamel & Faloutsos 1993).

    Points are sorted by their Hilbert index and chopped into full leaves;
    upper levels chunk their children in the same order.  Compared to STR,
    the space-filling curve keeps leaf pages compact on strongly skewed
    data — the ablation benchmark measures the difference in node accesses
    on the road network.
    """
    pts = np.asarray(points, dtype=float)
    n = pts.shape[0]
    if n == 0:
        return node_cls(level=0)
    if capacity < 2:
        raise IndexError_(f"capacity must be >= 2, got {capacity}")
    from repro.index.hilbert import hilbert_order

    id_array = np.asarray(list(ids))
    order = hilbert_order(pts, bits=bits)
    nodes = [
        node_cls(
            0,
            [
                entry_cls.for_object(int(id_array[i]), pts[i])
                for i in order[start : start + capacity]
            ],
        )
        for start in range(0, n, capacity)
    ]
    level = 0
    while len(nodes) > 1:
        level += 1
        nodes = [
            node_cls(
                level,
                [entry_cls.for_child(child) for child in nodes[start : start + capacity]],
            )
            for start in range(0, len(nodes), capacity)
        ]
    return nodes[0]

"""Common interface and statistics for spatial indexes."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.mbr import Rect

__all__ = ["SpatialIndex", "IndexStats"]

_ArrayLike = Sequence[float] | np.ndarray


@dataclass
class IndexStats:
    """Counters accumulated across operations (reset with :meth:`reset`).

    ``node_accesses`` counts visited index nodes (grid cells for the grid
    index, the whole dataset once per query for the linear scan); it is the
    abstract analogue of page reads in the paper's disk-based setting.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    entries_examined: int = 0
    queries: int = 0
    splits: int = 0
    reinsertions: int = 0
    _extra: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.node_accesses = 0
        self.leaf_accesses = 0
        self.entries_examined = 0
        self.queries = 0
        self.splits = 0
        self.reinsertions = 0
        self._extra.clear()


class SpatialIndex(abc.ABC):
    """A dynamic index over d-dimensional points with integer-like ids."""

    def __init__(self, dim: int):
        if dim < 1:
            raise IndexError_(f"dimension must be >= 1, got {dim}")
        self._dim = int(dim)
        self.stats = IndexStats()

    @property
    def dim(self) -> int:
        return self._dim

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def insert(self, obj_id: int, point: _ArrayLike) -> None:
        """Add a point.  Raises on duplicate id or wrong dimension."""

    @abc.abstractmethod
    def delete(self, obj_id: int) -> None:
        """Remove a point.  Raises if the id is unknown."""

    @abc.abstractmethod
    def get(self, obj_id: int) -> np.ndarray:
        """The stored point for ``obj_id``."""

    @abc.abstractmethod
    def ids(self) -> list[int]:
        """All indexed object ids, sorted."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of indexed points."""

    def bulk_load(self, ids: Iterable[int], points: np.ndarray) -> None:
        """Default bulk load: repeated insertion.  Subclasses may override."""
        pts = np.asarray(points, dtype=float)
        for obj_id, point in zip(ids, pts):
            self.insert(obj_id, point)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def range_search_rect(self, rect: Rect) -> list[int]:
        """Ids of points inside the (closed) rectangle."""

    def range_search_sphere(self, center: _ArrayLike, radius: float) -> list[int]:
        """Ids of points within ``radius`` of ``center``.

        Default: rectangle search on the bounding box, refined by exact
        distance.  Tree indexes override with sphere-aware pruning.
        """
        c = np.asarray(center, dtype=float)
        box = Rect.from_center(c, np.full(self._dim, radius))
        candidate_ids = self.range_search_rect(box)
        r2 = radius * radius
        hits = []
        for obj_id in candidate_ids:
            gap = self.get(obj_id) - c
            if float(gap @ gap) <= r2:
                hits.append(obj_id)
        return hits

    @abc.abstractmethod
    def knn(self, point: _ArrayLike, k: int) -> list[tuple[int, float]]:
        """The k nearest ids with their distances, nearest first."""

    # ------------------------------------------------------------------
    # Shared validation helpers
    # ------------------------------------------------------------------

    def _validate_point(self, point: _ArrayLike) -> np.ndarray:
        p = np.asarray(point, dtype=float)
        if p.shape != (self._dim,):
            raise IndexError_(
                f"point must have shape ({self._dim},), got {p.shape}"
            )
        if not np.all(np.isfinite(p)):
            raise IndexError_(f"point must be finite, got {p}")
        return p

    def _validate_rect(self, rect: Rect) -> Rect:
        if rect.dim != self._dim:
            raise IndexError_(
                f"query rectangle has dimension {rect.dim}, index has {self._dim}"
            )
        return rect

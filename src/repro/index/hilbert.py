"""d-dimensional Hilbert curve encoding (Skilling's algorithm, 2004).

Used as an alternative bulk-loading order for the R*-tree: sorting points
by their Hilbert index groups spatially close points into the same leaf,
like STR but with better worst-case locality on skewed data.  The encoder
is vectorised over points (loops run over bits and dimensions only).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_

__all__ = ["hilbert_index", "hilbert_order"]


def hilbert_index(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert curve index of integer grid coordinates.

    Parameters
    ----------
    coords:
        (n, d) array of non-negative integers, each < 2**bits.
    bits:
        Bits of resolution per dimension.  ``d * bits`` must be <= 62 so
        the result fits an int64.

    Returns
    -------
    (n,) int64 array of positions along the d-dimensional Hilbert curve.
    """
    grid = np.asarray(coords)
    if grid.ndim != 2 or grid.shape[0] == 0:
        raise IndexError_(f"coords must be a non-empty (n, d) array, got {grid.shape}")
    if not np.issubdtype(grid.dtype, np.integer):
        raise IndexError_(f"coords must be integers, got dtype {grid.dtype}")
    n, dim = grid.shape
    if bits < 1 or dim * bits > 62:
        raise IndexError_(
            f"need 1 <= bits and dim*bits <= 62, got bits={bits}, dim={dim}"
        )
    if np.any(grid < 0) or np.any(grid >= (1 << bits)):
        raise IndexError_(f"coordinates must lie in [0, 2^{bits})")

    # Skilling's AxesToTranspose, vectorised over rows.
    x = grid.astype(np.int64).T.copy()  # shape (d, n)
    m = np.int64(1) << (bits - 1)

    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            flag = (x[i] & q) != 0
            # Where the bit is set: invert low bits of x[0];
            # otherwise: exchange low bits of x[0] and x[i].
            x[0] = np.where(flag, x[0] ^ p, x[0])
            t = np.where(flag, 0, (x[0] ^ x[i]) & p)
            x[0] ^= t
            x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = np.zeros(n, dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((x[dim - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for i in range(dim):
        x[i] ^= t

    # Interleave the transposed bits, most significant first.
    index = np.zeros(n, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for i in range(dim):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index


def hilbert_order(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Argsort of float points along the Hilbert curve.

    Points are normalized into the ``2^bits`` grid spanned by their own
    bounding box before encoding; degenerate dimensions collapse to cell 0.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise IndexError_(f"points must be a non-empty (n, d) array, got {pts.shape}")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0] = 1.0
    cells = np.minimum(
        ((pts - lo) / span * (1 << bits)).astype(np.int64), (1 << bits) - 1
    )
    return np.argsort(hilbert_index(cells, bits), kind="stable")

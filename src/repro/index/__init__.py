"""Spatial index substrates (Phase 1 of query processing).

The paper retrieves candidates with an R*-tree (Katayama's HnRStar
implementation, 1 KB pages).  This package provides a from-scratch
pure-Python equivalent plus two baselines behind one protocol:

- :class:`~repro.index.rtree.RStarTree` — insertion with R* choose-subtree,
  margin-driven split and forced reinsertion; STR bulk loading; rectangle
  and sphere range search; best-first k-NN;
- :class:`~repro.index.grid.GridIndex` — a uniform grid (spatial hashing)
  baseline;
- :class:`~repro.index.linear.LinearScanIndex` — the no-index baseline.

All searches return object ids; the point payloads live in the index and
can be fetched back via ``get``/``points_of``.
"""

from repro.index.base import IndexStats, SpatialIndex
from repro.index.rtree import RStarTree
from repro.index.grid import GridIndex
from repro.index.linear import LinearScanIndex

__all__ = ["SpatialIndex", "IndexStats", "RStarTree", "GridIndex", "LinearScanIndex"]

"""A from-scratch R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).

This is the library's default Phase-1 index, standing in for the C
R*-tree the paper used.  It implements the full dynamic algorithm:

- **ChooseSubtree** — least overlap enlargement when children are leaves,
  least volume enlargement otherwise;
- **OverflowTreatment** — forced reinsertion of the 30 % of entries
  farthest from the node centre, once per level per insertion, before
  resorting to a split;
- **Split** — margin-driven axis choice + least-overlap distribution
  (:func:`repro.index.split.rstar_split`);
- **Delete** with tree condensation and orphan reinsertion;
- **STR bulk loading** (:mod:`repro.index.bulk`);
- rectangle and sphere range search plus best-first k-NN.

Statistics (node accesses, splits, reinsertions) accumulate in
``self.stats`` for the benchmark harness.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex
from repro.index.split import rstar_split

__all__ = ["RStarTree"]

_ArrayLike = Sequence[float] | np.ndarray

#: Fraction of entries evicted by forced reinsertion (the R* paper's 30 %).
_REINSERT_FRACTION = 0.3


class _Entry:
    """One slot of a node: either (rect, child) or (rect, obj_id, point)."""

    __slots__ = ("rect", "child", "obj_id", "point")

    def __init__(
        self,
        rect: Rect,
        child: "_Node | None" = None,
        obj_id: int | None = None,
        point: np.ndarray | None = None,
    ):
        self.rect = rect
        self.child = child
        self.obj_id = obj_id
        self.point = point

    @classmethod
    def for_object(cls, obj_id: int, point: np.ndarray) -> "_Entry":
        return cls(Rect.from_point(point), obj_id=obj_id, point=point)

    @classmethod
    def for_child(cls, child: "_Node") -> "_Entry":
        return cls(child.mbr(), child=child)


class _Node:
    """A tree node; ``level`` 0 means leaf."""

    __slots__ = ("level", "entries")

    def __init__(self, level: int, entries: list[_Entry] | None = None):
        self.level = level
        self.entries: list[_Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def mbr(self) -> Rect:
        return Rect.union_of(e.rect for e in self.entries)


class RStarTree(SpatialIndex):
    """Dynamic R*-tree over d-dimensional points.

    Parameters
    ----------
    dim:
        Dimensionality of indexed points.
    max_entries:
        Node capacity M.  The default 50 approximates the paper's 1 KB
        pages holding 2-D entries.
    min_entries:
        Minimum fill m; defaults to ⌈0.4·M⌉ per the R* recommendation.
    """

    def __init__(self, dim: int, max_entries: int = 50, min_entries: int | None = None):
        super().__init__(dim)
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        resolved_min = (
            min_entries if min_entries is not None else max(2, math.ceil(0.4 * max_entries))
        )
        if not 2 <= resolved_min <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [2, max_entries/2], got {resolved_min}"
            )
        self.max_entries = int(max_entries)
        self.min_entries = int(resolved_min)
        self._root = _Node(level=0)
        self._points: dict[int, np.ndarray] = {}
        self._reinserted_levels: set[int] = set()
        # STR packing may legally leave trailing nodes under min fill; the
        # invariant checker skips fill-factor checks on packed trees.
        self._packed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def ids(self) -> list[int]:
        return sorted(self._points)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._root.level + 1

    def get(self, obj_id: int) -> np.ndarray:
        try:
            return self._points[obj_id]
        except KeyError:
            raise IndexError_(f"unknown object id {obj_id!r}") from None

    def node_count(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return total

    def quality_metrics(self) -> dict[str, float]:
        """Structure-quality numbers used by the bulk-loading ablation.

        Returns average node fill (fraction of capacity), total leaf MBR
        volume (dead space proxy), and total pairwise sibling-overlap
        volume at the leaf level (the quantity the R* split minimizes).
        """
        fills: list[float] = []
        leaf_volume = 0.0
        overlap = 0.0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is not self._root:
                fills.append(len(node.entries) / self.max_entries)
            if node.is_leaf:
                if node.entries:
                    leaf_volume += node.mbr().volume()
            else:
                rects = [e.rect for e in node.entries]
                if node.level == 1:
                    for i in range(len(rects)):
                        for j in range(i + 1, len(rects)):
                            overlap += rects[i].intersection_volume(rects[j])
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]
        return {
            "avg_fill": float(np.mean(fills)) if fills else 1.0,
            "leaf_volume": leaf_volume,
            "leaf_sibling_overlap": overlap,
        }

    def check_invariants(self) -> None:
        """Validate structural invariants; raises IndexError_ on violation.

        Checks: rect containment of children, level monotonicity, fill
        factors (root exempt), and that stored ids match leaf entries.
        """
        seen: set[int] = set()

        def visit(node: _Node, is_root: bool) -> None:
            count = len(node.entries)
            low = 1 if self._packed else self.min_entries
            if not is_root and not low <= count <= self.max_entries:
                raise IndexError_(
                    f"node at level {node.level} has {count} entries, "
                    f"outside [{low}, {self.max_entries}]"
                )
            if is_root and count > self.max_entries:
                raise IndexError_(f"root overflows with {count} entries")
            for entry in node.entries:
                if node.is_leaf:
                    if entry.obj_id is None or entry.point is None:
                        raise IndexError_("leaf entry missing object payload")
                    if entry.obj_id in seen:
                        raise IndexError_(f"duplicate id {entry.obj_id} in tree")
                    seen.add(entry.obj_id)
                else:
                    child = entry.child
                    if child is None:
                        raise IndexError_("internal entry missing child")
                    if child.level != node.level - 1:
                        raise IndexError_(
                            f"child level {child.level} under level {node.level}"
                        )
                    if child.entries and not entry.rect.contains_rect(child.mbr()):
                        raise IndexError_("entry rect does not cover child MBR")
                    visit(child, False)

        if self._root.entries:
            visit(self._root, True)
        if seen != set(self._points):
            raise IndexError_(
                f"tree ids and point table diverge: {len(seen)} vs {len(self._points)}"
            )

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, obj_id: int, point: _ArrayLike) -> None:
        p = self._validate_point(point)
        if obj_id in self._points:
            raise IndexError_(f"duplicate object id {obj_id!r}")
        self._points[obj_id] = p
        self._reinserted_levels = set()
        self._insert_entry(_Entry.for_object(obj_id, p), target_level=0)

    def bulk_load(
        self, ids: Iterable[int], points: np.ndarray, *, method: str = "str"
    ) -> None:
        """Bulk load an empty tree.

        ``method`` selects the packing order: ``"str"`` (Sort-Tile-
        Recursive, the default) or ``"hilbert"`` (Hilbert-curve order).
        """
        from repro.index.bulk import hilbert_pack, str_pack

        if method not in ("str", "hilbert"):
            raise IndexError_(
                f"method must be 'str' or 'hilbert', got {method!r}"
            )
        if len(self) != 0:
            raise IndexError_("bulk_load requires an empty tree")
        pts = np.asarray(points, dtype=float)
        id_list = list(ids)
        if pts.ndim != 2 or pts.shape[1] != self._dim:
            raise IndexError_(
                f"points must have shape (n, {self._dim}), got {pts.shape}"
            )
        if len(id_list) != pts.shape[0]:
            raise IndexError_(
                f"got {len(id_list)} ids for {pts.shape[0]} points"
            )
        if len(set(id_list)) != len(id_list):
            raise IndexError_("duplicate ids in bulk load")
        for obj_id, row in zip(id_list, pts):
            if not np.all(np.isfinite(row)):
                raise IndexError_(f"point for id {obj_id!r} is not finite")
            self._points[obj_id] = row.copy()
        pack = str_pack if method == "str" else hilbert_pack
        self._root = pack(
            id_list, pts, self.max_entries, node_cls=_Node, entry_cls=_Entry
        )
        self._packed = True

    def _insert_entry(self, entry: _Entry, target_level: int) -> None:
        # Descend to the target level, remembering (parent, parent_entry).
        path: list[tuple[_Node, _Entry]] = []
        node = self._root
        while node.level > target_level:
            chosen = self._choose_subtree(node, entry.rect)
            path.append((node, chosen))
            node = chosen.child  # type: ignore[assignment]
        node.entries.append(entry)
        # Enlarge ancestor rectangles to cover the new entry.
        for _, parent_entry in path:
            parent_entry.rect = parent_entry.rect.union(entry.rect)
        self._handle_overflow(node, path)

    def _choose_subtree(self, node: _Node, rect: Rect) -> _Entry:
        children = node.entries
        lows = np.array([e.rect.lows for e in children])
        highs = np.array([e.rect.highs for e in children])
        volumes = np.prod(highs - lows, axis=1)
        union_lows = np.minimum(lows, rect.lows)
        union_highs = np.maximum(highs, rect.highs)
        enlargements = np.prod(union_highs - union_lows, axis=1) - volumes
        if node.level == 1:
            # Children are leaves: minimize overlap enlargement, then
            # volume enlargement, then volume (R* CS2).  Computed as a
            # pairwise (M, M, d) tensor; M is the node capacity, so this
            # stays small.
            pair_gap = np.clip(
                np.minimum(highs[:, None, :], highs[None, :, :])
                - np.maximum(lows[:, None, :], lows[None, :, :]),
                0.0,
                None,
            )
            overlap_before = np.prod(pair_gap, axis=2)
            np.fill_diagonal(overlap_before, 0.0)
            enlarged_gap = np.clip(
                np.minimum(union_highs[:, None, :], highs[None, :, :])
                - np.maximum(union_lows[:, None, :], lows[None, :, :]),
                0.0,
                None,
            )
            overlap_after = np.prod(enlarged_gap, axis=2)
            np.fill_diagonal(overlap_after, 0.0)
            overlap_growth = overlap_after.sum(axis=1) - overlap_before.sum(axis=1)
            best = min(
                range(len(children)),
                key=lambda i: (overlap_growth[i], enlargements[i], volumes[i]),
            )
            return children[best]
        # Children are internal: minimize volume enlargement, then volume.
        best = min(
            range(len(children)), key=lambda i: (enlargements[i], volumes[i])
        )
        return children[best]

    def _handle_overflow(self, node: _Node, path: list[tuple[_Node, _Entry]]) -> None:
        while len(node.entries) > self.max_entries:
            is_root = not path
            if not is_root and node.level not in self._reinserted_levels:
                self._reinserted_levels.add(node.level)
                self._force_reinsert(node, path)
                return
            sibling = self._split_node(node)
            self.stats.splits += 1
            if is_root:
                new_root = _Node(level=node.level + 1)
                new_root.entries = [_Entry.for_child(node), _Entry.for_child(sibling)]
                self._root = new_root
                return
            parent, parent_entry = path.pop()
            parent_entry.rect = node.mbr()
            parent.entries.append(_Entry.for_child(sibling))
            self._tighten_path(path)
            node = parent

    def _split_node(self, node: _Node) -> _Node:
        decision = rstar_split([e.rect for e in node.entries], self.min_entries)
        entries = node.entries
        node.entries = [entries[i] for i in decision.group_a]
        return _Node(node.level, [entries[i] for i in decision.group_b])

    def _force_reinsert(self, node: _Node, path: list[tuple[_Node, _Entry]]) -> None:
        center = node.mbr().center
        count = max(1, int(_REINSERT_FRACTION * len(node.entries)))
        by_distance = sorted(
            node.entries,
            key=lambda e: float(np.sum((e.rect.center - center) ** 2)),
        )
        keep, evicted = by_distance[:-count], by_distance[-count:]
        node.entries = keep
        # Shrink ancestor rects before reinserting ("close reinsert" order:
        # nearest evicted entry first).
        parent_path = list(path)
        if parent_path:
            _, parent_entry = parent_path[-1]
            parent_entry.rect = node.mbr()
            self._tighten_path(parent_path[:-1])
        self.stats.reinsertions += len(evicted)
        for entry in evicted:
            self._insert_entry(entry, target_level=node.level)

    def _tighten_path(self, path: list[tuple[_Node, _Entry]]) -> None:
        """Recompute exact rects bottom-up along a (node, entry) path."""
        for parent, parent_entry in reversed(path):
            child = parent_entry.child
            if child is not None and child.entries:
                parent_entry.rect = child.mbr()

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, obj_id: int) -> None:
        if obj_id not in self._points:
            raise IndexError_(f"unknown object id {obj_id!r}")
        point = self._points[obj_id]
        found = self._find_leaf(self._root, obj_id, point, [])
        if found is None:  # pragma: no cover - table/tree always agree
            raise IndexError_(f"id {obj_id!r} in table but not in tree")
        leaf, path = found
        leaf.entries = [e for e in leaf.entries if e.obj_id != obj_id]
        del self._points[obj_id]
        self._condense(leaf, path)

    def _find_leaf(
        self,
        node: _Node,
        obj_id: int,
        point: np.ndarray,
        path: list[tuple[_Node, _Entry]],
    ) -> tuple[_Node, list[tuple[_Node, _Entry]]] | None:
        if node.is_leaf:
            if any(e.obj_id == obj_id for e in node.entries):
                return node, path
            return None
        for entry in node.entries:
            if entry.rect.contains_point(point):
                found = self._find_leaf(
                    entry.child, obj_id, point, path + [(node, entry)]
                )
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node, path: list[tuple[_Node, _Entry]]) -> None:
        orphans: list[tuple[int, _Entry]] = []
        current = node
        current_path = list(path)
        while current_path:
            parent, parent_entry = current_path.pop()
            if len(current.entries) < self.min_entries:
                parent.entries.remove(parent_entry)
                orphans.extend((current.level, e) for e in current.entries)
            else:
                if current.entries:
                    parent_entry.rect = current.mbr()
            self._tighten_path(current_path)
            current = parent
        # Shrink the root when it is internal with a single child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
        if not self._root.is_leaf and not self._root.entries:
            self._root = _Node(level=0)
        for level, entry in orphans:
            self._reinserted_levels = set()
            self._insert_entry(entry, target_level=level)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_search_rect(self, rect: Rect) -> list[int]:
        self._validate_rect(rect)
        self.stats.queries += 1
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.is_leaf:
                self.stats.leaf_accesses += 1
                for entry in node.entries:
                    self.stats.entries_examined += 1
                    if rect.contains_point(entry.point):
                        hits.append(entry.obj_id)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    self.stats.entries_examined += 1
                    if rect.intersects(entry.rect):
                        stack.append(entry.child)  # type: ignore[arg-type]
        return hits

    def range_search_sphere(self, center: _ArrayLike, radius: float) -> list[int]:
        c = self._validate_point(center)
        if radius < 0:
            raise IndexError_(f"radius must be >= 0, got {radius}")
        self.stats.queries += 1
        r2 = radius * radius
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_accesses += 1
            if node.is_leaf:
                self.stats.leaf_accesses += 1
                for entry in node.entries:
                    self.stats.entries_examined += 1
                    gap = entry.point - c
                    if float(gap @ gap) <= r2:
                        hits.append(entry.obj_id)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    self.stats.entries_examined += 1
                    if entry.rect.min_distance(c) <= radius:
                        stack.append(entry.child)  # type: ignore[arg-type]
        return hits

    def knn(self, point: _ArrayLike, k: int) -> list[tuple[int, float]]:
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        browser = self.nearest_iter(point)
        return list(itertools.islice(browser, k))

    def nearest_iter(self, point: _ArrayLike):
        """Distance browsing: yield ``(obj_id, distance)`` nearest-first.

        The classic incremental nearest-neighbour algorithm (Hjaltason &
        Samet): a best-first heap over nodes and materialized objects.
        Consuming k items costs the same as a k-NN query, and the iterator
        can keep going — callers that do not know k in advance (e.g. the
        probabilistic NN candidate cut) stop exactly when a termination
        condition on the distance holds.
        """
        p = self._validate_point(point)
        self.stats.queries += 1
        counter = itertools.count()  # tie-breaker: heap never compares nodes
        heap: list[tuple[float, int, _Node | None, _Entry | None]] = [
            (0.0, next(counter), self._root, None)
        ]
        while heap:
            distance, _, node, entry = heapq.heappop(heap)
            if node is None:
                # A materialized object: by best-first order it is the next
                # nearest neighbour.
                yield (entry.obj_id, distance)  # type: ignore[union-attr]
                continue
            self.stats.node_accesses += 1
            if node.is_leaf:
                self.stats.leaf_accesses += 1
                for leaf_entry in node.entries:
                    self.stats.entries_examined += 1
                    gap = leaf_entry.point - p
                    heapq.heappush(
                        heap,
                        (float(np.linalg.norm(gap)), next(counter), None, leaf_entry),
                    )
            else:
                for child_entry in node.entries:
                    self.stats.entries_examined += 1
                    heapq.heappush(
                        heap,
                        (
                            child_entry.rect.min_distance(p),
                            next(counter),
                            child_entry.child,
                            None,
                        ),
                    )

"""Loaders for the paper's *real* datasets, for users who have the files.

This repository ships synthetic stand-ins (see DESIGN.md), but the
original files are publicly available; these loaders turn them into the
arrays the benchmarks consume:

- :func:`load_corel_color_moments` — the UCI KDD ``ColorMoments.asc``
  table (one image per line: id followed by nine floats);
- :func:`load_tiger_line_segments` — a whitespace/CSV file of 2-D segment
  endpoints (``x1 y1 x2 y2`` per line), returning their midpoints;
- :func:`normalize_to_square` — the paper's [0, extent]² normalization.

Pass the results straight to :class:`repro.SpatialDatabase` or to the
experiment runners via their ``points=``/``database=`` parameters.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError

__all__ = [
    "load_corel_color_moments",
    "load_tiger_line_segments",
    "normalize_to_square",
]


def _read_numeric_lines(path: str | Path, expected_fields: int) -> np.ndarray:
    """Parse a whitespace/comma separated numeric table, skipping comments."""
    rows: list[list[float]] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.replace(",", " ").split()
        if len(fields) != expected_fields:
            raise ReproError(
                f"{path}:{line_no}: expected {expected_fields} fields, got "
                f"{len(fields)}"
            )
        try:
            rows.append([float(f) for f in fields])
        except ValueError as exc:
            raise ReproError(f"{path}:{line_no}: non-numeric field") from exc
    if not rows:
        raise ReproError(f"{path} contains no data rows")
    return np.asarray(rows)


def load_corel_color_moments(path: str | Path) -> np.ndarray:
    """Load the UCI KDD Color Moments table: ``id f1 ... f9`` per line.

    Returns the (n, 9) feature matrix (ids are positional, as in the
    paper's experiments).
    """
    table = _read_numeric_lines(path, expected_fields=10)
    return table[:, 1:]


def load_tiger_line_segments(path: str | Path) -> np.ndarray:
    """Load 2-D line segments (``x1 y1 x2 y2`` per line) as midpoints.

    The paper "extracted the midpoint for each line segment then made a
    point set"; this does the same for any pre-extracted segment file.
    """
    table = _read_numeric_lines(path, expected_fields=4)
    return (table[:, :2] + table[:, 2:]) / 2.0


def normalize_to_square(points: np.ndarray, extent: float = 1000.0) -> np.ndarray:
    """Scale each dimension independently onto [0, extent] (the paper's
    normalization of the Long Beach set)."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] < 2:
        raise ReproError(
            f"points must be a (n >= 2, d) array, got shape {pts.shape}"
        )
    if extent <= 0:
        raise ReproError(f"extent must be > 0, got {extent}")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    if np.any(span == 0):
        raise ReproError("a dimension has zero extent; cannot normalize")
    return (pts - lo) / span * extent

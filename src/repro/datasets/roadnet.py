"""A synthetic road network standing in for TIGER Long Beach.

The paper's 2-D dataset is the set of road-segment *midpoints* of Long
Beach, CA (50,747 points, normalized to [0, 1000]²).  What the experiments
exercise is a strongly skewed, locally linear 2-D point distribution; this
module synthesizes one with the same cardinality and normalization from an
explicit street model:

1. **towns** — centre locations from a uniform process, sizes from a
   power law (a few big cities, many hamlets);
2. **local streets** — an axis-aligned street grid around each town centre
   (jittered spacing, extent ∝ town size), each street chopped into short
   segments whose midpoints are emitted;
3. **arterials** — roads along the minimum spanning tree of the towns
   (plus a few extra links), again chopped into segments.

Everything is driven by one seed, so datasets are reproducible; the exact
requested cardinality is met by deterministic subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["RoadNetwork", "long_beach_like"]

#: Cardinality of the paper's Long Beach midpoint set.
LONG_BEACH_SIZE = 50_747


@dataclass(frozen=True)
class RoadNetwork:
    """A generated road network: segments and their midpoints."""

    segments: np.ndarray  # (m, 2, 2): endpoint pairs
    midpoints: np.ndarray  # (n, 2)
    town_centers: np.ndarray  # (t, 2)

    @property
    def size(self) -> int:
        return self.midpoints.shape[0]


def _chop(p0: np.ndarray, p1: np.ndarray, segment_length: float) -> np.ndarray:
    """Split the segment p0→p1 into pieces of ≈ ``segment_length``;
    returns an array of (2, 2) endpoint pairs."""
    length = float(np.linalg.norm(p1 - p0))
    pieces = max(1, int(round(length / segment_length)))
    ts = np.linspace(0.0, 1.0, pieces + 1)
    knots = p0 + np.outer(ts, p1 - p0)
    return np.stack([knots[:-1], knots[1:]], axis=1)


def _town_streets(
    center: np.ndarray,
    radius: float,
    spacing: float,
    segment_length: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Jittered grid of streets clipped to a disc around ``center``."""
    segments = []
    for axis in (0, 1):
        offsets = np.arange(-radius, radius + spacing, spacing)
        offsets = offsets + rng.normal(0.0, 0.15 * spacing, size=offsets.size)
        for offset in offsets:
            half_span = np.sqrt(max(radius**2 - offset**2, 0.0))
            if half_span < segment_length:
                continue
            lo = np.array(center, dtype=float)
            hi = np.array(center, dtype=float)
            lo[axis] += offset
            hi[axis] += offset
            lo[1 - axis] -= half_span
            hi[1 - axis] += half_span
            segments.append(_chop(lo, hi, segment_length))
    return segments


def _spanning_arterials(centers: np.ndarray, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Town-connecting edges: MST plus a few shortcut links.

    Uses networkx when available; otherwise falls back to Prim's algorithm
    implemented inline (the result is the same tree).
    """
    n = centers.shape[0]
    try:
        import networkx as nx

        graph = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge(i, j, weight=float(np.linalg.norm(centers[i] - centers[j])))
        edges = list(nx.minimum_spanning_tree(graph).edges())
    except ImportError:  # pragma: no cover - networkx ships in the test env
        in_tree = {0}
        edges = []
        while len(in_tree) < n:
            best = None
            for i in in_tree:
                for j in range(n):
                    if j in in_tree:
                        continue
                    d = float(np.linalg.norm(centers[i] - centers[j]))
                    if best is None or d < best[0]:
                        best = (d, i, j)
            _, i, j = best
            edges.append((i, j))
            in_tree.add(j)
    # A few redundant links make the network look less tree-like.
    extras = max(1, n // 8)
    for _ in range(extras):
        i, j = rng.choice(n, size=2, replace=False)
        edges.append((int(i), int(j)))
    return edges


def long_beach_like(
    n: int = LONG_BEACH_SIZE,
    *,
    seed: int = 0,
    n_towns: int = 64,
    extent: float = 1000.0,
) -> RoadNetwork:
    """Generate the Long-Beach-like midpoint dataset.

    Parameters
    ----------
    n:
        Number of midpoints to return (default: the paper's 50,747).
    seed:
        Seed for every random choice in the construction.
    n_towns:
        Number of town centres.
    extent:
        Points are normalized to [0, extent]².
    """
    if n < 1:
        raise ReproError(f"n must be >= 1, got {n}")
    if n_towns < 2:
        raise ReproError(f"n_towns must be >= 2, got {n_towns}")
    rng = np.random.default_rng(seed)

    centers = rng.random((n_towns, 2)) * extent
    # Power-law town sizes: radius of the street grid.
    sizes = 20.0 + 140.0 * rng.pareto(2.5, size=n_towns)
    sizes = np.clip(sizes, 20.0, 220.0)

    all_segments: list[np.ndarray] = []
    for center, radius in zip(centers, sizes):
        spacing = rng.uniform(6.0, 14.0)
        all_segments.extend(
            _town_streets(center, radius, spacing, segment_length=8.0, rng=rng)
        )
    for i, j in _spanning_arterials(centers, rng):
        # Arterials bend through one random waypoint for realism.
        waypoint = (centers[i] + centers[j]) / 2.0 + rng.normal(0, extent * 0.03, 2)
        all_segments.append(_chop(centers[i], waypoint, segment_length=10.0))
        all_segments.append(_chop(waypoint, centers[j], segment_length=10.0))

    segments = np.concatenate(all_segments, axis=0)
    midpoints = segments.mean(axis=1)

    # Clip to the square, then normalize exactly to [0, extent]^2.
    inside = np.all((midpoints >= 0) & (midpoints <= extent), axis=1)
    segments, midpoints = segments[inside], midpoints[inside]
    if midpoints.shape[0] < n:
        raise ReproError(
            f"generator produced only {midpoints.shape[0]} midpoints; "
            f"increase n_towns or lower n={n}"
        )
    keep = rng.choice(midpoints.shape[0], size=n, replace=False)
    keep.sort()
    segments, midpoints = segments[keep], midpoints[keep]

    lo = midpoints.min(axis=0)
    hi = midpoints.max(axis=0)
    scale = extent / (hi - lo)
    midpoints = (midpoints - lo) * scale
    segments = (segments - lo) * scale

    return RoadNetwork(segments=segments, midpoints=midpoints, town_centers=centers)

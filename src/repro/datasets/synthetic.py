"""Generic synthetic point generators for tests and ablations."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["uniform_points", "clustered_points"]


def uniform_points(
    n: int, dim: int, *, low: float = 0.0, high: float = 1000.0, seed: int = 0
) -> np.ndarray:
    """``n`` points uniform over the cube [low, high]^dim."""
    if n < 0 or dim < 1:
        raise ReproError(f"invalid n={n}, dim={dim}")
    if not low < high:
        raise ReproError(f"low must be < high, got {low}, {high}")
    rng = np.random.default_rng(seed)
    return low + rng.random((n, dim)) * (high - low)


def clustered_points(
    n: int,
    dim: int,
    *,
    n_clusters: int = 20,
    spread: float = 30.0,
    low: float = 0.0,
    high: float = 1000.0,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points from a Gaussian mixture with uniform cluster centres.

    Cluster sizes follow a Zipf-like profile so density is skewed, matching
    the flavour of real spatial data.  Points are clipped to the cube.
    """
    if n < 0 or dim < 1 or n_clusters < 1:
        raise ReproError(f"invalid n={n}, dim={dim}, n_clusters={n_clusters}")
    if spread <= 0:
        raise ReproError(f"spread must be > 0, got {spread}")
    rng = np.random.default_rng(seed)
    centers = low + rng.random((n_clusters, dim)) * (high - low)
    weights = 1.0 / np.arange(1, n_clusters + 1)
    weights /= weights.sum()
    assignments = rng.choice(n_clusters, size=n, p=weights)
    points = centers[assignments] + rng.standard_normal((n, dim)) * spread
    return np.clip(points, low, high)

"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on (a) road-segment midpoints of Long Beach, CA from
the TIGER database — 50,747 points normalized to [0, 1000]² — and (b) the
Corel Color Moments set from the UCI KDD archive — 68,040 nine-dimensional
feature vectors.  Neither file ships with this repository, so this package
generates seeded synthetic equivalents that preserve the properties the
experiments actually exercise:

- :func:`~repro.datasets.roadnet.long_beach_like` — a street-network point
  process (towns, local street grids, connecting arterials) with the same
  cardinality, normalization and strong spatial skew;
- :func:`~repro.datasets.corel.color_moments_like` — a 9-D Gaussian
  mixture with per-dimension scales shaped like HSV color moments,
  *calibrated* so a δ = 0.7 range query returns ≈ 15.3 objects on average
  (the figure the paper reports for the real data);
- :mod:`~repro.datasets.synthetic` — uniform/clustered generators for
  tests and ablations.

See DESIGN.md §"Substitutions" for the full rationale.
"""

from repro.datasets.roadnet import RoadNetwork, long_beach_like
from repro.datasets.corel import color_moments_like
from repro.datasets.synthetic import clustered_points, uniform_points
from repro.datasets.io import (
    load_corel_color_moments,
    load_tiger_line_segments,
    normalize_to_square,
)

__all__ = [
    "RoadNetwork",
    "long_beach_like",
    "color_moments_like",
    "uniform_points",
    "clustered_points",
    "load_corel_color_moments",
    "load_tiger_line_segments",
    "normalize_to_square",
]

"""Synthetic Corel Color-Moments-like 9-D feature vectors.

The paper's 9-D experiment uses the Color Moments table of the Corel Image
Features set (UCI KDD archive): 68,040 rows of mean/stddev/skewness for
each HSV channel, queried with Euclidean distance.  Two properties of the
real data matter to the experiment:

1. points form many anisotropic clusters (images of the same scene), so
   the covariance fitted to a 20-NN neighbourhood is genuinely ill-shaped;
2. a plain range query with δ = 0.7 returns ≈ 15.3 objects on average
   (Section VI-A).

We reproduce both: a seeded Gaussian-mixture generator with per-dimension
scales shaped like color moments, followed by a *calibration* step that
rescales the dataset so the δ = 0.7 average count matches the paper's
figure within a configurable tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["color_moments_like", "average_range_count"]

#: Cardinality of the paper's Color Moments table.
COREL_SIZE = 68_040

#: The paper's reported average result size for a δ = 0.7 range query.
PAPER_RANGE_COUNT = 15.3


def average_range_count(
    points: np.ndarray, delta: float, *, n_queries: int = 200, seed: int = 0
) -> float:
    """Average number of points within ``delta`` of a random data point.

    The query point itself counts, matching the paper's convention that a
    k-NN set "includes the query object itself".
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ReproError(f"points must be a non-empty 2-D array, got {pts.shape}")
    rng = np.random.default_rng(seed)
    picks = rng.choice(pts.shape[0], size=min(n_queries, pts.shape[0]), replace=False)
    total = 0
    threshold = delta * delta
    for i in picks:
        gaps = pts - pts[i]
        total += int(np.count_nonzero(np.einsum("ij,ij->i", gaps, gaps) <= threshold))
    return total / picks.size


def _raw_mixture(n: int, rng: np.random.Generator, n_clusters: int) -> np.ndarray:
    """The uncalibrated mixture: 9-D clusters of near-duplicate groups.

    Real Corel contains many shots of the same scene whose color moments
    are almost identical, so a 20-NN neighbourhood around a random image
    is very tight.  We reproduce that with a two-level process: scenes
    (anisotropic clusters) contain base images, and each base image spawns
    a handful of near-duplicates with small jitter.
    """
    dim = 9
    # Per-dimension global scales: means vary more than stddevs, which vary
    # more than skewnesses — the shape of real HSV color moments.
    dim_scales = np.array([1.0, 1.0, 1.0, 0.6, 0.6, 0.6, 0.35, 0.35, 0.35])
    centers = rng.standard_normal((n_clusters, dim)) * dim_scales * 2.0
    # Cluster weights: Zipf-ish (popular scenes dominate).
    weights = 1.0 / np.arange(1, n_clusters + 1) ** 0.8
    weights /= weights.sum()

    group_size = 5  # images per near-duplicate group
    n_groups = (n + group_size - 1) // group_size
    assignments = rng.choice(n_clusters, size=n_groups, p=weights)
    # Anisotropic within-cluster spread: random axis scalings per cluster.
    cluster_spreads = 0.15 + 0.5 * rng.random((n_clusters, dim))
    group_bases = centers[assignments] + rng.standard_normal(
        (n_groups, dim)
    ) * cluster_spreads[assignments] * dim_scales
    rows = np.repeat(group_bases, group_size, axis=0)[:n]
    # Near-duplicate jitter: a few percent of the within-cluster spread.
    jitter_scale = np.repeat(
        cluster_spreads[assignments], group_size, axis=0
    )[:n] * dim_scales * 0.06
    return rows + rng.standard_normal((n, dim)) * jitter_scale


def color_moments_like(
    n: int = COREL_SIZE,
    *,
    seed: int = 0,
    n_clusters: int = 120,
    calibrate_delta: float = 0.7,
    calibrate_count: float = PAPER_RANGE_COUNT,
    calibration_tolerance: float = 0.05,
    calibration_queries: int = 600,
) -> np.ndarray:
    """Generate the calibrated 9-D dataset.

    Parameters
    ----------
    n:
        Number of vectors (default: the paper's 68,040).
    seed:
        Drives every random choice.
    n_clusters:
        Mixture components ("scenes").
    calibrate_delta, calibrate_count:
        The dataset is rescaled (one global factor, found by bisection on
        a subsample) so that the average number of points within
        ``calibrate_delta`` of a random point is ``calibrate_count``.
    calibration_tolerance:
        Relative tolerance of the calibration.

    Returns
    -------
    (n, 9) float array.
    """
    if n < 100:
        raise ReproError(f"n must be >= 100 for calibration to work, got {n}")
    rng = np.random.default_rng(seed)
    points = _raw_mixture(n, rng, n_clusters)

    # Calibrate a single multiplicative scale s: counts grow as s shrinks.
    target = calibrate_count

    def count_at(scale: float) -> float:
        return average_range_count(
            points * scale,
            calibrate_delta,
            n_queries=calibration_queries,
            seed=seed + 1,
        )

    lo, hi = 1e-3, 1e3
    # Establish the bracket: counts are monotone decreasing in scale.
    for _ in range(60):
        if count_at(lo) > target:
            break
        lo /= 2.0
    for _ in range(60):
        if count_at(hi) < target:
            break
        hi *= 2.0
    scale = 1.0
    for _ in range(40):
        scale = np.sqrt(lo * hi)  # geometric bisection: scale is a ratio
        got = count_at(scale)
        if abs(got - target) / target <= calibration_tolerance:
            break
        if got > target:
            lo = scale
        else:
            hi = scale
    return points * scale

"""The (δ, θ) → α U-catalog used by the bounding-function strategy.

An entry (δ, θ, α) states: under the normalized Gaussian, the ball of
radius δ whose centre sits at distance α from the origin holds probability
mass exactly θ.  The BF strategy queries this table twice per query
(Eqs. 29–31) after rescaling by λ∥ or λ⊥.

When the exact entry is missing, the conservative substitutes of
Eqs. 32–33 apply:

- for the pruning radius α∥ we take the *smallest* tabulated α among
  entries with δ′ ≥ δ and θ′ ≤ θ — an over-estimate, so pruning keeps a
  superset of the true candidates;
- for the acceptance radius α⊥ we take the *largest* tabulated α among
  entries with δ′ ≤ δ and θ′ ≥ θ — an under-estimate, so acceptance
  without integration never admits a false positive.

``ExactBFLookup`` bypasses the table with the noncentral-χ² closed form —
this mirrors the paper's own experiments, which "computed accurate β∥ and
β⊥ values … instead of approximate values".
"""

from __future__ import annotations

import abc
import functools

import numpy as np

from repro.errors import CatalogError
from repro.gaussian import radial

__all__ = ["BFLookup", "ExactBFLookup", "BFCatalog", "alpha_radii"]


#: LRU size for memoized exact α lookups.  Each α is a brentq root-find
#: over the noncentral-χ² CDF (~5 ms) — by far the most expensive part of
#: per-query preparation — so repeated query shapes skip it entirely.
_ALPHA_CACHE_SIZE = 4096


@functools.lru_cache(maxsize=_ALPHA_CACHE_SIZE)
def _alpha_for_mass_cached(dim: int, delta: float, theta: float) -> float | None:
    return radial.alpha_for_mass(dim, delta, theta)


class BFLookup(abc.ABC):
    """Provider of offset radii α for the normalized Gaussian."""

    @property
    @abc.abstractmethod
    def dim(self) -> int: ...

    @abc.abstractmethod
    def alpha_upper(self, delta: float, theta: float) -> float | None:
        """α with mass(ball(α, δ)) <= θ, as small as available (pruning).

        ``None`` means even the origin-centred ball holds less than θ, so
        *no* location can qualify under the upper bounding function.
        """

    @abc.abstractmethod
    def alpha_lower(self, delta: float, theta: float) -> float | None:
        """α with mass(ball(α, δ)) >= θ, as large as available (acceptance).

        ``None`` means no inner acceptance hole exists (the 9-D situation
        of Section VI where (λ⊥)^{d/2}|Σ|^{1/2}·θ exceeds 1).
        """


class ExactBFLookup(BFLookup):
    """Closed-form lookup via the noncentral-χ² CDF (no table).

    Lookups are memoized in a process-wide LRU keyed on (dim, δ, θ): the
    root-find is a pure function, so cache hits return bit-identical α
    values and cannot perturb any sampling stream.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise CatalogError(f"dimension must be >= 1, got {dim}")
        self._dim = int(dim)

    @property
    def dim(self) -> int:
        return self._dim

    def alpha_upper(self, delta: float, theta: float) -> float | None:
        if theta >= 1.0:
            return None
        return _alpha_for_mass_cached(self._dim, float(delta), float(theta))

    def alpha_lower(self, delta: float, theta: float) -> float | None:
        if theta >= 1.0:
            return None
        return _alpha_for_mass_cached(self._dim, float(delta), float(theta))


class BFCatalog(BFLookup):
    """A finite (δ, θ, α) table with the conservative lookups of Eqs. 32–33.

    Entries are stored as parallel arrays.  Grid structure is not assumed;
    any consistent entry set works.
    """

    def __init__(self, dim: int, deltas, thetas, alphas):
        if dim < 1:
            raise CatalogError(f"dimension must be >= 1, got {dim}")
        delta_arr = np.asarray(deltas, dtype=float)
        theta_arr = np.asarray(thetas, dtype=float)
        alpha_arr = np.asarray(alphas, dtype=float)
        if not (delta_arr.shape == theta_arr.shape == alpha_arr.shape):
            raise CatalogError("deltas, thetas and alphas must be parallel arrays")
        if delta_arr.ndim != 1 or delta_arr.size == 0:
            raise CatalogError("catalog needs at least one (delta, theta, alpha) row")
        if np.any(delta_arr <= 0):
            raise CatalogError("deltas must be positive")
        if np.any((theta_arr <= 0) | (theta_arr >= 1)):
            raise CatalogError("thetas must lie in (0, 1)")
        if np.any(alpha_arr < 0):
            raise CatalogError("alphas must be >= 0")
        self._dim = int(dim)
        self._deltas = delta_arr
        self._thetas = theta_arr
        self._alphas = alpha_arr

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return self._deltas.size

    @property
    def deltas(self) -> np.ndarray:
        return self._deltas

    @property
    def thetas(self) -> np.ndarray:
        return self._thetas

    @property
    def alphas(self) -> np.ndarray:
        return self._alphas

    def alpha_upper(self, delta: float, theta: float) -> float | None:
        """Eq. 32: min α over entries with δ′ >= δ and θ′ <= θ."""
        self._validate_query(delta, theta)
        mask = (self._deltas >= delta) & (self._thetas <= theta)
        if not np.any(mask):
            return None
        return float(self._alphas[mask].min())

    def alpha_lower(self, delta: float, theta: float) -> float | None:
        """Eq. 33: max α over entries with δ′ <= δ and θ′ >= θ."""
        self._validate_query(delta, theta)
        mask = (self._deltas <= delta) & (self._thetas >= theta)
        if not np.any(mask):
            return None
        return float(self._alphas[mask].max())

    @staticmethod
    def _validate_query(delta: float, theta: float) -> None:
        if delta <= 0:
            raise CatalogError(f"delta must be > 0, got {delta}")
        if not 0.0 < theta < 1.0:
            raise CatalogError(f"theta must lie in (0, 1), got {theta}")

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def build_analytic(cls, dim: int, deltas, thetas) -> "BFCatalog":
        """Tabulate α over the (δ, θ) product grid via the closed form.

        Grid points without a solution (mass at the origin below θ) are
        skipped, matching the paper's observation that such entries simply
        do not exist in the table.
        """
        rows_d, rows_t, rows_a = [], [], []
        for delta in np.asarray(deltas, dtype=float):
            for theta in np.asarray(thetas, dtype=float):
                alpha = radial.alpha_for_mass(dim, float(delta), float(theta))
                if alpha is None:
                    continue
                rows_d.append(float(delta))
                rows_t.append(float(theta))
                rows_a.append(alpha)
        if not rows_d:
            raise CatalogError(
                "no (delta, theta) grid point admits an alpha; grid too extreme"
            )
        return cls(dim, rows_d, rows_t, rows_a)

    @classmethod
    def build_monte_carlo(
        cls,
        dim: int,
        deltas,
        thetas,
        n_samples: int = 200_000,
        seed: int = 0,
        iterations: int = 60,
    ) -> "BFCatalog":
        """Paper-faithful builder: α by bisection on a Monte Carlo mass estimate.

        One fixed standard-normal sample set is shared by every grid point
        (common random numbers keep the empirical mass monotone in α, so
        bisection is well-behaved).
        """
        if n_samples < 1_000:
            raise CatalogError(f"n_samples too small to tabulate: {n_samples}")
        rng = np.random.default_rng(seed)
        samples = rng.standard_normal((n_samples, dim))
        first_axis = samples[:, 0]
        norm_sq = np.einsum("ij,ij->i", samples, samples)

        def mass(delta: float, alpha: float) -> float:
            # ||z - alpha*e1||^2 = ||z||^2 - 2 alpha z1 + alpha^2
            inside = norm_sq - 2.0 * alpha * first_axis + alpha * alpha <= delta**2
            return float(np.count_nonzero(inside)) / n_samples

        rows_d, rows_t, rows_a = [], [], []
        for delta in np.asarray(deltas, dtype=float):
            delta = float(delta)
            for theta in np.asarray(thetas, dtype=float):
                theta = float(theta)
                if mass(delta, 0.0) < theta:
                    continue
                lo, hi = 0.0, delta + 1.0
                while mass(delta, hi) >= theta:
                    hi *= 2.0
                for _ in range(iterations):
                    mid = 0.5 * (lo + hi)
                    if mass(delta, mid) >= theta:
                        lo = mid
                    else:
                        hi = mid
                rows_d.append(delta)
                rows_t.append(theta)
                rows_a.append(0.5 * (lo + hi))
        if not rows_d:
            raise CatalogError(
                "no (delta, theta) grid point admits an alpha; grid too extreme"
            )
        return cls(dim, rows_d, rows_t, rows_a)


def alpha_radii(
    gaussian, delta: float, theta: float, lookup: BFLookup | None = None
) -> tuple[float | None, float | None]:
    """The BF radii (α∥, α⊥) of PRQ(gaussian, δ, θ) in world units.

    Implements the paper's Eqs. 29–31 rescaling: the normalized-Gaussian
    table is queried at (√λ·δ, λ^{d/2}·√|Σ|·θ) and the resulting offset
    scaled back by 1/√λ, with λ = λ∥ (largest precision eigenvalue) for
    the pruning radius and λ = λ⊥ (smallest) for the acceptance radius.

    Returns ``(alpha_upper, alpha_lower)``:

    - ``alpha_upper is None`` — the result set is provably empty (even
      the upper bounding function cannot reach mass θ anywhere);
    - ``alpha_lower is None`` — no inner free-accept hole exists (the
      ill-shaped high-dimensional case of Section VI).

    Shared by :class:`repro.core.strategies.BoundingFunctionStrategy`
    and the query planner's plan explanations, so the radii reported by
    ``repro explain`` are exactly the radii the filter executes with.
    """
    import math

    lookup = lookup or ExactBFLookup(gaussian.dim)
    if lookup.dim != gaussian.dim:
        raise CatalogError(
            f"BF lookup is for dimension {lookup.dim}, query has {gaussian.dim}"
        )
    sqrt_det = math.exp(0.5 * gaussian.log_det_sigma)
    dim = gaussian.dim

    def scaled_alpha(lam: float, kind: str) -> float | None:
        scaled_theta = lam ** (dim / 2.0) * sqrt_det * theta
        if scaled_theta >= 1.0:
            # A probability can never reach a scaled theta >= 1: for the
            # upper bound this proves the result empty, for the lower
            # bound it means no inner hole exists (Eq. 37 > 1).
            return None
        query = lookup.alpha_upper if kind == "upper" else lookup.alpha_lower
        beta = query(math.sqrt(lam) * delta, scaled_theta)
        return None if beta is None else beta / math.sqrt(lam)

    return (
        scaled_alpha(gaussian.lam_parallel, "upper"),
        scaled_alpha(gaussian.lam_perp, "lower"),
    )

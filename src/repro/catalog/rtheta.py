"""The θ → r_θ U-catalog used by the RR and OR strategies.

``RThetaCatalog`` stores sorted (θ, r_θ) rows for one dimensionality.  The
conservative lookup of Algorithm 1 (line 4) returns the entry with the
largest θ\\* ≤ θ; since r_θ decreases in θ, the returned radius is an upper
bound on the true r_θ, so the search region can only grow — correctness is
retained at the cost of extra candidates (exactly the trade-off the paper
describes for θ values missing from the table).
"""

from __future__ import annotations

import abc
import bisect
import functools

import numpy as np

from repro.errors import CatalogError, CatalogLookupError
from repro.gaussian import radial

__all__ = ["RThetaLookup", "ExactRThetaLookup", "RThetaCatalog"]


#: LRU size for memoized exact r_theta lookups.  A χ-quantile evaluation
#: costs ~50 µs of scipy; workloads that reuse θ values (quantized
#: thresholds, repeated query shapes) hit the cache instead.
_RTHETA_CACHE_SIZE = 4096


@functools.lru_cache(maxsize=_RTHETA_CACHE_SIZE)
def _r_theta_cached(dim: int, theta: float) -> float:
    return radial.r_theta(dim, theta)


class RThetaLookup(abc.ABC):
    """Provider of θ-region radii for a fixed dimensionality."""

    @property
    @abc.abstractmethod
    def dim(self) -> int: ...

    @abc.abstractmethod
    def r_theta(self, theta: float) -> float:
        """A radius r with mass(r) >= 1 − 2θ (equality when exact)."""


class ExactRThetaLookup(RThetaLookup):
    """Closed-form lookup via the χ-distribution quantile (no table).

    Lookups are memoized in a process-wide LRU keyed on (dim, θ): the
    quantile is a pure function, so a cache hit returns bit-identical
    radii and cannot perturb any sampling stream.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise CatalogError(f"dimension must be >= 1, got {dim}")
        self._dim = int(dim)

    @property
    def dim(self) -> int:
        return self._dim

    def r_theta(self, theta: float) -> float:
        return _r_theta_cached(self._dim, float(theta))


class RThetaCatalog(RThetaLookup):
    """A finite (θ, r_θ) table with conservative lookup.

    Parameters
    ----------
    dim:
        Dimensionality the radii were computed for.
    thetas, radii:
        Parallel sequences; thetas must be strictly increasing in (0, 1/2)
        and radii strictly decreasing (the mass function is monotone).
    """

    def __init__(self, dim: int, thetas, radii):
        if dim < 1:
            raise CatalogError(f"dimension must be >= 1, got {dim}")
        theta_arr = np.asarray(thetas, dtype=float)
        radius_arr = np.asarray(radii, dtype=float)
        if theta_arr.ndim != 1 or theta_arr.size == 0:
            raise CatalogError("catalog needs at least one (theta, r) row")
        if theta_arr.shape != radius_arr.shape:
            raise CatalogError(
                f"{theta_arr.size} thetas vs {radius_arr.size} radii"
            )
        if np.any(theta_arr <= 0) or np.any(theta_arr >= 0.5):
            raise CatalogError(f"thetas must lie in (0, 1/2), got {theta_arr}")
        if np.any(np.diff(theta_arr) <= 0):
            raise CatalogError("thetas must be strictly increasing")
        if np.any(np.diff(radius_arr) >= 0):
            raise CatalogError("radii must be strictly decreasing in theta")
        if np.any(radius_arr <= 0):
            raise CatalogError("radii must be positive")
        self._dim = int(dim)
        self._thetas = theta_arr
        self._radii = radius_arr

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def thetas(self) -> np.ndarray:
        return self._thetas

    @property
    def radii(self) -> np.ndarray:
        return self._radii

    def __len__(self) -> int:
        return self._thetas.size

    def r_theta(self, theta: float) -> float:
        """Radius of the largest tabulated θ\\* with θ\\* ≤ θ (conservative)."""
        if not 0.0 < theta < 0.5:
            raise CatalogError(f"theta must satisfy 0 < theta < 1/2, got {theta}")
        pos = bisect.bisect_right(self._thetas.tolist(), theta) - 1
        if pos < 0:
            raise CatalogLookupError(
                f"no catalog entry with theta <= {theta}; smallest tabulated "
                f"theta is {self._thetas[0]}"
            )
        return float(self._radii[pos])

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def build_analytic(cls, dim: int, thetas) -> "RThetaCatalog":
        """Exact radii from the χ quantile function."""
        theta_arr = np.asarray(thetas, dtype=float)
        radii = [radial.r_theta(dim, float(t)) for t in theta_arr]
        return cls(dim, theta_arr, radii)

    @classmethod
    def build_monte_carlo(
        cls, dim: int, thetas, n_samples: int = 200_000, seed: int = 0
    ) -> "RThetaCatalog":
        """Paper-faithful builder: radii as empirical ‖z‖ quantiles.

        Draws ``n_samples`` standard normal vectors once and reads each
        r_θ off the empirical distribution of their norms at level 1 − 2θ,
        rounded *up* to the next sample to stay conservative.
        """
        if n_samples < 1_000:
            raise CatalogError(f"n_samples too small to tabulate: {n_samples}")
        rng = np.random.default_rng(seed)
        norms = np.sort(
            np.linalg.norm(rng.standard_normal((n_samples, dim)), axis=1)
        )
        theta_arr = np.asarray(thetas, dtype=float)
        radii = []
        for theta in theta_arr:
            rank = min(n_samples - 1, int(np.ceil((1.0 - 2.0 * theta) * n_samples)))
            radii.append(float(norms[rank]))
        radius_arr = np.asarray(radii)
        # Monte Carlo noise can break strict monotonicity between close
        # thetas; enforce it by running a reverse cumulative maximum, which
        # only ever raises radii (still conservative).
        radius_arr = np.maximum.accumulate(radius_arr[::-1])[::-1]
        eps = 1e-12 * np.arange(radius_arr.size)[::-1]
        return cls(dim, theta_arr, radius_arr + eps)

    @classmethod
    def default_grid(cls, dim: int, resolution: int = 99) -> "RThetaCatalog":
        """An analytic catalog on a uniform θ grid in (0, 1/2)."""
        if resolution < 1:
            raise CatalogError(f"resolution must be >= 1, got {resolution}")
        thetas = np.linspace(0.0, 0.5, resolution + 2)[1:-1]
        return cls.build_analytic(dim, thetas)

"""JSON persistence for U-catalogs.

Catalogs are pure lookup tables, so a versioned JSON document with parallel
arrays is enough.  ``save_catalog``/``load_catalog`` round-trip both
catalog kinds and refuse files they do not recognise.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import CatalogError
from repro.catalog.bf import BFCatalog
from repro.catalog.rtheta import RThetaCatalog

__all__ = ["save_catalog", "load_catalog"]

_FORMAT_VERSION = 1


def save_catalog(catalog: RThetaCatalog | BFCatalog, path: str | Path) -> None:
    """Write a catalog to ``path`` as JSON."""
    if isinstance(catalog, RThetaCatalog):
        document = {
            "format": _FORMAT_VERSION,
            "kind": "rtheta",
            "dim": catalog.dim,
            "thetas": catalog.thetas.tolist(),
            "radii": catalog.radii.tolist(),
        }
    elif isinstance(catalog, BFCatalog):
        document = {
            "format": _FORMAT_VERSION,
            "kind": "bf",
            "dim": catalog.dim,
            "deltas": catalog.deltas.tolist(),
            "thetas": catalog.thetas.tolist(),
            "alphas": catalog.alphas.tolist(),
        }
    else:
        raise CatalogError(f"cannot serialize {type(catalog).__name__}")
    Path(path).write_text(json.dumps(document, indent=1))


def load_catalog(path: str | Path) -> RThetaCatalog | BFCatalog:
    """Read a catalog previously written by :func:`save_catalog`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CatalogError(f"cannot read catalog from {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise CatalogError(f"{path} does not contain a catalog document")
    if document.get("format") != _FORMAT_VERSION:
        raise CatalogError(
            f"unsupported catalog format {document.get('format')!r} in {path}"
        )
    kind = document.get("kind")
    try:
        if kind == "rtheta":
            return RThetaCatalog(
                document["dim"], document["thetas"], document["radii"]
            )
        if kind == "bf":
            return BFCatalog(
                document["dim"],
                document["deltas"],
                document["thetas"],
                document["alphas"],
            )
    except KeyError as exc:
        raise CatalogError(f"catalog in {path} is missing field {exc}") from exc
    raise CatalogError(f"unknown catalog kind {kind!r} in {path}")

"""U-catalogs: precomputed tables mapping thresholds to radii.

The paper cannot invert the Gaussian's radial mass function analytically at
query time, so it precomputes tables ("U-catalogs", after Tao et al.):

- the **r_θ catalog** maps probability thresholds θ to θ-region radii r_θ
  (Definition 5) for one dimensionality;
- the **BF catalog** maps (δ, θ) pairs to the centre offset α at which a
  δ-sphere holds mass θ under the normalized Gaussian (Eq. 21).

Both lookups are *conservative*: when the exact entry is missing, the
returned radius errs toward retrieving / integrating more candidates, never
toward losing answers (Algorithm 1 line 4; Eqs. 32–33).

Each catalog has two builders: an analytic one using the closed forms of
:mod:`repro.gaussian.radial` and a Monte Carlo one faithful to how the
paper tabulates the integrals.  Catalogs serialize to JSON via
:mod:`repro.catalog.io`.
"""

from repro.catalog.rtheta import RThetaCatalog, RThetaLookup, ExactRThetaLookup
from repro.catalog.bf import BFCatalog, BFLookup, ExactBFLookup, alpha_radii
from repro.catalog.io import load_catalog, save_catalog

__all__ = [
    "RThetaCatalog",
    "RThetaLookup",
    "ExactRThetaLookup",
    "BFCatalog",
    "BFLookup",
    "ExactBFLookup",
    "alpha_radii",
    "load_catalog",
    "save_catalog",
]

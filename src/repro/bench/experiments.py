"""Runners for every experiment in the paper's evaluation.

Each ``run_*`` function reproduces one table or figure and returns an
:class:`~repro.bench.harness.ExperimentTable` (plus raw data where a
benchmark wants to assert on it).  Paper experiment ↔ runner mapping:

========================  =============================================
Paper artifact            Runner
========================  =============================================
Table I  (query time)     :func:`run_strategy_grid` (``seconds`` field)
Table II (candidates)     :func:`run_strategy_grid` (``candidates``)
Fig. 13–16 (regions)      :func:`region_geometry`
§V-B-3 (sensitivity)      :func:`run_sensitivity_delta` / ``_theta`` / ``_shape``
Table III (9-D)           :func:`run_table3`
Fig. 17 (radial mass)     :func:`run_fig17`
========================  =============================================
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.harness import (
    ExperimentTable,
    load_corel_points,
    load_road_database,
    paper_sigma,
    random_query_centers,
)
from repro.catalog.rtheta import ExactRThetaLookup
from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import (
    BoundingFunctionStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
    make_strategies,
)
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import radial_cdf, r_theta
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.exact import ExactIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.integrate.result import IntegrationResult

__all__ = [
    "StrategyGridResult",
    "run_strategy_grid",
    "run_candidate_grid",
    "region_geometry",
    "run_region_tables",
    "run_fig17",
    "run_table3",
    "run_sensitivity_delta",
    "run_sensitivity_theta",
    "run_sensitivity_shape",
    "run_ablation_integrators",
    "run_ablation_catalog_resolution",
    "run_ablation_index_backends",
]

#: Paper's configuration order for Tables I/II/III.
SPEC_ORDER = ("rr", "bf", "rr+bf", "rr+or", "bf+or", "all")


class _CountOnlyIntegrator(ProbabilityIntegrator):
    """Phase-3 stub that answers 0 instantly — used when an experiment only
    needs candidate *counts* (Tables II, III and the sensitivity sweeps)."""

    name = "count-only"

    def qualification_probability(self, gaussian, point, delta):
        return IntegrationResult(0.0, 0.0, 0, self.name)


# ----------------------------------------------------------------------
# Tables I and II
# ----------------------------------------------------------------------


@dataclass
class StrategyGridResult:
    """Raw per-(γ, spec) aggregates behind Tables I and II."""

    seconds: dict[tuple[float, str], float]
    candidates: dict[tuple[float, str], float]
    answers: dict[float, float]

    def table_time(self) -> ExperimentTable:
        table = ExperimentTable(
            "Table I — query processing time (seconds)",
            ["gamma"] + [s.upper() for s in SPEC_ORDER],
        )
        for gamma in sorted({g for g, _ in self.seconds}):
            table.add_row(
                gamma, *[self.seconds[(gamma, spec)] for spec in SPEC_ORDER]
            )
        return table

    def table_candidates(self) -> ExperimentTable:
        table = ExperimentTable(
            "Table II — number of candidates needing integration",
            ["gamma"] + [s.upper() for s in SPEC_ORDER] + ["ANS"],
        )
        for gamma in sorted({g for g, _ in self.candidates}):
            table.add_row(
                gamma,
                *[self.candidates[(gamma, spec)] for spec in SPEC_ORDER],
                self.answers[gamma],
            )
        return table


def run_strategy_grid(
    gammas=(1.0, 10.0, 100.0),
    *,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 5,
    n_samples: int = 100_000,
    seed: int = 0,
    database: SpatialDatabase | None = None,
) -> StrategyGridResult:
    """Run the paper's default 2-D experiment grid (Tables I and II).

    For every γ and every strategy combination, ``n_trials`` queries are
    issued from random data points; per-query wall time, Phase-3 candidate
    count and answer size are averaged.  ``n_samples`` is the importance
    sampling budget per candidate (the paper's 100,000; lower it for quick
    runs — candidate counts are unaffected).
    """
    db = database if database is not None else load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    seconds: dict[tuple[float, str], float] = {}
    candidates: dict[tuple[float, str], float] = {}
    answers: dict[float, float] = {}
    for gamma in gammas:
        sigma = paper_sigma(gamma)
        per_spec_time = {spec: 0.0 for spec in SPEC_ORDER}
        per_spec_cand = {spec: 0.0 for spec in SPEC_ORDER}
        answer_total = 0.0
        for trial, center in enumerate(centers):
            gaussian = Gaussian(center, sigma)
            for spec in SPEC_ORDER:
                engine = db.engine(
                    strategies=spec,
                    integrator=ImportanceSamplingIntegrator(
                        n_samples, seed=seed + trial
                    ),
                )
                start = time.perf_counter()
                result = engine.execute(
                    ProbabilisticRangeQuery(gaussian, delta, theta)
                )
                per_spec_time[spec] += time.perf_counter() - start
                per_spec_cand[spec] += result.stats.integrations
                if spec == "all":
                    answer_total += len(result)
        for spec in SPEC_ORDER:
            seconds[(gamma, spec)] = per_spec_time[spec] / n_trials
            candidates[(gamma, spec)] = per_spec_cand[spec] / n_trials
        answers[gamma] = answer_total / n_trials
    return StrategyGridResult(seconds, candidates, answers)


def run_candidate_grid(
    gammas=(1.0, 10.0, 100.0),
    *,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 5,
    seed: int = 0,
    database: SpatialDatabase | None = None,
    answer_samples: int = 100_000,
) -> StrategyGridResult:
    """Table II without timing cost: candidate counts via a counting stub,
    answer sizes via one shared importance-sampling pass per query."""
    db = database if database is not None else load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    counting = _CountOnlyIntegrator()
    candidates: dict[tuple[float, str], float] = {}
    answers: dict[float, float] = {}
    for gamma in gammas:
        sigma = paper_sigma(gamma)
        per_spec = {spec: 0.0 for spec in SPEC_ORDER}
        answer_total = 0.0
        for trial, center in enumerate(centers):
            gaussian = Gaussian(center, sigma)
            query = ProbabilisticRangeQuery(gaussian, delta, theta)
            for spec in SPEC_ORDER:
                engine = db.engine(strategies=spec, integrator=counting)
                per_spec[spec] += engine.execute(query).stats.integrations
            shared = ImportanceSamplingIntegrator(
                answer_samples, seed=seed + trial, share_samples=True
            )
            engine = db.engine(strategies="all", integrator=shared)
            answer_total += len(engine.execute(query))
        for spec in SPEC_ORDER:
            candidates[(gamma, spec)] = per_spec[spec] / n_trials
        answers[gamma] = answer_total / n_trials
    return StrategyGridResult({}, candidates, answers)


# ----------------------------------------------------------------------
# Figures 13–16: integration-region geometry
# ----------------------------------------------------------------------


def region_geometry(
    gamma: float,
    *,
    delta: float = 25.0,
    theta: float = 0.01,
    center=(500.0, 500.0),
    mc_points: int = 200_000,
    seed: int = 0,
) -> dict[str, float]:
    """The region measurements drawn in Figs. 13–16.

    Returns the RR box half-widths (the 23.4 / 15.3 labels of Fig. 13),
    the OR box half-widths along the ellipse axes, the BF radii α∥ / α⊥
    (Fig. 13's 46.9 / 15.6), and the areas of each strategy's integration
    region plus their intersection (the ALL region of Fig. 14, estimated
    by Monte Carlo over the joint bounding box).
    """
    sigma = paper_sigma(gamma)
    gaussian = Gaussian(np.asarray(center, dtype=float), sigma)
    query = ProbabilisticRangeQuery(gaussian, delta, theta)

    rr = RectilinearStrategy()
    oblique = ObliqueStrategy()
    bf = BoundingFunctionStrategy()
    for strategy in (rr, oblique, bf):
        strategy.prepare(query)

    w = np.sqrt(np.diag(sigma)) * ExactRThetaLookup(2).r_theta(theta)
    or_half = oblique.box.half_widths
    alpha_upper = bf.alpha_upper if bf.alpha_upper is not None else math.nan
    alpha_lower = bf.alpha_lower if bf.alpha_lower is not None else 0.0

    rr_area = rr.region.volume_2d()
    or_area = float(np.prod(2.0 * or_half))
    bf_area = math.pi * (alpha_upper**2 - alpha_lower**2)

    # The ALL region is the intersection minus BF's accept hole; measure it
    # by Monte Carlo over the intersection of the bounding boxes.
    rng = np.random.default_rng(seed)
    box = rr.search_rect().intersection(bf.search_rect())
    if box is None:
        all_area = 0.0
    else:
        samples = box.lows + rng.random((mc_points, 2)) * box.extents
        inside = (
            rr.region.contains_points(samples)
            & oblique.box.contains_points(samples)
        )
        gaps = samples - gaussian.mean
        distances = np.sqrt(np.einsum("ij,ij->i", gaps, gaps))
        inside &= distances <= alpha_upper
        inside &= distances > alpha_lower
        all_area = float(np.count_nonzero(inside)) / mc_points * box.volume()

    return {
        "rr_half_width_x": float(w[0]),
        "rr_half_width_y": float(w[1]),
        "or_half_width_major": float(or_half[0]),
        "or_half_width_minor": float(or_half[1]),
        "bf_alpha_upper": float(alpha_upper),
        "bf_alpha_lower": float(alpha_lower),
        "rr_area": rr_area,
        "or_area": or_area,
        "bf_area": bf_area,
        "all_area": all_area,
        "delta": delta,
    }


def run_region_tables(
    gammas=(1.0, 10.0, 100.0), *, delta: float = 25.0, theta: float = 0.01
) -> ExperimentTable:
    """Figs. 13–16 as one table: geometry per γ."""
    table = ExperimentTable(
        "Figs. 13-16 — integration region geometry (delta=%g, theta=%g)"
        % (delta, theta),
        [
            "gamma",
            "RR wx",
            "RR wy",
            "OR major",
            "OR minor",
            "BF a_par",
            "BF a_perp",
            "RR area",
            "OR area",
            "BF area",
            "ALL area",
        ],
    )
    for gamma in gammas:
        g = region_geometry(gamma, delta=delta, theta=theta)
        table.add_row(
            gamma,
            g["rr_half_width_x"],
            g["rr_half_width_y"],
            g["or_half_width_major"],
            g["or_half_width_minor"],
            g["bf_alpha_upper"],
            g["bf_alpha_lower"],
            g["rr_area"],
            g["or_area"],
            g["bf_area"],
            g["all_area"],
        )
    table.note("paper Fig. 13 (gamma=10): RR 23.4/15.3, BF radii 46.9/15.6, delta 25")
    table.note("paper Fig. 15 (gamma=1): labels 10.7, 4.8, 7.4, 32.0")
    table.note("paper Fig. 16 (gamma=100): labels 92.8, 48.5, 74.1, 30.9")
    return table


# ----------------------------------------------------------------------
# Figure 17: probability of existence vs radius
# ----------------------------------------------------------------------


def run_fig17(
    dims=(2, 3, 5, 9, 15), radii=None
) -> tuple[ExperimentTable, dict[int, np.ndarray]]:
    """The radial mass curves of Fig. 17 (one per dimensionality)."""
    r = np.linspace(0.0, 6.0, 25) if radii is None else np.asarray(radii, float)
    curves = {d: radial_cdf(d, r) for d in dims}
    table = ExperimentTable(
        "Fig. 17 — probability of existence within a radius",
        ["radius"] + [f"{d}D" for d in dims],
    )
    for i, radius in enumerate(r):
        table.add_row(float(radius), *[float(curves[d][i]) for d in dims])
    table.note("paper anchors: 2D mass(1)=0.39; 9D mass(2)=0.09")
    return table, curves


# ----------------------------------------------------------------------
# Table III: the 9-D pseudo-feedback experiment
# ----------------------------------------------------------------------


def pseudo_feedback_gaussian(
    points: np.ndarray, database: SpatialDatabase, query_index: int, k: int = 20
) -> Gaussian:
    """Σ = Σ̃(k-NN) + κI with κ = |Σ̃|^{1/9} (Section VI-A, Eq. 35)."""
    center = points[query_index]
    neighbor_ids = [obj_id for obj_id, _ in database.knn(center, k)]
    samples = points[np.asarray(neighbor_ids)]
    mean = samples.mean(axis=0)
    centred = samples - mean
    sigma_tilde = centred.T @ centred / samples.shape[0]
    det = float(np.linalg.det(sigma_tilde))
    dim = points.shape[1]
    kappa = det ** (1.0 / dim) if det > 0 else float(np.trace(sigma_tilde) / dim)
    return Gaussian(center, sigma_tilde + kappa * np.eye(dim))


def run_table3(
    *,
    n_trials: int = 10,
    k: int = 20,
    delta: float = 0.7,
    theta: float = 0.4,
    seed: int = 0,
    points: np.ndarray | None = None,
) -> ExperimentTable:
    """The 9-D candidate-count experiment (Table III + §VI text anchors)."""
    data = points if points is not None else load_corel_points()
    database = SpatialDatabase(data)
    rng = np.random.default_rng(seed)
    picks = rng.choice(data.shape[0], size=n_trials, replace=False)

    counting = _CountOnlyIntegrator()
    per_spec = {spec: 0.0 for spec in SPEC_ORDER}
    or_region_total = 0.0
    answers_total = 0.0
    center_prob_total = 0.0
    exact = ExactIntegrator()

    for pick in picks:
        gaussian = pseudo_feedback_gaussian(data, database, int(pick), k)
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        for spec in SPEC_ORDER:
            engine = database.engine(strategies=spec, integrator=counting)
            result = engine.execute(query)
            per_spec[spec] += result.stats.integrations

        # Candidates inside the OR filter region alone (paper: 2,620).
        oblique = ObliqueStrategy()
        oblique.prepare(query)
        box_ids = database.index.range_search_rect(oblique.box.bounding_rect())
        if box_ids:
            box_points = np.vstack([database.point(i) for i in box_ids])
            or_region_total += float(
                np.count_nonzero(oblique.box.contains_points(box_points))
            )

        # Answer count (paper: 3.9 on average) via the tightest combo with
        # one shared 100k-sample importance-sampling pass (exact Imhof on
        # every 9-D candidate would dominate the bench's runtime).
        shared = ImportanceSamplingIntegrator(
            100_000, seed=seed + int(pick), share_samples=True
        )
        engine = database.engine(strategies="all", integrator=shared)
        answers_total += len(engine.execute(query))

        # Qualification probability of the query centre (paper: ~70 %).
        center_prob_total += exact.qualification_probability(
            gaussian, gaussian.mean, delta
        ).estimate

    table = ExperimentTable(
        "Table III — 9-D candidates (delta=%g, theta=%g, %d trials)"
        % (delta, theta, n_trials),
        [s.upper() for s in SPEC_ORDER] + ["ANS"],
    )
    table.add_row(
        *[per_spec[spec] / n_trials for spec in SPEC_ORDER],
        answers_total / n_trials,
    )
    table.note(f"OR-region candidate count: {or_region_total / n_trials:.0f} "
               "(paper: 2,620)")
    table.note(
        f"avg centre qualification probability: "
        f"{100 * center_prob_total / n_trials:.1f}% (paper: 70.0%)"
    )
    table.note(f"r_theta(9, {theta}) = {r_theta(9, theta):.2f} (paper: 2.32)")
    table.note("paper row: RR 3713, BF 3216, RR+BF 2468, RR+OR 1905, "
               "BF+OR 1998, ALL 1699, ANS 3.9")
    return table


# ----------------------------------------------------------------------
# §V-B-3: sensitivity sweeps (reported as text in the paper)
# ----------------------------------------------------------------------


def _candidate_counts_for_query(
    database: SpatialDatabase, gaussian: Gaussian, delta: float, theta: float
) -> dict[str, float]:
    counting = _CountOnlyIntegrator()
    query = ProbabilisticRangeQuery(gaussian, delta, theta)
    counts = {}
    for spec in SPEC_ORDER:
        engine = database.engine(strategies=spec, integrator=counting)
        counts[spec] = float(engine.execute(query).stats.integrations)
    return counts


def run_sensitivity_delta(
    deltas=(5.0, 10.0, 25.0, 50.0, 100.0),
    *,
    gamma: float = 10.0,
    theta: float = 0.01,
    n_trials: int = 5,
    seed: int = 0,
) -> ExperimentTable:
    """Candidate counts vs δ (§V-B-3 bullet 1)."""
    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    table = ExperimentTable(
        "Sensitivity — candidates vs delta (gamma=%g, theta=%g)" % (gamma, theta),
        ["delta"] + [s.upper() for s in SPEC_ORDER],
    )
    sigma = paper_sigma(gamma)
    for delta in deltas:
        totals = {spec: 0.0 for spec in SPEC_ORDER}
        for center in centers:
            counts = _candidate_counts_for_query(
                db, Gaussian(center, sigma), delta, theta
            )
            for spec in SPEC_ORDER:
                totals[spec] += counts[spec]
        table.add_row(delta, *[totals[s] / n_trials for s in SPEC_ORDER])
    table.note("paper: combination more effective for small delta; RR ~ BF for "
               "large delta")
    return table


def run_sensitivity_theta(
    thetas=(0.001, 0.01, 0.05, 0.1, 0.3),
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    n_trials: int = 5,
    seed: int = 0,
) -> ExperimentTable:
    """Candidate counts vs θ (§V-B-3 bullet 2)."""
    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    table = ExperimentTable(
        "Sensitivity — candidates vs theta (gamma=%g, delta=%g)" % (gamma, delta),
        ["theta"] + [s.upper() for s in SPEC_ORDER],
    )
    sigma = paper_sigma(gamma)
    for theta in thetas:
        totals = {spec: 0.0 for spec in SPEC_ORDER}
        for center in centers:
            counts = _candidate_counts_for_query(
                db, Gaussian(center, sigma), delta, theta
            )
            for spec in SPEC_ORDER:
                totals[spec] += counts[spec]
        table.add_row(theta, *[totals[s] / n_trials for s in SPEC_ORDER])
    table.note("paper: costs barely move between theta=0.1 and theta=0.01 "
               "(exponential tails)")
    return table


def run_sensitivity_shape(
    axis_ratios=(1.0, 2.0, 3.0, 6.0, 10.0),
    *,
    gamma_area: float = 210.0,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 5,
    seed: int = 0,
) -> ExperimentTable:
    """Candidate counts vs covariance shape (§V-B-3 bullet 3).

    The covariance is diagonal with eigenvalues (ratio·s, s) rotated 30°,
    scaled so its determinant (ellipse area) matches the default setting —
    isolating the *shape* effect from the *size* effect.
    """
    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    table = ExperimentTable(
        "Sensitivity — candidates vs axis ratio (equal-area covariances)",
        ["ratio"] + [s.upper() for s in SPEC_ORDER],
    )
    angle = math.radians(30.0)
    rotation = np.array(
        [[math.cos(angle), -math.sin(angle)], [math.sin(angle), math.cos(angle)]]
    )
    for ratio in axis_ratios:
        scale = gamma_area / math.sqrt(ratio)
        eigenvalues = np.array([ratio * scale, scale])
        sigma = rotation @ np.diag(eigenvalues) @ rotation.T
        totals = {spec: 0.0 for spec in SPEC_ORDER}
        for center in centers:
            counts = _candidate_counts_for_query(
                db, Gaussian(center, sigma), delta, theta
            )
            for spec in SPEC_ORDER:
                totals[spec] += counts[spec]
        table.add_row(ratio, *[totals[s] / n_trials for s in SPEC_ORDER])
    table.note("paper: near-spherical covariances equalize the strategies; "
               "thin ellipses favour the combination")
    return table


# ----------------------------------------------------------------------
# Library ablations (beyond the paper): integrators, catalogs, indexes
# ----------------------------------------------------------------------


def run_ablation_integrators(
    budgets=(1_000, 10_000, 100_000),
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    seed: int = 0,
) -> ExperimentTable:
    """Accuracy/time of each stochastic integrator against the exact CDF.

    Evaluates one representative near-boundary candidate; reports absolute
    error and wall time per estimate.  Quantifies the paper's choice of
    importance sampling over plain Monte Carlo and our QMC extension.
    """
    from repro.integrate.antithetic import AntitheticImportanceSampler
    from repro.integrate.montecarlo import MonteCarloIntegrator
    from repro.integrate.qmc import QuasiMonteCarloIntegrator

    gaussian = Gaussian(np.array([500.0, 500.0]), paper_sigma(gamma))
    point = gaussian.mean + np.array([30.0, -15.0])
    truth = ExactIntegrator().qualification_probability(
        gaussian, point, delta
    ).estimate
    table = ExperimentTable(
        f"Ablation — integrator error vs budget (truth={truth:.6f})",
        ["n", "IS err", "IS ms", "MC err", "MC ms", "QMC err", "QMC ms",
         "AT err", "AT ms"],
    )
    for n in budgets:
        row: list[object] = [n]
        for factory in (
            lambda: ImportanceSamplingIntegrator(n, seed=seed),
            lambda: MonteCarloIntegrator(n, seed=seed),
            lambda: QuasiMonteCarloIntegrator(n, seed=seed),
            lambda: AntitheticImportanceSampler(n, seed=seed),
        ):
            integrator = factory()
            start = time.perf_counter()
            estimate = integrator.qualification_probability(
                gaussian, point, delta
            ).estimate
            elapsed = (time.perf_counter() - start) * 1e3
            row.extend([abs(estimate - truth), elapsed])
        table.add_row(*row)
    table.note("IS = the paper's importance sampling; QMC = randomized Halton; AT = antithetic pairs")
    return table


def run_ablation_catalog_resolution(
    resolutions=(3, 9, 33, 99),
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    theta: float = 0.0123,
    n_trials: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """RR candidate counts: exact r_θ lookup vs coarse U-catalogs.

    θ is deliberately chosen off every grid so the conservative fallback
    (Algorithm 1 line 4) engages; coarser catalogs retrieve strictly more.
    """
    from repro.catalog.rtheta import RThetaCatalog

    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    counting = _CountOnlyIntegrator()
    sigma = paper_sigma(gamma)
    table = ExperimentTable(
        "Ablation — RR candidates vs r_theta catalog resolution",
        ["lookup", "candidates", "r_theta used"],
    )

    def run_with(lookup) -> float:
        total = 0.0
        for center in centers:
            query = ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
            strategy = RectilinearStrategy(lookup)
            engine = db.engine(strategies=[strategy], integrator=counting)
            total += engine.execute(query).stats.integrations
        return total / n_trials

    exact_lookup = ExactRThetaLookup(2)
    table.add_row("exact", run_with(exact_lookup), exact_lookup.r_theta(theta))
    for resolution in resolutions:
        # Geometric theta grid so even the coarsest catalog reaches below
        # the query theta (uniform grids would have no conservative entry).
        catalog = RThetaCatalog.build_analytic(
            2, np.geomspace(1e-4, 0.4999, resolution)
        )
        table.add_row(
            f"catalog/{resolution}", run_with(catalog), catalog.r_theta(theta)
        )
    table.note("coarser catalogs choose smaller theta* => larger boxes => "
               "more candidates; results stay exact")
    return table


def run_ablation_index_backends(
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 3,
    n_samples: int = 20_000,
    seed: int = 0,
) -> ExperimentTable:
    """Phase timing per index backend, verifying the paper's claim that
    Phase 3 dominates (>= 97 % of time) regardless of the index."""
    from repro.geometry.mbr import Rect
    from repro.index.grid import GridIndex
    from repro.index.linear import LinearScanIndex
    from repro.index.rtree import RStarTree

    road = load_road_database()
    points = np.vstack([road.point(i) for i in range(len(road))])
    centers = random_query_centers(road, n_trials, seed)
    table = ExperimentTable(
        "Ablation — phase time (ms) per index backend",
        ["index", "search", "filter", "integrate", "phase3 %"],
    )
    backends = {
        "rstar": RStarTree(2),
        "grid": GridIndex(Rect([0.0, 0.0], [1000.0, 1000.0]), 64),
        "linear": LinearScanIndex(2),
    }
    for name, index in backends.items():
        db = SpatialDatabase(points, index=index)
        phase_totals = {"search": 0.0, "filter": 0.0, "integrate": 0.0}
        for trial, center in enumerate(centers):
            gaussian = Gaussian(center, paper_sigma(gamma))
            engine = db.engine(
                strategies="all",
                integrator=ImportanceSamplingIntegrator(n_samples, seed=seed + trial),
            )
            stats = engine.execute(
                ProbabilisticRangeQuery(gaussian, delta, theta)
            ).stats
            for phase in phase_totals:
                phase_totals[phase] += stats.phase_seconds.get(phase, 0.0)
        total = sum(phase_totals.values())
        table.add_row(
            name,
            phase_totals["search"] * 1e3 / n_trials,
            phase_totals["filter"] * 1e3 / n_trials,
            phase_totals["integrate"] * 1e3 / n_trials,
            100.0 * phase_totals["integrate"] / total if total else 0.0,
        )
    table.note("paper: 'at least 97% of the total processing time was taken "
               "up with numerical integration'")
    return table


def run_ablation_sequential(
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 3,
    max_samples: int = 100_000,
    seed: int = 0,
) -> ExperimentTable:
    """Adaptive sequential sampling vs the paper's fixed budget.

    Both evaluate the same candidates; the sequential sampler stops each
    candidate as soon as the θ-decision is statistically clear, spending
    the full budget only near the boundary.
    """
    from repro.integrate.sequential import SequentialImportanceSampler

    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    table = ExperimentTable(
        "Ablation — sequential vs fixed Phase-3 sampling budgets",
        ["mode", "candidates", "samples (M)", "answers", "seconds"],
    )
    sigma = paper_sigma(gamma)
    for mode in ("fixed", "sequential"):
        total_candidates = total_samples = total_answers = 0.0
        total_seconds = 0.0
        for trial, center in enumerate(centers):
            if mode == "fixed":
                integrator = ImportanceSamplingIntegrator(
                    max_samples, seed=seed + trial
                )
            else:
                integrator = SequentialImportanceSampler(
                    theta, max_samples=max_samples, seed=seed + trial
                )
            engine = db.engine(strategies="all", integrator=integrator)
            start = time.perf_counter()
            result = engine.execute(
                ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
            )
            total_seconds += time.perf_counter() - start
            total_candidates += result.stats.integrations
            total_samples += result.stats.integration_samples
            total_answers += len(result)
        table.add_row(
            mode,
            total_candidates / n_trials,
            total_samples / n_trials / 1e6,
            total_answers / n_trials,
            total_seconds / n_trials,
        )
    table.note("identical candidates; sequential stops early once the "
               "theta-decision is clear")
    return table


def run_ablation_lookup_fidelity(
    *,
    gamma: float = 10.0,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Exact closed-form lookups vs the paper's Monte Carlo U-catalogs.

    Quantifies the deviation documented in EXPERIMENTS.md: the paper built
    its r_θ and α tables by sampling, and conservative lookup semantics
    make a coarse catalog retrieve and integrate more.  The BF inner
    acceptance radius suffers most (it shrinks under conservative lookup),
    which is exactly why the paper's BF looks weaker than ours.
    """
    from repro.catalog.bf import BFCatalog
    from repro.catalog.rtheta import RThetaCatalog
    from repro.core.strategies import make_strategies

    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    counting = _CountOnlyIntegrator()
    sigma = paper_sigma(gamma)

    mc_rtheta = RThetaCatalog.build_monte_carlo(
        2, np.geomspace(1e-3, 0.4999, 24), n_samples=100_000, seed=seed
    )
    mc_bf = BFCatalog.build_monte_carlo(
        2,
        deltas=np.geomspace(0.2, 12.0, 14),
        thetas=np.geomspace(1e-5, 0.9, 14),
        n_samples=100_000,
        seed=seed,
    )
    table = ExperimentTable(
        "Ablation — exact lookups vs MC-built U-catalogs (paper-faithful)",
        ["lookups", "RR+BF+OR candidates", "accepted free"],
    )
    for label, rtheta_lookup, bf_lookup in (
        ("exact", None, None),
        ("mc-catalogs", mc_rtheta, mc_bf),
    ):
        total_candidates = total_free = 0.0
        for center in centers:
            strategies = make_strategies(
                "all", rtheta_lookup=rtheta_lookup, bf_lookup=bf_lookup
            )
            engine = db.engine(strategies=strategies, integrator=counting)
            stats = engine.execute(
                ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
            ).stats
            total_candidates += stats.integrations
            total_free += stats.accepted_without_integration
        table.add_row(label, total_candidates / n_trials, total_free / n_trials)
    table.note("conservative catalog lookups inflate the integration load — "
               "the regime the paper operated in")
    return table


def run_3d_fringe_extension(
    *,
    n_points: int = 30_000,
    delta: float = 20.0,
    theta: float = 0.01,
    n_trials: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Our d >= 3 extension of the RR fringe filter, quantified in 3-D.

    The paper disables the Minkowski fringe test beyond d = 2
    ("computation of fringe part is not easy for d >= 3"); with the
    distance-to-box formulation it is exact in any dimension.  This
    experiment compares candidate counts with the filter in paper mode
    (off for d = 3) and exact mode on clustered 3-D data.
    """
    from repro.datasets.synthetic import clustered_points

    points = clustered_points(
        n_points, 3, n_clusters=25, spread=40.0, seed=seed
    )
    db = SpatialDatabase(points)
    rng = np.random.default_rng(seed + 1)
    centers = points[rng.choice(n_points, size=n_trials, replace=False)]
    counting = _CountOnlyIntegrator()
    # An anisotropic, tilted 3-D covariance (axis ratio ~ 5:2:1).
    base = np.diag([250.0, 100.0, 50.0])
    rotation, _ = np.linalg.qr(np.random.default_rng(7).standard_normal((3, 3)))
    sigma = rotation @ base @ rotation.T

    table = ExperimentTable(
        "Extension — RR fringe filter in 3-D (paper mode vs exact mode)",
        ["fringe", "RR candidates", "ALL candidates"],
    )
    for mode in ("paper", "exact"):
        rr_total = all_total = 0.0
        for center in centers:
            query = ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
            for spec, bucket in (("rr", "rr"), ("all", "all")):
                strategies = make_strategies(spec, fringe_filter=mode)
                engine = db.engine(strategies=strategies, integrator=counting)
                count = engine.execute(query).stats.integrations
                if bucket == "rr":
                    rr_total += count
                else:
                    all_total += count
        table.add_row(mode, rr_total / n_trials, all_total / n_trials)
    table.note("'paper' disables the fringe test beyond d=2; 'exact' uses "
               "dist(point, box) <= delta, valid in any dimension")
    return table


def run_ablation_em_strategy(
    gammas=(1.0, 10.0, 100.0),
    *,
    delta: float = 25.0,
    theta: float = 0.01,
    n_trials: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Our EM (ellipsoid-Minkowski) filter against the paper's combinations.

    EM tests candidates against the θ-region ⊕ δ-ball directly (sound by
    the same point-symmetry argument as Fig. 3), a region contained in
    both the RR and OR regions — the geometric limit of that filter
    family.  EM+BF should therefore never integrate more than ALL.
    """
    db = load_road_database()
    centers = random_query_centers(db, n_trials, seed)
    counting = _CountOnlyIntegrator()
    specs = ("rr+or", "all", "em", "em+bf")
    table = ExperimentTable(
        "Ablation — EM (theta-region + delta ball) filter vs paper combos",
        ["gamma"] + [s.upper() for s in specs],
    )
    for gamma in gammas:
        sigma = paper_sigma(gamma)
        totals = {spec: 0.0 for spec in specs}
        for center in centers:
            query = ProbabilisticRangeQuery(Gaussian(center, sigma), delta, theta)
            for spec in specs:
                engine = db.engine(strategies=spec, integrator=counting)
                totals[spec] += engine.execute(query).stats.integrations
        table.add_row(gamma, *[totals[s] / n_trials for s in specs])
    table.note("EM region ⊆ RR ∩ OR regions; EM+BF is the tightest "
               "configuration this library offers")
    return table

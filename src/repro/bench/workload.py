"""Mixed-workload throughput measurement.

The paper evaluates one query configuration at a time; a deployed system
sees a *mix* — different uncertainties, ranges and thresholds arriving
together.  :class:`WorkloadGenerator` draws query specs from configurable
distributions and :func:`run_workload` executes them through one engine,
reporting latency percentiles and the per-phase breakdown — the numbers a
capacity planner actually needs.

``run_workload(..., workers=k)`` routes the batch through
:meth:`QueryEngine.run_batch` instead of the per-query loop: one engine,
per-query forked RNG streams, and the vectorised shared-batch Phase-3
sampler.  ``WorkloadGenerator(quantize=n)`` snaps δ and θ onto n-level
log grids — the realistic production shape (applications expose a fixed
menu of ranges/confidences), and what lets the preparation LRU caches
(eigendecompositions, r_θ, BF α root-finds) hit across queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import ExperimentTable, paper_sigma
from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.errors import ReproError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.sequential import SequentialImportanceSampler

__all__ = ["WorkloadGenerator", "WorkloadReport", "run_workload"]


class WorkloadGenerator:
    """Draws random PRQ specs against a database.

    Parameters
    ----------
    database:
        Query centres are sampled from the stored objects (the paper's
        protocol).
    gamma_choices, delta_range, theta_range:
        Distributions of the query parameters: γ uniform over the given
        choices, δ log-uniform over its range, θ log-uniform over its
        range.
    quantize:
        When set, δ and θ are snapped to log-spaced grids of this many
        levels inside their ranges.  Production systems expose a fixed
        menu of ranges and confidence levels rather than a continuum;
        quantized workloads also exercise the preparation LRU caches.
    seed:
        Generator seed.
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        gamma_choices=(1.0, 10.0, 100.0),
        delta_range=(10.0, 50.0),
        theta_range=(0.005, 0.3),
        quantize: int | None = None,
        seed: int = 0,
    ):
        if database.dim != 2:
            raise ReproError(
                "WorkloadGenerator uses the paper's 2-D covariance family; "
                f"got a {database.dim}-D database"
            )
        if not delta_range[0] < delta_range[1] or delta_range[0] <= 0:
            raise ReproError(f"bad delta_range {delta_range}")
        if not 0 < theta_range[0] < theta_range[1] < 1:
            raise ReproError(f"bad theta_range {theta_range}")
        if quantize is not None and quantize < 2:
            raise ReproError(f"quantize needs >= 2 levels, got {quantize}")
        self._database = database
        self._gammas = tuple(gamma_choices)
        self._delta_range = delta_range
        self._theta_range = theta_range
        self._delta_grid = (
            np.geomspace(*delta_range, quantize) if quantize else None
        )
        self._theta_grid = (
            np.geomspace(*theta_range, quantize) if quantize else None
        )
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _snap(value: float, grid: np.ndarray | None) -> float:
        if grid is None:
            return value
        return float(grid[np.argmin(np.abs(np.log(grid) - np.log(value)))])

    def next_query(self) -> ProbabilisticRangeQuery:
        center = self._database.point(
            int(self._rng.integers(len(self._database)))
        )
        gamma = float(self._rng.choice(self._gammas))
        delta = self._snap(
            float(np.exp(self._rng.uniform(*np.log(self._delta_range)))),
            self._delta_grid,
        )
        theta = self._snap(
            float(np.exp(self._rng.uniform(*np.log(self._theta_range)))),
            self._theta_grid,
        )
        return ProbabilisticRangeQuery(
            Gaussian(center, paper_sigma(gamma)), delta, theta
        )

    def batch(self, count: int) -> list[ProbabilisticRangeQuery]:
        if count < 1:
            raise ReproError(f"count must be >= 1, got {count}")
        return [self.next_query() for _ in range(count)]


@dataclass
class WorkloadReport:
    """Latency and workload aggregates over a batch of queries."""

    latencies: list[float] = field(default_factory=list)
    integrations: list[int] = field(default_factory=list)
    answers: list[int] = field(default_factory=list)
    #: Per-query result id tuples, input order — for cross-integrator
    #: result-set identity checks.
    result_ids: list[tuple[int, ...]] = field(default_factory=list)
    #: Phase-3 decision counts keyed by evaluator method (the cascade's
    #: per-tier breakdown), summed over the batch.
    tier_decisions: dict[str, int] = field(default_factory=dict)
    phase_totals: dict[str, float] = field(default_factory=dict)
    #: Per-query planner decisions (input order): strategy combo chosen,
    #: phase-1 mode, plan-cache hit, and predicted vs actual Phase-3
    #: candidate counts.  Empty when the engine has no planner attached.
    plans: list[dict] = field(default_factory=list)
    #: End-to-end batch wall time; None on the legacy per-query path,
    #: where per-query latencies are the only timing available.
    wall_seconds: float | None = None
    workers: int = 1

    def percentile(self, q: float) -> float:
        if not self.latencies:
            raise ReproError("empty report")
        return float(np.percentile(self.latencies, q))

    @property
    def total_seconds(self) -> float:
        """Batch wall time: measured end-to-end when available, else the
        sum of per-query latencies (the sequential path's wall time)."""
        if self.wall_seconds is not None:
            return self.wall_seconds
        return sum(self.latencies)

    @property
    def queries_per_second(self) -> float:
        total = self.total_seconds
        return len(self.latencies) / total if total > 0 else float("inf")

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            f"Workload — {len(self.latencies)} mixed queries",
            ["metric", "value"],
        )
        table.add_row("p50 latency (ms)", self.percentile(50) * 1e3)
        table.add_row("p95 latency (ms)", self.percentile(95) * 1e3)
        table.add_row("p99 latency (ms)", self.percentile(99) * 1e3)
        table.add_row("throughput (qps)", self.queries_per_second)
        if self.wall_seconds is not None:
            table.add_row("workers", self.workers)
            table.add_row("batch wall (s)", self.wall_seconds)
        table.add_row("mean integrations", float(np.mean(self.integrations)))
        table.add_row("mean answers", float(np.mean(self.answers)))
        total_phase = sum(self.phase_totals.values())
        for phase, seconds in sorted(self.phase_totals.items()):
            share = 100.0 * seconds / total_phase if total_phase else 0.0
            table.add_row(f"phase {phase} share (%)", share)
        return table


def _record_plan(report: WorkloadReport, stats) -> None:
    """Append one query's planner decision to the report, if planned."""
    if stats.plan_strategies is None:
        return
    report.plans.append(
        {
            "strategies": "+".join(stats.plan_strategies),
            "phase1": stats.plan_phase1,
            "cache_hit": bool(stats.plan_cache_hit),
            "predicted_phase3": stats.predicted_integrations,
            "actual_phase3": stats.integrations,
            "predicted_seconds": stats.predicted_seconds,
        }
    )


def run_workload(
    database: SpatialDatabase,
    queries,
    *,
    strategies: str = "all",
    integrator: ProbabilityIntegrator | None = None,
    workers: int | None = None,
    base_seed: int = 0,
    obs=None,
) -> WorkloadReport:
    """Execute a query batch through one engine and aggregate statistics.

    The default Phase-3 evaluator is the adaptive sequential sampler with
    per-query θ — each query gets an integrator tuned to its own
    threshold.

    With ``workers=None`` (default) queries run through the legacy
    per-query loop.  Any integer routes the batch through
    :meth:`QueryEngine.run_batch` with that many worker threads and the
    *vectorised* shared-batch sequential sampler (or per-query forks of
    ``integrator`` when one is supplied); per-query results are
    bit-identical for every worker count.

    ``obs`` attaches a :class:`repro.obs.Observability` sink to the
    engine(s): the whole workload lands in one trace/registry, and the
    report is unchanged (observability never affects results).
    """
    report = WorkloadReport()
    if workers is not None:
        engine = database.engine(strategies=strategies, obs=obs)
        if integrator is not None:
            factory = lambda query, seed: integrator.fork(seed)  # noqa: E731
        else:
            factory = lambda query, seed: SequentialImportanceSampler(  # noqa: E731
                query.theta, max_samples=50_000, seed=seed, share_batches=True
            )
        batch = engine.run_batch(
            list(queries),
            workers=workers,
            base_seed=base_seed,
            integrator_factory=factory,
        )
        report.workers = workers
        report.wall_seconds = batch.stats.wall_seconds
        for result in batch:
            report.latencies.append(result.stats.total_seconds)
            report.integrations.append(result.stats.integrations)
            report.answers.append(len(result))
            report.result_ids.append(result.ids)
            _record_plan(report, result.stats)
        report.phase_totals = dict(batch.stats.phase_seconds)
        report.tier_decisions = dict(batch.stats.tier_decisions)
        return report
    for query in queries:
        engine = database.engine(
            strategies=strategies,
            integrator=integrator
            or SequentialImportanceSampler(query.theta, max_samples=50_000),
            obs=obs,
        )
        result = engine.execute(query)
        report.latencies.append(result.stats.total_seconds)
        report.integrations.append(result.stats.integrations)
        report.answers.append(len(result))
        report.result_ids.append(result.ids)
        _record_plan(report, result.stats)
        for method, count in result.stats.tier_decisions.items():
            report.tier_decisions[method] = (
                report.tier_decisions.get(method, 0) + count
            )
        for phase, seconds in result.stats.phase_seconds.items():
            report.phase_totals[phase] = (
                report.phase_totals.get(phase, 0.0) + seconds
            )
    return report

"""Benchmark harness: one experiment runner per paper table/figure.

:mod:`repro.bench.harness` owns dataset caching, query-trial execution and
plain-text table rendering; :mod:`repro.bench.experiments` encodes the
parameters of every experiment in the paper's evaluation (Tables I–III,
Figures 13–17, the §V-B-3 sensitivity sweeps) plus this library's own
ablations.  The scripts in ``benchmarks/`` are thin wrappers that call
these runners and print the rows the paper reports.
"""

from repro.bench.harness import (
    ExperimentTable,
    format_table,
    load_corel_points,
    load_road_database,
    paper_sigma,
)
from repro.bench import experiments

__all__ = [
    "ExperimentTable",
    "format_table",
    "load_road_database",
    "load_corel_points",
    "paper_sigma",
    "experiments",
]

"""One-call regeneration of the full experimental record.

:func:`run_full_report` executes every paper experiment and every ablation
at a configurable scale and returns one plain-text document mirroring the
structure of EXPERIMENTS.md.  ``python -m repro experiment all`` exposes it
from the command line.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro import __version__
from repro.bench import experiments

__all__ = ["run_full_report", "write_full_report"]


def run_full_report(
    *,
    n_trials: int = 3,
    n_samples: int = 20_000,
    include_9d: bool = True,
) -> str:
    """Run everything and return the report text.

    ``include_9d=False`` skips Table III (the slowest section: it
    generates the 68k-row 9-D dataset).
    """
    started = time.time()
    blocks: list[str] = [
        f"repro {__version__} — full experimental report",
        f"configuration: {n_trials} trials, {n_samples} IS samples/candidate",
        "",
    ]

    grid = experiments.run_strategy_grid(n_trials=n_trials, n_samples=n_samples)
    blocks += [grid.table_time().render(), "", grid.table_candidates().render(), ""]
    blocks += [experiments.run_region_tables().render(), ""]
    fig17_table, _ = experiments.run_fig17()
    blocks += [fig17_table.render(), ""]
    blocks += [experiments.run_sensitivity_delta(n_trials=n_trials).render(), ""]
    blocks += [experiments.run_sensitivity_theta(n_trials=n_trials).render(), ""]
    blocks += [experiments.run_sensitivity_shape(n_trials=n_trials).render(), ""]
    if include_9d:
        blocks += [experiments.run_table3(n_trials=n_trials).render(), ""]
    blocks += [experiments.run_ablation_integrators().render(), ""]
    blocks += [
        experiments.run_ablation_catalog_resolution(n_trials=n_trials).render(),
        "",
    ]
    blocks += [
        experiments.run_ablation_sequential(
            n_trials=n_trials, max_samples=max(n_samples, 20_000)
        ).render(),
        "",
    ]
    blocks += [
        experiments.run_ablation_lookup_fidelity(n_trials=n_trials).render(),
        "",
    ]
    blocks += [experiments.run_ablation_em_strategy(n_trials=n_trials).render(), ""]
    blocks += [experiments.run_3d_fringe_extension(n_trials=n_trials).render(), ""]
    blocks.append(f"total wall time: {time.time() - started:.1f} s")
    return "\n".join(blocks)


def write_full_report(path: str | Path, **kwargs) -> Path:
    """Run the report and write it to ``path``."""
    target = Path(path)
    target.write_text(run_full_report(**kwargs) + "\n")
    return target

"""Shared infrastructure for the benchmark scripts.

Datasets are generated once per process and cached; query trials pick
random target objects as query centres exactly as the paper does ("we
selected one target object randomly as the query center"); tables render
as aligned plain text so bench output can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.database import SpatialDatabase
from repro.datasets.corel import color_moments_like
from repro.datasets.roadnet import long_beach_like

__all__ = [
    "paper_sigma",
    "load_road_database",
    "load_corel_points",
    "random_query_centers",
    "stopwatch",
    "best_of",
    "ExperimentTable",
    "format_table",
]


@contextmanager
def stopwatch():
    """Measure a wall-clock interval: ``with stopwatch() as t: ...`` then
    ``t()`` returns elapsed seconds (readable both during and after)."""
    start = time.perf_counter()
    stop: list[float] = []
    yield lambda: (stop[0] if stop else time.perf_counter()) - start
    stop.append(time.perf_counter())


def best_of(n: int, fn):
    """Run ``fn`` ``n`` times and return its fastest wall time in seconds.

    The standard noise-suppression shape for micro/overhead comparisons
    (the minimum over repetitions estimates the noise floor, unlike the
    mean, which scheduler jitter only ever inflates).  ``fn``'s return
    value is discarded.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    best = math.inf
    for _ in range(n):
        with stopwatch() as elapsed:
            fn()
        best = min(best, elapsed())
    return best


def paper_sigma(gamma: float) -> np.ndarray:
    """The paper's 2-D covariance (Eq. 34): γ·[[7, 2√3], [2√3, 3]].

    Its isosurface is an ellipse tilted 30° with a 3:1 axis ratio.
    """
    root3 = math.sqrt(3.0)
    return float(gamma) * np.array([[7.0, 2.0 * root3], [2.0 * root3, 3.0]])


@functools.lru_cache(maxsize=2)
def load_road_database(seed: int = 0) -> SpatialDatabase:
    """The Long-Beach-like 2-D database (50,747 points, STR-loaded R*-tree)."""
    network = long_beach_like(seed=seed)
    return SpatialDatabase(network.midpoints)


@functools.lru_cache(maxsize=2)
def load_corel_points(seed: int = 0) -> np.ndarray:
    """The calibrated Corel-like 9-D vectors (68,040 rows)."""
    return color_moments_like(seed=seed)


def random_query_centers(
    database: SpatialDatabase, n_trials: int, seed: int
) -> np.ndarray:
    """Random data points used as query centres (the paper's protocol)."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(len(database), size=n_trials, replace=False)
    return np.vstack([database.point(int(i)) for i in ids])


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------


@dataclass
class ExperimentTable:
    """A small column-oriented result table."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """Render an aligned plain-text table with a title rule."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(str(col).rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"# {note}")
    return "\n".join(lines)

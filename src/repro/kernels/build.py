"""Compile and load the C hot-kernel library (cached, entirely optional).

The library is built from ``_kernels.c`` with whatever C compiler the
machine offers (``$CC``, ``cc``, ``gcc`` or ``clang``), cached under a
content-hashed filename so recompilation happens only when the source
changes, and loaded through :mod:`ctypes`.  Every failure mode — no
compiler, compile error, unloadable artifact — returns ``None`` and the
dispatch layer silently keeps the NumPy fallback, so importing
:mod:`repro` never breaks on a machine without a toolchain.

Environment knobs:

- ``REPRO_NO_JIT=1`` (read by :mod:`repro.kernels`, not here) skips the
  build entirely;
- ``REPRO_KERNEL_CACHE`` overrides the cache directory (default
  ``$XDG_CACHE_HOME/repro-kernels`` or ``~/.cache/repro-kernels``).

Concurrent builders (e.g. spawned shard workers racing on a cold cache)
are safe: each compiles to a private temporary file and publishes it with
an atomic :func:`os.replace`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["cache_dir", "load_library"]

_SOURCE = Path(__file__).with_name("_kernels.c")

#: Exported symbol -> argtypes (restype defaults to None unless listed in
#: :data:`_RESTYPES`).  ``ctypes.c_void_p`` stands in for array pointers;
#: the dispatch wrappers pass ``ndarray.ctypes.data`` of C-contiguous
#: float64/int8/uint8 arrays.
_SIGNATURES: dict[str, list] = {
    "repro_chi2_sandwich_block": [
        ctypes.c_long, ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
        ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
    ],
    "repro_chi2_sandwich_block_f32": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
    ],
    "repro_sqdist_spectrum": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
    ],
    "repro_ruben_block": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_long, ctypes.c_double, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p,
    ],
    "repro_classify_rr": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_double, ctypes.c_void_p,
    ],
    "repro_classify_or": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
    ],
    "repro_classify_bf": [
        ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_double, ctypes.c_double, ctypes.c_int, ctypes.c_void_p,
    ],
}

_RESTYPES = {"repro_ruben_block": ctypes.c_int}


def cache_dir() -> Path:
    """Directory holding compiled kernel libraries."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compile(target: Path) -> bool:
    compiler = _find_compiler()
    if compiler is None:
        return False
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=target.parent)
        os.close(fd)
    except OSError:
        return False
    cmd = [
        compiler, "-O3", "-fPIC", "-shared", "-ffp-contract=off",
        "-o", tmp, str(_SOURCE), "-lm",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=180)
        if proc.returncode != 0:
            os.unlink(tmp)
            return False
        os.replace(tmp, target)  # atomic publish: racing builders are fine
        return True
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


def load_library() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable."""
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(source).hexdigest()[:16]
    target = cache_dir() / f"repro_kernels_{tag}.so"
    if not target.is_file() and not _compile(target):
        return None
    try:
        lib = ctypes.CDLL(str(target))
    except OSError:
        return None
    try:
        for name, argtypes in _SIGNATURES.items():
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = _RESTYPES.get(name)
    except AttributeError:
        return None  # stale artifact missing a symbol
    return lib

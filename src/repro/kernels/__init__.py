"""Compiled hot kernels with a NumPy fallback, selected at import time.

The Phase-2 filter classifiers and the Phase-3 probability cascade spend
nearly all their time in a handful of small numeric blocks.  This package
provides two interchangeable backends for them:

- ``c`` — a shared library built from ``_kernels.c`` at first import
  (content-hash cached, see :mod:`repro.kernels.build`) and called
  through :mod:`ctypes`;
- ``numpy`` — :mod:`repro.kernels.fallback`, pure NumPy/SciPy with
  reusable scratch arenas, always available.

Selection happens once at import: the C backend is used when it compiles
and loads, unless ``REPRO_NO_JIT=1`` (or any value other than ``0``) is
set, which pins the NumPy fallback for the whole process.  ``backend()``
and ``kernel_table()`` report what was chosen.

Soundness contract: the probability kernels return ``[lower, upper]``
bounds that must *contain* the true probability.  The compiled backend
widens its bounds by a computed numerical-error allowance plus a fixed
epsilon, so its bounds can be marginally looser than the fallback's but
never unsound; the float32 sandwich fast path additionally converts a
rigorous rotation error bound into a noncentrality interval before
evaluating the CDF (monotone decreasing in the noncentrality).
"""

from __future__ import annotations

import os

import numpy as np

from repro.kernels import fallback
from repro.kernels.build import load_library

__all__ = [
    "BACKEND",
    "backend",
    "bf_classify",
    "chi2_sandwich_block",
    "chi2_sandwich_block_f32",
    "kernel_table",
    "minkowski_contains",
    "oblique_contains",
    "ruben_block",
    "squared_distance_noncentralities",
]

#: Fixed soundness margin added to compiled probability bounds on top of
#: the per-value error estimate (covers incomplete-gamma evaluation error).
_WIDEN = 1e-12

#: The float32 sandwich path holds query vectors in fixed stack buffers.
_F32_MAX_DIM = 64

_NO_JIT = os.environ.get("REPRO_NO_JIT", "").strip().lower() not in {
    "", "0", "false",
}
_LIB = None if _NO_JIT else load_library()

#: Active backend: ``"c"`` or ``"numpy"``.
BACKEND: str = "c" if _LIB is not None else "numpy"


def backend() -> str:
    """Name of the backend selected at import time."""
    return BACKEND


def kernel_table() -> list[dict[str, str]]:
    """Per-kernel backend report (for ``repro kernels`` and tests)."""
    f32 = BACKEND if BACKEND == "c" else "numpy (float64 exact)"
    return [
        {"kernel": "squared_distance_noncentralities", "backend": BACKEND},
        {"kernel": "chi2_sandwich_block", "backend": BACKEND},
        {"kernel": "chi2_sandwich_block_f32", "backend": f32},
        {"kernel": "ruben_block", "backend": BACKEND},
        {"kernel": "minkowski_contains", "backend": BACKEND},
        {"kernel": "oblique_contains", "backend": BACKEND},
        {"kernel": "bf_classify", "backend": BACKEND},
    ]


def _c64(a) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def _ptr(a: np.ndarray) -> int:
    return a.ctypes.data


# ----------------------------------------------------------------------
# Quadratic-form kernels
# ----------------------------------------------------------------------


def squared_distance_noncentralities(
    mean: np.ndarray,
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Per-eigendirection noncentralities ((mean − pᵢ)ᵀE)ⱼ² / λⱼ."""
    if _LIB is None:
        return fallback.squared_distance_noncentralities(
            mean, basis, eigenvalues, points
        )
    pts = _c64(np.atleast_2d(points))
    m, d = pts.shape
    out = np.empty((m, d))
    if m:
        mean = _c64(mean)
        basis = _c64(basis)
        eig = _c64(eigenvalues)
        _LIB.repro_sqdist_spectrum(
            m, d, _ptr(mean), _ptr(basis), _ptr(eig), _ptr(pts), _ptr(out)
        )
    return out


def chi2_sandwich_block(
    x: float,
    df: float,
    nc_totals: np.ndarray,
    lam_min: float,
    lam_max: float,
) -> np.ndarray:
    """(m, 2) sandwich bounds λ_min·χ² ≤ Q ≤ λ_max·χ² per candidate."""
    if _LIB is None:
        return fallback.chi2_sandwich_block(x, df, nc_totals, lam_min, lam_max)
    nc = _c64(np.atleast_1d(nc_totals))
    out = np.empty((nc.size, 2))
    if nc.size:
        _LIB.repro_chi2_sandwich_block(
            nc.size, float(x), float(df), _ptr(nc),
            float(lam_min), float(lam_max), _WIDEN, _ptr(out),
        )
    return out


def chi2_sandwich_block_f32(
    mean: np.ndarray,
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    points: np.ndarray,
    x: float,
    df: float,
    lam_min: float,
    lam_max: float,
) -> np.ndarray:
    """Sandwich bounds with a float32 rotation fast path.

    Sound by construction: the compiled path brackets each rotated
    coordinate in a rigorous interval and evaluates the CDF at the
    pessimal end of the induced noncentrality interval.  Without the C
    backend (or above 64 dimensions) it degrades to the exact float64
    pipeline, which is trivially sound.
    """
    pts = _c64(np.atleast_2d(points))
    m, d = pts.shape
    if _LIB is None or d > _F32_MAX_DIM:
        ncs = fallback.squared_distance_noncentralities(
            _c64(mean), _c64(basis), _c64(eigenvalues), pts
        )
        return fallback.chi2_sandwich_block(
            x, df, ncs.sum(axis=1), lam_min, lam_max
        )
    out = np.empty((m, 2))
    if m:
        mean = _c64(mean)
        basis = _c64(basis)
        eig = _c64(eigenvalues)
        _LIB.repro_chi2_sandwich_block_f32(
            m, d, _ptr(mean), _ptr(basis), _ptr(eig), _ptr(pts),
            float(x), float(df), float(lam_min), float(lam_max),
            _WIDEN, _ptr(out),
        )
    return out


def ruben_block(
    weights: np.ndarray,
    dofs: np.ndarray,
    noncentralities: np.ndarray,
    x: float,
    *,
    theta: float | None = None,
    tol: float = 1e-12,
    max_terms: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched Ruben series bounds; see ``quadform.ruben_series_block``."""
    if _LIB is None:
        return fallback.ruben_block(
            weights, dofs, noncentralities, x,
            theta=theta, tol=tol, max_terms=max_terms,
        )
    lam = _c64(weights)
    h = _c64(dofs)
    ncs = _c64(np.atleast_2d(noncentralities))
    m, d = ncs.shape
    lower = np.zeros(m)
    upper = np.ones(m)
    ok = np.ones(m, dtype=np.uint8)
    if m:
        # Widen below tol so tol-convergence stays reachable while still
        # covering floating-point drift in the series recursion.
        widen = min(_WIDEN if theta is None else 1e-10, 0.25 * tol)
        rc = _LIB.repro_ruben_block(
            d, m, _ptr(lam), _ptr(h), _ptr(ncs), float(x),
            -1.0 if theta is None else float(theta),
            float(tol), int(max_terms), widen,
            _ptr(lower), _ptr(upper), _ptr(ok),
        )
        if rc != 0:  # allocation failure: the fallback needs no C heap
            return fallback.ruben_block(
                weights, dofs, noncentralities, x,
                theta=theta, tol=tol, max_terms=max_terms,
            )
    return lower, upper, ok.astype(bool)


# ----------------------------------------------------------------------
# Phase-2 classification kernels
# ----------------------------------------------------------------------


def minkowski_contains(
    points: np.ndarray, lows: np.ndarray, highs: np.ndarray, delta: float
) -> np.ndarray:
    """Boolean mask: point within δ of the [lows, highs] rectangle."""
    if _LIB is None:
        return fallback.minkowski_contains(points, lows, highs, delta)
    pts = _c64(np.atleast_2d(points))
    m, d = pts.shape
    codes = np.empty(m, dtype=np.int8)
    if m:
        lows = _c64(lows)
        highs = _c64(highs)
        _LIB.repro_classify_rr(
            m, d, _ptr(pts), _ptr(lows), _ptr(highs), float(delta), _ptr(codes)
        )
    return codes == 0


def oblique_contains(
    points: np.ndarray,
    center: np.ndarray,
    basis: np.ndarray,
    half_widths: np.ndarray,
) -> np.ndarray:
    """Boolean mask: |Eᵀ(p − c)|ⱼ ≤ wⱼ in the eigenbasis box."""
    if _LIB is None:
        return fallback.oblique_contains(points, center, basis, half_widths)
    pts = _c64(np.atleast_2d(points))
    m, d = pts.shape
    codes = np.empty(m, dtype=np.int8)
    if m:
        center = _c64(center)
        basis = _c64(basis)
        half_widths = _c64(half_widths)
        _LIB.repro_classify_or(
            m, d, _ptr(pts), _ptr(center), _ptr(basis),
            _ptr(half_widths), _ptr(codes),
        )
    return codes == 0


def bf_classify(
    points: np.ndarray,
    center: np.ndarray,
    alpha_upper: float,
    alpha_lower: float | None,
) -> np.ndarray:
    """int8 codes: −1 beyond α∥, +1 within α⊥ (when given), else 0."""
    if _LIB is None:
        return fallback.bf_classify(points, center, alpha_upper, alpha_lower)
    pts = _c64(np.atleast_2d(points))
    m, d = pts.shape
    codes = np.empty(m, dtype=np.int8)
    if m:
        center = _c64(center)
        has_lower = alpha_lower is not None
        _LIB.repro_classify_bf(
            m, d, _ptr(pts), _ptr(center), float(alpha_upper),
            float(alpha_lower) if has_lower else 0.0,
            1 if has_lower else 0, _ptr(codes),
        )
    return codes

"""Pure-NumPy kernel implementations — the always-available backend.

These functions are the reference semantics for every compiled kernel in
``_kernels.c``: same signatures, same results (the compiled probability
kernels may widen their [lower, upper] bounds by a soundness epsilon; the
fallback bounds are exactly the pre-kernel NumPy values).

Unlike the original in-line implementations they draw their *scratch*
arrays from a per-thread arena keyed on block shape, so a steady stream
of same-shaped candidate blocks — the common case inside ``run_batch``
and the serve scheduler — allocates nothing after warm-up.  Only
intermediate buffers live in the arena; every array returned to a caller
is freshly allocated, because callers (the cascade, the degradation
path) may hold results across subsequent kernel calls.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy import special

__all__ = [
    "bf_classify",
    "chi2_sandwich_block",
    "minkowski_contains",
    "oblique_contains",
    "ruben_block",
    "scratch",
    "squared_distance_noncentralities",
]

_local = threading.local()


def scratch(name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """A reusable per-thread scratch array of at least ``shape``.

    Contents are whatever the previous use left behind — callers must
    write before they read.  The backing buffer only ever grows
    (elementwise max of requested shapes), and a growing request keeps
    the already-written leading region intact, so rolling-state arrays
    (the Ruben ``a``/``g`` recursions) survive capacity doubling in
    place.
    """
    buffers = getattr(_local, "buffers", None)
    if buffers is None:
        buffers = _local.buffers = {}
    shape = tuple(int(s) for s in shape)
    buf = buffers.get(name)
    if buf is None or buf.ndim != len(shape) or buf.dtype != np.dtype(dtype):
        buf = buffers[name] = np.empty(shape, dtype=dtype)
    elif any(have < want for have, want in zip(buf.shape, shape)):
        grown = np.empty(
            tuple(max(have, want) for have, want in zip(buf.shape, shape)),
            dtype=dtype,
        )
        region = tuple(slice(0, s) for s in buf.shape)
        grown[region] = buf  # preserve rolling state across growth
        buf = buffers[name] = grown
    return buf[tuple(slice(0, s) for s in shape)]


# ----------------------------------------------------------------------
# Quadratic-form kernels
# ----------------------------------------------------------------------


def squared_distance_noncentralities(
    mean: np.ndarray,
    basis: np.ndarray,
    eigenvalues: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Noncentralities ((mean − pᵢ)ᵀE)ⱼ² / λⱼ for an (m, d) block."""
    diff = np.subtract(mean[None, :], points, out=scratch("sq_diff", points.shape))
    rotated = diff @ basis  # fresh: returned to the caller after squaring
    np.square(rotated, out=rotated)
    rotated /= eigenvalues
    return rotated


def chi2_sandwich_block(
    x: float,
    df: float,
    nc_totals: np.ndarray,
    lam_min: float,
    lam_max: float,
) -> np.ndarray:
    """(m, 2) noncentral-χ² sandwich bounds over total noncentralities."""
    from scipy import stats as _stats

    nc_totals = np.asarray(nc_totals, dtype=float)
    bounds = np.zeros((nc_totals.size, 2))
    if x <= 0:
        return bounds
    noncentral = nc_totals > 0
    if np.any(noncentral):
        nc = nc_totals[noncentral]
        bounds[noncentral, 0] = _stats.ncx2.cdf(x / lam_max, df, nc)
        bounds[noncentral, 1] = _stats.ncx2.cdf(x / lam_min, df, nc)
    if not np.all(noncentral):
        central = ~noncentral
        bounds[central, 0] = _stats.chi2.cdf(x / lam_max, df)
        bounds[central, 1] = _stats.chi2.cdf(x / lam_min, df)
    return bounds


def ruben_block(
    weights: np.ndarray,
    dofs: np.ndarray,
    noncentralities: np.ndarray,
    x: float,
    *,
    theta: float | None = None,
    tol: float = 1e-12,
    max_terms: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched Ruben series (see ``quadform.ruben_series_block`` for the
    full contract); scratch ``a``/``g`` recursion blocks come from the
    arena instead of fresh zeroed allocations per call."""
    lam = np.asarray(weights, dtype=float)
    h = np.asarray(dofs, dtype=float)
    ncs = np.atleast_2d(np.asarray(noncentralities, dtype=float))
    m = ncs.shape[0]
    lower = np.zeros(m)
    upper = np.ones(m)
    ok = np.ones(m, dtype=bool)
    if m == 0:
        return lower, upper, ok
    if x <= 0:
        return lower, np.zeros(m), ok  # P(Q <= x) = 0 exactly

    beta = float(lam.min())
    ratios = 1.0 - beta / lam  # r_j in [0, 1)
    rho = float(h.sum())
    log_a0 = -0.5 * ncs.sum(axis=1) + 0.5 * float(np.sum(h * np.log(beta / lam)))
    usable = log_a0 >= -700.0
    ok &= usable
    rows = np.nonzero(usable)[0]
    if rows.size == 0:
        return lower, upper, ok

    n = rows.size
    capacity = 64
    # Scratch recursion blocks: only the [0..k) prefix written by the loop
    # below is ever read, so stale arena contents are harmless, and
    # growing the view preserves the prefix (see ``scratch``).
    a = scratch("ruben_a", (n, capacity))
    g = scratch("ruben_g", (n, capacity))
    a[:, 0] = np.exp(log_a0[rows])
    weight_sum = a[:, 0].copy()
    scaled_half_x = x / (2.0 * beta)
    gamma_k = float(special.gammainc(rho / 2.0, scaled_half_x))
    cdf = a[:, 0] * gamma_k
    nc_over_lam = np.divide(
        ncs[rows], lam, out=scratch("ruben_ncol", (n, lam.size))
    )
    ratio_pow = np.ones_like(ratios)  # r_j^(k-1) entering iteration k
    lo = np.zeros(n)
    hi = np.ones(n)
    active = np.ones(n, dtype=bool)

    def settle(idx: np.ndarray) -> None:
        """Record bounds for ``idx`` and retire the decided candidates.

        The tail Σ_{k>K} a_k·G_k is bounded below by 0 and above by the
        remaining mass times the current G_K (G_k decreases in k), so the
        interval [cdf, cdf + rem·G_K] always contains the true CDF.
        """
        rem = np.maximum(1.0 - weight_sum[idx], 0.0)
        lo[idx] = np.clip(cdf[idx], 0.0, 1.0)
        hi[idx] = np.clip(cdf[idx] + rem * gamma_k, 0.0, 1.0)
        done = hi[idx] - lo[idx] < tol
        if theta is not None:
            done |= (lo[idx] >= theta) | (hi[idx] < theta)
        active[idx[done]] = False

    settle(np.arange(n))
    for k in range(1, max_terms + 1):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        if k >= capacity:
            capacity *= 2
            a = scratch("ruben_a", (n, capacity))
            g = scratch("ruben_g", (n, capacity))
        shared = float(np.sum(h * ratio_pow * ratios))  # Σ h_j r_j^k
        g[idx, k - 1] = shared + k * beta * (nc_over_lam[idx] @ ratio_pow)
        ratio_pow = ratio_pow * ratios
        # a_k = (1/(2k)) Σ_{r=1..k} g_r a_{k-r}: one rolling dot per row.
        a[idx, k] = (
            np.einsum("ij,ij->i", g[idx, :k], a[idx, k - 1 :: -1]) / (2.0 * k)
        )
        weight_sum[idx] += a[idx, k]
        gamma_k = float(special.gammainc((rho + 2 * k) / 2.0, scaled_half_x))
        cdf[idx] += a[idx, k] * gamma_k
        settle(idx)
    ok[rows[active]] = False  # undecided at max_terms: caller falls back
    lower[rows] = lo
    upper[rows] = hi
    return lower, upper, ok


# ----------------------------------------------------------------------
# Phase-2 classification kernels
# ----------------------------------------------------------------------


def minkowski_contains(
    points: np.ndarray, lows: np.ndarray, highs: np.ndarray, delta: float
) -> np.ndarray:
    """Membership in rect ⊕ ball(δ): distance(point, rect) ≤ δ."""
    below = np.subtract(lows, points, out=scratch("rr_below", points.shape))
    np.maximum(below, 0.0, out=below)
    above = np.subtract(points, highs, out=scratch("rr_above", points.shape))
    np.maximum(above, 0.0, out=above)
    gap = below + above
    return np.einsum("ij,ij->i", gap, gap) <= delta**2


def oblique_contains(
    points: np.ndarray,
    center: np.ndarray,
    basis: np.ndarray,
    half_widths: np.ndarray,
) -> np.ndarray:
    """Membership in the eigenbasis-aligned box |Eᵀ(p − c)|ⱼ ≤ wⱼ."""
    diff = np.subtract(points, center, out=scratch("or_diff", points.shape))
    y = diff @ basis
    return np.all(np.abs(y) <= half_widths, axis=1)


def bf_classify(
    points: np.ndarray,
    center: np.ndarray,
    alpha_upper: float,
    alpha_lower: float | None,
) -> np.ndarray:
    """BF codes: −1 beyond α∥, +1 within α⊥ (when present), else 0."""
    deltas = np.subtract(points, center, out=scratch("bf_diff", points.shape))
    distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    codes = np.zeros(points.shape[0], dtype=np.int8)
    codes[distances > alpha_upper] = -1
    if alpha_lower is not None:
        codes[distances <= alpha_lower] = 1
    return codes

/* Hot-path kernels for the PRQ engine, compiled once and loaded via ctypes.
 *
 * Every function here mirrors a NumPy implementation in
 * repro/kernels/fallback.py; the dispatch layer (repro/kernels/__init__.py)
 * picks this library when it compiles and `REPRO_NO_JIT` is unset.  The
 * probability kernels keep the cascade's soundness contract: computed
 * [lower, upper] bounds are *widened* by a small epsilon covering the
 * numerical error of the incomplete-gamma evaluations, so a bound can be
 * looser than the NumPy path's but never unsound.
 *
 * Numerical building blocks:
 *   - igam/igamc: regularized incomplete gamma (series + continued
 *     fraction, the classical Cephes construction);
 *   - pnchisq: noncentral chi-square CDF as a Poisson mixture of central
 *     chi-square CDFs, summed outward from the modal Poisson index with
 *     log-space term recurrences, returning a conservative error bound.
 *
 * Compile with -ffp-contract=off: fused multiply-adds would change results
 * relative to strict IEEE evaluation and complicate parity testing.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define MACHEP 1.11022302462515654042e-16
#define BIG 4.503599627370496e15
#define BIGINV 2.22044604925031308085e-16
#define MAXLOG 709.782712893383996843

static double igamc_(double a, double x);

/* Regularized lower incomplete gamma P(a, x) by power series (x <= a+1). */
static double igam_(double a, double x) {
    if (x <= 0.0 || a <= 0.0) return 0.0;
    if (x > 1.0 && x > a) return 1.0 - igamc_(a, x);
    double ax = a * log(x) - x - lgamma(a);
    if (ax < -MAXLOG) return 0.0;
    ax = exp(ax);
    double r = a, c = 1.0, ans = 1.0;
    do {
        r += 1.0;
        c *= x / r;
        ans += c;
    } while (c / ans > MACHEP);
    return ans * ax / a;
}

/* Regularized upper incomplete gamma Q(a, x) by continued fraction. */
static double igamc_(double a, double x) {
    if (x <= 0.0 || a <= 0.0) return 1.0;
    if (x < 1.0 || x < a) return 1.0 - igam_(a, x);
    double ax = a * log(x) - x - lgamma(a);
    if (ax < -MAXLOG) return 0.0;
    ax = exp(ax);
    double y = 1.0 - a, z = x + y + 1.0, c = 0.0;
    double pkm2 = 1.0, qkm2 = x, pkm1 = x + 1.0, qkm1 = z * x;
    double ans = pkm1 / qkm1, t;
    do {
        c += 1.0;
        y += 1.0;
        z += 2.0;
        double yc = y * c;
        double pk = pkm1 * z - pkm2 * yc;
        double qk = qkm1 * z - qkm2 * yc;
        if (qk != 0.0) {
            double r = pk / qk;
            t = fabs((ans - r) / r);
            ans = r;
        } else {
            t = 1.0;
        }
        pkm2 = pkm1;
        pkm1 = pk;
        qkm2 = qkm1;
        qkm1 = qk;
        if (fabs(pk) > BIG) {
            pkm2 *= BIGINV;
            pkm1 *= BIGINV;
            qkm2 *= BIGINV;
            qkm1 *= BIGINV;
        }
    } while (t > MACHEP);
    return ans * ax;
}

static double clamp01_(double v) {
    if (v < 0.0) return 0.0;
    if (v > 1.0) return 1.0;
    return v;
}

/* Noncentral chi-square CDF P(Q <= x) for Q ~ chi2(df, nc).
 *
 * Poisson-mixture form: sum_j  Pois(j; nc/2) * P(df/2 + j, x/2).
 * Summation starts at the modal index j0 = floor(nc/2) and expands
 * outward while the enumerated Poisson mass grows toward 1, with
 * log-space recurrences for the Poisson weights and the incomplete-gamma
 * step terms t(a) = (x/2)^a e^{-x/2} / Gamma(a+1):
 *     P(a+1, x2) = P(a, x2) - t(a),   P(a-1, x2) = P(a, x2) + t(a-1).
 *
 * *err receives a conservative absolute error bound: the un-enumerated
 * Poisson mass (each missing term's gamma factor is in [0, 1]) plus an
 * allowance for the recurrence's floating-point drift.
 *
 * This log-space variant is the robust slow path; pnchisq_ below runs
 * the same recurrences in linear space (one mul per update instead of
 * log/exp) whenever the modal-index seed values cannot underflow. */
static double pnchisq_log_(double x, double df, double nc, double *err) {
    if (x <= 0.0) {
        *err = 0.0;
        return 0.0;
    }
    double x2 = 0.5 * x, hnc = 0.5 * nc;
    if (hnc < 1e-300) {
        *err = 4e-15;
        return igam_(0.5 * df, x2);
    }
    long j0 = (long)floor(hnc);
    double lw0 = -hnc + (double)j0 * log(hnc) - lgamma((double)j0 + 1.0);
    double g0 = igam_(0.5 * df + (double)j0, x2);
    double lx2 = log(x2);
    /* lt_* track log t(a) at the current edge of each direction. */
    double lt_up = (0.5 * df + (double)j0) * lx2 - x2 -
                   lgamma(0.5 * df + (double)j0 + 1.0);
    double lt_dn = lt_up;
    double lw_up = lw0, lw_dn = lw0;
    double g_up = g0, g_dn = g0;
    long j_up = j0, j_dn = j0;
    double w0 = exp(lw0);
    double sum = w0 * g0, wsum = w0;
    long steps = 0;
    int up_alive = 1, dn_alive = (j_dn > 0);
    while ((up_alive || dn_alive) && wsum < 1.0 - 1e-14 && steps < 4000000) {
        if (up_alive) {
            /* move j_up -> j_up + 1 */
            g_up -= (lt_up > -MAXLOG) ? exp(lt_up) : 0.0;
            if (g_up < 0.0) g_up = 0.0;
            lt_up += lx2 - log(0.5 * df + (double)j_up + 1.0);
            lw_up += log(hnc) - log((double)j_up + 1.0);
            j_up += 1;
            double w = exp(lw_up);
            sum += w * g_up;
            wsum += w;
            if (lw_up < -746.0 || w < 1e-18) up_alive = 0;
            steps++;
        }
        if (dn_alive) {
            /* move j_dn -> j_dn - 1 */
            lt_dn += log(0.5 * df + (double)j_dn) - lx2;
            g_dn += (lt_dn > -MAXLOG) ? exp(lt_dn) : 0.0;
            if (g_dn > 1.0) g_dn = 1.0;
            lw_dn += log((double)j_dn) - log(hnc);
            j_dn -= 1;
            double w = exp(lw_dn);
            sum += w * g_dn;
            wsum += w;
            if (j_dn == 0 || lw_dn < -746.0 || w < 1e-18) dn_alive = 0;
            steps++;
        }
    }
    double rem = 1.0 - wsum;
    if (rem < 0.0) rem = 0.0;
    *err = rem + 1e-13 + (double)steps * 4e-15;
    return clamp01_(sum);
}

/* Fast path: identical outward summation, but the Poisson weights and
 * gamma step terms advance by one multiply per step (w *= hnc/(j+1),
 * t *= x2/(a+1)) instead of log-space adds plus exp().  Valid whenever
 * the modal-index seeds w0, t0 are comfortably above the subnormal
 * range: both sequences are then unimodal with their peaks inside the
 * enumerated window, so no intermediate value ever needs magnitudes the
 * seeds could not reach.  Seeds near underflow fall back to
 * pnchisq_log_. */
static double pnchisq_(double x, double df, double nc, double *err) {
    if (x <= 0.0) {
        *err = 0.0;
        return 0.0;
    }
    double x2 = 0.5 * x, hnc = 0.5 * nc;
    if (hnc < 1e-300) {
        *err = 4e-15;
        return igam_(0.5 * df, x2);
    }
    if (hnc > 100.0) {
        /* O(1) pins for the saturated regimes.  With J ~ Pois(hnc) and
         * g(j) = P(df/2 + j, x2) decreasing in j, splitting the mixture
         * at any j_k gives
         *     CDF <= Pr[J < j_k] + g(j_k)        (upper pin at ~0)
         *     CDF >= g(j_k) - Pr[J > j_k]        (lower pin at ~1)
         * and the Chernoff bound Pr[J <= j] (j < hnc), Pr[J >= j]
         * (j > hnc) <= exp(-hnc + j + j log(hnc/j)) makes both tails
         * rigorous without enumerating any Poisson mass.  9 sigma puts
         * the tail below 3e-18. */
        double s = 9.0 * sqrt(hnc);
        double jk = floor(hnc - s);
        if (jk > 0.0) {
            double tail = exp(-hnc + jk + jk * log(hnc / jk));
            double ub = tail + igam_(0.5 * df + jk, x2);
            if (ub < 1e-14) {
                *err = ub + 1e-15; /* true value lies in [0, ub] */
                return 0.0;
            }
        }
        double jk2 = ceil(hnc + s);
        double tail2 = exp(-hnc + jk2 + jk2 * log(hnc / jk2));
        double lb = igam_(0.5 * df + jk2, x2) - tail2;
        if (lb > 1.0 - 1e-14) {
            *err = 1.0 - lb + 1e-15; /* true value lies in [lb, 1] */
            return lb;
        }
    }
    long j0 = (long)floor(hnc);
    double a0 = 0.5 * df + (double)j0;
    double lt0 = a0 * log(x2) - x2 - lgamma(a0 + 1.0);
    double lw0 = -hnc + (double)j0 * log(hnc) - lgamma((double)j0 + 1.0);
    if (lt0 < -700.0 || lw0 < -700.0) return pnchisq_log_(x, df, nc, err);
    double g0 = igam_(a0, x2);
    double t_up = exp(lt0), t_dn = t_up;
    double w_up = exp(lw0), w_dn = w_up;
    double a_up = a0, a_dn = a0;
    double j_up = (double)j0, j_dn = (double)j0;
    double g_up = g0, g_dn = g0;
    double sum = w_up * g0, wsum = w_up;
    long steps = 0;
    int up_alive = 1, dn_alive = (j0 > 0);
    while ((up_alive || dn_alive) && wsum < 1.0 - 1e-14 && steps < 4000000) {
        if (up_alive) {
            /* move j_up -> j_up + 1 */
            g_up -= t_up;
            if (g_up < 0.0) g_up = 0.0;
            t_up *= x2 / (a_up + 1.0);
            w_up *= hnc / (j_up + 1.0);
            a_up += 1.0;
            j_up += 1.0;
            sum += w_up * g_up;
            wsum += w_up;
            if (w_up < 1e-18) up_alive = 0;
            steps++;
        }
        if (dn_alive) {
            /* move j_dn -> j_dn - 1 */
            t_dn *= a_dn / x2;
            g_dn += t_dn;
            if (g_dn > 1.0) g_dn = 1.0;
            w_dn *= j_dn / hnc;
            a_dn -= 1.0;
            j_dn -= 1.0;
            sum += w_dn * g_dn;
            wsum += w_dn;
            if (j_dn <= 0.5 || w_dn < 1e-18) dn_alive = 0;
            steps++;
        }
    }
    double rem = 1.0 - wsum;
    if (rem < 0.0) rem = 0.0;
    *err = rem + 1e-13 + (double)steps * 4e-15;
    return clamp01_(sum);
}

/* ------------------------------------------------------------------ */
/* Exported kernels                                                    */
/* ------------------------------------------------------------------ */

/* Sandwich bounds: out[i] = [P(x/lam_max; df, nc_i) - eps,
 *                            P(x/lam_min; df, nc_i) + eps], clamped.   */
void repro_chi2_sandwich_block(long m, double x, double df,
                               const double *nc_totals, double lam_min,
                               double lam_max, double widen, double *out) {
    if (x <= 0.0) {
        memset(out, 0, sizeof(double) * 2 * (size_t)m);
        return;
    }
    double xlo = x / lam_max, xhi = x / lam_min;
    for (long i = 0; i < m; i++) {
        double e1, e2;
        double lo = pnchisq_(xlo, df, nc_totals[i], &e1);
        double hi = pnchisq_(xhi, df, nc_totals[i], &e2);
        out[2 * i] = clamp01_(lo - e1 - widen);
        out[2 * i + 1] = clamp01_(hi + e2 + widen);
    }
}

/* Shared-spectrum noncentralities: out[i][j] = ((mean - p_i)^T B)_j^2 / lam_j.
 * basis is row-major d x d with column eigenvectors (B[k][j] = basis[k*d+j]). */
void repro_sqdist_spectrum(long m, long d, const double *mean,
                           const double *basis, const double *eigvals,
                           const double *pts, double *out) {
    for (long i = 0; i < m; i++) {
        const double *p = pts + i * d;
        double *o = out + i * d;
        for (long j = 0; j < d; j++) {
            double s = 0.0;
            for (long k = 0; k < d; k++) {
                s += (mean[k] - p[k]) * basis[k * d + j];
            }
            o[j] = s * s / eigvals[j];
        }
    }
}

/* Batched Ruben series over a block sharing one spectrum.
 *
 * Mirrors repro.gaussian.quadform.ruben_series_block: per candidate the
 * mixture-weight recursion a_k = (1/2k) sum_{r<=k} g_r a_{k-r} runs until
 * the [partial sum, partial sum + remaining-mass * G_k] interval decides
 * the candidate (theta exclusion or width < tol).  The incomplete-gamma
 * table G_k = P((rho + 2k)/2, x/(2 beta)) is shared by every candidate.
 * theta < 0 means "no theta" (converge to tol).  Bounds are widened by
 * `widen` so floating-point drift cannot make them unsound.
 * Returns 0 on success, 1 on allocation failure. */
int repro_ruben_block(long d, long m, const double *lam, const double *h,
                      const double *ncs, double x, double theta, double tol,
                      long max_terms, double widen, double *lower,
                      double *upper, uint8_t *ok) {
    for (long i = 0; i < m; i++) {
        lower[i] = 0.0;
        upper[i] = 1.0;
        ok[i] = 1;
    }
    if (m == 0) return 0;
    if (x <= 0.0) {
        for (long i = 0; i < m; i++) upper[i] = 0.0;
        return 0;
    }
    double beta = lam[0];
    for (long j = 1; j < d; j++)
        if (lam[j] < beta) beta = lam[j];
    double rho = 0.0, log_shared = 0.0;
    for (long j = 0; j < d; j++) {
        rho += h[j];
        log_shared += h[j] * log(beta / lam[j]);
    }
    log_shared *= 0.5;
    double sx = x / (2.0 * beta);

    double *ratios = malloc(sizeof(double) * (size_t)d);
    double *rp = malloc(sizeof(double) * (size_t)d);
    double *ncol = malloc(sizeof(double) * (size_t)d);
    double *a = malloc(sizeof(double) * (size_t)(max_terms + 1));
    double *g = malloc(sizeof(double) * (size_t)(max_terms + 1));
    double *gam = malloc(sizeof(double) * (size_t)(max_terms + 1));
    if (!ratios || !rp || !ncol || !a || !g || !gam) {
        free(ratios); free(rp); free(ncol); free(a); free(g); free(gam);
        return 1;
    }
    for (long j = 0; j < d; j++) ratios[j] = 1.0 - beta / lam[j];
    long gam_len = 0;

    for (long i = 0; i < m; i++) {
        const double *row = ncs + i * d;
        double nc_sum = 0.0;
        for (long j = 0; j < d; j++) nc_sum += row[j];
        double la0 = -0.5 * nc_sum + log_shared;
        if (la0 < -700.0) {
            ok[i] = 0; /* leading weight underflows: caller falls back */
            continue;
        }
        for (long j = 0; j < d; j++) {
            ncol[j] = row[j] / lam[j];
            rp[j] = 1.0;
        }
        if (gam_len == 0) {
            gam[0] = igam_(rho / 2.0, sx);
            gam_len = 1;
        }
        a[0] = exp(la0);
        double wsum = a[0];
        double cdf = a[0] * gam[0];
        double gamma_k = gam[0];
        double lo = 0.0, hi = 1.0;
        int decided = 0;
        long k = 0;
        for (;;) {
            double rem = 1.0 - wsum;
            if (rem < 0.0) rem = 0.0;
            lo = clamp01_(cdf);
            hi = clamp01_(cdf + rem * gamma_k);
            lo -= widen;
            if (lo < 0.0) lo = 0.0;
            hi += widen;
            if (hi > 1.0) hi = 1.0;
            decided = (hi - lo < tol) ||
                      (theta >= 0.0 && (lo >= theta || hi < theta));
            if (decided || k >= max_terms) break;
            k++;
            double gg = 0.0;
            for (long j = 0; j < d; j++) {
                gg += (h[j] * ratios[j] + (double)k * beta * ncol[j]) * rp[j];
                rp[j] *= ratios[j];
            }
            g[k - 1] = gg;
            double acc = 0.0;
            for (long r = 0; r < k; r++) acc += g[r] * a[k - 1 - r];
            a[k] = acc / (2.0 * (double)k);
            wsum += a[k];
            if (k >= gam_len) {
                gam[k] = igam_((rho + 2.0 * (double)k) / 2.0, sx);
                gam_len = k + 1;
            }
            gamma_k = gam[k];
            cdf += a[k] * gamma_k;
        }
        if (!decided) ok[i] = 0; /* undecided at max_terms */
        lower[i] = lo;
        upper[i] = hi;
    }
    free(ratios); free(rp); free(ncol); free(a); free(g); free(gam);
    return 0;
}

/* RR fringe filter: codes[i] = -1 (REJECT) when the point is outside the
 * rect-plus-delta-ball Minkowski region, else 0 (UNKNOWN). */
void repro_classify_rr(long m, long d, const double *pts, const double *lows,
                       const double *highs, double delta, int8_t *codes) {
    double d2 = delta * delta;
    for (long i = 0; i < m; i++) {
        const double *p = pts + i * d;
        double s = 0.0;
        for (long j = 0; j < d; j++) {
            double below = lows[j] - p[j];
            if (below < 0.0) below = 0.0;
            double above = p[j] - highs[j];
            if (above < 0.0) above = 0.0;
            double gap = below + above;
            s += gap * gap;
        }
        codes[i] = (s <= d2) ? 0 : -1;
    }
}

/* OR eigenbox filter: rotate into the eigenbasis (y = B^T (p - c)) and
 * REJECT when any |y_j| exceeds its half width. */
void repro_classify_or(long m, long d, const double *pts, const double *center,
                       const double *basis, const double *half_widths,
                       int8_t *codes) {
    for (long i = 0; i < m; i++) {
        const double *p = pts + i * d;
        int8_t code = 0;
        for (long j = 0; j < d; j++) {
            double y = 0.0;
            for (long k = 0; k < d; k++) {
                y += (p[k] - center[k]) * basis[k * d + j];
            }
            if (fabs(y) > half_widths[j]) {
                code = -1;
                break;
            }
        }
        codes[i] = code;
    }
}

/* BF radii filter: REJECT beyond alpha_upper, ACCEPT within alpha_lower
 * (has_lower = 0 reproduces the missing inner hole). */
void repro_classify_bf(long m, long d, const double *pts, const double *center,
                       double alpha_upper, double alpha_lower, int has_lower,
                       int8_t *codes) {
    for (long i = 0; i < m; i++) {
        const double *p = pts + i * d;
        double s = 0.0;
        for (long j = 0; j < d; j++) {
            double diff = p[j] - center[j];
            s += diff * diff;
        }
        double dist = sqrt(s);
        if (dist > alpha_upper) {
            codes[i] = -1;
        } else if (has_lower && dist <= alpha_lower) {
            codes[i] = 1;
        } else {
            codes[i] = 0;
        }
    }
}

/* Float32 fast path for the sandwich bounds.
 *
 * The rotated coordinates are computed in float32; a per-coordinate error
 * bound (cast + accumulation, via absolute-value sums) turns the float32
 * value into a rigorous interval [r_lo, r_hi] around the true rotation,
 * which propagates to a noncentrality interval [nc_lo, nc_hi].  The CDF is
 * monotone *decreasing* in the noncentrality, so evaluating the lower
 * bound at nc_hi and the upper bound at nc_lo keeps the sandwich sound.
 * Requires d <= 64 (enforced by the Python wrapper).                     */
void repro_chi2_sandwich_block_f32(long m, long d, const double *mean,
                                   const double *basis, const double *eigvals,
                                   const double *pts, double x, double df,
                                   double lam_min, double lam_max,
                                   double widen, double *out) {
    if (x <= 0.0) {
        memset(out, 0, sizeof(double) * 2 * (size_t)m);
        return;
    }
    float mf[64], bf[64 * 64];
    for (long k = 0; k < d; k++) mf[k] = (float)mean[k];
    for (long k = 0; k < d * d; k++) bf[k] = (float)basis[k];
    const double u32 = 5.9604644775390625e-08; /* 2^-24 */
    double xlo = x / lam_max, xhi = x / lam_min;
    for (long i = 0; i < m; i++) {
        const double *p = pts + i * d;
        float pf[64];
        for (long k = 0; k < d; k++) pf[k] = (float)p[k];
        double nc_lo = 0.0, nc_hi = 0.0;
        for (long j = 0; j < d; j++) {
            float s = 0.0f, asum = 0.0f, cerr = 0.0f;
            for (long k = 0; k < d; k++) {
                float diff = mf[k] - pf[k];
                float bkj = bf[k * d + j];
                s += diff * bkj;
                asum += fabsf(diff * bkj);
                cerr += (fabsf(mf[k]) + fabsf(pf[k])) * fabsf(bkj);
            }
            /* |s - true rotation| <= e: accumulation error on the float32
             * dot product plus the float64 -> float32 cast error of the
             * inputs, with a 2x safety factor. */
            double e = u32 * (2.0 * (double)(d + 4) * (double)asum +
                              4.0 * (double)cerr);
            double r = (double)fabsf(s);
            double rl = r - e;
            if (rl < 0.0) rl = 0.0;
            double rh = r + e;
            nc_lo += rl * rl / eigvals[j];
            nc_hi += rh * rh / eigvals[j];
        }
        double e1, e2;
        double lo = pnchisq_(xlo, df, nc_hi, &e1);
        double hi = pnchisq_(xhi, df, nc_lo, &e2);
        out[2 * i] = clamp01_(lo - e1 - widen);
        out[2 * i + 1] = clamp01_(hi + e2 + widen);
    }
}

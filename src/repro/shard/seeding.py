"""Candidate-keyed seeding: shard-composition independence for samplers.

Most sampling integrators advance one RNG stream *across* candidates
(each candidate's draw starts where the previous candidate's ended), so
their estimates depend on which candidates share a ``decide`` call.
Partitioning the candidate set across shards changes that grouping and
would change the estimates — exactly what the sharded engine must never
do.

:class:`CandidateSeededIntegrator` removes the coupling: every candidate
is evaluated by a fresh fork of the wrapped integrator, seeded from
``(query entropy, candidate point)``.  The per-candidate estimate is
then a pure function of (wrapped integrator's entry state, candidate
coordinates) — independent of shard count, shard membership, worker
count and evaluation order.  Integrators that already share one draw per
call (``share_samples``/``share_batches``) or are deterministic don't
need the wrapper; :attr:`ProbabilityIntegrator.composition_independent`
reports which is which.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = ["CandidateSeededIntegrator"]


def _state_entropy(integrator: ProbabilityIntegrator) -> int:
    """A stable 128-bit digest of the integrator's RNG entry state.

    Fingerprinting the *state* (rather than, say, ``id()``) keeps the
    wrapper a pure function: two wrapped integrators forked from the same
    seed produce identical per-candidate streams, wherever they run.
    """
    rng = getattr(integrator, "_rng", None)
    if rng is None:
        return 0
    payload = json.dumps(
        rng.bit_generator.state, sort_keys=True, default=int
    ).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:16], "big")


def _point_key(point: np.ndarray) -> int:
    """A 128-bit key of the candidate's exact float64 coordinates."""
    buf = np.ascontiguousarray(point, dtype=np.float64).tobytes()
    return int.from_bytes(hashlib.sha256(buf).digest()[:16], "big")


class CandidateSeededIntegrator(ProbabilityIntegrator):
    """Evaluate each candidate with a per-candidate fork of ``base``.

    The fork seed is ``SeedSequence([entry-state digest, point digest])``,
    so a candidate's estimate never depends on its neighbours.  The
    wrapper reports ``composition_independent = True`` by construction;
    note the estimates *differ* from running the unwrapped ``base`` over
    the whole candidate block (they come from different streams) — the
    guarantee is determinism across partitionings, not equality with the
    stream-advancing original.
    """

    def __init__(self, base: ProbabilityIntegrator):
        self.base = base
        self.name = f"seeded({base.name})"
        self._entropy = _state_entropy(base)

    @property
    def composition_independent(self) -> bool:
        return True

    @property
    def cost_per_candidate(self) -> float:
        return self.base.cost_per_candidate

    def fork(self, seed) -> "CandidateSeededIntegrator":
        """Re-derive the wrapper around a reseeded base fork."""
        return CandidateSeededIntegrator(self.base.fork(seed))

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        p = self._validate(gaussian, point, delta)
        fork = self.base.fork(
            np.random.SeedSequence([self._entropy, _point_key(p)])
        )
        return fork.qualification_probability(gaussian, p, delta)

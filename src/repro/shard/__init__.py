"""Sharded scatter–gather execution for probabilistic range queries.

``db.shard(n)`` partitions a :class:`repro.SpatialDatabase` into ``n``
spatial shards (STR or Hilbert order), places the points in shared
memory, builds one R*-tree per shard inside long-lived worker
*processes*, and returns a :class:`ShardedDatabase` whose engines route
each query only to the shards whose MBR intersects its Phase-1 search
rectangle.  See ``docs/sharding.md`` for the partitioning scheme, the
routing soundness argument and the determinism contract.
"""

from repro.shard.database import ShardedDatabase
from repro.shard.engine import ShardedEngine, ShardPool
from repro.shard.partition import ShardSpec, partition_positions
from repro.shard.seeding import CandidateSeededIntegrator
from repro.shard.shm import FileDescriptor, SharedPointStore, ShmDescriptor
from repro.shard.worker import ShardTask, ShardTaskResult

__all__ = [
    "ShardedDatabase",
    "ShardedEngine",
    "ShardPool",
    "ShardSpec",
    "partition_positions",
    "CandidateSeededIntegrator",
    "SharedPointStore",
    "ShmDescriptor",
    "FileDescriptor",
    "ShardTask",
    "ShardTaskResult",
]

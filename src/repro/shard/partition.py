"""Spatial partitioning of a point set into shards.

Reuses the R*-tree bulk-load machinery: both packing orders
(:func:`repro.index.bulk.tile_points` for STR, Hilbert-curve order for
``"hilbert"``) produce a spatial *total order* over the points, which is
then chopped into ``n_shards`` contiguous, near-equal runs.  Contiguous
runs of a spatial order are exactly what a bulk loader would pack into
neighbouring subtrees, so each shard covers a compact region and the
shard MBRs overlap as little as the data allows — the property the
router's MBR-vs-query-box intersection test cashes in on.

Partitioning is deterministic: same points, same method, same shard
count → byte-identical shard membership, in the same shard order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.geometry.mbr import Rect
from repro.index.bulk import tile_points

__all__ = ["ShardSpec", "partition_positions"]

#: Supported partitioning orders.
_METHODS = ("str", "hilbert")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: its id, row positions into the point array, and MBR."""

    shard_id: int
    #: Row indices into the shared point/ids arrays (not object ids).
    positions: np.ndarray
    #: Tight bounding box of the shard's points — the routing key.
    mbr: Rect

    def __len__(self) -> int:
        return int(self.positions.size)


def spatial_order(points: np.ndarray, method: str = "str") -> np.ndarray:
    """A spatial total order over the rows of ``points``.

    ``"str"`` concatenates the Sort-Tile-Recursive tiling (capacity sized
    so the tiles *are* the shard chunks); ``"hilbert"`` sorts by
    Hilbert-curve index.  Either way the result is a permutation of
    ``arange(len(points))``.
    """
    if method == "hilbert":
        from repro.index.hilbert import hilbert_order

        return np.asarray(hilbert_order(points), dtype=np.int64)
    order = np.arange(points.shape[0], dtype=np.int64)
    tiles = tile_points(order, points, max(1, points.shape[0] // 64), axis=0)
    return np.concatenate(tiles)


def partition_positions(
    points: np.ndarray, n_shards: int, *, method: str = "str"
) -> list[ShardSpec]:
    """Split ``points`` into ``n_shards`` spatially compact shards.

    Returns the shards in a fixed, deterministic order (shard 0 first);
    every row of ``points`` lands in exactly one shard, so any per-shard
    computation over disjoint candidate sets sums back to the unsharded
    total.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise QueryError(
            f"points must be a non-empty (n, d) array, got shape {pts.shape}"
        )
    if n_shards < 1:
        raise QueryError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > pts.shape[0]:
        raise QueryError(
            f"cannot split {pts.shape[0]} points into {n_shards} shards"
        )
    if method not in _METHODS:
        raise QueryError(
            f"method must be one of {_METHODS}, got {method!r}"
        )
    if n_shards == 1:
        order = np.arange(pts.shape[0], dtype=np.int64)
        chunks = [order]
    elif method == "str":
        # Tile with capacity = ceil(n / shards): the STR recursion then
        # yields tiles no larger than one shard's worth, and contiguous
        # tiles in tiling order are spatial neighbours.
        capacity = math.ceil(pts.shape[0] / n_shards)
        order = np.concatenate(
            tile_points(
                np.arange(pts.shape[0], dtype=np.int64), pts, capacity, axis=0
            )
        )
        chunks = np.array_split(order, n_shards)
    else:
        order = spatial_order(pts, method)
        chunks = np.array_split(order, n_shards)
    shards = []
    for shard_id, chunk in enumerate(chunks):
        block = pts[chunk]
        shards.append(
            ShardSpec(
                shard_id=shard_id,
                positions=np.ascontiguousarray(chunk, dtype=np.int64),
                mbr=Rect(block.min(axis=0), block.max(axis=0)),
            )
        )
    return shards

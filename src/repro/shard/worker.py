"""Shard worker process: attach, build local trees, execute tasks.

Each worker process owns one or more shards.  At startup it attaches the
shared-memory point store, bulk-loads one R*-tree per owned shard (views
into shared pages — the only per-worker memory is the tree itself), then
loops on its task queue running the standard three-phase pipeline
(:func:`repro.core.stages.execute_pipeline`) against the shard-local
tree.  Strategies arrive *unprepared* and the integrator arrives already
forked/seeded by the coordinator, so a task's outcome is a pure function
of the task message — independent of which worker runs it or when.

Failure semantics: any exception inside a task becomes an error payload
on the result queue (the worker survives); a crashed/killed worker is
detected by the coordinator via liveness checks and its outstanding
tasks are failed with :class:`repro.errors.ShardError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import (
    FilterStage,
    IntegrateStage,
    SearchStage,
    StageContext,
    execute_pipeline,
)
from repro.core.stats import QueryStats
from repro.core.strategies import Strategy
from repro.index.rtree import RStarTree
from repro.integrate.base import ProbabilityIntegrator
from repro.shard.shm import ShmDescriptor, SharedPointStore

__all__ = ["ShardTask", "ShardTaskResult", "worker_main"]


@dataclass(frozen=True)
class ShardTask:
    """One (query, shard) execution order, fully self-contained."""

    task_id: int
    query_index: int
    shard_id: int
    query: ProbabilisticRangeQuery
    #: Unprepared strategy clones; the worker prepares them itself.
    strategies: list[Strategy]
    phase1: str
    #: Already forked/seeded for this query — identical entry state on
    #: every shard the query fans out to.
    integrator: ProbabilityIntegrator


@dataclass(frozen=True)
class ShardTaskResult:
    """A finished (or failed) task, reported back to the coordinator."""

    task_id: int
    query_index: int
    shard_id: int
    ids: tuple[int, ...] = ()
    stats: QueryStats = field(default_factory=QueryStats)
    #: ``"ExcType: message"`` when the task raised; ``None`` on success.
    error: str | None = None


def execute_task(tree: RStarTree, task: ShardTask) -> ShardTaskResult:
    """Run the three-phase pipeline for one task against a shard tree."""
    stats = QueryStats()
    ctx = StageContext(task.query, task.strategies, task.integrator, stats)
    ids = execute_pipeline(
        ctx,
        [
            SearchStage(tree, phase1=task.phase1),
            FilterStage(),
            IntegrateStage(),
        ],
    )
    return ShardTaskResult(
        task.task_id, task.query_index, task.shard_id, ids=ids, stats=stats
    )


def build_shard_tree(
    store: SharedPointStore,
    positions: np.ndarray,
    *,
    max_entries: int = 50,
    method: str = "str",
) -> RStarTree:
    """Bulk-load one shard's R*-tree over shared-memory views."""
    tree = RStarTree(store.dim, max_entries=max_entries)
    ids = store.ids[positions]
    tree.bulk_load([int(i) for i in ids], store.points[positions], method=method)
    return tree


def worker_main(
    descriptor: ShmDescriptor,
    owned_shards: list[tuple[int, np.ndarray]],
    task_queue,
    result_queue,
    *,
    max_entries: int = 50,
    method: str = "str",
    untrack_shm: bool = False,
) -> None:
    """Process entry point: build trees, then drain tasks until ``None``."""
    store = SharedPointStore.attach(descriptor, untrack=untrack_shm)
    try:
        trees = {
            shard_id: build_shard_tree(
                store, positions, max_entries=max_entries, method=method
            )
            for shard_id, positions in owned_shards
        }
        result_queue.put(("ready", None))
        while True:
            task = task_queue.get()
            if task is None:
                break
            try:
                result = execute_task(trees[task.shard_id], task)
            except BaseException as exc:  # noqa: BLE001 - reported, not raised
                result = ShardTaskResult(
                    task.task_id,
                    task.query_index,
                    task.shard_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            result_queue.put(("result", result))
    finally:
        store.close()

"""Shared point storage for shard worker processes: shm or mapped file.

Two interchangeable backings expose one ``(ids, points)`` pair to every
worker without per-worker copies:

- **Anonymous shared memory** — one ``multiprocessing.shared_memory``
  block holding the object ids (int64) followed by the point matrix
  (float64, row-major), created by copying an in-memory database once.
  Described by :class:`ShmDescriptor`.
- **A memory-mapped store file** — when the database came from a
  structure-of-arrays store (:mod:`repro.core.storage`), workers simply
  ``np.memmap`` the very same file read-only: zero copies anywhere, the
  OS page cache *is* the shared segment.  Described by
  :class:`FileDescriptor`.

Both descriptors are tiny picklable dataclasses;
:meth:`SharedPointStore.attach` dispatches on the type, so the worker
code is backing-agnostic.

Lifecycle (shm backing only): exactly one process owns the block (the
one that called :meth:`SharedPointStore.create`) and is responsible for
``unlink``; every attacher only ``close``\\ s its mapping.  Attaching
deregisters the segment from the child's ``resource_tracker`` to work
around the well-known CPython issue where every attacher "inherits"
unlink responsibility and spews spurious leak warnings at exit.
File-backed stores have no ownership at all — closing just drops the
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import QueryError

__all__ = ["FileDescriptor", "ShmDescriptor", "SharedPointStore"]


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to attach: segment name and array shape."""

    name: str
    n: int
    dim: int


@dataclass(frozen=True)
class FileDescriptor:
    """A store file to map directly: path, shape, and column offsets."""

    path: str
    n: int
    dim: int
    ids_offset: int
    points_offset: int


class SharedPointStore:
    """A (ids, points) pair backed by one shared-memory segment.

    Layout: ``n`` int64 ids, then ``n × dim`` float64 coordinates.  Both
    arrays are exposed as read-only views into the segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n: int, dim: int, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = n
        self.dim = dim
        id_bytes = n * 8
        ids = np.ndarray((n,), dtype=np.int64, buffer=shm.buf[:id_bytes])
        points = np.ndarray((n, dim), dtype=np.float64, buffer=shm.buf[id_bytes:])
        ids.flags.writeable = owner
        points.flags.writeable = owner
        self.ids = ids
        self.points = points

    @classmethod
    def create(cls, ids, points: np.ndarray) -> "SharedPointStore":
        """Allocate a segment and copy ``ids``/``points`` into it."""
        pts = np.ascontiguousarray(points, dtype=np.float64)
        id_arr = np.ascontiguousarray(ids, dtype=np.int64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise QueryError(
                f"points must be a non-empty (n, d) array, got shape {pts.shape}"
            )
        if id_arr.shape != (pts.shape[0],):
            raise QueryError(
                f"{id_arr.size} ids provided for {pts.shape[0]} points"
            )
        n, dim = pts.shape
        shm = shared_memory.SharedMemory(create=True, size=n * 8 + n * dim * 8)
        store = cls(shm, n, dim, owner=True)
        store.ids[:] = id_arr
        store.points[:] = pts
        store.ids.flags.writeable = False
        store.points.flags.writeable = False
        return store

    @classmethod
    def from_store_file(
        cls, path, n: int, dim: int, ids_offset: int, points_offset: int
    ) -> "MappedFileStore":
        """A store served straight from a mapped SOA file (zero copies)."""
        return MappedFileStore(
            FileDescriptor(str(path), n, dim, ids_offset, points_offset)
        )

    @classmethod
    def attach(
        cls, descriptor, *, untrack: bool = False
    ) -> "SharedPointStore | MappedFileStore":
        """Map an existing segment or store file (worker side); never copies.

        Dispatches on the descriptor type: a :class:`FileDescriptor`
        memory-maps the store file (``untrack`` is irrelevant there —
        nothing needs unlinking).  For shm segments, ``untrack=True``
        deregisters the segment from this process's ``resource_tracker``:
        needed under the ``spawn`` start method, where CPython registers
        every attacher with the worker's *own* tracker, which would then
        warn about (and unlink!) the segment when the worker exits.
        Under ``fork`` the tracker is shared with the creator and
        registration is a set no-op, so deregistering there would instead
        steal the creator's cleanup entry.
        """
        if isinstance(descriptor, FileDescriptor):
            return MappedFileStore(descriptor)
        shm = shared_memory.SharedMemory(name=descriptor.name, create=False)
        if untrack:
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, descriptor.n, descriptor.dim, owner=False)

    @property
    def descriptor(self) -> ShmDescriptor:
        return ShmDescriptor(self._shm.name, self.n, self.dim)

    def close(self) -> None:
        """Drop this process's mapping (and the segment itself if owner)."""
        # Views into shm.buf must be released before close() or CPython
        # raises BufferError on the exported memoryview.
        self.ids = None
        self.points = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering external view
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class MappedFileStore:
    """The ``SharedPointStore`` surface over a memory-mapped store file.

    Every process (coordinator and workers alike) maps the same file
    read-only, so the OS page cache provides the sharing that anonymous
    shm provides for in-memory databases — with no copy to create it and
    nothing to unlink afterwards.
    """

    def __init__(self, descriptor: FileDescriptor):
        if descriptor.n <= 0 or descriptor.dim <= 0:
            raise QueryError(
                f"store file must hold a non-empty (n, d) array, got "
                f"n={descriptor.n}, dim={descriptor.dim}"
            )
        self._descriptor = descriptor
        self.n = descriptor.n
        self.dim = descriptor.dim
        self.ids = np.memmap(
            descriptor.path,
            dtype="<i8",
            mode="r",
            offset=descriptor.ids_offset,
            shape=(descriptor.n,),
        )
        self.points = np.memmap(
            descriptor.path,
            dtype="<f8",
            mode="r",
            offset=descriptor.points_offset,
            shape=(descriptor.n, descriptor.dim),
        )

    @property
    def descriptor(self) -> FileDescriptor:
        return self._descriptor

    def close(self) -> None:
        """Drop this process's mapping (the file itself is untouched)."""
        self.ids = None
        self.points = None

"""Shared-memory point storage for shard worker processes.

One ``multiprocessing.shared_memory`` block holds the whole database —
object ids (int64) followed by the point matrix (float64, row-major) —
so every shard worker maps the same physical pages instead of receiving
a pickled copy.  The block is described by a tiny picklable
:class:`ShmDescriptor` (name, n, dim); workers attach by name and build
views, never copies.

Lifecycle: exactly one process owns the block (the one that called
:meth:`SharedPointStore.create`) and is responsible for ``unlink``;
every attacher only ``close``\\ s its mapping.  Attaching deregisters the
segment from the child's ``resource_tracker`` to work around the
well-known CPython issue where every attacher "inherits" unlink
responsibility and spews spurious leak warnings at exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import QueryError

__all__ = ["ShmDescriptor", "SharedPointStore"]


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to attach: segment name and array shape."""

    name: str
    n: int
    dim: int


class SharedPointStore:
    """A (ids, points) pair backed by one shared-memory segment.

    Layout: ``n`` int64 ids, then ``n × dim`` float64 coordinates.  Both
    arrays are exposed as read-only views into the segment.
    """

    def __init__(self, shm: shared_memory.SharedMemory, n: int, dim: int, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.n = n
        self.dim = dim
        id_bytes = n * 8
        ids = np.ndarray((n,), dtype=np.int64, buffer=shm.buf[:id_bytes])
        points = np.ndarray((n, dim), dtype=np.float64, buffer=shm.buf[id_bytes:])
        ids.flags.writeable = owner
        points.flags.writeable = owner
        self.ids = ids
        self.points = points

    @classmethod
    def create(cls, ids, points: np.ndarray) -> "SharedPointStore":
        """Allocate a segment and copy ``ids``/``points`` into it."""
        pts = np.ascontiguousarray(points, dtype=np.float64)
        id_arr = np.ascontiguousarray(ids, dtype=np.int64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise QueryError(
                f"points must be a non-empty (n, d) array, got shape {pts.shape}"
            )
        if id_arr.shape != (pts.shape[0],):
            raise QueryError(
                f"{id_arr.size} ids provided for {pts.shape[0]} points"
            )
        n, dim = pts.shape
        shm = shared_memory.SharedMemory(create=True, size=n * 8 + n * dim * 8)
        store = cls(shm, n, dim, owner=True)
        store.ids[:] = id_arr
        store.points[:] = pts
        store.ids.flags.writeable = False
        store.points.flags.writeable = False
        return store

    @classmethod
    def attach(
        cls, descriptor: ShmDescriptor, *, untrack: bool = False
    ) -> "SharedPointStore":
        """Map an existing segment (worker side); never copies.

        ``untrack=True`` deregisters the segment from this process's
        ``resource_tracker``: needed under the ``spawn`` start method,
        where CPython registers every attacher with the worker's *own*
        tracker, which would then warn about (and unlink!) the segment
        when the worker exits.  Under ``fork`` the tracker is shared with
        the creator and registration is a set no-op, so deregistering
        there would instead steal the creator's cleanup entry.
        """
        shm = shared_memory.SharedMemory(name=descriptor.name, create=False)
        if untrack:
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, descriptor.n, descriptor.dim, owner=False)

    @property
    def descriptor(self) -> ShmDescriptor:
        return ShmDescriptor(self._shm.name, self.n, self.dim)

    def close(self) -> None:
        """Drop this process's mapping (and the segment itself if owner)."""
        # Views into shm.buf must be released before close() or CPython
        # raises BufferError on the exported memoryview.
        self.ids = None
        self.points = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering external view
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

"""The sharded façade: ``db.shard(n)`` returns one of these.

A :class:`ShardedDatabase` wraps an existing
:class:`repro.core.database.SpatialDatabase`: it copies the points into
a shared-memory store, partitions them spatially, starts the worker
pool, and then mirrors the database/engine surface so everything built
on top — ``run_batch`` callers, ``repro.serve``, the CLI — works
unchanged.  The wrapped database's own index stays available (routing,
``explain`` and deadline degradation read it), so sharding adds
parallel execution without removing any single-process capability.

The pool holds OS resources (processes, queues, one shm segment); call
:meth:`close` or use the database as a context manager.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import Strategy, make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.shard.engine import ShardedEngine, ShardPool
from repro.shard.partition import ShardSpec, partition_positions
from repro.shard.shm import SharedPointStore

__all__ = ["ShardedDatabase"]


class ShardedDatabase:
    """A :class:`SpatialDatabase` partitioned across worker processes."""

    def __init__(
        self,
        database: SpatialDatabase,
        n_shards: int,
        *,
        method: str = "str",
        workers: int | None = None,
        max_entries: int = 50,
        start_method: str | None = None,
    ):
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        self._database = database
        backing = getattr(database, "_backing", None)
        if backing is not None:
            # The database is a mapped structure-of-arrays file: workers
            # map the very same file instead of copying into fresh shm.
            self._store = SharedPointStore.from_store_file(
                backing.path,
                backing.n,
                backing.dim,
                backing.ids_offset,
                backing.points_offset,
            )
        else:
            self._store = SharedPointStore.create(database.ids, database.points)
        self.shards: list[ShardSpec] = partition_positions(
            np.asarray(database.points), n_shards, method=method
        )
        self.pool = ShardPool(
            self._store,
            self.shards,
            workers,
            max_entries=max_entries,
            method=method,
            start_method=start_method,
        )
        self._closed = False

    # -- database surface ----------------------------------------------

    @property
    def database(self) -> SpatialDatabase:
        """The wrapped single-process database."""
        return self._database

    @property
    def index(self):
        return self._database.index

    @property
    def dim(self) -> int:
        return self._database.dim

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return len(self._database)

    def point(self, obj_id: int) -> np.ndarray:
        return self._database.point(obj_id)

    def range_query(self, center, radius: float) -> list[int]:
        return self._database.range_query(center, radius)

    def knn(self, center, k: int):
        return self._database.knn(center, k)

    def planner(self, **kwargs):
        return self._database.planner(**kwargs)

    @property
    def targets(self):
        """The wrapped database's target covariance table, or ``None``."""
        return self._database.targets

    # -- probabilistic querying ----------------------------------------

    def engine(
        self,
        *,
        strategies: str | list[Strategy] = "all",
        integrator: ProbabilityIntegrator | None = None,
        phase1: str = "intersect",
        obs=None,
    ) -> ShardedEngine:
        """A :class:`ShardedEngine` over the pool (drop-in engine)."""
        planner = None
        if isinstance(strategies, str) and strategies.lower() == "auto":
            planner = self._database.planner()
            strategy_list = make_strategies("all")
        else:
            strategy_list = (
                make_strategies(strategies)
                if isinstance(strategies, str)
                else list(strategies)
            )
        return ShardedEngine(
            self,
            strategy_list,
            integrator,
            phase1=phase1,
            planner=planner,
            obs=obs,
            targets=self._database.targets,
        )

    def probabilistic_range_query(
        self,
        gaussian: Gaussian | None = None,
        delta: float = 0.0,
        theta: float = 0.0,
        *,
        center=None,
        sigma=None,
        strategies: str | list[Strategy] = "all",
        integrator: ProbabilityIntegrator | None = None,
        obs=None,
    ):
        """Run PRQ(q, δ, θ) scattered across the shards."""
        if gaussian is None:
            if center is None or sigma is None:
                raise QueryError(
                    "provide either a Gaussian or both center= and sigma="
                )
            gaussian = Gaussian(center, sigma)
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        engine = self.engine(
            strategies=strategies, integrator=integrator, obs=obs
        )
        return engine.execute(query)

    def serve(self, config=None, **knobs):
        """An embedded :class:`repro.serve.QueryService` over the shards.

        The service builds its engine through :meth:`engine`, so every
        micro-batch scatters across the worker processes while the
        scheduler thread, admission control and deadline degradation
        behave exactly as on a single-process database.
        """
        from repro.serve import QueryService

        return QueryService(self, config, **knobs)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop the worker pool and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        self._store.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Scatter–gather PRQ execution over spatial shards in worker processes.

The coordinator (this module) does everything that must be globally
consistent — planning, per-query integrator forking, Phase-0 routing —
and ships self-contained :class:`~repro.shard.worker.ShardTask` messages
to a pool of long-lived worker processes, one R*-tree per shard, all
reading the same shared-memory point array.  Results are merged
deterministically in shard order.

Routing is Phase 1 reused: the coordinator prepares the query's
strategies and computes the combined Phase-1 search rectangle (the
θ-region Minkowski box, possibly tightened by the other strategies); a
shard is dispatched only when its MBR intersects that rectangle.  Since
a shard whose MBR misses the rectangle cannot contain a Phase-1
candidate, skipped shards contribute nothing — the union of routed
shards' candidates *is* the unsharded candidate set.

Determinism contract (matching :meth:`repro.core.engine.QueryEngine`):
every query's integrator is forked from the ``i``-th spawn of
``SeedSequence(base_seed)`` and every shard receives a copy with the
*same entry state*, so for composition-independent integrators (see
:attr:`~repro.integrate.base.ProbabilityIntegrator.composition_independent`)
the merged results are bit-identical to the single-engine path for every
shard count, worker count and plan-cache state.  Composition-dependent
samplers are automatically wrapped in
:class:`~repro.shard.seeding.CandidateSeededIntegrator`, which keeps the
cross-shard-count guarantee (at the price of differing from the
unwrapped sampler's stream).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import (
    BatchResult,
    IntegratorFactory,
    QueryEngine,
    QueryResult,
)
from repro.core.kinds import adapt_pipeline, query_kind
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import SearchStage
from repro.core.stats import BatchStats, QueryStats
from repro.core.strategies import STRATEGY_COMBINATIONS, Strategy
from repro.errors import QueryError, ReproError, ShardError
from repro.geometry.mbr import Rect
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.obs import COUNT_BUCKETS, Observability
from repro.shard.partition import ShardSpec
from repro.shard.seeding import CandidateSeededIntegrator
from repro.shard.shm import SharedPointStore
from repro.shard.worker import ShardTask, ShardTaskResult, worker_main

__all__ = ["ShardPool", "ShardedEngine"]

#: Seconds between result polls; liveness is re-checked on every miss.
_POLL_INTERVAL = 0.25


def _start_method() -> str:
    """Preferred multiprocessing start method (override via env)."""
    forced = os.environ.get("REPRO_SHARD_START_METHOD")
    if forced:
        return forced
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass
class _Worker:
    """One worker process plus its private task queue."""

    index: int
    owned: list[tuple[int, np.ndarray]]
    process: mp.Process
    task_queue: object


@dataclass(frozen=True)
class PoolRunReport:
    """Outcome of one :meth:`ShardPool.run`: results plus fault counters."""

    results: dict[int, ShardTaskResult]
    worker_failures: int = 0


class ShardPool:
    """Long-lived worker processes executing :class:`ShardTask` messages.

    Shard ``s`` is owned by worker ``s % n_workers``; each worker builds
    the R*-trees for its shards once, at startup, over views into the
    shared point store.  ``run`` is thread-safe (serialized), so several
    engines — e.g. a user thread and the ``repro.serve`` scheduler — can
    share one pool.

    Fault handling: a worker that dies (crash, ``SIGKILL``) is detected
    by a liveness check; its outstanding tasks are failed with a typed
    error payload and the worker is respawned with a fresh queue, so the
    next batch runs at full strength.
    """

    def __init__(
        self,
        store: SharedPointStore,
        shards: list[ShardSpec],
        n_workers: int | None = None,
        *,
        max_entries: int = 50,
        method: str = "str",
        start_method: str | None = None,
    ):
        if not shards:
            raise QueryError("at least one shard is required")
        self._store = store
        self._shards = shards
        self._ctx = mp.get_context(start_method or _start_method())
        self._max_entries = max_entries
        self._method = method
        self.n_workers = min(n_workers or len(shards), len(shards))
        if self.n_workers < 1:
            raise QueryError(f"n_workers must be >= 1, got {self.n_workers}")
        self._result_queue = self._ctx.Queue()
        self._lock = threading.Lock()
        self._task_ids = itertools.count()
        self._closed = False
        #: Cumulative fault counters (read by the engine's metrics).
        self.worker_failures = 0
        self.respawns = 0
        self._workers: list[_Worker] = []
        for widx in range(self.n_workers):
            owned = [
                (spec.shard_id, spec.positions)
                for spec in shards
                if spec.shard_id % self.n_workers == widx
            ]
            self._workers.append(self._spawn(widx, owned))
        # Block until every worker has built its trees: keeps startup
        # cost out of the first batch and surfaces build errors early.
        ready = 0
        while ready < self.n_workers:
            kind, _ = self._result_queue.get()
            if kind == "ready":
                ready += 1

    def _spawn(self, widx: int, owned) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(self._store.descriptor, owned, task_queue, self._result_queue),
            kwargs={
                "max_entries": self._max_entries,
                "method": self._method,
                "untrack_shm": self._ctx.get_start_method() != "fork",
            },
            daemon=True,
        )
        process.start()
        return _Worker(widx, owned, process, task_queue)

    def next_task_id(self) -> int:
        return next(self._task_ids)

    def worker_for(self, shard_id: int) -> int:
        return shard_id % self.n_workers

    @property
    def processes(self) -> list[mp.Process]:
        """The live worker processes (test hook for fault injection)."""
        return [w.process for w in self._workers]

    def run(self, tasks: list[ShardTask]) -> PoolRunReport:
        """Dispatch ``tasks`` and gather one result per task.

        Never raises for worker faults: a dead worker's outstanding tasks
        come back as :class:`ShardTaskResult` error payloads and the
        worker is respawned before returning.
        """
        if self._closed:
            raise QueryError("shard pool is closed")
        with self._lock:
            outstanding: dict[int, ShardTask] = {}
            owner: dict[int, int] = {}
            for task in tasks:
                widx = self.worker_for(task.shard_id)
                outstanding[task.task_id] = task
                owner[task.task_id] = widx
                self._workers[widx].task_queue.put(task)
            results: dict[int, ShardTaskResult] = {}
            failures = 0
            while outstanding:
                try:
                    kind, payload = self._result_queue.get(
                        timeout=_POLL_INTERVAL
                    )
                except queue_mod.Empty:
                    failures += self._reap_dead(outstanding, owner, results)
                    continue
                if kind != "result" or payload.task_id not in outstanding:
                    continue  # late "ready" or a task already failed over
                del outstanding[payload.task_id]
                results[payload.task_id] = payload
            self.worker_failures += failures
            return PoolRunReport(results, worker_failures=failures)

    def _reap_dead(self, outstanding, owner, results) -> int:
        """Fail over tasks owned by dead workers; respawn the workers."""
        failures = 0
        for widx, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            failures += 1
            exitcode = worker.process.exitcode
            for task_id in [t for t, w in owner.items() if w == widx]:
                if task_id not in outstanding:
                    continue
                task = outstanding.pop(task_id)
                results[task_id] = ShardTaskResult(
                    task.task_id,
                    task.query_index,
                    task.shard_id,
                    error=(
                        f"worker process {widx} died "
                        f"(exitcode {exitcode})"
                    ),
                )
            # A fresh queue drops any tasks buffered for the dead worker
            # — they were just failed above; the respawn must not rerun
            # them and report duplicate (ignored) results.
            self._drain_task_queue(worker)
            self._workers[widx] = self._spawn(widx, worker.owned)
            self.respawns += 1
        return failures

    @staticmethod
    def _drain_task_queue(worker: _Worker) -> None:
        try:
            while True:
                worker.task_queue.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            pass

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop every worker (sentinel, then terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - torn queue
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(1.0)
        for worker in self._workers:
            worker.task_queue.cancel_join_thread()
            worker.task_queue.close()
        self._result_queue.cancel_join_thread()
        self._result_queue.close()


@dataclass
class _Prepared:
    """Coordinator-side state for one query of a batch."""

    stats: QueryStats
    strategies: list[Strategy] = field(default_factory=list)
    phase1: str = "intersect"
    integrator: ProbabilityIntegrator | None = None
    rect: Rect | None = None
    routed: list[ShardSpec] = field(default_factory=list)
    error: ReproError | None = None
    #: Result of a query executed coordinator-side (k-NN kind, whose win
    #: counting needs every competitor in one candidate set).
    local: QueryResult | None = None


class ShardedEngine:
    """Drop-in :class:`~repro.core.engine.QueryEngine` over a shard pool.

    Exposes the same surface (``execute``/``run``/``run_batch``/
    ``explain`` plus the ``index``/``strategies``/``integrator``/
    ``phase1``/``planner`` attributes), so ``repro.serve`` and every
    batch caller work unchanged.  The ``workers`` argument of
    ``run_batch`` is validated for compatibility but parallelism is
    governed by the pool's worker processes — queries fan out across
    shards, not threads.
    """

    def __init__(
        self,
        database,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator | None = None,
        *,
        phase1: str = "intersect",
        planner=None,
        obs: Observability | None = None,
        targets=None,
    ):
        if not strategies:
            raise QueryError("at least one strategy is required")
        if phase1 not in ("intersect", "primary"):
            raise QueryError(
                f"phase1 must be 'intersect' or 'primary', got {phase1!r}"
            )
        self.database = database
        self.index = database.index
        self.strategies = list(strategies)
        self.integrator = integrator or ImportanceSamplingIntegrator()
        self.phase1 = phase1
        self.planner = planner
        self.obs = obs
        self.targets = targets

    # -- drop-in entry points ------------------------------------------

    def execute(self, query: ProbabilisticRangeQuery) -> QueryResult:
        batch = self.run_batch([query])
        result = batch.results[0]
        if self.obs is not None and self.planner is not None:
            self.planner.publish_metrics(self.obs)
        return result

    def run(
        self,
        queries,
        *,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
    ) -> BatchResult:
        return self.run_batch(
            queries,
            workers=1,
            base_seed=base_seed,
            integrator_factory=integrator_factory,
        )

    def explain(self, query: ProbabilisticRangeQuery, *, estimator=None):
        """Delegate to an unsharded engine view over the full index."""
        probe = QueryEngine(
            self.index,
            [s.clone() for s in self.strategies],
            self.integrator,
            phase1=self.phase1,
            planner=self.planner,
            targets=self.targets,
        )
        return probe.explain(query, estimator=estimator)

    def run_batch(
        self,
        queries,
        *,
        workers: int = 1,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
        return_errors: bool = False,
    ) -> BatchResult:
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        queries = list(queries)
        pool = self.database.pool
        shards = self.database.shards
        seeds = np.random.SeedSequence(base_seed).spawn(len(queries))
        obs = self.obs

        batch_span = (
            obs.span(
                "batch", queries=len(queries), workers=pool.n_workers
            )
            if obs is not None
            else None
        )
        start = time.perf_counter()
        if batch_span is not None:
            batch_span.__enter__()
        try:
            prepared: list[_Prepared] = []
            tasks: list[ShardTask] = []
            task_slots: dict[int, tuple[int, ShardTaskResult | None]] = {}
            for i, (query, seed) in enumerate(zip(queries, seeds)):
                prep = self._prepare(
                    i, query, seed, integrator_factory, return_errors
                )
                prepared.append(prep)
                for spec in prep.routed:
                    task = ShardTask(
                        task_id=pool.next_task_id(),
                        query_index=i,
                        shard_id=spec.shard_id,
                        query=query,
                        strategies=[s.clone() for s in prep.strategies],
                        phase1=prep.phase1,
                        integrator=prep.integrator,
                    )
                    tasks.append(task)
                    task_slots[task.task_id] = (i, None)

            scatter_span = (
                obs.span(
                    "shard:scatter",
                    queries=len(queries),
                    tasks=len(tasks),
                    shards=len(shards),
                )
                if obs is not None
                else None
            )
            if scatter_span is not None:
                scatter_span.__enter__()
            report = PoolRunReport({})
            try:
                if tasks:
                    report = pool.run(tasks)
            finally:
                if scatter_span is not None:
                    scatter_span.annotate(
                        worker_failures=report.worker_failures
                    )
                    scatter_span.__exit__(None, None, None)

            per_query: list[list[ShardTaskResult]] = [[] for _ in queries]
            for task_id, result in report.results.items():
                per_query[task_slots[task_id][0]].append(result)
            results = [
                self._merge(i, prep, per_query[i], return_errors)
                for i, prep in enumerate(prepared)
            ]
        finally:
            if batch_span is not None:
                batch_span.__exit__(None, None, None)
        wall = time.perf_counter() - start

        batch = BatchStats(workers=pool.n_workers, wall_seconds=wall)
        for result in results:
            batch.merge(result.stats)
            batch.failed += result.failed
        if obs is not None:
            self._publish(obs, prepared, tasks, report, len(shards))
            for result in results:
                obs.record_query(result.stats)
            obs.record_batch(batch)
            if self.planner is not None:
                self.planner.publish_metrics(obs)
        return BatchResult(tuple(results), batch)

    # -- coordinator internals -----------------------------------------

    def _prepare(
        self, i, query, seed, integrator_factory, return_errors
    ) -> _Prepared:
        stats = QueryStats()
        try:
            strategies = [s.clone() for s in self.strategies]
            phase1 = self.phase1
            if integrator_factory is not None:
                integrator = integrator_factory(query, seed)
            else:
                integrator = self.integrator.fork(seed)
            if query_kind(query) == "knn":
                # The win count compares every competitor against every
                # other, so the candidate set cannot be partitioned;
                # execute against the coordinator's full index with the
                # exact same (strategies, integrator, seed) the unsharded
                # engine would use — bit-identical by construction.
                engine = QueryEngine(
                    self.index,
                    strategies,
                    integrator,
                    phase1=phase1,
                    planner=self.planner,
                    targets=self.targets,
                )
                result = engine._execute_with(
                    query, strategies, integrator, seed=seed
                )
                return _Prepared(stats=result.stats, local=result)
            if self.planner is not None:
                with stats.time_phase("plan"):
                    decision = self.planner.plan(query, integrator)
                    chosen = decision.chosen
                    if chosen.strategies in STRATEGY_COMBINATIONS:
                        strategies = self.planner.build_strategies(
                            chosen.strategies
                        )
                    if chosen.integrator != integrator.name:
                        picked = self.planner.integrator_for(chosen.integrator)
                        if picked is not None:
                            integrator = picked.fork(seed)
                    stats.plan_strategies = chosen.strategy_names
                    stats.plan_phase1 = chosen.phase1
                    stats.plan_cache_hit = decision.cache_hit
                    stats.predicted_integrations = chosen.predicted_candidates
                    stats.predicted_seconds = chosen.predicted_seconds
                    phase1 = chosen.phase1
            if not integrator.composition_independent:
                integrator = CandidateSeededIntegrator(integrator)
            # Kind adapters wrap *after* the composition-independence
            # fix-up so a kind decider stays outermost and the routing
            # rectangle below already carries the kind's Phase-1 geometry
            # (convolved reach padding, per-component union).
            strategies, integrator = adapt_pipeline(
                query,
                strategies,
                integrator,
                index=self.index,
                targets=self.targets,
                seed=seed,
            )
            # Phase-0 routing: prepare a throwaway strategy set and reuse
            # the engine's own Phase-1 rectangle as the routing volume.
            routing = [s.clone() for s in strategies]
            rect = SearchStage(self.index, phase1=phase1).prepare(
                query, routing, stats
            )
            if rect is None:
                return _Prepared(stats=stats, phase1=phase1)
            routed = [
                spec
                for spec in self.database.shards
                if spec.mbr.intersects(rect)
            ]
            return _Prepared(
                stats=stats,
                strategies=strategies,
                phase1=phase1,
                integrator=integrator,
                rect=rect,
                routed=routed,
            )
        except BaseException as exc:  # noqa: BLE001 - re-typed below
            error = (
                exc
                if isinstance(exc, ReproError)
                else QueryError(
                    f"query {i} failed: {type(exc).__name__}: {exc}"
                )
            )
            if error is not exc:
                error.__cause__ = exc
            if not return_errors:
                raise error from exc
            return _Prepared(stats=QueryStats(), error=error)

    def _merge(
        self,
        i: int,
        prep: _Prepared,
        shard_results: list[ShardTaskResult],
        return_errors: bool,
    ) -> QueryResult:
        if prep.error is not None:
            return QueryResult((), QueryStats(), error=prep.error)
        if prep.local is not None:
            return prep.local
        stats = prep.stats
        merged: set[int] = set()
        errors: list[ShardError] = []
        # Shard order, not arrival order: merged stats dict insertion
        # (rejections, tier decisions) must not depend on scheduling.
        for result in sorted(shard_results, key=lambda r: r.shard_id):
            if result.error is not None:
                errors.append(ShardError(result.shard_id, i, result.error))
                continue
            merged.update(result.ids)
            s = result.stats
            stats.retrieved += s.retrieved
            for name, count in s.rejected_by_filter.items():
                stats.note_rejections(name, count)
            stats.accepted_without_integration += (
                s.accepted_without_integration
            )
            stats.integrations += s.integrations
            stats.integration_samples += s.integration_samples
            for method, count in s.tier_decisions.items():
                stats.note_decision(method, count)
            for phase, seconds in s.phase_seconds.items():
                stats.phase_seconds[phase] = (
                    stats.phase_seconds.get(phase, 0.0) + seconds
                )
        if errors:
            if not return_errors:
                raise errors[0]
            return QueryResult((), QueryStats(), error=errors[0])
        ids = tuple(sorted(int(obj) for obj in merged))
        stats.results = len(ids)
        return QueryResult(ids, stats)

    def _publish(
        self, obs, prepared, tasks, report, n_shards: int
    ) -> None:
        """Emit the ``repro_shard_*`` metric family for one batch."""
        reg = obs.metrics
        reg.gauge(
            "repro_shard_count", "Number of spatial shards in the pool"
        ).set(n_shards)
        reg.counter(
            "repro_shard_tasks_total",
            "Shard tasks dispatched to worker processes",
        ).inc(len(tasks))
        routed = reg.counter(
            "repro_shard_routed_total",
            "Query-shard pairs routed (shard MBR intersected the query box)",
        )
        skipped = reg.counter(
            "repro_shard_skipped_total",
            "Query-shard pairs pruned by MBR routing",
        )
        fanout = reg.histogram(
            "repro_shard_fanout",
            "Shards dispatched per query",
            buckets=COUNT_BUCKETS,
        )
        for prep in prepared:
            if prep.error is not None:
                continue
            routed.inc(len(prep.routed))
            skipped.inc(n_shards - len(prep.routed))
            fanout.observe(len(prep.routed))
        reg.counter(
            "repro_shard_worker_failures_total",
            "Worker processes found dead during scatter-gather",
        ).inc(report.worker_failures)
        reg.counter(
            "repro_shard_respawns_total",
            "Worker processes respawned after a failure",
        ).inc(report.worker_failures)

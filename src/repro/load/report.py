"""Capacity reports and the CI trend gate.

A :class:`CapacityReport` is the machine-readable artifact of one
saturation sweep (``BENCH_capacity.json`` at the repo root): the
scenario, the per-step rows, and the knee/capacity analysis.  Reports
from *virtual* sweeps are bit-reproducible — same spec, same rates,
same cost model ⇒ byte-identical JSON — so a committed baseline is a
meaningful regression anchor across machines.

:meth:`CapacityReport.compare` is the trend gate: it checks the current
report's ``capacity_qps`` (and ``knee_qps``, when both sweeps
saturated, plus per-rate goodput on rates both sweeps ran) against a
baseline with a relative tolerance band.  A drop beyond the band on any
metric fails the gate; improvements beyond the band are surfaced as a
hint to re-baseline.  CI runs the gate on every push
(``.github/workflows/ci.yml``, job ``load-smoke``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LoadError

__all__ = ["CapacityReport", "TrendGate"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TrendGate:
    """The outcome of one baseline comparison (see :meth:`compare`).

    ``checks`` holds one row per compared metric with the current and
    baseline values and the current/baseline ratio; ``regressions`` and
    ``improvements`` list the metrics that moved beyond the tolerance
    band in either direction.  The gate ``passed`` iff nothing
    regressed.
    """

    passed: bool
    tolerance: float
    checks: list[dict] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "tolerance": self.tolerance,
            "checks": [dict(check) for check in self.checks],
            "regressions": list(self.regressions),
            "improvements": list(self.improvements),
        }

    def summary(self) -> str:
        """Human-readable one-paragraph verdict for CLI/CI logs."""
        lines = []
        for check in self.checks:
            marker = "ok" if check["passed"] else "REGRESSED"
            lines.append(
                f"  {check['metric']}: {check['current']:.3f} vs baseline "
                f"{check['baseline']:.3f} (x{check['ratio']:.3f}) [{marker}]"
            )
        verdict = "PASS" if self.passed else "FAIL"
        head = (
            f"trend gate {verdict} "
            f"(tolerance ±{self.tolerance:.0%} on {len(self.checks)} checks)"
        )
        if self.improvements:
            lines.append(
                "  improved beyond tolerance (consider re-baselining): "
                + ", ".join(self.improvements)
            )
        return "\n".join([head, *lines])


@dataclass(frozen=True)
class CapacityReport:
    """One sweep's full result set (see module docstring).

    ``steps`` are :meth:`~repro.load.runner.RunReport.to_dict` rows in
    ascending offered-rate order; ``knee`` is the
    :func:`~repro.load.sweep.detect_knee` analysis block.
    """

    scenario: dict
    mode: str
    duration_seconds: float
    database: dict
    service: dict
    cost_model: dict | None
    steps: list[dict]
    knee: dict
    schema_version: int = _SCHEMA_VERSION

    @property
    def capacity_qps(self) -> float:
        return float(self.knee["capacity_qps"])

    @property
    def knee_qps(self) -> float | None:
        value = self.knee.get("knee_qps")
        return None if value is None else float(value)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "scenario": dict(self.scenario),
            "mode": self.mode,
            "duration_seconds": self.duration_seconds,
            "database": dict(self.database),
            "service": dict(self.service),
            "cost_model": (
                None if self.cost_model is None else dict(self.cost_model)
            ),
            "steps": [dict(step) for step in self.steps],
            "knee": dict(self.knee),
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, trailing newline.

        Canonical so that two bit-reproducible virtual sweeps serialize
        byte-identically — CI diffs the files directly.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path) -> Path:
        """Write the canonical JSON to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def from_dict(cls, payload: dict) -> "CapacityReport":
        if not isinstance(payload, dict):
            raise LoadError(
                f"capacity report must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != _SCHEMA_VERSION:
            raise LoadError(
                f"unsupported capacity-report schema_version {version!r} "
                f"(this build reads {_SCHEMA_VERSION})"
            )
        missing = [
            key
            for key in ("scenario", "mode", "duration_seconds", "steps", "knee")
            if key not in payload
        ]
        if missing:
            raise LoadError(f"capacity report is missing fields {missing}")
        return cls(
            scenario=payload["scenario"],
            mode=payload["mode"],
            duration_seconds=payload["duration_seconds"],
            database=payload.get("database", {}),
            service=payload.get("service", {}),
            cost_model=payload.get("cost_model"),
            steps=payload["steps"],
            knee=payload["knee"],
            schema_version=version,
        )

    @classmethod
    def load(cls, path) -> "CapacityReport":
        """Read a report previously written with :meth:`write`."""
        source = Path(path)
        try:
            payload = json.loads(source.read_text())
        except FileNotFoundError:
            raise LoadError(f"no capacity report at {source}") from None
        except json.JSONDecodeError as exc:
            raise LoadError(f"capacity report {source} is not JSON: {exc}") from None
        return cls.from_dict(payload)

    def compare(
        self, baseline: "CapacityReport", *, tolerance: float = 0.2
    ) -> TrendGate:
        """Gate this report against a committed ``baseline``.

        A metric regresses when ``current < baseline * (1 - tolerance)``.
        Compared: ``capacity_qps`` always; ``knee_qps`` when both sweeps
        saturated; per-rate ``goodput_qps`` for every offered rate both
        sweeps ran.  Comparing across modes (virtual vs real) is a usage
        error — their numbers live on different scales.
        """
        if not 0 < tolerance < 1:
            raise LoadError(f"tolerance must be in (0, 1), got {tolerance}")
        if self.mode != baseline.mode:
            raise LoadError(
                f"cannot compare a {self.mode!r} sweep against a "
                f"{baseline.mode!r} baseline"
            )
        checks: list[dict] = []

        def check(metric: str, current: float, base: float) -> None:
            ratio = current / base if base > 0 else float("inf")
            checks.append(
                {
                    "metric": metric,
                    "current": round(float(current), 6),
                    "baseline": round(float(base), 6),
                    "ratio": round(ratio, 6),
                    "passed": current >= base * (1.0 - tolerance),
                    "improved": current > base * (1.0 + tolerance),
                }
            )

        check("capacity_qps", self.capacity_qps, baseline.capacity_qps)
        if self.knee_qps is not None and baseline.knee_qps is not None:
            check("knee_qps", self.knee_qps, baseline.knee_qps)
        baseline_goodput = {
            step["offered_qps"]: step["goodput_qps"]
            for step in baseline.steps
        }
        for step in self.steps:
            rate = step["offered_qps"]
            if rate in baseline_goodput:
                check(
                    f"goodput_qps@{rate:g}",
                    step["goodput_qps"],
                    baseline_goodput[rate],
                )
        regressions = [c["metric"] for c in checks if not c["passed"]]
        improvements = [c["metric"] for c in checks if c["improved"]]
        return TrendGate(
            passed=not regressions,
            tolerance=tolerance,
            checks=checks,
            regressions=regressions,
            improvements=improvements,
        )

"""The open-loop load driver: inject on schedule, never wait for answers.

:class:`LoadRunner` replays a :meth:`ScenarioWorkload.schedule` against
one :class:`~repro.serve.QueryService` in either of two modes:

**Real mode** (a normal threaded service): the runner sleeps until each
arrival's wall-clock slot and submits without ever blocking on an
earlier response — the *open-loop* discipline.  Latency is measured from
the arrival's **scheduled** time, not from when ``submit`` returned, so
a service that stalls the injector cannot hide queueing delay
(coordinated omission).  Completion timestamps come from future
done-callbacks on the service's own clock.

**Virtual mode** (a ``manual=True`` service on a :class:`VirtualClock`
with a :class:`VirtualCostModel`): no thread ever sleeps.  The runner is
a single-threaded discrete-event loop that owns the batch-window policy
on the virtual timeline — it advances the clock to each arrival, opens a
window when a request lands in an empty queue, pumps the service when
the window elapses or ``max_batch`` requests are waiting, and lets the
service advance the clock by *modelled* execution cost.  Every latency,
deadline decision and degradation is then a pure function of the
schedule: two runs of the same spec produce bit-identical
:class:`RunReport` JSON, which is what lets CI trend-gate capacity
without machine noise (``docs/load.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import LoadError
from repro.load.scenario import OP_QUERY, OP_UPDATE, Arrival
from repro.serve.monitor import (
    OUTCOME_DEGRADED,
    OUTCOME_REINTEGRATED,
    OUTCOME_REPLANNED,
    OUTCOME_SURVIVED,
)
from repro.serve.request import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OVERLOADED,
)

__all__ = ["VirtualClock", "VirtualCostModel", "LoadRunner", "RunReport"]

_STATUSES = (
    STATUS_OK,
    STATUS_DEGRADED,
    STATUS_OVERLOADED,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_FAILED,
)


class VirtualClock:
    """A manually advanced monotonic clock for discrete-event runs.

    Callable like ``time.monotonic`` (so it plugs into the service's
    ``clock`` knob) and advanced explicitly by the runner — or by the
    service itself, which moves it by modelled execution cost via the
    ``advance`` hook (:meth:`QueryService._advance_clock`).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise LoadError(f"cannot advance time by {seconds} seconds")
        self._now += float(seconds)

    def advance_to(self, timestamp: float) -> None:
        """Move time forward to ``timestamp`` (no-op if already past)."""
        if timestamp > self._now:
            self._now = float(timestamp)


@dataclass(frozen=True)
class VirtualCostModel:
    """Deterministic execution costs for virtual-time runs.

    Implements the service's cost-model protocol (``query_seconds`` /
    ``degraded_seconds`` / ``batch_seconds``) plus the runner-side
    ``update_seconds`` for monitor traffic.  The batch law is the
    classic fixed-overhead + parallel-work model: a coalesced batch of
    per-request costs ``c_i`` takes ``batch_overhead + Σc_i /
    parallelism`` seconds, so batching amortizes overhead exactly the
    way the real micro-batcher does.  Monitor updates scale with their
    outcome: a survival is O(1) cheap, a reintegration mid-priced, a
    replan a full execution.
    """

    seconds_per_query: float = 0.004
    degraded_ratio: float = 0.25
    batch_overhead: float = 0.0005
    parallelism: float = 4.0
    seconds_per_update: float = 0.0005

    def __post_init__(self) -> None:
        if self.seconds_per_query <= 0:
            raise LoadError(
                f"seconds_per_query must be > 0, got {self.seconds_per_query}"
            )
        if not 0 < self.degraded_ratio <= 1:
            raise LoadError(
                f"degraded_ratio must be in (0, 1], got {self.degraded_ratio}"
            )
        if self.batch_overhead < 0:
            raise LoadError(
                f"batch_overhead must be >= 0, got {self.batch_overhead}"
            )
        if self.parallelism < 1:
            raise LoadError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if self.seconds_per_update < 0:
            raise LoadError(
                f"seconds_per_update must be >= 0, got {self.seconds_per_update}"
            )

    def query_seconds(self, request) -> float:
        """Modelled full-fidelity cost of one request."""
        return self.seconds_per_query

    def degraded_seconds(self, request) -> float:
        """Modelled cost of the sandwich-bound degraded path."""
        return self.seconds_per_query * self.degraded_ratio

    def batch_seconds(self, costs: list) -> float:
        """Modelled wall time of one coalesced batch of ``costs``."""
        if not costs:
            return 0.0
        return self.batch_overhead + sum(costs) / self.parallelism

    def update_seconds(self, outcome: str | None) -> float:
        """Modelled cost of one monitor update, by its outcome."""
        scale = {
            OUTCOME_SURVIVED: 1.0,
            OUTCOME_DEGRADED: 2.0,
            OUTCOME_REINTEGRATED: 4.0,
            OUTCOME_REPLANNED: 20.0,
        }.get(outcome, 1.0)
        return self.seconds_per_update * scale


def _percentile(sorted_values: list, fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(int(round(fraction * len(sorted_values) + 0.5)) - 1, 0)
    return float(sorted_values[min(rank, len(sorted_values) - 1)])


@dataclass(frozen=True)
class RunReport:
    """Aggregated results of one load-run step (one offered rate).

    ``offered_qps`` is the nominal Poisson rate; ``injected`` counts
    query arrivals actually drawn, ``monitor_updates`` update arrivals.
    Latency percentiles are computed over *answered* requests only
    (``ok`` + ``degraded``) and measured from each arrival's scheduled
    time — shed and expired requests are accounted in their rates, not
    blended into the latency distribution.  ``goodput_qps`` is answered
    requests per elapsed second (elapsed includes the drain tail, so a
    saturated step cannot inflate goodput by leaving work unfinished).
    """

    mode: str
    offered_qps: float
    duration_seconds: float
    elapsed_seconds: float
    injected: int
    monitor_updates: int
    statuses: dict[str, int]
    goodput_qps: float
    shed_rate: float
    degraded_rate: float
    deadline_exceeded_rate: float
    failure_rate: float
    latency_ms: dict[str, float]
    monitor: dict
    service: dict

    @property
    def answered(self) -> int:
        """Requests that produced a usable answer (ok + degraded)."""
        return self.statuses[STATUS_OK] + self.statuses[STATUS_DEGRADED]

    def to_dict(self) -> dict:
        """A JSON-serializable step row for ``BENCH_capacity.json``."""
        return {
            "mode": self.mode,
            "offered_qps": self.offered_qps,
            "duration_seconds": self.duration_seconds,
            "elapsed_seconds": round(self.elapsed_seconds, 9),
            "injected": self.injected,
            "monitor_updates": self.monitor_updates,
            "statuses": dict(self.statuses),
            "answered": self.answered,
            "goodput_qps": round(self.goodput_qps, 6),
            "shed_rate": round(self.shed_rate, 6),
            "degraded_rate": round(self.degraded_rate, 6),
            "deadline_exceeded_rate": round(self.deadline_exceeded_rate, 6),
            "failure_rate": round(self.failure_rate, 6),
            "latency_ms": {
                key: round(value, 6)
                for key, value in self.latency_ms.items()
            },
            "monitor": dict(self.monitor),
            "service": dict(self.service),
        }


class LoadRunner:
    """Drives one service through one schedule (see module docstring).

    The mode is inferred from the service: a ``manual=True`` service
    must carry an advanceable clock and runs virtually; a threaded
    service runs in real time.  ``cost_model`` is only consulted in
    virtual mode (for monitor-update costs); the service's own
    ``cost_model`` knob governs query-side accounting.
    """

    def __init__(self, service, *, cost_model: VirtualCostModel | None = None):
        self.service = service
        self.virtual = bool(service.manual)
        self._cost_model = cost_model
        if self.virtual and not hasattr(service.clock, "advance"):
            raise LoadError(
                "virtual runs need an advanceable clock — build the service "
                "with QueryService(db, manual=True, clock=VirtualClock(), "
                "cost_model=VirtualCostModel())"
            )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        schedule: list[Arrival],
        *,
        duration: float,
        offered_qps: float,
    ) -> RunReport:
        """Replay ``schedule`` and aggregate one :class:`RunReport`."""
        if duration <= 0:
            raise LoadError(f"duration must be > 0 seconds, got {duration}")
        if self.virtual:
            return self._run_virtual(schedule, duration, offered_qps)
        return self._run_real(schedule, duration, offered_qps)

    # ------------------------------------------------------------------
    # Virtual mode: single-threaded discrete-event loop
    # ------------------------------------------------------------------

    def _run_virtual(
        self, schedule: list[Arrival], duration: float, offered_qps: float
    ) -> RunReport:
        service = self.service
        clock = service.clock
        window = service.config.batch_window
        max_batch = service.config.max_batch
        start = clock()
        latencies: list[tuple[str, float]] = []
        monitor_outcomes: dict[str, int] = {}
        monitor_latencies: list[float] = []
        injected = 0
        updates = 0
        # Virtual time the scheduler first saw the current non-empty
        # queue while idle (the batch window opens there), or None.
        window_open: float | None = None

        def depth() -> int:
            return service.snapshot().queue_depth

        def track(scheduled: float, future) -> None:
            def _done(f):
                response = f.result()
                latencies.append((response.status, clock() - scheduled))

            future.add_done_callback(_done)

        def inject(arrival: Arrival) -> None:
            nonlocal injected, updates
            if arrival.op == OP_UPDATE:
                updates += 1
                response = service.monitor.update(
                    arrival.subscription_id,
                    arrival.mean,
                    deadline=arrival.deadline,
                )
                outcome = response.outcome or response.status
                monitor_outcomes[outcome] = monitor_outcomes.get(outcome, 0) + 1
                if self._cost_model is not None:
                    clock.advance(self._cost_model.update_seconds(outcome))
                monitor_latencies.append(clock() - arrival.at)
            else:
                injected += 1
                track(arrival.at, service.submit(arrival.request))

        # The event loop mirrors the real scheduler's life exactly: a
        # pump marks it busy (the clock jumps by the modelled batch
        # cost), and every arrival falling inside that busy interval
        # must land in the queue *before* the next drain — that is how
        # a bounded queue actually fills and sheds under overload.
        index = 0
        while index < len(schedule):
            arrival = schedule[index]
            now = clock()
            if arrival.at <= now:
                # Past due: arrived while the service was busy; queue it
                # (or shed it) before the scheduler gets to run again.
                inject(arrival)
                index += 1
                continue
            if depth() >= max_batch:
                # A full batch is waiting: the drain loop stops waiting
                # for company the moment this happens.
                service.pump()
                window_open = None
                continue
            if depth() > 0:
                if window_open is None:
                    window_open = now
                due = window_open + window
                if due <= arrival.at:
                    clock.advance_to(due)
                    service.pump()
                    window_open = None
                    continue
            # Idle (or mid-window) until the next arrival.
            clock.advance_to(arrival.at)
            inject(arrival)
            index += 1
        while depth() > 0:
            if depth() < max_batch:
                if window_open is None:
                    window_open = clock()
                clock.advance_to(window_open + window)
            service.pump()
            window_open = None
        elapsed = max(clock() - start, duration)
        return self._build_report(
            mode="virtual",
            offered_qps=offered_qps,
            duration=duration,
            elapsed=elapsed,
            injected=injected,
            updates=updates,
            latencies=latencies,
            monitor_outcomes=monitor_outcomes,
            monitor_latencies=monitor_latencies,
        )

    # ------------------------------------------------------------------
    # Real mode: wall-clock open loop
    # ------------------------------------------------------------------

    def _run_real(
        self, schedule: list[Arrival], duration: float, offered_qps: float
    ) -> RunReport:
        service = self.service
        clock = service.clock
        lock = threading.Lock()
        latencies: list[tuple[str, float]] = []
        monitor_outcomes: dict[str, int] = {}
        monitor_latencies: list[float] = []
        outstanding = []
        injected = 0
        updates = 0
        start = clock()

        def track(scheduled: float, future) -> None:
            def _done(f):
                response = f.result()
                with lock:
                    latencies.append((response.status, clock() - scheduled))

            future.add_done_callback(_done)

        for arrival in schedule:
            target = start + arrival.at
            delay = target - clock()
            if delay > 0:
                time.sleep(delay)
            if arrival.op == OP_UPDATE:
                updates += 1
                response = service.monitor.update(
                    arrival.subscription_id,
                    arrival.mean,
                    deadline=arrival.deadline,
                )
                outcome = response.outcome or response.status
                monitor_outcomes[outcome] = monitor_outcomes.get(outcome, 0) + 1
                monitor_latencies.append(clock() - target)
                continue
            injected += 1
            future = service.submit(arrival.request)
            track(target, future)
            outstanding.append(future)
        for future in outstanding:
            future.result(timeout=60.0)
        elapsed = max(clock() - start, duration)
        with lock:
            collected = list(latencies)
        return self._build_report(
            mode="real",
            offered_qps=offered_qps,
            duration=duration,
            elapsed=elapsed,
            injected=injected,
            updates=updates,
            latencies=collected,
            monitor_outcomes=monitor_outcomes,
            monitor_latencies=monitor_latencies,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _build_report(
        self,
        *,
        mode: str,
        offered_qps: float,
        duration: float,
        elapsed: float,
        injected: int,
        updates: int,
        latencies: list,
        monitor_outcomes: dict,
        monitor_latencies: list,
    ) -> RunReport:
        statuses = {status: 0 for status in _STATUSES}
        answered_latencies = []
        for status, latency in latencies:
            statuses[status] = statuses.get(status, 0) + 1
            if status in (STATUS_OK, STATUS_DEGRADED):
                answered_latencies.append(latency)
        answered_latencies.sort()
        answered = statuses[STATUS_OK] + statuses[STATUS_DEGRADED]
        denominator = max(injected, 1)
        latency_ms = {
            "p50": _percentile(answered_latencies, 0.50) * 1e3,
            "p95": _percentile(answered_latencies, 0.95) * 1e3,
            "p99": _percentile(answered_latencies, 0.99) * 1e3,
            "mean": (
                sum(answered_latencies) / len(answered_latencies) * 1e3
                if answered_latencies
                else 0.0
            ),
            "max": (
                answered_latencies[-1] * 1e3 if answered_latencies else 0.0
            ),
        }
        monitor = {
            "updates": updates,
            "outcomes": dict(sorted(monitor_outcomes.items())),
            "mean_ms": (
                round(sum(monitor_latencies) / len(monitor_latencies) * 1e3, 6)
                if monitor_latencies
                else 0.0
            ),
        }
        return RunReport(
            mode=mode,
            offered_qps=offered_qps,
            duration_seconds=duration,
            elapsed_seconds=elapsed,
            injected=injected,
            monitor_updates=updates,
            statuses=statuses,
            goodput_qps=answered / elapsed if elapsed > 0 else 0.0,
            shed_rate=statuses[STATUS_OVERLOADED] / denominator,
            degraded_rate=statuses[STATUS_DEGRADED] / denominator,
            deadline_exceeded_rate=(
                statuses[STATUS_DEADLINE_EXCEEDED] / denominator
            ),
            failure_rate=statuses[STATUS_FAILED] / denominator,
            latency_ms=latency_ms,
            monitor=monitor,
            service=self.service.snapshot().to_dict(),
        )

"""Declarative workload scenarios for the open-loop load harness.

A :class:`ScenarioSpec` is the *what* of a load test — the request
population, not its rate: how many distinct query shapes exist, how
skewed the popularity distribution over them is (Zipf hot keys), which
query kinds the mix blends (exact ``prq`` / ``uncertain`` targets /
``mixture`` objects / probabilistic ``knn``), how often requests carry
deadlines or elevated priorities, and what fraction of traffic is
subscription *update* storms against standing monitors.  The *when* —
offered arrival rate and test duration — belongs to the runner, so one
spec sweeps cleanly across load steps.

:class:`ScenarioWorkload` materializes a spec against one concrete
:class:`~repro.core.database.SpatialDatabase`: query shapes are placed
inside the data's bounding box with sizes expressed as fractions of its
extent, so the same spec is meaningful on any dataset.  Its
:meth:`~ScenarioWorkload.schedule` then draws a Poisson arrival process
(exponential inter-arrival gaps from a seeded generator): the timestamps
are fixed *before* the run starts, which is what makes the harness
open-loop — a slow service cannot push its own arrivals into the future
and hide queueing delay (coordinated omission).

Everything here is deterministic: materialization derives from
``spec.seed`` alone, a schedule from ``(spec.seed, rate, duration,
salt)`` alone.  Two calls with equal inputs yield bit-identical request
streams, the foundation of the virtual-time reproducibility contract in
``docs/load.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.kinds import (
    KNNQuery,
    MixtureRangeQuery,
    TargetCovarianceTable,
    UncertainTargetQuery,
)
from repro.core.query import ProbabilisticRangeQuery
from repro.errors import LoadError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.mixture import GaussianMixture
from repro.serve.request import PRQRequest

__all__ = [
    "ScenarioSpec",
    "ScenarioWorkload",
    "Arrival",
    "SCENARIOS",
    "OP_QUERY",
    "OP_UPDATE",
]

#: Arrival op: one PRQ submission through ``QueryService.submit``.
OP_QUERY = "query"
#: Arrival op: one location update against a standing subscription.
OP_UPDATE = "update"

#: Query kinds a scenario mix may blend (weights in ``kind_mix``).
QUERY_KINDS = ("prq", "uncertain", "mixture", "knn")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative workload mix (rate-free; see module docstring).

    Sizes are *fractions of the dataset extent* (the longest side of the
    data bounding box), so a spec ports across datasets: ``delta =
    delta_fraction * extent`` and query-object standard deviation
    ``sigma_fraction * extent``.

    ``kind_mix`` weights the four query kinds; zero-weight kinds never
    appear.  ``zipf_s`` shapes popularity over the ``n_shapes`` distinct
    query shapes (``P(rank) ∝ rank^-s``; 0 is uniform) — a skewed mix
    exercises the result cache and in-flight coalescing the way hot keys
    do in production.  ``monitor_fraction`` diverts that fraction of
    arrivals into location updates spread over ``n_subscriptions``
    standing queries (an *update storm* when pushed toward 1).
    """

    name: str = "default"
    seed: int = 0
    n_shapes: int = 64
    zipf_s: float = 1.1
    kind_mix: dict[str, float] = field(
        default_factory=lambda: {"prq": 1.0}
    )
    delta_fractions: tuple[float, ...] = (0.05, 0.1, 0.2)
    thetas: tuple[float, ...] = (0.3, 0.5, 0.8)
    sigma_fractions: tuple[float, ...] = (0.02, 0.05)
    deadline_fraction: float = 0.0
    deadline_ms: tuple[float, ...] = (5.0, 20.0)
    priority_fraction: float = 0.0
    priority_levels: tuple[int, ...] = (1, 2)
    monitor_fraction: float = 0.0
    n_subscriptions: int = 0
    update_step_fraction: float = 0.02
    target_sigma_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.n_shapes < 1:
            raise LoadError(f"n_shapes must be >= 1, got {self.n_shapes}")
        if self.zipf_s < 0:
            raise LoadError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if not self.kind_mix:
            raise LoadError("kind_mix must not be empty")
        unknown = sorted(set(self.kind_mix) - set(QUERY_KINDS))
        if unknown:
            raise LoadError(
                f"unknown query kinds {unknown}; choose from {QUERY_KINDS}"
            )
        if any(w < 0 for w in self.kind_mix.values()):
            raise LoadError("kind_mix weights must be >= 0")
        if sum(self.kind_mix.values()) <= 0:
            raise LoadError("kind_mix weights must sum to > 0")
        for frac_name in ("deadline_fraction", "priority_fraction",
                          "monitor_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise LoadError(f"{frac_name} must be in [0, 1], got {value}")
        for seq_name in ("delta_fractions", "thetas", "sigma_fractions",
                         "deadline_ms", "priority_levels"):
            seq = getattr(self, seq_name)
            if not seq:
                raise LoadError(f"{seq_name} must not be empty")
        if any(not 0.0 < t < 1.0 for t in self.thetas):
            raise LoadError(f"thetas must lie in (0, 1), got {self.thetas}")
        if self.monitor_fraction > 0 and self.n_subscriptions < 1:
            raise LoadError(
                "monitor_fraction > 0 needs n_subscriptions >= 1"
            )
        if self.n_subscriptions < 0:
            raise LoadError(
                f"n_subscriptions must be >= 0, got {self.n_subscriptions}"
            )

    @property
    def needs_target_table(self) -> bool:
        """True when the mix contains uncertain-target queries."""
        return self.kind_mix.get("uncertain", 0.0) > 0

    def to_dict(self) -> dict:
        """A JSON-serializable spec (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "n_shapes": self.n_shapes,
            "zipf_s": self.zipf_s,
            "kind_mix": dict(self.kind_mix),
            "delta_fractions": list(self.delta_fractions),
            "thetas": list(self.thetas),
            "sigma_fractions": list(self.sigma_fractions),
            "deadline_fraction": self.deadline_fraction,
            "deadline_ms": list(self.deadline_ms),
            "priority_fraction": self.priority_fraction,
            "priority_levels": list(self.priority_levels),
            "monitor_fraction": self.monitor_fraction,
            "n_subscriptions": self.n_subscriptions,
            "update_step_fraction": self.update_step_fraction,
            "target_sigma_fraction": self.target_sigma_fraction,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Build a spec from :meth:`to_dict` output (extra keys rejected)."""
        if not isinstance(payload, dict):
            raise LoadError(
                f"scenario spec must be a JSON object, got {type(payload).__name__}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise LoadError(f"unknown scenario fields {unknown}")
        kwargs = dict(payload)
        for seq_name in ("delta_fractions", "thetas", "sigma_fractions",
                         "deadline_ms"):
            if seq_name in kwargs:
                kwargs[seq_name] = tuple(float(v) for v in kwargs[seq_name])
        if "priority_levels" in kwargs:
            kwargs["priority_levels"] = tuple(
                int(v) for v in kwargs["priority_levels"]
            )
        return cls(**kwargs)


#: Built-in scenario presets (``repro load --scenario <name>``).
SCENARIOS: dict[str, ScenarioSpec] = {
    # Uniform popularity, exact PRQs only: the cache-hostile baseline.
    "uniform": ScenarioSpec(name="uniform", zipf_s=0.0, n_shapes=256),
    # Heavy hot-key skew: exercises the result cache and coalescing.
    "hotkey": ScenarioSpec(name="hotkey", zipf_s=1.4, n_shapes=64),
    # All four kinds blended, with deadlines and priorities in play.
    "mixed": ScenarioSpec(
        name="mixed",
        zipf_s=1.1,
        n_shapes=96,
        kind_mix={"prq": 0.55, "uncertain": 0.2, "mixture": 0.15, "knn": 0.1},
        deadline_fraction=0.3,
        priority_fraction=0.2,
    ),
    # A monitoring-heavy storm: most arrivals are subscription updates.
    "storm": ScenarioSpec(
        name="storm",
        zipf_s=1.1,
        n_shapes=32,
        monitor_fraction=0.7,
        n_subscriptions=16,
        deadline_fraction=0.2,
    ),
}


@dataclass(frozen=True)
class Arrival:
    """One scheduled injection: a query submission or a monitor update.

    ``at`` is seconds from the start of the run on the run's timeline
    (virtual or wall).  Query arrivals carry a ready-built
    :class:`PRQRequest`; update arrivals carry the subscription id and
    its new location (plus an optional per-update deadline).
    """

    at: float
    op: str
    request: PRQRequest | None = None
    subscription_id: str | None = None
    mean: np.ndarray | None = None
    deadline: float | None = None


class _Shape:
    """One materialized query shape (kind + prebuilt query object)."""

    __slots__ = ("kind", "query")

    def __init__(self, kind: str, query: ProbabilisticRangeQuery):
        self.kind = kind
        self.query = query


class ScenarioWorkload:
    """A :class:`ScenarioSpec` bound to one concrete database.

    Materialization (shape placement, subscription anchors, Zipf
    weights) happens once at construction from ``spec.seed``;
    :meth:`schedule` can then be called repeatedly with different rates
    and salts without re-deriving the population.
    """

    def __init__(self, spec: ScenarioSpec, database: SpatialDatabase):
        if spec.needs_target_table and database.targets is None:
            raise LoadError(
                "scenario mixes uncertain-target queries but the database "
                "has no target covariance table — wrap it with "
                "ScenarioWorkload.prepare_database first"
            )
        self.spec = spec
        self.database = database
        points = np.asarray(database.points, dtype=float)
        self._lo = points.min(axis=0)
        self._hi = points.max(axis=0)
        extent = float((self._hi - self._lo).max())
        self.extent = extent if extent > 0 else 1.0
        self._shapes = self._materialize_shapes()
        self._zipf = self._zipf_weights(spec.n_shapes, spec.zipf_s)
        self._subscriptions = self._materialize_subscriptions()

    @staticmethod
    def prepare_database(
        spec: ScenarioSpec, database: SpatialDatabase
    ) -> SpatialDatabase:
        """Attach a shared isotropic target table when the mix needs one.

        Uncertain-target queries integrate against per-object location
        laws N(point, Σ_o); stores carry exact points, so the harness
        (like the CLI) models Σ_o as ``(target_sigma_fraction * extent)²
        I`` shared across all objects.  Returns the database unchanged
        when no uncertain queries appear in the mix.
        """
        if not spec.needs_target_table or database.targets is not None:
            return database
        points = np.asarray(database.points, dtype=float)
        extent = float((points.max(axis=0) - points.min(axis=0)).max()) or 1.0
        sd = spec.target_sigma_fraction * extent
        ids = np.asarray(database.ids)
        table = TargetCovarianceTable.shared(
            (sd * sd) * np.eye(database.dim), ids
        )
        return SpatialDatabase(points, ids=ids, target_table=table)

    # ------------------------------------------------------------------
    # Materialization (spec.seed only)
    # ------------------------------------------------------------------

    @staticmethod
    def _zipf_weights(n: int, s: float) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-s)
        return weights / weights.sum()

    def _materialize_shapes(self) -> list[_Shape]:
        spec = self.spec
        rng = np.random.default_rng(
            np.random.SeedSequence([spec.seed, 0x5CA1E])
        )
        kinds = [k for k in QUERY_KINDS if spec.kind_mix.get(k, 0.0) > 0]
        kind_w = np.array([spec.kind_mix[k] for k in kinds], dtype=float)
        kind_w = kind_w / kind_w.sum()
        shapes: list[_Shape] = []
        for index in range(spec.n_shapes):
            kind = kinds[int(rng.choice(len(kinds), p=kind_w))]
            center = rng.uniform(self._lo, self._hi)
            sigma_f = float(rng.choice(spec.sigma_fractions))
            sd = sigma_f * self.extent
            sigma = (sd * sd) * np.eye(self.database.dim)
            delta = float(rng.choice(spec.delta_fractions)) * self.extent
            theta = float(rng.choice(spec.thetas))
            gaussian = Gaussian(center, sigma)
            if kind == "prq":
                query: ProbabilisticRangeQuery = ProbabilisticRangeQuery(
                    gaussian, delta, theta
                )
            elif kind == "uncertain":
                query = UncertainTargetQuery(gaussian, delta, theta)
            elif kind == "mixture":
                offset = rng.normal(0.0, sd, size=self.database.dim)
                components = [
                    Gaussian(center + offset, sigma),
                    Gaussian(center - offset, sigma),
                ]
                mixture = GaussianMixture(components, weights=[0.65, 0.35])
                query = MixtureRangeQuery.create(mixture, delta, theta)
            else:  # knn
                query = KNNQuery.create(
                    gaussian,
                    k=int(rng.integers(1, 4)),
                    theta=theta,
                    n_samples=256,
                    seed=index,
                )
            shapes.append(_Shape(kind, query))
        return shapes

    def _materialize_subscriptions(self) -> list[tuple[str, Gaussian, float, float]]:
        spec = self.spec
        if spec.n_subscriptions == 0:
            return []
        rng = np.random.default_rng(
            np.random.SeedSequence([spec.seed, 0x5B5])
        )
        subs = []
        for index in range(spec.n_subscriptions):
            center = rng.uniform(self._lo, self._hi)
            sd = float(rng.choice(spec.sigma_fractions)) * self.extent
            sigma = (sd * sd) * np.eye(self.database.dim)
            delta = float(rng.choice(spec.delta_fractions)) * self.extent
            theta = float(rng.choice(spec.thetas))
            subs.append(
                (f"{spec.name}-sub-{index}", Gaussian(center, sigma),
                 delta, theta)
            )
        return subs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shapes(self) -> int:
        """Number of distinct query shapes in the population."""
        return len(self._shapes)

    def subscriptions(self) -> Iterator[tuple[str, Gaussian, float, float]]:
        """``(subscription_id, gaussian, delta, theta)`` anchors to register.

        Standing subscriptions are always exact PRQs (the safe-region
        contract excludes kinded queries), independent of ``kind_mix``.
        """
        return iter(self._subscriptions)

    def kind_histogram(self) -> dict[str, int]:
        """Materialized shape counts per kind (diagnostics/reporting)."""
        counts: dict[str, int] = {}
        for shape in self._shapes:
            counts[shape.kind] = counts.get(shape.kind, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Scheduling (spec.seed + rate + duration + salt)
    # ------------------------------------------------------------------

    def schedule(
        self, rate: float, duration: float, *, salt: int = 0
    ) -> list[Arrival]:
        """Draw one Poisson arrival schedule at ``rate`` requests/second.

        The returned list is fully determined by ``(spec.seed, rate,
        duration, salt)`` and is sorted by ``at``.  Arrival timestamps
        are drawn *up front* — the open-loop property — and each arrival
        is independently classified as a query (popularity-weighted
        shape, optional deadline/priority) or, with probability
        ``monitor_fraction``, a subscription update whose target follows
        a bounded random walk from its anchor.
        """
        if rate <= 0:
            raise LoadError(f"rate must be > 0 requests/second, got {rate}")
        if duration <= 0:
            raise LoadError(f"duration must be > 0 seconds, got {duration}")
        spec = self.spec
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [spec.seed, 0xA221, int(salt) & 0xFFFFFFFF]
            )
        )
        step_sd = spec.update_step_fraction * self.extent
        positions = {
            sub_id: np.array(gaussian.mean, dtype=float)
            for sub_id, gaussian, _, _ in self._subscriptions
        }
        sub_ids = [sub_id for sub_id, _, _, _ in self._subscriptions]
        arrivals: list[Arrival] = []
        mean_gap = 1.0 / rate
        t = 0.0
        seq = 0
        while True:
            t += float(rng.exponential(mean_gap))
            if t >= duration:
                break
            deadline = None
            if spec.deadline_fraction > 0 and rng.random() < spec.deadline_fraction:
                deadline = float(rng.choice(spec.deadline_ms)) / 1e3
            if sub_ids and rng.random() < spec.monitor_fraction:
                sub_id = sub_ids[int(rng.integers(len(sub_ids)))]
                step = rng.normal(0.0, step_sd, size=self.database.dim)
                position = np.clip(positions[sub_id] + step, self._lo, self._hi)
                positions[sub_id] = position
                arrivals.append(
                    Arrival(
                        at=t,
                        op=OP_UPDATE,
                        subscription_id=sub_id,
                        mean=position.copy(),
                        deadline=deadline,
                    )
                )
                continue
            shape = self._shapes[int(rng.choice(spec.n_shapes, p=self._zipf))]
            priority = 0
            if (
                spec.priority_fraction > 0
                and rng.random() < spec.priority_fraction
            ):
                priority = int(rng.choice(spec.priority_levels))
            request = PRQRequest.from_query(
                shape.query,
                deadline=deadline,
                priority=priority,
                request_id=f"{spec.name}-{salt}-{seq}",
            )
            seq += 1
            arrivals.append(Arrival(at=t, op=OP_QUERY, request=request))
        return arrivals

"""Saturation sweeps: step offered load, find the knee, fit capacity.

:class:`SaturationSweep` runs one :class:`ScenarioSpec` at an ascending
ladder of offered arrival rates, each step against a *fresh* service
(cold cache, empty queue, re-registered subscriptions), and aggregates
the per-step :class:`~repro.load.runner.RunReport` rows into a
:class:`~repro.load.report.CapacityReport`:

- **knee_qps** — the offered rate at which admission control first
  sheds more than ``shed_threshold`` of traffic, linearly interpolated
  between the bracketing steps.  Below the knee the service answers
  everything it is offered; past it, goodput should *plateau* (bounded
  queue + typed rejections), not collapse.
- **capacity_qps** — the maximum observed goodput across steps, the
  plateau height.  A simple open-system capacity model
  ``goodput(r) ≈ min(r, capacity)`` is fitted alongside with its
  residual, so reports can sanity-check that the service actually
  behaves like a bounded server rather than degrading open-endedly.

Virtual sweeps (the default) run the whole ladder in milliseconds of
wall time on a :class:`VirtualClock` + :class:`VirtualCostModel` and are
bit-reproducible — CI compares their JSON byte-for-byte and trend-gates
capacity against a committed baseline.  Real sweeps exercise the actual
engine on the actual machine for perf-trajectory numbers.
"""

from __future__ import annotations

from repro.errors import LoadError
from repro.load.report import CapacityReport
from repro.load.runner import LoadRunner, RunReport, VirtualClock, VirtualCostModel
from repro.load.scenario import ScenarioSpec, ScenarioWorkload
from repro.serve.service import QueryService, ServiceConfig

__all__ = ["SaturationSweep", "detect_knee"]


def detect_knee(steps: list[dict], *, shed_threshold: float = 0.01) -> dict:
    """Locate where shedding begins along an ascending rate ladder.

    ``steps`` are :meth:`RunReport.to_dict` rows sorted by
    ``offered_qps``.  Returns the knee analysis block of the capacity
    report: the interpolated knee rate (``None`` when no step shed more
    than the threshold — the ladder never saturated), the goodput
    plateau (``capacity_qps``), and the ``min(r, capacity)`` model fit
    with its RMS residual.
    """
    if not steps:
        raise LoadError("cannot analyze an empty sweep")
    rates = [step["offered_qps"] for step in steps]
    sheds = [step["shed_rate"] for step in steps]
    goodputs = [step["goodput_qps"] for step in steps]
    knee_qps = None
    for index, shed in enumerate(sheds):
        if shed > shed_threshold:
            if index == 0:
                knee_qps = rates[0]
            else:
                r0, r1 = rates[index - 1], rates[index]
                s0, s1 = sheds[index - 1], sheds[index]
                # Interpolate the rate where shed crosses the threshold.
                t = (shed_threshold - s0) / (s1 - s0) if s1 > s0 else 1.0
                knee_qps = r0 + (r1 - r0) * t
            break
    capacity_qps = max(goodputs)
    capacity_rate = rates[goodputs.index(capacity_qps)]
    residual = (
        sum(
            (goodput - min(rate, capacity_qps)) ** 2
            for rate, goodput in zip(rates, goodputs)
        )
        / len(steps)
    ) ** 0.5
    return {
        "shed_threshold": shed_threshold,
        "saturated": knee_qps is not None,
        "knee_qps": None if knee_qps is None else round(knee_qps, 6),
        "capacity_qps": round(capacity_qps, 6),
        "capacity_at_offered_qps": capacity_rate,
        "base_p50_ms": steps[0]["latency_ms"]["p50"],
        "model": {
            "kind": "goodput(r) = min(r, capacity_qps)",
            "rms_residual_qps": round(residual, 6),
        },
    }


class SaturationSweep:
    """Step a scenario through ascending offered rates (module docstring).

    ``service_knobs`` are forwarded to every per-step
    :class:`~repro.serve.QueryService` (``max_batch``, ``batch_window``,
    ``max_queue``, ``workers``, ``cache_size``, …).  In virtual mode
    (default) each step gets a fresh :class:`VirtualClock` and shares
    the given :class:`VirtualCostModel`; in real mode the services run
    their normal scheduler thread and wall clock.
    """

    def __init__(
        self,
        database,
        spec: ScenarioSpec,
        *,
        rates,
        duration: float = 2.0,
        virtual: bool = True,
        cost_model: VirtualCostModel | None = None,
        service_knobs: dict | None = None,
        shed_threshold: float = 0.01,
    ):
        rates = [float(rate) for rate in rates]
        if not rates:
            raise LoadError("a sweep needs at least one offered rate")
        if any(rate <= 0 for rate in rates):
            raise LoadError(f"offered rates must be > 0, got {rates}")
        if sorted(rates) != rates:
            raise LoadError("offered rates must be ascending")
        self.spec = spec
        self.rates = rates
        self.duration = float(duration)
        self.virtual = bool(virtual)
        self.cost_model = (
            cost_model
            if cost_model is not None
            else (VirtualCostModel() if virtual else None)
        )
        self.service_knobs = dict(service_knobs or {})
        self.shed_threshold = float(shed_threshold)
        self.database = ScenarioWorkload.prepare_database(spec, database)
        self.workload = ScenarioWorkload(spec, self.database)

    def _make_service(self) -> QueryService:
        knobs = dict(self.service_knobs)
        if self.virtual:
            knobs["clock"] = VirtualClock()
            knobs["manual"] = True
            knobs["cost_model"] = self.cost_model
        return QueryService(self.database, **knobs)

    def run_step(self, rate: float, *, salt: int = 0) -> RunReport:
        """Run one rate step against a fresh service and close it."""
        schedule = self.workload.schedule(rate, self.duration, salt=salt)
        service = self._make_service()
        try:
            for sub_id, gaussian, delta, theta in self.workload.subscriptions():
                service.monitor.subscribe(
                    gaussian, delta, theta, subscription_id=sub_id
                )
            runner = LoadRunner(service, cost_model=self.cost_model)
            return runner.run(
                schedule, duration=self.duration, offered_qps=rate
            )
        finally:
            service.close()

    def run(self) -> CapacityReport:
        """Run every step and assemble the capacity report."""
        steps = [
            self.run_step(rate, salt=index).to_dict()
            for index, rate in enumerate(self.rates)
        ]
        knee = detect_knee(steps, shed_threshold=self.shed_threshold)
        config = ServiceConfig(**self.service_knobs)
        service_block = {
            "max_queue": config.max_queue,
            "max_batch": config.max_batch,
            "batch_window": config.batch_window,
            "workers": config.workers,
            "cache_size": config.cache_size,
            "degrade": config.degrade,
        }
        cost_block = None
        if self.cost_model is not None:
            cost_block = {
                "seconds_per_query": self.cost_model.seconds_per_query,
                "degraded_ratio": self.cost_model.degraded_ratio,
                "batch_overhead": self.cost_model.batch_overhead,
                "parallelism": self.cost_model.parallelism,
                "seconds_per_update": self.cost_model.seconds_per_update,
            }
        return CapacityReport(
            scenario=self.spec.to_dict(),
            mode="virtual" if self.virtual else "real",
            duration_seconds=self.duration,
            database={
                "points": len(self.database),
                "dim": int(self.database.dim),
            },
            service=service_block,
            cost_model=cost_block,
            steps=steps,
            knee=knee,
        )

"""repro.load — open-loop load harness and capacity model for the service.

The load subsystem answers the operational question the serving layer
raises: *how much traffic can one service instance absorb before its
admission control starts shedding, and how does it behave past that
point?*  Three pieces fit together (full contract in ``docs/load.md``):

- :class:`ScenarioSpec` / :class:`ScenarioWorkload` — declarative,
  rate-free workload mixes (Zipf hot-key skew, exact/uncertain/mixture/
  k-NN kind blends, deadline and priority envelopes, subscription
  update storms), materialized against a database and sampled into
  Poisson arrival schedules.  Schedules are drawn *before* the run —
  the open-loop discipline that keeps coordinated omission out of the
  latency numbers.
- :class:`LoadRunner` — replays a schedule against one
  :class:`~repro.serve.QueryService`, either in real time (wall-clock
  open loop against the threaded service) or in *virtual time* (a
  single-threaded discrete-event loop over ``manual=True`` +
  :class:`VirtualClock` + :class:`VirtualCostModel`, bit-reproducible
  across runs and machines).
- :class:`SaturationSweep` / :class:`CapacityReport` — step offered
  load up a rate ladder, find the knee where shedding begins, fit the
  ``min(rate, capacity)`` goodput model, and emit the canonical
  ``BENCH_capacity.json``; :meth:`CapacityReport.compare` is the CI
  trend gate against a committed baseline.

Entry points::

    spec = SCENARIOS["mixed"]
    sweep = SaturationSweep(db, spec, rates=[200, 400, 800], duration=2.0)
    report = sweep.run()
    report.write("BENCH_capacity.json")
    gate = report.compare(CapacityReport.load("BENCH_capacity.json"))

``repro load`` exposes the same flow on the command line.
"""

from __future__ import annotations

from repro.load.report import CapacityReport, TrendGate
from repro.load.runner import LoadRunner, RunReport, VirtualClock, VirtualCostModel
from repro.load.scenario import (
    Arrival,
    OP_QUERY,
    OP_UPDATE,
    SCENARIOS,
    ScenarioSpec,
    ScenarioWorkload,
)
from repro.load.sweep import SaturationSweep, detect_knee

__all__ = [
    "ScenarioSpec",
    "ScenarioWorkload",
    "Arrival",
    "SCENARIOS",
    "OP_QUERY",
    "OP_UPDATE",
    "VirtualClock",
    "VirtualCostModel",
    "LoadRunner",
    "RunReport",
    "SaturationSweep",
    "detect_knee",
    "CapacityReport",
    "TrendGate",
]

"""Eigenbasis and whitening transforms for Gaussian-shaped regions.

Property 3 of the paper rotates candidate points into the eigenbasis of the
covariance matrix so the oblique box of the OR strategy becomes
axis-aligned.  Whitening goes one step further and also rescales each axis
by 1/√λᵢ so the Gaussian becomes the normalized (unit) Gaussian — the
coordinate system in which the θ-region is a plain sphere of radius r_θ
(Property 1).
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, NotPositiveDefiniteError

__all__ = ["EigenTransform", "WhiteningTransform", "spectral_decomposition"]

_ArrayLike = Sequence[float] | np.ndarray

#: Relative tolerance used when checking symmetry of covariance matrices.
_SYMMETRY_RTOL = 1e-8

#: Distinct covariance shapes memoized by :func:`spectral_decomposition`.
#: Small on purpose: a workload usually cycles through a handful of
#: uncertainty models (the paper's three γ values), not thousands.
_DECOMPOSITION_CACHE_SIZE = 128


@functools.lru_cache(maxsize=_DECOMPOSITION_CACHE_SIZE)
def _spectral_decomposition_cached(
    payload: bytes, dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """eigh of the matrix serialized in ``payload``, write-protected.

    ``functools.lru_cache`` is thread-safe, so concurrent batch workers
    preparing the same covariance share one decomposition.  The returned
    arrays are marked read-only because every cache hit aliases them.
    """
    mat = np.frombuffer(payload, dtype=float).reshape(dim, dim)
    eigenvalues, eigenvectors = np.linalg.eigh(mat)
    if eigenvalues[0] <= 0:
        raise NotPositiveDefiniteError(
            f"covariance matrix has non-positive eigenvalue {eigenvalues[0]:g}"
        )
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = np.ascontiguousarray(eigenvectors[:, order])
    eigenvalues.setflags(write=False)
    eigenvectors.setflags(write=False)
    return eigenvalues, eigenvectors


def spectral_decomposition(sigma: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues and eigenvectors of a covariance matrix.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvalues sorted in
    *descending* order and eigenvectors as columns, so
    ``sigma == eigenvectors @ diag(eigenvalues) @ eigenvectors.T``.

    Results are memoized in a small LRU keyed on the matrix bytes, so
    repeated query shapes (the common case in batched workloads) skip the
    eigendecomposition entirely.  The returned arrays are read-only; copy
    before mutating.

    Raises
    ------
    NotPositiveDefiniteError
        If ``sigma`` is not symmetric or has a non-positive eigenvalue.
    """
    mat = np.asarray(sigma, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise NotPositiveDefiniteError(
            f"covariance must be a square matrix, got shape {mat.shape}"
        )
    scale = max(1.0, float(np.abs(mat).max()))
    if not np.allclose(mat, mat.T, atol=_SYMMETRY_RTOL * scale):
        raise NotPositiveDefiniteError("covariance matrix is not symmetric")
    return _spectral_decomposition_cached(
        np.ascontiguousarray(mat).tobytes(), mat.shape[0]
    )


class EigenTransform:
    """Rotation into the eigenbasis of a covariance matrix.

    The paper writes ``x = E y`` (Eq. 19) where the columns of ``E`` are the
    eigenvectors of Σ⁻¹ (equivalently of Σ).  ``to_eigen`` computes
    ``y = Eᵀ (x − q)``: relative to the distribution centre and expressed in
    ellipsoid-axis coordinates.
    """

    __slots__ = ("_center", "_eigenvalues", "_basis")

    def __init__(self, center: _ArrayLike, sigma: np.ndarray):
        c = np.asarray(center, dtype=float)
        eigenvalues, basis = spectral_decomposition(sigma)
        if c.shape != (eigenvalues.size,):
            raise DimensionMismatchError(eigenvalues.size, c.size, "center")
        c.setflags(write=False)
        eigenvalues.setflags(write=False)
        basis.setflags(write=False)
        self._center = c
        self._eigenvalues = eigenvalues
        self._basis = basis

    @property
    def center(self) -> np.ndarray:
        return self._center

    @property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of Σ in descending order (σ²-scale variances)."""
        return self._eigenvalues

    @property
    def basis(self) -> np.ndarray:
        """Matrix E whose columns are unit eigenvectors of Σ."""
        return self._basis

    @property
    def dim(self) -> int:
        return self._center.size

    def to_eigen(self, points: np.ndarray) -> np.ndarray:
        """Map world points (rows) to centred eigenbasis coordinates."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return (pts - self._center) @ self._basis

    def to_world(self, points: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_eigen`."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return pts @ self._basis.T + self._center


class WhiteningTransform:
    """Affine map sending N(q, Σ) to the normalized Gaussian N(0, I).

    ``whiten`` computes ``z = Λ^{-1/2} Eᵀ (x − q)``; distances in z-space
    are Mahalanobis distances in world space, so the θ-region becomes the
    plain ball ‖z‖ ≤ r_θ (Property 1 of the paper).
    """

    __slots__ = ("_eigen", "_inv_sqrt", "_sqrt")

    def __init__(self, center: _ArrayLike, sigma: np.ndarray):
        self._eigen = EigenTransform(center, sigma)
        self._sqrt = np.sqrt(self._eigen.eigenvalues)
        self._inv_sqrt = 1.0 / self._sqrt

    @property
    def eigen(self) -> EigenTransform:
        return self._eigen

    @property
    def dim(self) -> int:
        return self._eigen.dim

    def whiten(self, points: np.ndarray) -> np.ndarray:
        return self._eigen.to_eigen(points) * self._inv_sqrt

    def unwhiten(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return self._eigen.to_world(pts * self._sqrt)

    def mahalanobis(self, points: np.ndarray) -> np.ndarray:
        """Mahalanobis distance of each row of ``points`` from the centre."""
        return np.linalg.norm(self.whiten(points), axis=1)

"""Geometric primitives used by the query strategies.

The strategies of the paper manipulate a small zoo of d-dimensional shapes:

- :class:`~repro.geometry.mbr.Rect` — axis-aligned rectangles (MBRs), the
  currency of the R-tree and of the rectilinear strategy (RR);
- :class:`~repro.geometry.sphere.Sphere` — the δ-balls of the range
  predicate and the α-balls of the bounding-function strategy (BF);
- :class:`~repro.geometry.ellipsoid.Ellipsoid` — θ-regions, the
  equi-probability contours of the Gaussian query object;
- :class:`~repro.geometry.minkowski.MinkowskiRegion` — the rounded box of
  Fig. 4, a rectangle dilated by a δ-ball, with the exact fringe test;
- :class:`~repro.geometry.obliquebox.ObliqueBox` — the eigenbasis-aligned
  box of the oblique strategy (OR, Fig. 5/7);
- :mod:`~repro.geometry.transforms` — the eigenbasis / whitening maps of
  Property 3.
"""

from repro.geometry.mbr import Rect
from repro.geometry.sphere import Sphere
from repro.geometry.ellipsoid import Ellipsoid
from repro.geometry.minkowski import MinkowskiRegion
from repro.geometry.obliquebox import ObliqueBox
from repro.geometry.transforms import EigenTransform, WhiteningTransform

__all__ = [
    "Rect",
    "Sphere",
    "Ellipsoid",
    "MinkowskiRegion",
    "ObliqueBox",
    "EigenTransform",
    "WhiteningTransform",
]

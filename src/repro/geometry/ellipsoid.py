"""Covariance-shaped ellipsoids (the θ-regions of Definition 3).

A θ-region is the set ``(x − q)ᵀ Σ⁻¹ (x − q) ≤ r_θ²``: the equi-probability
contour of the query Gaussian that encloses probability mass 1 − 2θ.
``Ellipsoid`` stores the centre, covariance and Mahalanobis radius and
exposes the two derived shapes the strategies need — the tight axis-aligned
bounding box of Property 2 and the principal semi-axes used by the oblique
strategy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.mbr import Rect
from repro.geometry.transforms import EigenTransform

__all__ = ["Ellipsoid"]

_ArrayLike = Sequence[float] | np.ndarray


class Ellipsoid:
    """The set of points with Mahalanobis distance <= ``radius`` from ``center``.

    Parameters
    ----------
    center:
        Centre q of the ellipsoid.
    sigma:
        Symmetric positive-definite shape matrix Σ.  The ellipsoid is
        ``(x − q)ᵀ Σ⁻¹ (x − q) ≤ radius²`` — for a Gaussian N(q, Σ) this is
        the contour at Mahalanobis radius ``radius``.
    radius:
        Mahalanobis radius r ≥ 0 (``r_θ`` when used as a θ-region).
    """

    __slots__ = ("_transform", "_sigma", "_radius", "_sigma_inv")

    def __init__(self, center: _ArrayLike, sigma: np.ndarray, radius: float):
        if not np.isfinite(radius) or radius < 0:
            raise GeometryError(f"radius must be finite and >= 0, got {radius}")
        self._transform = EigenTransform(center, sigma)
        sigma_arr = np.asarray(sigma, dtype=float).copy()
        sigma_arr.setflags(write=False)
        self._sigma = sigma_arr
        self._radius = float(radius)
        # Invert via the eigendecomposition already validated by EigenTransform.
        basis = self._transform.basis
        inv = (basis / self._transform.eigenvalues) @ basis.T
        inv.setflags(write=False)
        self._sigma_inv = inv

    @property
    def center(self) -> np.ndarray:
        return self._transform.center

    @property
    def sigma(self) -> np.ndarray:
        return self._sigma

    @property
    def sigma_inv(self) -> np.ndarray:
        return self._sigma_inv

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def dim(self) -> int:
        return self._transform.dim

    @property
    def transform(self) -> EigenTransform:
        return self._transform

    @property
    def semi_axes(self) -> np.ndarray:
        """Lengths of the principal semi-axes, descending: r·√λᵢ."""
        return self._radius * np.sqrt(self._transform.eigenvalues)

    def volume(self) -> float:
        """Volume of the ellipsoid: V_d · r^d · √|Σ|."""
        from repro.geometry.sphere import unit_ball_volume

        det = float(np.prod(self._transform.eigenvalues))
        return unit_ball_volume(self.dim) * self._radius**self.dim * np.sqrt(det)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def mahalanobis(self, points: np.ndarray) -> np.ndarray:
        """Mahalanobis distance of each row of ``points`` from the centre."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != self.dim:
            raise DimensionMismatchError(self.dim, pts.shape[1], "points")
        deltas = pts - self.center
        quad = np.einsum("ij,jk,ik->i", deltas, self._sigma_inv, deltas)
        return np.sqrt(np.maximum(quad, 0.0))

    def contains_point(self, point: _ArrayLike) -> bool:
        return bool(self.mahalanobis(np.asarray(point, dtype=float))[0] <= self._radius)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        return self.mahalanobis(points) <= self._radius

    # ------------------------------------------------------------------
    # Derived shapes
    # ------------------------------------------------------------------

    def distance_to_surface(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each row of ``points`` to the ellipsoid.

        Zero for points inside or on the surface.  Exterior distances are
        computed with the classical Lagrange parametrization: in the
        eigenbasis with semi-axes aᵢ, the closest surface point to y is
        xᵢ = aᵢ²yᵢ/(t + aᵢ²) where t >= 0 solves
        Σ aᵢ²yᵢ²/(t + aᵢ²)² = 1, found here by bracketed bisection
        (robust for any axis ratio; ~60 iterations give full double
        precision).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != self.dim:
            raise DimensionMismatchError(self.dim, pts.shape[1], "points")
        if self._radius == 0.0:
            return np.linalg.norm(pts - self.center, axis=1)
        y = self._transform.to_eigen(pts)  # centred eigen coordinates
        axes_sq = (self.semi_axes**2)[None, :]
        inside = np.sum(y * y / axes_sq, axis=1) <= 1.0
        distances = np.zeros(pts.shape[0])
        exterior = ~inside
        if not np.any(exterior):
            return distances
        y_out = y[exterior]

        def constraint(t: np.ndarray) -> np.ndarray:
            # g(t) = sum a_i^2 y_i^2 / (t + a_i^2)^2 - 1, decreasing in t.
            return (
                np.sum(axes_sq * y_out**2 / (t[:, None] + axes_sq) ** 2, axis=1)
                - 1.0
            )

        lo = np.zeros(y_out.shape[0])
        # Upper bracket: g(t) < 1 once t >= a_max * ||y|| (then each term
        # <= a_i^2 y_i^2 / t^2 and the sum <= (a_max ||y|| / t)^2 <= 1).
        hi = float(self.semi_axes[0]) * np.linalg.norm(y_out, axis=1) + 1.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            too_low = constraint(mid) > 0.0
            lo = np.where(too_low, mid, lo)
            hi = np.where(too_low, hi, mid)
        t = 0.5 * (lo + hi)
        gaps = t[:, None] * y_out / (t[:, None] + axes_sq)
        distances[exterior] = np.linalg.norm(gaps, axis=1)
        return distances

    def bounding_rect(self) -> Rect:
        """Tight axis-aligned bounding box (Property 2): w_i = σ_i · r.

        σ_i = √(Σ)_{ii} is the marginal standard deviation along axis i —
        *not* the i-th eigenvalue — which is what makes the box tight for
        correlated covariances.
        """
        half_widths = np.sqrt(np.diag(self._sigma)) * self._radius
        return Rect.from_center(self.center, half_widths)

    def scaled(self, radius: float) -> "Ellipsoid":
        """Same centre and shape at a different Mahalanobis radius."""
        return Ellipsoid(self.center, self._sigma, radius)

    def __repr__(self) -> str:
        return (
            f"Ellipsoid(dim={self.dim}, radius={self._radius:g}, "
            f"semi_axes={np.round(self.semi_axes, 4).tolist()})"
        )

"""Minkowski sums of rectangles with δ-balls (the rounded box of Fig. 4).

The RR strategy searches the R-tree with the bounding box of the θ-region
dilated by δ, then removes candidates that fall in the *fringe* — the
corner slivers between the dilated rectangle and the true Minkowski sum.
The paper applies the fringe test only for d = 2 ("computation of fringe
part is not easy for d ≥ 3"); this module provides the exact test in every
dimension, because membership in a rect ⊕ δ-ball Minkowski sum is simply
``distance(point, rect) ≤ δ``.  The d = 2 restriction is kept as an option
at the strategy level for paper-faithful runs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.mbr import Rect

__all__ = ["MinkowskiRegion"]

_ArrayLike = Sequence[float] | np.ndarray


class MinkowskiRegion:
    """The Minkowski sum of an axis-aligned rectangle and a closed δ-ball.

    Parameters
    ----------
    core:
        The rectangle being dilated (the θ-region bounding box in RR).
    delta:
        Dilation radius δ ≥ 0.
    """

    __slots__ = ("_core", "_delta")

    def __init__(self, core: Rect, delta: float):
        if not math.isfinite(delta) or delta < 0:
            raise GeometryError(f"delta must be finite and >= 0, got {delta}")
        self._core = core
        self._delta = float(delta)

    @property
    def core(self) -> Rect:
        return self._core

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def dim(self) -> int:
        return self._core.dim

    def bounding_rect(self) -> Rect:
        """The dilated rectangle — what Phase 1 feeds to the R-tree."""
        return self._core.expand(self._delta)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Exact vectorised membership test, valid in every dimension.

        A point belongs to rect ⊕ ball(δ) iff its distance to the rectangle
        is at most δ.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        below = np.maximum(self._core.lows - pts, 0.0)
        above = np.maximum(pts - self._core.highs, 0.0)
        gap = below + above
        return np.einsum("ij,ij->i", gap, gap) <= self._delta**2

    def contains_point(self, point: _ArrayLike) -> bool:
        return bool(self.contains_points(np.asarray(point, dtype=float)[None, :])[0])

    def in_fringe(self, points: np.ndarray) -> np.ndarray:
        """True for points inside the dilated box but outside the rounded region.

        These are exactly the candidates the RR Phase-2 filter discards
        (the black corner regions of Fig. 4).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        in_box = self.bounding_rect().contains_points(pts)
        return in_box & ~self.contains_points(pts)

    # ------------------------------------------------------------------
    # Measures (used to reproduce the region figures 13–16)
    # ------------------------------------------------------------------

    def volume_2d(self) -> float:
        """Exact area of the rounded region for d = 2."""
        if self.dim != 2:
            raise GeometryError(f"volume_2d requires d = 2, got d = {self.dim}")
        w, h = self._core.extents
        return float(w * h + 2.0 * self._delta * (w + h) + math.pi * self._delta**2)

    def fringe_volume_2d(self) -> float:
        """Area of the four corner slivers for d = 2: (4 − π)·δ²."""
        if self.dim != 2:
            raise GeometryError(f"fringe_volume_2d requires d = 2, got d = {self.dim}")
        return float((4.0 - math.pi) * self._delta**2)

    def __repr__(self) -> str:
        return f"MinkowskiRegion(core={self._core!r}, delta={self._delta:g})"
